"""Cross-configuration interaction matrix: combinations of the optional
mechanisms must compose without corrupting execution (all lockstep)."""

import pytest

from repro import DTSVLIW, MachineConfig, compile_and_load
from repro.core.config import CacheConfig

PROGRAM = """
int table[32];
int mix(int a, int b) { return ((a << 3) ^ b) + (a & 7); }
int rec(int n) { if (n <= 0) return 1; return rec(n - 1) + (n & 3); }
int main() {
  int i; int s = 0;
  for (i = 0; i < 32; i++) table[i] = mix(i, i * 3);
  for (i = 0; i < 32; i++) {
    if (table[i] & 1) s += table[i];
    else s -= table[(i + 5) & 31];
  }
  s += rec(12);
  print_int(s & 0xffffff);
  return s & 0xff;
}
"""

CONFIGS = {
    "baseline": dict(),
    "dsl": dict(data_store_list=True),
    "predictor": dict(next_block_prediction=True, next_li_miss_penalty=1),
    "strict_windows": dict(vliw_window_spill_inline=False),
    "dsl+strict": dict(data_store_list=True, vliw_window_spill_inline=False),
    "dsl+predictor": dict(
        data_store_list=True,
        next_block_prediction=True,
        next_li_miss_penalty=1,
    ),
    "tight_renaming": dict(
        int_renaming_limit=1, cc_renaming_limit=1, mem_renaming_limit=1
    ),
    "no_multicycle": dict(multicycle=False),
    "few_windows": dict(nwindows=4),
    "few_windows+dsl": dict(nwindows=4, data_store_list=True),
    "everything": dict(
        data_store_list=True,
        next_block_prediction=True,
        next_li_miss_penalty=1,
        nwindows=4,
        int_renaming_limit=4,
    ),
}


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("geom", [(4, 4), (8, 8)], ids=lambda g: "%dx%d" % g)
def test_config_combination(name, geom):
    cfg = MachineConfig.paper_fixed(*geom, **CONFIGS[name])
    machine = DTSVLIW(compile_and_load(PROGRAM), cfg)
    stats = machine.run(max_cycles=50_000_000)  # lockstep oracle active
    assert stats.ipc > 0.3


def test_feasible_with_everything():
    cfg = MachineConfig.feasible(
        data_store_list=True, next_block_prediction=True
    )
    machine = DTSVLIW(compile_and_load(PROGRAM), cfg)
    machine.run(max_cycles=50_000_000)


def test_realistic_caches_with_dsl():
    cfg = MachineConfig.paper_fixed(8, 8, data_store_list=True)
    cfg.icache = CacheConfig(size=512, line_size=32, assoc=1, miss_penalty=6)
    cfg.dcache = CacheConfig(size=512, line_size=32, assoc=1, miss_penalty=6)
    machine = DTSVLIW(compile_and_load(PROGRAM), cfg)
    stats = machine.run(max_cycles=50_000_000)
    assert stats.dcache_stall_cycles > 0
