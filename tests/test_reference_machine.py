"""Tests for the reference (test) machine itself: instruction counting,
trap services, lockstep helpers and run control."""

import pytest

from repro import compile_and_load
from repro.asm.assembler import assemble
from repro.core.errors import ProgramExit, SimError
from repro.core.reference import ReferenceMachine, TrapServices


class TestReferenceMachine:
    def test_counts_every_instruction_including_exit_trap(self):
        p = assemble(
            """
        .text
_start: mov 1, %l0
        mov 2, %l1
        mov 0, %o0
        ta 0
"""
        )
        m = ReferenceMachine(p)
        assert m.run() == 4

    def test_counts_nops_and_unconditional_branches(self):
        p = assemble(
            """
        .text
_start: nop
        ba skip
        nop
skip:   mov 0, %o0
        ta 0
"""
        )
        m = ReferenceMachine(p)
        assert m.run() == 4  # nop, ba, mov, ta (the skipped nop not executed)

    def test_step_one_raises_program_exit(self):
        p = assemble("        .text\n_start: ta 0\n")
        m = ReferenceMachine(p)
        with pytest.raises(ProgramExit):
            m.step_one()
        assert m.halted
        assert m.instret == 1

    def test_instruction_budget_enforced(self):
        p = assemble("        .text\n_start: ba _start\n")
        m = ReferenceMachine(p)
        with pytest.raises(SimError):
            m.run(max_instructions=100)

    def test_output_accumulates(self):
        m = ReferenceMachine(
            compile_and_load(
                "int main() { print_int(12); putchar(':'); print_int(-4); return 0; }"
            )
        )
        m.run()
        assert m.output == b"12:-4"

    def test_unknown_trap_rejected(self):
        p = assemble("        .text\n_start: ta 99\n")
        m = ReferenceMachine(p)
        with pytest.raises(SimError):
            m.run()

    def test_fetch_outside_text_detected(self):
        p = assemble("        .text\n_start: mov 0, %o0\n")  # falls off the end
        m = ReferenceMachine(p)
        with pytest.raises(SimError):
            m.run()

    def test_two_machines_are_independent(self):
        program = compile_and_load(
            "int g; int main() { g = g + 1; return g; }"
        )
        m1 = ReferenceMachine(program)
        m2 = ReferenceMachine(program)
        m1.run()
        m2.run()
        assert m1.exit_code == m2.exit_code == 1  # separate memories

    def test_state_snapshot_restore(self):
        program = compile_and_load("int main() { return 5; }")
        m = ReferenceMachine(program)
        snap = m.rf.snapshot()
        m.run()
        changed = m.rf.snapshot()
        assert changed != snap
        m.rf.restore(snap)
        assert m.rf.snapshot() == snap


class TestTrapServices:
    def test_exit_code_sign(self):
        program = compile_and_load("int main() { return 0 - 1; }")
        m = ReferenceMachine(program)
        m.run()
        assert m.exit_code == -1

    def test_services_shared_instance(self):
        services = TrapServices()
        program = compile_and_load("int main() { putchar('x'); return 0; }")
        m = ReferenceMachine(program, services=services)
        m.run()
        assert bytes(services.output) == b"x"
