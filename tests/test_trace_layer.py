"""The trace layer: capture, store, bind, replay, and harness wiring.

Bit-identity of replayed runs over the full workload/config matrix lives
in test_trace_replay_differential.py; serialization round-trip properties
in test_trace_roundtrip.py.  This file covers the layer's contracts:
capture headers, the on-disk store, bound-trace derivation, desync
detection, the ``REPRO_EXECUTION_DRIVEN`` escape hatch, and trace sharing
through run_workload/run_sweep.
"""

import os

import pytest

from repro.baselines.dif import DIFMachine
from repro.baselines.scalar import ScalarMachine
from repro.core.config import MachineConfig
from repro.harness.runner import run_workload
from repro.harness.sweep import RunSpec, run_sweep
from repro.isa.instructions import K_TRAP
from repro.trace import capture as capture_mod
from repro.trace.capture import capture_trace, trace_cached, workload_trace
from repro.trace.events import TraceDesync, program_fingerprint
from repro.trace.replay import (
    ReplayTraceSource,
    execution_driven_forced,
    replay_source_for,
)
from repro.workloads.registry import load_program, reference_run

SCALE = 0.05
MEM = 8 * 1024 * 1024


@pytest.fixture()
def fresh_memo(monkeypatch):
    """Empty per-process trace memo, so store hits/misses are observable."""
    monkeypatch.setattr(capture_mod, "_memo", {})


def _program():
    return load_program("compress", SCALE)


def _trace():
    return capture_trace(_program(), MEM)


class TestCapture:
    def test_header_matches_reference_run(self):
        trace = _trace()
        count, out, code = reference_run("compress", SCALE)
        assert trace.count == count
        assert bytes(trace.output) == out
        assert trace.exit_code == code
        assert trace.fingerprint == program_fingerprint(_program())
        assert trace.mem_size == MEM

    def test_columns_are_dense(self):
        trace = _trace()
        assert len(trace.flags) == trace.count
        assert len(trace.aux) == trace.count

    def test_matches_rejects_other_program(self):
        trace = _trace()
        other = load_program("xlisp", SCALE)
        assert trace.matches(_program())
        assert not trace.matches(other)


class TestBoundTrace:
    def test_walk_derives_pcs(self):
        prog = _program()
        bound = _trace().bind(prog)
        assert bound.pcs[0] == prog.entry
        assert len(bound.pcs) == bound.trace.count
        last = bound.instrs[bound.trace.count - 1]
        assert last.op.kind == K_TRAP  # the exit trap ends every trace

    def test_window_plan_tracks_cwp(self):
        bound = _trace().bind(_program())
        plan = bound.window_plan(8)
        assert plan.valid
        assert len(plan.cwp) == bound.trace.count + 1
        assert plan.cwp[0] == 0
        # compress certainly calls functions: cwp must move at some point
        assert any(c != 0 for c in plan.cwp)

    def test_window_plan_memoized(self):
        bound = _trace().bind(_program())
        assert bound.window_plan(8) is bound.window_plan(8)
        assert bound.window_plan(4) is not bound.window_plan(8)


class TestStore:
    def test_workload_trace_writes_and_reloads(self, tmp_path, monkeypatch, fresh_memo):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        assert not trace_cached("compress", SCALE, False, True, MEM)
        trace = workload_trace("compress", SCALE, mem_size=MEM)
        assert trace is not None
        files = list(tmp_path.glob("*.trc"))
        assert len(files) == 1
        # a fresh memo must hit the disk store, not re-capture
        monkeypatch.setattr(capture_mod, "_memo", {})
        monkeypatch.setattr(
            capture_mod,
            "capture_trace",
            lambda *a, **k: pytest.fail("re-captured despite disk store"),
        )
        reloaded = workload_trace("compress", SCALE, mem_size=MEM)
        assert reloaded is not None
        assert reloaded.count == trace.count
        assert bytes(reloaded.flags) == bytes(trace.flags)
        assert list(reloaded.aux) == list(trace.aux)
        assert trace_cached("compress", SCALE, False, True, MEM)

    def test_capture_false_never_captures(self, tmp_path, monkeypatch, fresh_memo):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        assert workload_trace("compress", SCALE, mem_size=MEM, capture=False) is None
        assert not list(tmp_path.glob("*.trc"))

    def test_corrupt_store_file_degrades_to_miss(
        self, tmp_path, monkeypatch, fresh_memo
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        workload_trace("compress", SCALE, mem_size=MEM)
        (path,) = tmp_path.glob("*.trc")
        path.write_bytes(b"garbage" * 10)
        monkeypatch.setattr(capture_mod, "_memo", {})
        assert workload_trace("compress", SCALE, mem_size=MEM, capture=False) is None


class TestReplaySource:
    def test_replay_source_for_gates(self, monkeypatch):
        prog = _program()
        trace = _trace()
        cfg = MachineConfig.fig9()
        m = ScalarMachine(prog, cfg)
        assert replay_source_for(None, prog, m.rf, m.services, cfg) is None
        src = replay_source_for(trace, prog, m.rf, m.services, cfg)
        assert isinstance(src, ReplayTraceSource)
        # mem_size mismatch: the recorded stack layout would differ
        small = cfg.with_(mem_size=4 * 1024 * 1024)
        assert replay_source_for(trace, prog, m.rf, m.services, small) is None
        monkeypatch.setenv("REPRO_EXECUTION_DRIVEN", "1")
        assert execution_driven_forced()
        assert replay_source_for(trace, prog, m.rf, m.services, cfg) is None

    def test_desync_raises(self):
        prog = _program()
        bound = _trace().bind(prog)
        m = ScalarMachine(prog, MachineConfig.fig9())
        src = ReplayTraceSource(bound, m.rf, m.services)
        wrong = bound.instrs[1] if bound.instrs[1].addr != prog.entry else bound.instrs[2]
        with pytest.raises(TraceDesync):
            src.execute(wrong, m.primary.info)

    def test_machines_expose_replay_flag(self):
        prog, trace = _program(), _trace()
        cfg = MachineConfig.fig9()
        assert ScalarMachine(prog, cfg).source is None
        assert ScalarMachine(prog, cfg, trace=trace).source is not None
        assert DIFMachine(prog, cfg).replay is False
        assert DIFMachine(prog, cfg, trace=trace).replay is True


class TestTypedDifCounter:
    def test_dif_instructions_is_typed(self):
        m = DIFMachine(_program(), MachineConfig.fig9())
        st = m.run()
        assert st.dif_instructions > 0
        # the catch-all dict is gone: one canonical, typed counter set
        assert not hasattr(st, "extra")
        assert st.ref_instructions == st.primary_instructions + st.dif_instructions


class TestHarnessWiring:
    def test_run_workload_replays_and_matches_live(self, monkeypatch):
        cfg = MachineConfig.fig9()
        replayed = run_workload("compress", cfg, machine="dif", scale=SCALE)
        monkeypatch.setenv("REPRO_EXECUTION_DRIVEN", "1")
        live = run_workload("compress", cfg, machine="dif", scale=SCALE)
        assert replayed.stats == live.stats
        assert replayed.ref_instructions == live.ref_instructions

    def test_sweep_precaptures_once_and_is_execution_identical(
        self, tmp_path, monkeypatch, fresh_memo
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        cols = [("fig9", MachineConfig.fig9()), ("feasible", MachineConfig.feasible())]
        specs = [
            RunSpec(benchmark="compress", config=cfg, machine=m, scale=SCALE, meta={"col": label})
            for label, cfg in cols
            for m in ("dif", "scalar")
        ]
        run = run_sweep(specs, use_cache=False)
        # 4 cells sharing one (workload, scale): exactly one capture
        assert len(list(tmp_path.glob("*.trc"))) == 1
        monkeypatch.setenv("REPRO_EXECUTION_DRIVEN", "1")
        live = run_sweep(specs, use_cache=False)
        for a, b in zip(run.results, live.results):
            assert a.stats == b.stats
            assert a.cycles == b.cycles

    def test_dtsvliw_reuses_cached_header_but_never_captures(
        self, tmp_path, monkeypatch, fresh_memo
    ):
        monkeypatch.setenv("REPRO_TRACE_DIR", str(tmp_path))
        cfg = MachineConfig.fig9()
        run_workload("compress", cfg, machine="dtsvliw", scale=SCALE)
        assert not list(tmp_path.glob("*.trc"))  # header not worth a capture
        baseline = run_workload("compress", cfg, machine="scalar", scale=SCALE)
        assert len(list(tmp_path.glob("*.trc"))) == 1
        again = run_workload("compress", cfg, machine="dtsvliw", scale=SCALE)
        assert again.ref_instructions == baseline.ref_instructions
