"""Tests for the sweep/execution layer: declarative RunSpecs, pluggable
executors (serial vs process-pool parity), the persistent result cache,
and the canonical MachineConfig serialization it is keyed by."""

import logging
import pickle

import pytest

from repro.core.config import CacheConfig, MachineConfig
from repro.harness import runner
from repro.harness.executors import (
    ProcessPoolExecutor,
    SerialExecutor,
    env_jobs,
    get_executor,
)
from repro.harness.resultcache import ResultCache, code_version
from repro.harness.runner import RunResult, default_max_cycles, env_scale
from repro.harness.sweep import RunSpec, Sweep, run_sweep, simulate_spec
from repro.workloads import registry

SMALL = 0.08

PRESETS = [
    MachineConfig(),
    MachineConfig.paper_fixed(4, 4, test_mode=False),
    MachineConfig.paper_fixed(16, 16),
    MachineConfig.feasible(test_mode=False),
    MachineConfig.fig9(test_mode=False),
    MachineConfig.feasible(next_block_prediction=True),
    MachineConfig.paper_fixed(8, 8, int_renaming_limit=0, data_store_list=True),
]


def _spec(name="perl", cfg=None, **kw):
    cfg = cfg or MachineConfig.paper_fixed(4, 4, test_mode=False)
    kw.setdefault("scale", SMALL)
    return RunSpec(name, cfg, **kw)


class TestConfigSerialization:
    @pytest.mark.parametrize("cfg", PRESETS, ids=lambda c: c.config_key())
    def test_round_trip(self, cfg):
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_config_key_stable_and_distinct(self):
        a = MachineConfig.paper_fixed(8, 8, test_mode=False)
        b = MachineConfig.paper_fixed(8, 8, test_mode=False)
        assert a.config_key() == b.config_key()
        assert a.config_key() != a.with_(vliw_cache_assoc=2).config_key()

    def test_from_dict_rejects_unknown_fields(self):
        d = MachineConfig().to_dict()
        d["warp_drive"] = True
        with pytest.raises(ValueError, match="warp_drive"):
            MachineConfig.from_dict(d)

    def test_cache_config_round_trip(self):
        cc = CacheConfig(size=4096, line_size=64, assoc=2, miss_penalty=3)
        assert CacheConfig.from_dict(cc.to_dict()) == cc


class TestRunSpec:
    def test_hash_ignores_meta(self):
        a = _spec(meta={"col": "4x4"})
        b = _spec(meta={"col": "different"})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_tracks_config_and_scale(self):
        a = _spec()
        assert a.spec_hash() != _spec(scale=0.1).spec_hash()
        assert (
            a.spec_hash()
            != _spec(cfg=MachineConfig.paper_fixed(8, 4, test_mode=False)).spec_hash()
        )

    def test_resolved_pins_env_fields(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        spec = RunSpec("perl", MachineConfig())
        res = spec.resolved()
        assert res.scale == 0.5
        assert res.max_cycles == default_max_cycles()

    def test_round_trip(self):
        spec = _spec(machine="dif", hw_mul=True, optimize=False)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_spec_and_result_picklable(self):
        spec = _spec()
        assert pickle.loads(pickle.dumps(spec)) == spec
        res = simulate_spec(spec)
        res2 = pickle.loads(pickle.dumps(res))
        assert res2.ipc == res.ipc and res2.stats.cycles == res.stats.cycles


class TestProgramPickling:
    def test_program_round_trip_preserves_opcodes(self):
        program = registry.load_program("perl", SMALL)
        clone = pickle.loads(pickle.dumps(program))
        assert clone.text_words == program.text_words
        assert clone.entry == program.entry
        # Opcodes unpickle by registry lookup, keeping identity.
        for addr, instr in program.instrs.items():
            assert clone.instrs[addr].op is instr.op


class TestExecutors:
    def test_env_jobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert env_jobs(1) == 1
        monkeypatch.setenv("REPRO_JOBS", "4")
        assert env_jobs(1) == 4
        assert isinstance(get_executor(None), ProcessPoolExecutor)
        monkeypatch.setenv("REPRO_JOBS", "banana")
        assert env_jobs(1) == 1

    def test_get_executor_kinds(self):
        assert isinstance(get_executor(1), SerialExecutor)
        assert isinstance(get_executor(3), ProcessPoolExecutor)

    def test_parallel_matches_serial(self):
        """The acceptance bar: process-pool IPC tables are bit-identical
        to the serial run on two workloads."""
        columns = [
            ("4x4", MachineConfig.paper_fixed(4, 4, test_mode=False)),
            ("8x8", MachineConfig.paper_fixed(8, 8, test_mode=False)),
        ]
        sweep = Sweep.grid(["perl", "compress"], columns, scale=SMALL)
        serial = sweep.run(jobs=1, use_cache=False)
        parallel = sweep.run(jobs=2, use_cache=False)
        assert serial.table() == parallel.table()
        assert parallel.summary.executor == "process"
        assert parallel.summary.simulated == 4


class TestResultCache:
    def _run(self, tmp_path, specs, **kw):
        return run_sweep(specs, cache=ResultCache(str(tmp_path)), **kw)

    def test_hit_after_miss(self, tmp_path):
        specs = [_spec("perl"), _spec("xlisp")]
        cold = self._run(tmp_path, specs)
        assert (cold.summary.simulated, cold.summary.cached) == (2, 0)
        warm = self._run(tmp_path, specs)
        assert (warm.summary.simulated, warm.summary.cached) == (0, 2)
        assert [r.ipc for r in warm.results] == [r.ipc for r in cold.results]
        assert [r.stats.cycles for r in warm.results] == [
            r.stats.cycles for r in cold.results
        ]

    def test_config_change_invalidates(self, tmp_path):
        self._run(tmp_path, [_spec()])
        changed = _spec(cfg=MachineConfig.paper_fixed(4, 8, test_mode=False))
        run = self._run(tmp_path, [changed])
        assert run.summary.simulated == 1

    def test_code_version_invalidates(self, tmp_path, monkeypatch):
        specs = [_spec()]
        self._run(tmp_path, specs)
        monkeypatch.setattr(
            "repro.harness.resultcache._code_version", "deadbeefdeadbeef"
        )
        run = self._run(tmp_path, specs)
        assert run.summary.simulated == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        specs = [_spec()]
        self._run(tmp_path, specs)
        for path in tmp_path.glob("*.json"):
            path.write_text("{not json")
        run = self._run(tmp_path, specs)
        assert run.summary.simulated == 1

    def test_use_cache_false_skips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        run_sweep([_spec()], use_cache=True)
        run = run_sweep([_spec()], use_cache=False)
        assert run.summary.simulated == 1

    def test_code_version_is_stable(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16

    def test_synth_cells_batch_and_cache_like_fixed_workloads(self, tmp_path):
        """synth:<hash> names are first-class sweep citizens: the family
        batcher groups them (their RunSpec carries no inline source) and
        the result cache replays them with the usual provenance
        counters; the generator's code is inside the cached
        code-version fingerprint, so hits are trustworthy."""
        from repro.synth import SynthSpec, register_spec

        name = register_spec(SynthSpec(seed=31, while_loops=True))
        specs = [
            RunSpec(
                name,
                MachineConfig.paper_fixed(*geom, test_mode=False),
                scale=1.0,
            )
            for geom in [(4, 4), (8, 8)]
        ]
        cold = self._run(tmp_path, specs)
        assert (cold.summary.simulated, cold.summary.cached) == (2, 0)
        assert cold.summary.batched == 2  # one family, shared trace
        warm = self._run(tmp_path, specs)
        assert (warm.summary.simulated, warm.summary.cached) == (0, 2)
        assert [r.stats for r in warm.results] == [
            r.stats for r in cold.results
        ]

    def test_synth_resolution_survives_worker_processes(self, tmp_path):
        """Parallel sweeps resolve synth: names from the on-disk spec
        store alone -- workers never saw the registering process's
        memo."""
        from repro.synth import SynthSpec, register_spec

        name = register_spec(SynthSpec(seed=32))
        spec = RunSpec(
            name,
            MachineConfig.paper_fixed(4, 4, test_mode=False),
            scale=1.0,
        )
        run = run_sweep(
            [spec], jobs=2, use_cache=False, batch=False,
            executor=ProcessPoolExecutor(2),
        )
        assert run.summary.executor == "process"
        assert run.results[0].cycles > 0

    def test_fingerprint_ignores_artifacts(self, tmp_path):
        """Producing results must never invalidate the cache holding them:
        results/, __pycache__/ and non-*.py files are outside the
        source-tree fingerprint."""
        from repro.harness.resultcache import _compute_code_version

        (tmp_path / "sim.py").write_text("x = 1\n")
        base = _compute_code_version(tmp_path)
        (tmp_path / "results" / ".cache").mkdir(parents=True)
        (tmp_path / "results" / ".cache" / "gen.py").write_text("artifact\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "sim.py").write_text("stale\n")
        (tmp_path / "BENCH_sweep.json").write_text("{}")
        assert _compute_code_version(tmp_path) == base
        (tmp_path / "sim.py").write_text("x = 2\n")
        assert _compute_code_version(tmp_path) != base


class TestRunnerSatellites:
    def test_env_scale_forwards_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert env_scale(0.3) == 0.3

    def test_malformed_scale_warns_once(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SCALE", "not-a-number")
        monkeypatch.setattr(runner, "_warned_env", set())
        with caplog.at_level(logging.WARNING, logger="repro.harness.runner"):
            assert env_scale(0.7) == 0.7
            assert env_scale(0.7) == 0.7
        warnings = [r for r in caplog.records if "REPRO_SCALE" in r.getMessage()]
        assert len(warnings) == 1

    def test_max_cycles_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_CYCLES", "12345")
        assert default_max_cycles() == 12345
        monkeypatch.setenv("REPRO_MAX_CYCLES", "garbage")
        assert default_max_cycles() == runner.DEFAULT_MAX_CYCLES

    def test_env_flag_recognized_values(self, monkeypatch):
        from repro.harness.runner import env_flag

        for raw, want in [
            ("1", True), ("true", True), ("YES", True), ("On", True),
            ("0", False), ("false", False), ("no", False), ("off", False),
            ("", False),
        ]:
            monkeypatch.setenv("REPRO_NO_VECTOR", raw)
            assert env_flag("REPRO_NO_VECTOR") is want, raw
        monkeypatch.delenv("REPRO_NO_VECTOR")
        assert env_flag("REPRO_NO_VECTOR") is False
        assert env_flag("REPRO_NO_VECTOR", default=True) is True

    def test_env_flag_malformed_warns_once_and_defaults(
        self, monkeypatch, caplog
    ):
        from repro.harness.runner import env_flag

        monkeypatch.setenv("REPRO_NO_VECTOR", "banana")
        monkeypatch.setattr(runner, "_warned_env", set())
        with caplog.at_level(logging.WARNING, logger="repro.harness.runner"):
            assert env_flag("REPRO_NO_VECTOR") is False
            assert env_flag("REPRO_NO_VECTOR", default=True) is True
        warnings = [
            r for r in caplog.records if "REPRO_NO_VECTOR" in r.getMessage()
        ]
        assert len(warnings) == 1

    def test_env_helpers_share_warn_once_policy(self, monkeypatch, caplog):
        """REPRO_JOBS and the boolean knobs route through the same
        env_value helper: malformed values warn once each, per process."""
        monkeypatch.setenv("REPRO_JOBS", "many")
        monkeypatch.setenv("REPRO_NO_CACHE", "maybe")
        monkeypatch.setattr(runner, "_warned_env", set())
        from repro.harness.resultcache import cache_enabled_default

        with caplog.at_level(logging.WARNING, logger="repro.harness.runner"):
            assert env_jobs(3) == 3
            assert env_jobs(3) == 3
            assert cache_enabled_default() is True
            assert cache_enabled_default() is True
        messages = [r.getMessage() for r in caplog.records]
        assert sum("REPRO_JOBS" in m for m in messages) == 1
        assert sum("REPRO_NO_CACHE" in m for m in messages) == 1

    def test_timeout_error_names_cell_and_limit(self):
        from repro.core.errors import SimError

        with pytest.raises(SimError, match=r"max_cycles=50"):
            runner.run_workload(
                "perl",
                MachineConfig.paper_fixed(4, 4, test_mode=False),
                scale=SMALL,
                max_cycles=50,
            )


class TestInlineSource:
    SRC = "int main() { int i; int s = 0; for (i = 0; i < 20; i++) s = s + i; print_int(s); return 0; }"

    def test_inline_spec_runs_all_machines(self):
        cfg = MachineConfig.fig9(test_mode=False)
        specs = [
            RunSpec("inline", cfg, machine=kind, source=self.SRC)
            for kind in ("scalar", "dtsvliw", "dif")
        ]
        run = run_sweep(specs, use_cache=False)
        assert all(r.cycles > 0 for r in run.results)
        counts = {r.ref_instructions for r in run.results}
        assert len(counts) == 1  # one shared reference count

    def test_inline_source_changes_hash(self):
        cfg = MachineConfig.fig9(test_mode=False)
        a = RunSpec("inline", cfg, source=self.SRC, scale=1.0)
        b = RunSpec("inline", cfg, source=self.SRC + " ", scale=1.0)
        assert a.spec_hash() != b.spec_hash()
