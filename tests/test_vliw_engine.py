"""Targeted tests of VLIW Engine mechanisms: speculation and deferred
exceptions, copy commits, branch-tag annulment, the data-store-list scheme
and the window residency machinery -- all exercised through full machine
runs with lockstep verification plus direct inspection of cached blocks."""

import pytest

from repro.asm.assembler import assemble
from repro.core.config import MachineConfig
from repro.core.machine import DTSVLIW
from repro.core.reference import ReferenceMachine
from repro.lang import compile_minicc


def run_machine(src, cfg=None, asm=False, max_cycles=50_000_000):
    program = assemble(src if asm else compile_minicc(src))
    ref = ReferenceMachine(program)
    ref.run()
    m = DTSVLIW(program, cfg or MachineConfig.paper_fixed(8, 8))
    stats = m.run(max_cycles=max_cycles)
    assert m.exit_code == ref.exit_code
    assert m.output == ref.output
    return m, stats


def cached_blocks(machine):
    for s in machine.vcache.sets:
        for _tag, block in s:
            yield block


class TestSpeculation:
    def test_ops_speculate_past_branches_with_copies(self):
        """A loop whose body ops migrate above the back-branch must show
        COPY instructions in the cached blocks."""
        m, stats = run_machine(
            """
            int a[64];
            int main() {
              int i; int s = 0;
              for (i = 0; i < 64; i++) s += a[i] + i;
              return s & 0xff;
            }
            """
        )
        assert stats.splits > 0
        copies = sum(
            1
            for b in cached_blocks(m)
            for li in b.lis
            for op in li.installed_ops()
            if op.is_copy
        )
        assert copies > 0

    def test_annulled_speculation_counted(self):
        # a data-dependent branch flips direction -> replays mispredict and
        # annul tagged ops
        m, stats = run_machine(
            """
            int main() {
              int i; int a = 0; int b = 0;
              for (i = 0; i < 200; i++) {
                if (i & 1) a += i; else b += i;
              }
              return (a - b) & 0xff;
            }
            """
        )
        assert stats.mispredicts > 0
        assert stats.speculative_annulled > 0

    def test_deferred_exception_vanishes_when_annulled(self):
        """A division guarded by a zero check: the div may be hoisted
        speculatively above the guard; when the guard fails the deferred
        fault must vanish (no crash, correct result)."""
        m, stats = run_machine(
            """
            int data[16];
            int main() {
              int i; int s = 0;
              for (i = 0; i < 16; i++) data[i] = i & 3;
              for (i = 0; i < 16; i++) {
                if (data[i] != 0) s += 100 / data[i];
              }
              return s & 0xff;
            }
            """
        )
        # correctness asserted inside run_machine; the program finished


class TestBranchTags:
    def test_multiple_branches_share_long_instructions(self):
        """Dense branch sequences produce LIs with >= 2 control transfers;
        the tag system must still commit the right subset."""
        m, stats = run_machine(
            """
            int main() {
              int i; int n = 0;
              for (i = 0; i < 150; i++) {
                if (i & 1) n += 1;
                if (i & 2) n += 2;
                if (i & 4) n += 4;
              }
              return n & 0xff;
            }
            """
        )
        multi = sum(
            1
            for b in cached_blocks(m)
            for li in b.lis
            if li.num_branches >= 2
        )
        # dense branches may or may not share an LI depending on cc chains;
        # the run's correctness is the real assertion here
        assert stats.mispredicts >= 0 and multi >= 0


class TestDataStoreList:
    CFG = None

    def _cfg(self):
        return MachineConfig.paper_fixed(8, 8, data_store_list=True)

    def test_store_heavy_program(self):
        run_machine(
            """
            int a[128];
            int main() {
              int i;
              for (i = 0; i < 128; i++) a[i] = i * 7;
              for (i = 0; i < 128; i++) a[i] = a[i] + a[(i + 1) & 127];
              int s = 0;
              for (i = 0; i < 128; i++) s += a[i];
              return s & 0xff;
            }
            """,
            cfg=self._cfg(),
        )

    def test_byte_stores_and_loads(self):
        run_machine(
            """
            char buf[64];
            int main() {
              int i;
              for (i = 0; i < 64; i++) buf[i] = i * 3;
              int s = 0;
              for (i = 0; i < 64; i++) s += buf[i];
              return s & 0xff;
            }
            """,
            cfg=self._cfg(),
        )

    def test_load_forwards_from_buffered_store(self):
        # store then load of the same address inside one block: the load
        # must see the buffered value
        run_machine(
            """
            int cell[2];
            int main() {
              int i; int s = 0;
              for (i = 0; i < 100; i++) {
                cell[0] = i;
                s += cell[0];     /* must read i, not stale memory */
              }
              return s & 0xff;
            }
            """,
            cfg=self._cfg(),
        )

    def test_rollback_discards_buffered_stores(self):
        # deep recursion forces exceptions/rollbacks with the strict
        # window option; buffered stores of rolled-back blocks must vanish
        cfg = MachineConfig.paper_fixed(
            8, 8, data_store_list=True, vliw_window_spill_inline=False
        )
        run_machine(
            """
            int depth(int n) { if (n == 0) return 0; return 1 + depth(n - 1); }
            int main() { return depth(30) & 0xff; }
            """,
            cfg=cfg,
        )


class TestWindowResidency:
    def test_blocks_record_requirements(self):
        m, stats = run_machine(
            """
            int add3(int a) { return a + 3; }
            int main() {
              int i; int s = 0;
              for (i = 0; i < 60; i++) s += add3(i);
              return s & 0xff;
            }
            """
        )
        blocks = list(cached_blocks(m))
        # blocks spanning call/return boundaries record window needs
        # (descending blocks need free windows, ascending ones residents)
        assert any(
            b.req_cansave > 0 or b.req_canrestore > 0 for b in blocks
        )

    def test_block_reentered_at_shallower_depth(self):
        """Regression: a block built while ancestor frames were spilled can
        be re-entered in a context where those frames never existed (its
        recorded return mispredicts anyway); the machine must invalidate
        and rebuild instead of crashing on an empty spill stack."""
        cfg = MachineConfig.paper_fixed(8, 8, nwindows=4)
        run_machine(
            """
            int down(int n) { if (n == 0) return 1; return down(n - 1) + 1; }
            int main() {
              int s = 0; int i;
              for (i = 0; i < 4; i++) {
                s += down(9);    /* unwind blocks built with spilled frames */
                s += down(1);    /* shallow re-entry */
              }
              return s & 0xff;
            }
            """,
            cfg=cfg,
        )

    def test_deep_recursion_with_tiny_window_file(self):
        cfg = MachineConfig.paper_fixed(8, 8, nwindows=4)
        m, stats = run_machine(
            """
            int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); }
            int main() { return fib(11) & 0xff; }
            """,
            cfg=cfg,
        )
        assert stats.spill_cycles > 0


class TestRenamingChains:
    def test_double_split_blocks_execute(self):
        """Tight loops force repeated renaming of the same register
        (rename-of-rename chains with irr copies)."""
        m, stats = run_machine(
            """
            int main() {
              int x = 1; int i;
              for (i = 0; i < 300; i++) x = (x << 1) ^ (x >> 3) ^ i;
              return x & 0xff;
            }
            """,
            cfg=MachineConfig.paper_fixed(4, 16),
        )
        irr_copies = sum(
            1
            for b in cached_blocks(m)
            for li in b.lis
            for op in li.installed_ops()
            if op.is_copy and any(a[0] == "irr" for a in op.copy_actions)
        )
        assert stats.splits > 0
        assert irr_copies >= 0  # chains are legal; correctness is the oracle
