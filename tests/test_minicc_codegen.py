"""Additional minicc code-generation coverage: edge cases in expression
evaluation, spilling, calling convention details and emitted code quality."""

import pytest

from repro.asm.assembler import assemble
from repro.core.errors import SimError
from repro.core.reference import ReferenceMachine
from repro.lang import CompilerOptions, compile_minicc


def run_c(source, **opts):
    program = assemble(compile_minicc(source, CompilerOptions(**opts)))
    m = ReferenceMachine(program)
    m.run(max_instructions=20_000_000)
    return m


class TestExpressionDepth:
    def test_deep_expression_spills_temps(self):
        # deeper than the register pool: forces temp spilling to the frame
        e = " + ".join("(a%d * 2 + 1)" % i for i in range(12))
        decls = "".join("int a%d = %d; " % (i, i) for i in range(12))
        m = run_c("int main() { %s return (%s) & 0xff; }" % (decls, e))
        expected = sum(i * 2 + 1 for i in range(12)) & 0xFF
        assert m.exit_code == expected

    def test_deep_nesting_parens(self):
        m = run_c("int main() { return ((((((1+2)*3)+4)*5)+6)*7) & 0xff; }")
        assert m.exit_code == (((((1 + 2) * 3) + 4) * 5 + 6) * 7) & 0xFF

    def test_call_args_with_nested_calls(self):
        m = run_c(
            """
            int f(int a, int b, int c) { return a * 100 + b * 10 + c; }
            int g(int x) { return x + 1; }
            int main() { return f(g(0), g(g(0)), g(g(g(0)))) % 256; }
            """
        )
        assert m.exit_code == (1 * 100 + 2 * 10 + 3) % 256

    def test_temps_live_across_multiple_calls(self):
        m = run_c(
            """
            int id(int x) { return x; }
            int main() {
              int a = 3;
              return (a + id(4)) * (a + id(5)) - id(a);  /* 7*8-3 */
            }
            """
        )
        assert m.exit_code == 53


class TestLocalsAllocation:
    def test_more_than_eight_scalar_locals(self):
        decls = "".join("int v%d = %d; " % (i, i) for i in range(14))
        total = "+".join("v%d" % i for i in range(14))
        m = run_c("int main() { %s return (%s); }" % (decls, total))
        assert m.exit_code == sum(range(14))

    def test_address_taken_local_goes_to_stack(self):
        m = run_c(
            """
            int deref(int *p) { return *p; }
            int main() {
              int x = 7;
              int y = 8;      /* stays in a register */
              return deref(&x) * 10 + y;
            }
            """
        )
        assert m.exit_code == 78

    def test_address_of_param_copied_to_stack(self):
        m = run_c(
            """
            int bump(int *p) { *p += 1; return *p; }
            int twice(int v) { bump(&v); bump(&v); return v; }
            int main() { return twice(40); }
            """
        )
        assert m.exit_code == 42

    def test_local_array_on_stack(self):
        m = run_c(
            """
            int main() {
              int grid[6];
              int i;
              for (i = 0; i < 6; i++) grid[i] = i * i;
              int *p = grid + 2;
              return *p + p[1];   /* 4 + 9 */
            }
            """
        )
        assert m.exit_code == 13


class TestEmittedCodeQuality:
    def test_small_constants_use_mov(self):
        asm = compile_minicc("int main() { return 5; }")
        assert "mov 5" in asm
        assert "set " not in asm.split(".data")[0].replace("set 0x", "KEEP")

    def test_large_constants_use_set(self):
        asm = compile_minicc("int main() { int x = 1; return x & 0x123456; }")
        assert "set 0x123456" in asm

    def test_runtime_emitted_only_when_needed(self):
        no_mul = compile_minicc("int main() { return 1 + 2; }")
        assert "__mulsi3" not in no_mul
        with_mul = compile_minicc("int main() { int x = 3; return x * x; }")
        assert "__mulsi3" in with_mul
        with_div = compile_minicc("int main() { int x = 9; return x / 3; }")
        assert "__divsi3" in with_div and "__udivmod" in with_div

    def test_string_literals_deduplicated(self):
        asm = compile_minicc(
            """
            void p(char *s) { while (*s) { putchar(*s); s++; } }
            int main() { p("hi"); p("hi"); p("ho"); return 0; }
            """
        )
        assert asm.count('.asciz "hi"') == 1
        assert asm.count('.asciz "ho"') == 1

    def test_every_function_gets_save_restore(self):
        asm = compile_minicc(
            "int f(int x) { return x; } int main() { return f(1); }"
        )
        text = asm.split(".data")[0]
        assert text.count("save %sp") == 2
        assert text.count("restore %i0, 0, %o0") == 2


class TestCodegenDiagnostics:
    def test_float_param_rejected(self):
        with pytest.raises(SimError):
            compile_minicc("int f(float x) { return 0; } int main() { return 0; }")

    def test_address_of_register_param_ok_via_copy(self):
        # taking &param is supported by copying it to the stack
        m = run_c(
            """
            int set9(int *p) { *p = 9; return 0; }
            int f(int a) { set9(&a); return a; }
            int main() { return f(1); }
            """
        )
        assert m.exit_code == 9

    def test_adding_two_pointers_rejected(self):
        with pytest.raises(SimError):
            compile_minicc(
                "int a[2]; int main() { int *p = a; int *q = a; return (int)(p + q); }"
            )

    def test_calling_with_wrong_arity_rejected(self):
        with pytest.raises(SimError):
            compile_minicc(
                "int f(int a, int b) { return a; } int main() { return f(1); }"
            )

    def test_duplicate_global_rejected(self):
        with pytest.raises(SimError):
            compile_minicc("int x; int x; int main() { return 0; }")


class TestCharSemantics:
    def test_char_is_unsigned(self):
        m = run_c(
            """
            char c[1];
            int main() { c[0] = 255; return c[0] > 0 ? 1 : 0; }
            """
        )
        assert m.exit_code == 1

    def test_char_cast_truncates(self):
        m = run_c("int main() { int x = 0x1ff; return (char)x; }")
        assert m.exit_code == 0xFF

    def test_char_pointer_arith_is_byte_granular(self):
        m = run_c(
            """
            char s[8];
            int main() {
              char *p = s;
              *p = 1; p++; *p = 2; p++; *p = 3;
              return s[0] * 100 + s[1] * 10 + s[2];
            }
            """
        )
        assert m.exit_code == 123
