"""Integration tests for the full DTSVLIW machine.

Every test runs with the paper's *test mode* enabled: the lockstep
reference machine compares architectural state after each Primary
instruction and after each VLIW block, and the final memory image and
program output are compared byte for byte.
"""

import pytest

from repro.asm.assembler import assemble
from repro.core.config import MachineConfig
from repro.core.errors import SimError
from repro.core.machine import DTSVLIW
from repro.core.reference import ReferenceMachine
from repro.lang import CompilerOptions, compile_minicc


def run_both(source, cfg=None, max_cycles=50_000_000, asm=False, hw_mul=False):
    program = assemble(
        source if asm else compile_minicc(source, CompilerOptions(hw_mul=hw_mul))
    )
    ref = ReferenceMachine(program)
    ref.run()
    m = DTSVLIW(program, cfg or MachineConfig.paper_fixed(8, 8))
    stats = m.run(max_cycles=max_cycles)
    assert m.exit_code == ref.exit_code
    assert m.output == ref.output
    return m, ref, stats


PROGRAMS = {
    "loop_sum": "int main(){int i;int s=0;for(i=0;i<50;i++)s+=i;return s%251;}",
    "fib": "int fib(int n){if(n<2)return n;return fib(n-1)+fib(n-2);}"
    "int main(){return fib(13) & 0xff;}",
    "sieve": """int flags[80];
int main(){int i;int j;int c=0;
for(i=2;i<80;i++)flags[i]=1;
for(i=2;i<80;i++){if(flags[i]){c++;for(j=i+i;j<80;j+=i)flags[j]=0;}}
return c;}""",
    "string_hash": """char t[] = "dynamically trace scheduled vliw";
int main(){int h=5381;char*p=t;while(*p){h=h*33+*p;p++;}return h&0xff;}""",
    "division": "int main(){int a=0;int i;for(i=1;i<30;i++)a+=(999/i)%5;return a&0xff;}",
    "deep_recursion": "int d(int n){if(n==0)return 0;return 1+d(n-1);}"
    "int main(){return d(40) & 0xff;}",
    "floats": """int main(){float a=1.25;float s=0.0;int i;
for(i=0;i<15;i++){s=s+a;a=a*1.5;}return ((int)s)&0xff;}""",
    "pointer_chase": """int nodes[64];
int main(){int i;
for(i=0;i<31;i++)nodes[i*2]=(i+1)*2;   /* next "pointers" */
for(i=0;i<32;i++)nodes[i*2+1]=i;        /* payloads */
int p=0;int s=0;
while(nodes[p]){s+=nodes[p+1];p=nodes[p];}
return s&0xff;}""",
}

GEOMETRIES = [(2, 2), (4, 4), (8, 4), (4, 8), (8, 8), (16, 16)]


class TestLockstepMatrix:
    @pytest.mark.parametrize("name", sorted(PROGRAMS))
    @pytest.mark.parametrize("geom", GEOMETRIES, ids=lambda g: "%dx%d" % g)
    def test_program_geometry(self, name, geom):
        run_both(PROGRAMS[name], MachineConfig.paper_fixed(*geom))


class TestConfigurations:
    def test_feasible_machine(self):
        m, ref, stats = run_both(PROGRAMS["sieve"], MachineConfig.feasible())
        assert stats.ipc > 0.5

    def test_fig9_machine(self):
        run_both(PROGRAMS["fib"], MachineConfig.fig9())

    def test_small_vliw_cache_still_correct(self):
        cfg = MachineConfig.paper_fixed(8, 8)
        cfg.vliw_cache_bytes = 2 * cfg.block_bytes  # pathologically small
        run_both(PROGRAMS["sieve"], cfg)

    def test_realistic_caches(self):
        from repro.core.config import CacheConfig

        cfg = MachineConfig.paper_fixed(8, 8)
        cfg.icache = CacheConfig(size=1024, line_size=32, assoc=1, miss_penalty=8)
        cfg.dcache = CacheConfig(size=1024, line_size=32, assoc=1, miss_penalty=8)
        m, ref, stats = run_both(PROGRAMS["sieve"], cfg)
        assert stats.icache_stall_cycles > 0

    def test_data_store_list_scheme(self):
        cfg = MachineConfig.paper_fixed(8, 8, data_store_list=True)
        run_both(PROGRAMS["sieve"], cfg)
        run_both(PROGRAMS["fib"], cfg)

    def test_hw_mul_multicycle(self):
        cfg = MachineConfig.paper_fixed(8, 8)
        run_both(PROGRAMS["division"], cfg, hw_mul=True)

    def test_multicycle_disabled(self):
        cfg = MachineConfig.paper_fixed(8, 8, multicycle=False)
        run_both(PROGRAMS["division"], cfg, hw_mul=True)

    def test_strict_window_exceptions(self):
        # With lazy inline spill disabled, spilling saves become
        # non-schedulable in the Primary Processor; the eager block-entry
        # fills (required for correctness of hoisted window reads) still
        # run, so execution stays exact and spill work is still charged.
        cfg = MachineConfig.paper_fixed(8, 8, vliw_window_spill_inline=False)
        m, ref, stats = run_both(PROGRAMS["deep_recursion"], cfg)
        assert stats.spill_cycles > 0 or stats.blocks_flushed_nonsched > 0

    def test_next_block_prediction_correct_and_not_slower(self):
        cfg0 = MachineConfig.feasible()
        cfg1 = MachineConfig.feasible(next_block_prediction=True)
        _, _, s0 = run_both(PROGRAMS["sieve"], cfg0)
        m, ref, s1 = run_both(PROGRAMS["sieve"], cfg1)
        assert s1.cycles <= s0.cycles
        assert s1.next_block_pred_hits > 0

    def test_renaming_limits_respected(self):
        cfg = MachineConfig.paper_fixed(
            8, 8, int_renaming_limit=2, cc_renaming_limit=1
        )
        m, ref, stats = run_both(PROGRAMS["fib"], cfg)
        assert stats.max_int_renaming <= 2
        assert stats.max_cc_renaming <= 1


ALIAS_ASM = """
        .text
_start: set idx1, %l0
        set idx2, %l1
        set buf, %l2
        mov 12, %l3
        mov 0, %l5
loop:   ld [%l0], %g1
        ld [%l1], %g2
        sll %g1, 2, %g1
        sll %g2, 2, %g2
        add %l2, %g1, %g1
        add %l2, %g2, %g2
        mov 7, %g3
        st %g3, [%g1]
        ld [%g2], %g4
        add %l5, %g4, %l5
        add %l0, 4, %l0
        add %l1, 4, %l1
        subcc %l3, 1, %l3
        bne loop
        mov %l5, %o0
        ta 0
        .data
idx1:   .word 0, 1, 2, 3, 4, 5, 6, 6, 6, 6, 6, 6
idx2:   .word 1, 2, 3, 4, 5, 6, 6, 6, 6, 6, 6, 6
buf:    .word 10, 20, 30, 40, 50, 60, 70, 80
"""


class TestAliasing:
    def test_aliasing_detected_and_recovered(self):
        m, ref, stats = run_both(ALIAS_ASM, MachineConfig.paper_fixed(8, 8), asm=True)
        assert stats.aliasing_exceptions >= 1
        assert stats.block_invalidations >= 1

    def test_rescheduled_block_keeps_memory_order(self):
        m, ref, stats = run_both(ALIAS_ASM, MachineConfig.paper_fixed(8, 8), asm=True)
        # the offending block address is remembered for ordered rescheduling
        assert m.scheduler.alias_addrs

    def test_aliasing_with_data_store_list(self):
        cfg = MachineConfig.paper_fixed(8, 8, data_store_list=True)
        m, ref, stats = run_both(ALIAS_ASM, cfg, asm=True)
        assert stats.aliasing_exceptions >= 1


class TestRegisterWindows:
    def test_window_spills_during_vliw(self):
        m, ref, stats = run_both(
            PROGRAMS["deep_recursion"], MachineConfig.paper_fixed(8, 8)
        )
        assert stats.spill_cycles > 0

    def test_block_reentry_at_different_depth(self):
        # one function called from two different call depths: the cached
        # blocks must resolve windows relative to the entry cwp
        src = """
        int leaf(int x) { return x * 2 + 1; }
        int mid(int x) { return leaf(x) + 1; }
        int main() {
          int s = 0; int i;
          for (i = 0; i < 10; i++) { s += leaf(i); s += mid(i); }
          return s & 0xff;
        }
        """
        run_both(src, MachineConfig.paper_fixed(8, 8))

    def test_more_windows(self):
        cfg = MachineConfig.paper_fixed(8, 8, nwindows=16)
        m, ref, stats = run_both(PROGRAMS["fib"], cfg)


class TestStatistics:
    def test_cycle_accounting_consistent(self):
        m, ref, stats = run_both(PROGRAMS["sieve"])
        assert stats.cycles == (
            stats.primary_cycles + stats.vliw_cycles + stats.switch_cycles
        )
        assert stats.ref_instructions == ref.instret
        assert 0 < stats.ipc < m.cfg.block_width + 1

    def test_vliw_fraction_high_for_loops(self):
        m, ref, stats = run_both(PROGRAMS["sieve"])
        assert stats.vliw_cycle_fraction > 0.7

    def test_slot_occupancy_bounds(self):
        m, ref, stats = run_both(PROGRAMS["sieve"])
        assert 0 < stats.slot_occupancy <= 1

    def test_blocks_flushed_reasons_sum(self):
        m, ref, stats = run_both(PROGRAMS["fib"])
        assert (
            stats.blocks_flushed_full
            + stats.blocks_flushed_hit
            + stats.blocks_flushed_nonsched
            <= stats.blocks_flushed
        )

    def test_wider_blocks_do_not_reduce_ipc_much(self):
        # block size is not strictly monotone per program (longer traces
        # expose more mid-block exits), but it must stay in the same band
        _, _, s44 = run_both(PROGRAMS["sieve"], MachineConfig.paper_fixed(4, 4))
        _, _, s88 = run_both(PROGRAMS["sieve"], MachineConfig.paper_fixed(8, 8))
        assert s88.ipc >= 0.7 * s44.ipc

    def test_scalar_slower_than_vliw(self):
        """1x1 geometry (one op per LI) must not beat a wide machine."""
        _, _, narrow = run_both(PROGRAMS["sieve"], MachineConfig.paper_fixed(1, 4))
        _, _, wide = run_both(PROGRAMS["sieve"], MachineConfig.paper_fixed(8, 8))
        assert wide.ipc > narrow.ipc


class TestRunawayProtection:
    def test_max_cycles_raises(self):
        src = """
        .text
_start: ba _start
"""
        program = assemble(src)
        m = DTSVLIW(program, MachineConfig.paper_fixed(4, 4))
        with pytest.raises(SimError):
            m.run(max_cycles=5000)
