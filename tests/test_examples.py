"""The example scripts must keep running end to end (they are the
documentation's executable half)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "IPC" in out
    assert "18" in out  # 18 primes below 64


def test_figure2_scheduling():
    out = run_example("figure2_scheduling.py")
    assert "block flushed to the VLIW Cache" in out
    assert "COPY" in out  # the paper's split example
    assert "sum of vector prefix): 36" in out


def test_explore_geometry():
    out = run_example("explore_geometry.py", "vortex", "0.05")
    assert "16x16" in out and "ipc" in out


def test_compare_machines():
    out = run_example("compare_machines.py")
    assert "dtsvliw" in out and "dif" in out and "scalar" in out
    assert "diverged" not in out
