"""Differential verification of compiled primary-mode scheduling.

:mod:`repro.isa.blockcompile`'s ``MODE_PM`` synthesizes, per superblock,
a specialized function that drives Scheduler Unit placement and renaming
with the per-instruction ``SchedOp`` construction baked in at compile
time.  The interpreted primary-mode walk stays in the machine as the
oracle and the fallback (non-leader targets, mid-block flush residue,
cycle-budget edges), so the compiled path's claim is *bit identity*, not
similarity.  This suite holds it to that claim with a four-way matrix --
interpreted vs compiled crossed with scheduling-memo off vs warm from
the on-disk store -- over randomized minicc programs, every registry
workload, directed jumps into block interiors, and the
``REPRO_NO_PRIMARY_COMPILE`` escape hatch.
"""

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings

from repro import compile_and_load
from repro.asm.assembler import assemble
from repro.core.config import MachineConfig
from repro.core.machine import DTSVLIW
from repro.isa.blockcompile import PM_STATS, pm_compile_disabled, pm_sig
from repro.scheduler import memostore
from repro.scheduler.memo import ScheduleMemo
from repro.trace.capture import capture_trace, workload_trace
from repro.workloads import registry

from tests.test_fuzz_lockstep import program_source

SCALE = 0.05
MEM = 8 * 1024 * 1024


@contextmanager
def _env(**kw):
    """Set/unset environment variables for the duration (hypothesis
    rules out function-scoped monkeypatch)."""
    old = {k: os.environ.get(k) for k in kw}
    try:
        for k, v in kw.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
        yield
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _cfg(**kw):
    return MachineConfig.paper_fixed().with_(
        test_mode=False, mem_size=MEM, **kw
    )


def _run(program, trace, cfg, compiled, memo=None):
    with _env(REPRO_NO_PRIMARY_COMPILE=None if compiled else "1"):
        m = DTSVLIW(program, cfg, trace=trace, sched_memo=memo)
        assert m.replay
        assert (m._pm_table is not None) == compiled
        m.run()
    return m


def _assert_same(a, b, what):
    assert a.stats == b.stats, what
    assert a.output == b.output, what
    assert a.exit_code == b.exit_code, what
    assert a.pc == b.pc, what


def four_way(program, trace, cfg, fkey, store):
    """Interpreted vs compiled x memo off vs warm on-disk memo: all four
    cells must be bit-identical, and the warm cells must re-schedule
    nothing the priming run already stored."""
    prime = ScheduleMemo()
    assert memostore.load_family_memo(prime, fkey, program, store=store) == 0
    base = _run(program, trace, cfg, compiled=True, memo=prime)
    flushed = memostore.flush_family_memo(prime, fkey, store=store)
    assert flushed == (prime.stored > 0)

    cells = {}
    for compiled in (False, True):
        for warm in (False, True):
            memo = None
            if warm:
                memo = ScheduleMemo()
                loaded = memostore.load_family_memo(
                    memo, fkey, program, store=store
                )
                assert loaded == prime.stored
            m = _run(program, trace, cfg, compiled, memo)
            _assert_same(m, base, (compiled, warm))
            cells[(compiled, warm)] = memo
    for (compiled, warm), memo in cells.items():
        if warm and prime.stored:
            # every segment came off the disk: zero re-schedules
            assert memo.stored == 0, (compiled, warm)
            assert memo.applied >= prime.stored, (compiled, warm)
    return base


class TestDirected:
    def test_loop_program_four_way(self, tmp_path):
        program = compile_and_load(
            """
            int data[32];
            int main() {
              int i; int acc = 0;
              for (i = 0; i < 32; i++) data[i] = i * 3 - 40;
              for (i = 0; i < 32; i++) {
                if (data[i] < 0) acc = acc - data[i];
                else acc = acc + data[i];
              }
              print_int(acc);
              return acc & 0xff;
            }
            """
        )
        trace = capture_trace(program, MEM)
        store = memostore.MemoStore(str(tmp_path))
        four_way(program, trace, _cfg(), ("loop", 0), store)

    def test_indirect_jump_into_block_interior(self, tmp_path):
        """A computed jmpl lands where no pm function starts: that
        dispatch must fall back to the interpreted walk, with identical
        results (same weak spot the lean block table has)."""
        program = assemble(
            """
            .text
    _start: mov 0, %o0
            set mid, %l0
            jmpl %l0+0, %g0
            mov 99, %o0
    top:    add %o0, 1, %o0
    mid:    add %o0, 2, %o0
            add %o0, 4, %o0
            ta 0
            """
        )
        from repro.isa.blockcompile import discover_leaders

        assert program.symbols["mid"] not in discover_leaders(program)
        trace = capture_trace(program, MEM)
        store = memostore.MemoStore(str(tmp_path))
        m = four_way(program, trace, _cfg(), ("interior", 0), store)
        assert m.exit_code == 6  # 0 + 2 + 4: the +1 was jumped over

    def test_real_icache_and_tiny_vliw_cache(self, tmp_path):
        """Exercise the non-replay ``_primary_mode`` loop (real icache
        disables the segment-memo fast loop) and frequent evictions."""
        import dataclasses

        program = registry.load_program("compress", SCALE)
        trace = capture_trace(program, MEM)
        store = memostore.MemoStore(str(tmp_path))
        base = _cfg(vliw_cache_bytes=2 * 1024)
        cfg = base.with_(
            icache=dataclasses.replace(base.icache, perfect=False)
        )
        four_way(program, trace, cfg, ("icache", 0), store)

    def test_dispatch_counters_move(self):
        program = registry.load_program("compress", SCALE)
        trace = capture_trace(program, MEM)
        before = PM_STATS.snapshot()
        _run(program, trace, _cfg(), compiled=True)
        delta = {k: v - before[k] for k, v in PM_STATS.snapshot().items()}
        assert delta["dispatches"] > 0


@settings(max_examples=6, deadline=None)
@given(program_source())
def test_random_programs_four_way(source):
    """Randomized minicc programs through the full matrix (the shared
    session memo dir is fine: keys include the program fingerprint)."""
    program = compile_and_load(source)
    trace = capture_trace(program, MEM)
    store = memostore.MemoStore(os.environ["REPRO_MEMO_DIR"])
    four_way(program, trace, _cfg(), ("hyp", trace.count), store)


@pytest.mark.parametrize("name", registry.BENCHMARKS)
def test_workload_four_way(name, tmp_path):
    """Every registry workload through the full matrix."""
    trace = workload_trace(name, SCALE, mem_size=MEM)
    program = registry.load_program(name, SCALE)
    store = memostore.MemoStore(str(tmp_path))
    m = four_way(program, trace, _cfg(), (name, SCALE), store)
    assert m.stats.instructions_scheduled > 0


class TestEscapeHatch:
    def test_env_var_disables_pm_compile(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PRIMARY_COMPILE", "1")
        assert pm_compile_disabled()
        program = compile_and_load("int main() { return 42; }")
        trace = capture_trace(program, MEM)
        m = DTSVLIW(program, _cfg(), trace=trace)
        assert m._pm_table is None
        m.run()
        assert m.exit_code == 42

    def test_zero_and_empty_do_not_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PRIMARY_COMPILE", "0")
        assert not pm_compile_disabled()
        monkeypatch.delenv("REPRO_NO_PRIMARY_COMPILE")
        assert not pm_compile_disabled()

    def test_no_block_compile_implies_no_pm(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        assert pm_compile_disabled()

    def test_memo_store_hatch(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_NO_MEMO_STORE", "1")
        assert memostore.memo_store_disabled()
        program = compile_and_load("int main() { return 1; }")
        memo = ScheduleMemo()
        store = memostore.MemoStore(str(tmp_path))
        assert (
            memostore.load_family_memo(memo, ("h", 0), program, store=store)
            == 0
        )
        assert not memostore.flush_family_memo(memo, ("h", 0), store=store)
        assert not list(tmp_path.iterdir())  # nothing written

    def test_pm_sig_covers_icache_policy(self):
        import dataclasses

        base = _cfg()
        real = base.with_(
            icache=dataclasses.replace(base.icache, perfect=False)
        )
        assert pm_sig(base) != pm_sig(real)
