"""Unit tests for the minicc lexer and parser (front end details not
covered by the end-to-end compiler tests)."""

import pytest

from repro.core.errors import SimError
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import parse


class TestLexer:
    def test_numbers(self):
        toks = tokenize("0x1F 42 7")
        assert [t.value for t in toks[:-1]] == [31, 42, 7]

    def test_float_literal(self):
        toks = tokenize("3.25")
        assert toks[0].kind == "float" and toks[0].value == 3.25

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\\' '\0'")
        assert [t.value for t in toks[:-1]] == [97, 10, 92, 0]

    def test_string_escapes(self):
        toks = tokenize(r'"a\tb\n"')
        assert toks[0].value == b"a\tb\n"

    def test_line_and_block_comments(self):
        toks = tokenize("a // line\n b /* block\n more */ c")
        assert [t.value for t in toks[:-1]] == ["a", "b", "c"]

    def test_compound_operators_longest_match(self):
        toks = tokenize("a <<= b >>= c << d >> e <= f")
        ops = [t.value for t in toks if t.kind == "punct"]
        assert ops == ["<<=", ">>=", "<<", ">>", "<="]

    def test_keywords_vs_identifiers(self):
        toks = tokenize("int integer if iffy")
        kinds = [(t.kind, t.value) for t in toks[:-1]]
        assert kinds == [
            ("kw", "int"),
            ("ident", "integer"),
            ("kw", "if"),
            ("ident", "iffy"),
        ]

    def test_bad_character_rejected(self):
        with pytest.raises(SimError):
            tokenize("int a = `1`;")

    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\n\nc")
        assert [t.line for t in toks[:-1]] == [1, 2, 4]


class TestParser:
    def test_precedence(self):
        prog = parse("int main() { return 1 + 2 * 3; }")
        ret = prog.functions[0].body.stmts[0]
        assert isinstance(ret.expr, ast.Binary) and ret.expr.op == "+"
        assert isinstance(ret.expr.right, ast.Binary) and ret.expr.right.op == "*"

    def test_associativity_left(self):
        prog = parse("int main() { return 10 - 3 - 2; }")
        e = prog.functions[0].body.stmts[0].expr
        assert e.op == "-" and isinstance(e.left, ast.Binary)

    def test_assignment_right_associative(self):
        prog = parse("int main() { int a; int b; a = b = 3; return a; }")
        stmt = prog.functions[0].body.stmts[2]
        assert isinstance(stmt.expr, ast.Assign)
        assert isinstance(stmt.expr.value, ast.Assign)

    def test_ternary_nesting(self):
        prog = parse("int main() { int x; return x ? 1 : x ? 2 : 3; }")
        e = prog.functions[0].body.stmts[1].expr
        assert isinstance(e, ast.Cond) and isinstance(e.els, ast.Cond)

    def test_pointer_declarations(self):
        prog = parse("int main() { int *p; int **q; return 0; }")
        decls = prog.functions[0].body.stmts
        assert decls[0].type == ("ptr", ("int",))
        assert decls[1].type == ("ptr", ("ptr", ("int",)))

    def test_array_global_sizes(self):
        prog = parse('char msg[] = "hi"; int t[] = {1,2,3}; int z[5];')
        g = {v.name: v for v in prog.globals}
        assert g["msg"].type == ("array", ("char",), 3)  # + NUL
        assert g["t"].type == ("array", ("int",), 3)
        assert g["z"].type == ("array", ("int",), 5)

    def test_cast_vs_parenthesised_expr(self):
        prog = parse("int main() { int x; return (int)x + (x); }")
        e = prog.functions[0].body.stmts[1].expr
        assert isinstance(e.left, ast.Cast)
        assert isinstance(e.right, ast.Var)

    def test_postfix_chains(self):
        prog = parse("int a[3]; int main() { return a[0]++; }")
        e = prog.functions[0].body.stmts[0].expr
        assert isinstance(e, ast.IncDec) and e.post
        assert isinstance(e.target, ast.Index)

    def test_for_with_empty_clauses(self):
        prog = parse("int main() { int i; for (;;) break; return 0; }")
        loop = prog.functions[0].body.stmts[1]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_seven_params_rejected(self):
        with pytest.raises(SimError):
            parse("int f(int a,int b,int c,int d,int e,int g,int h){return 0;}")

    def test_missing_semicolon_rejected(self):
        with pytest.raises(SimError):
            parse("int main() { return 0 }")

    def test_calling_non_function_rejected(self):
        with pytest.raises(SimError):
            parse("int main() { return (1+2)(); }")

    def test_void_param_list(self):
        prog = parse("int main(void) { return 0; }")
        assert prog.functions[0].params == []

    def test_do_while(self):
        prog = parse("int main() { int i; do i++; while (i < 3); return i; }")
        assert isinstance(prog.functions[0].body.stmts[1], ast.DoWhile)

    def test_type_utilities(self):
        assert ast.sizeof(("array", ("int",), 6)) == 24
        assert ast.sizeof(("char",)) == 1
        assert ast.type_name(("ptr", ("char",))) == "char*"
        assert ast.type_name(("array", ("int",), 4)) == "int[4]"
        assert ast.element_type(("ptr", ("int",))) == ("int",)
        with pytest.raises(ValueError):
            ast.element_type(("int",))
