"""Unit tests for srisc instruction semantics."""

import pytest

from repro.asm.assembler import assemble
from repro.core.errors import MemFault, ProgramExit, SimError
from repro.core.reference import ReferenceMachine
from repro.isa.registers import ICC_C, ICC_N, ICC_V, ICC_Z
from repro.isa.semantics import ALU_FUNCS, alu_cc, eval_cond, to_signed


def run_asm(body: str, max_instructions: int = 1_000_000) -> ReferenceMachine:
    """Assemble a text fragment with an exit trap appended and run it."""
    src = "        .text\n_start:\n" + body
    m = ReferenceMachine(assemble(src))
    m.run(max_instructions)
    return m


class TestAluCompute:
    def test_add_wraps(self):
        assert ALU_FUNCS["add"](0xFFFFFFFF, 1) == 0

    def test_sub_wraps(self):
        assert ALU_FUNCS["sub"](0, 1) == 0xFFFFFFFF

    def test_logical(self):
        assert ALU_FUNCS["and"](0xF0F0, 0xFF00) == 0xF000
        assert ALU_FUNCS["or"](0xF0F0, 0x0F00) == 0xFFF0
        assert ALU_FUNCS["xor"](0xFF, 0x0F) == 0xF0
        assert ALU_FUNCS["andn"](0xFF, 0x0F) == 0xF0
        assert ALU_FUNCS["orn"](0, 0) == 0xFFFFFFFF
        assert ALU_FUNCS["xnor"](0xFFFFFFFF, 0xFFFFFFFF) == 0xFFFFFFFF

    def test_shifts(self):
        assert ALU_FUNCS["sll"](1, 31) == 0x80000000
        assert ALU_FUNCS["srl"](0x80000000, 31) == 1
        assert ALU_FUNCS["sra"](0x80000000, 31) == 0xFFFFFFFF
        # shift counts are taken mod 32
        assert ALU_FUNCS["sll"](1, 33) == 2

    def test_mul(self):
        assert ALU_FUNCS["smul"](to_signed(0xFFFFFFFF) & 0xFFFFFFFF, 3) == 0xFFFFFFFD
        assert ALU_FUNCS["umul"](0x10000, 0x10000) == 0

    def test_div(self):
        assert ALU_FUNCS["sdiv"](7, 2) == 3
        assert ALU_FUNCS["sdiv"](0xFFFFFFF9, 2) == 0xFFFFFFFD  # -7 / 2 = -3
        assert ALU_FUNCS["udiv"](0xFFFFFFFF, 2) == 0x7FFFFFFF

    def test_div_by_zero_faults(self):
        with pytest.raises(MemFault):
            ALU_FUNCS["sdiv"](1, 0)
        with pytest.raises(MemFault):
            ALU_FUNCS["udiv"](1, 0)


class TestConditionCodes:
    def test_subcc_equal_sets_z(self):
        cc = alu_cc("subcc", 5, 5, 0)
        assert cc & ICC_Z
        assert not cc & ICC_N

    def test_subcc_borrow_sets_c(self):
        res = ALU_FUNCS["subcc"](1, 2)
        cc = alu_cc("subcc", 1, 2, res)
        assert cc & ICC_C
        assert cc & ICC_N

    def test_addcc_overflow(self):
        res = ALU_FUNCS["addcc"](0x7FFFFFFF, 1)
        cc = alu_cc("addcc", 0x7FFFFFFF, 1, res)
        assert cc & ICC_V
        assert cc & ICC_N

    def test_addcc_carry(self):
        res = ALU_FUNCS["addcc"](0xFFFFFFFF, 1)
        cc = alu_cc("addcc", 0xFFFFFFFF, 1, res)
        assert cc & ICC_C
        assert cc & ICC_Z

    def test_logic_cc_clears_vc(self):
        res = ALU_FUNCS["andcc"](0x80000000, 0x80000000)
        cc = alu_cc("andcc", 0x80000000, 0x80000000, res)
        assert cc & ICC_N
        assert not cc & ICC_V
        assert not cc & ICC_C


class TestCondEval:
    def test_signed_comparisons(self):
        # 1 < 2 (signed): subcc 1,2 -> N=1,V=0 -> bl taken
        res = ALU_FUNCS["subcc"](1, 2)
        cc = alu_cc("subcc", 1, 2, res)
        assert eval_cond("bl", cc)
        assert not eval_cond("bge", cc)
        assert eval_cond("ble", cc)
        assert not eval_cond("bg", cc)

    def test_signed_overflow_case(self):
        # -2^31 < 1 signed, but subtraction overflows
        a, b = 0x80000000, 1
        res = ALU_FUNCS["subcc"](a, b)
        cc = alu_cc("subcc", a, b, res)
        assert eval_cond("bl", cc)

    def test_unsigned_comparisons(self):
        a, b = 1, 0xFFFFFFFF
        res = ALU_FUNCS["subcc"](a, b)
        cc = alu_cc("subcc", a, b, res)
        assert eval_cond("blu", cc)
        assert not eval_cond("bgu", cc)
        assert eval_cond("bleu", cc)

    def test_always_never(self):
        assert eval_cond("ba", 0)
        assert not eval_cond("bn", 0)

    def test_unknown_condition_raises(self):
        with pytest.raises(SimError):
            eval_cond("bxx", 0)


class TestProgramExecution:
    def test_exit_code(self):
        m = run_asm(
            """
            mov 42, %o0
            ta 0
            """
        )
        assert m.exit_code == 42

    def test_arith_sequence(self):
        m = run_asm(
            """
            mov 10, %l0
            add %l0, 32, %l1
            sub %l1, %l0, %o0   ; 32
            ta 0
            """
        )
        assert m.exit_code == 32

    def test_sethi_set(self):
        m = run_asm(
            """
            set 0x12345678, %l0
            srl %l0, 16, %o0
            ta 0
            """
        )
        assert m.exit_code == 0x1234

    def test_branch_taken_and_not_taken(self):
        m = run_asm(
            """
            mov 0, %l0
            mov 5, %l1
    loop:   add %l0, %l1, %l0
            subcc %l1, 1, %l1
            bne loop
            mov %l0, %o0        ; 5+4+3+2+1 = 15
            ta 0
            """
        )
        assert m.exit_code == 15

    def test_memory_word_roundtrip(self):
        m = run_asm(
            """
            set buf, %l0
            set 0xdeadbeef, %l1
            st %l1, [%l0+4]
            ld [%l0+4], %l2
            srl %l2, 28, %o0
            ta 0
            .data
    buf:    .space 16
            """
        )
        assert m.exit_code == 0xD

    def test_byte_memory(self):
        m = run_asm(
            """
            set buf, %l0
            mov 0x80, %l1
            stb %l1, [%l0]
            ldub [%l0], %l2     ; 0x80
            ldsb [%l0], %l3     ; -128
            add %l2, %l3, %o0   ; 0x80 + (-128) = 0
            ta 0
            .data
    buf:    .space 4
            """
        )
        assert m.exit_code == 0

    def test_call_ret_with_windows(self):
        # No delay slots: the epilogue is ``restore`` (moving the result to
        # the caller's %o0) followed by ``retl`` (the caller's %o7 holds the
        # return address written by call).
        m = run_asm(
            """
            mov 7, %o0
            call double
            mov %o0, %o0
            ta 0
    double: save %sp, -96, %sp
            add %i0, %i0, %i0
            restore %i0, 0, %o0
            retl
            """
        )
        assert m.exit_code == 14

    def test_traps_output(self):
        m = run_asm(
            """
            mov 'H', %o0
            ta 1
            mov 'i', %o0
            ta 1
            mov -5, %o0
            ta 2
            mov 0, %o0
            ta 0
            """
        )
        assert m.output == b"Hi-5"

    def test_jmpl_indirect(self):
        m = run_asm(
            """
            set target, %l0
            jmpl %l0+0, %g0
            mov 1, %o0          ; skipped
            ta 0
    target: mov 99, %o0
            ta 0
            """
        )
        assert m.exit_code == 99

    def test_fp_ops(self):
        m = run_asm(
            """
            mov 3, %l0
            fitos %l0, %f1
            mov 4, %l0
            fitos %l0, %f2
            fmul %f1, %f2, %f3
            fadd %f3, %f1, %f3  ; 15.0
            fstoi %f3, %o0
            ta 0
            """
        )
        assert m.exit_code == 15

    def test_fp_memory(self):
        m = run_asm(
            """
            mov 9, %l0
            fitos %l0, %f0
            set buf, %l1
            stf %f0, [%l1]
            ldf [%l1], %f5
            fstoi %f5, %o0
            ta 0
            .data
    buf:    .space 8
            """
        )
        assert m.exit_code == 9

    def test_fcmp(self):
        m = run_asm(
            """
            mov 2, %l0
            fitos %l0, %f0
            mov 3, %l0
            fitos %l0, %f1
            fcmp %f0, %f1
            bl less
            mov 0, %o0
            ta 0
    less:   mov 1, %o0
            ta 0
            """
        )
        assert m.exit_code == 1


class TestRegisterWindows:
    def test_g0_is_zero(self):
        m = run_asm(
            """
            mov 55, %g0
            mov %g0, %o0
            ta 0
            """
        )
        assert m.exit_code == 0

    def test_window_overlap(self):
        # Callee's i0 is caller's o0.
        m = run_asm(
            """
            mov 11, %o0
            save %sp, -96, %sp
            mov %i0, %l0
            restore
            mov %l0, %l0        ; l0 is the caller's l0 again (untouched)
            save %sp, -96, %sp
            mov %i0, %o1        ; i0 still 11
            restore %o1, 0, %o0 ; restore computes in old window -> caller o0
            ta 0
            """
        )
        assert m.exit_code == 11

    def test_deep_recursion_spills(self):
        # Recursion depth 20 > 8 windows: exercises hardware spill/fill.
        m = run_asm(
            """
            mov 20, %o0
            call sumto
            nop
            ta 0
    sumto:  save %sp, -96, %sp
            cmp %i0, 0
            be base
            sub %i0, 1, %o0
            call sumto
            nop
            add %o0, %i0, %i0
            restore %i0, 0, %o0
            retl
    base:   restore %g0, 0, %o0
            retl
            """
        )
        assert m.exit_code == 210

    def test_very_deep_recursion(self):
        m = run_asm(
            """
            mov 200, %o0
            call sumto
            nop
            ta 0
    sumto:  save %sp, -96, %sp
            cmp %i0, 0
            be base
            sub %i0, 1, %o0
            call sumto
            nop
            add %o0, %i0, %i0
            restore %i0, 0, %o0
            retl
    base:   restore %g0, 0, %o0
            retl
            """
        )
        assert m.exit_code == 20100


class TestFaults:
    def test_misaligned_load_faults(self):
        with pytest.raises(MemFault):
            run_asm(
                """
                mov 1, %l0
                ld [%l0+0], %l1
                ta 0
                """
            )

    def test_out_of_range_faults(self):
        with pytest.raises(MemFault):
            run_asm(
                """
                set 0x7ffffff0, %l0
                ld [%l0+0], %l1
                ta 0
                """
            )

    def test_runaway_detected(self):
        with pytest.raises(SimError):
            run_asm(
                """
        spin:   ba spin
                """,
                max_instructions=1000,
            )
