"""Full-tower differential fuzzing (repro.synth.tower): every speed
layer the repo has grown -- generic step, predecode, block compile,
compiled primary-mode scheduling, trace replay, batched families, the
vectorized cache kernel -- must agree bit for bit on generated
workloads.  Includes the mutation smoke test: a deliberately injected
timing bug must be caught, shrunk to a minimal spec and stored as a
replayable repro artifact."""

import os
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import MachineConfig
from repro.synth import (
    TOWER_STACKS,
    SynthSpec,
    TowerMismatch,
    check_spec,
    corpus_specs,
    load_repro,
    repro_dir,
    run_tower,
    save_repro,
    shrink_spec,
)
from repro.synth.spec import ACCESS_PATTERNS, ARITH_MIXES

#: the cheap tower slice used by the expensive shrinking tests: the
#: per-cell replay path (oracle) against the batched closed form, one
#: replay-eligible geometry, scalar machine only
_CFG_4X4 = [("4x4", MachineConfig.paper_fixed(4, 4, test_mode=False))]
_REPLAY_VS_BATCH = [
    s for s in TOWER_STACKS if s.name in ("replay", "batched")
]


def spec_strategy():
    """Shrink-friendly SynthSpec draw: every field shrinks to its min."""
    return st.builds(
        SynthSpec,
        seed=st.integers(0, 2**32 - 1),
        stmts=st.integers(1, 8),
        depth=st.integers(0, 2),
        branchiness=st.sampled_from([0.0, 0.3, 0.7]),
        loop_depth=st.integers(0, 2),
        trip=st.integers(1, 6),
        while_loops=st.booleans(),
        mem_pow2=st.integers(4, 7),
        access=st.sampled_from(ACCESS_PATTERNS),
        stride=st.integers(1, 8),
        call_depth=st.integers(0, 2),
        recursion=st.sampled_from([0, 3, 7]),
        arith=st.sampled_from(ARITH_MIXES),
        signed_bytes=st.booleans(),
        passes=st.integers(1, 2),
    )


def test_tower_covers_every_layer():
    names = [s.name for s in TOWER_STACKS]
    assert names == [
        "generic",
        "predecoded",
        "block",
        "block+pm",
        "replay",
        "batched",
        "batched+memo",
        "vectorized",
    ]
    # the oracle comes first and runs the raw interpreter
    assert TOWER_STACKS[0].env["REPRO_GENERIC_STEP"] == "1"
    assert not TOWER_STACKS[0].batch
    assert TOWER_STACKS[-1].batch and TOWER_STACKS[-1].vector


def test_fifty_spec_corpus_bit_identical_across_all_stacks():
    """The acceptance sweep: >= 50 dial-grid workloads, 8 stacks, 2
    configs, 3 machines -- every cell bit-identical to the generic
    oracle (and output/exit validated against the reference inside
    every run)."""
    specs = corpus_specs(50, seed=0)
    failures = []
    for spec in specs:
        report = run_tower(spec, scale=0.5)
        if not report.ok:
            failures.append(report.summary())
    assert not failures, "\n".join(failures)


@settings(max_examples=5, deadline=None)
@given(spec_strategy())
def test_random_specs_bit_identical(spec):
    """Hypothesis-driven tower differential: a failing draw is stored as
    a repro artifact before hypothesis shrinks it, so the minimal
    failing spec (replayed last) is what survives on disk."""
    try:
        check_spec(spec, scale=0.5)
    except TowerMismatch as exc:
        save_repro(spec, reason=exc.report.mismatches[0])
        raise


def test_tower_restores_ambient_env(monkeypatch):
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    monkeypatch.setenv("REPRO_EXECUTION_DRIVEN", "1")
    run_tower(
        SynthSpec(),
        machines=("scalar",),
        configs=_CFG_4X4,
        stacks=_REPLAY_VS_BATCH,
    )
    assert os.environ["REPRO_NO_VECTOR"] == "1"
    assert os.environ["REPRO_EXECUTION_DRIVEN"] == "1"


class TestMutationSmoke:
    """Inject a real timing bug through the $REPRO_MUTATE_TIMING seam
    (extra cycles in the batched scalar closed form whenever the trace
    has a load-use bubble) and demand the harness catch it, shrink it
    and store a replayable minimal spec."""

    def _fails(self, spec):
        return not run_tower(
            spec,
            machines=("scalar",),
            configs=_CFG_4X4,
            stacks=_REPLAY_VS_BATCH,
        ).ok

    def test_caught_shrunk_and_stored(self, monkeypatch):
        spec = SynthSpec(
            while_loops=True, signed_bytes=True, depth=2, stmts=6, seed=3
        )
        # clean tower first: the bug, not the harness, must be the signal
        assert not self._fails(spec)
        monkeypatch.setenv("REPRO_MUTATE_TIMING", "3")
        report = run_tower(
            spec,
            machines=("scalar",),
            configs=_CFG_4X4,
            stacks=_REPLAY_VS_BATCH,
        )
        assert not report.ok
        assert any("cycles" in m for m in report.mismatches)

        mini = shrink_spec(spec, self._fails)
        assert self._fails(mini)
        # a local minimum: the most drastic single-dial reductions are
        # already applied (anything left is needed to keep the failure)
        assert mini.passes == 1 and mini.stmts == 1
        path = save_repro(mini, reason=report.mismatches[0])
        assert Path(path).parent == Path(repro_dir())
        loaded, payload = load_repro(path)
        assert loaded == mini
        assert "cycles" in payload["reason"]

        # the artifact replays: still failing while mutated ...
        assert self._fails(loaded)
        # ... and clean once the bug is fixed (seam off)
        monkeypatch.delenv("REPRO_MUTATE_TIMING")
        assert not self._fails(loaded)

    def test_seam_is_inert_by_default(self):
        assert "REPRO_MUTATE_TIMING" not in os.environ
        check_spec(
            SynthSpec(seed=3),
            machines=("scalar",),
            configs=_CFG_4X4,
            stacks=_REPLAY_VS_BATCH,
        )
