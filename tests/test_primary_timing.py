"""Timing tests for the Primary Processor (Table 1 parameters)."""

import pytest

from repro.asm.assembler import assemble
from repro.baselines.scalar import ScalarMachine
from repro.core.config import CacheConfig, MachineConfig
from repro.core.reference import ReferenceMachine


def cycles_of(body: str, cfg: MachineConfig | None = None) -> int:
    src = "        .text\n_start:\n" + body + "        mov 0, %o0\n        ta 0\n"
    program = assemble(src)
    m = ScalarMachine(program, cfg or MachineConfig.paper_fixed(4, 4))
    stats = m.run()
    return stats.cycles


class TestScalarTiming:
    def test_straight_line_is_one_cycle_per_instruction(self):
        base = cycles_of("")
        plus4 = cycles_of("        add %g0, 1, %l0\n" * 4)
        assert plus4 - base == 4

    def test_not_taken_branch_costs_three_bubbles(self):
        # cmp makes the branch not taken -> 1 + 3 bubble cycles
        base = cycles_of("        cmp %g0, 1\n")
        with_nt = cycles_of("        cmp %g0, 1\n        be nowhere\nnowhere2:\n        nop\nnowhere:\n")
        # be is not taken (0 != 1): cost = 1 + 3; plus the extra nop 1
        assert with_nt - base == 1 + 3 + 1

    def test_taken_branch_is_free(self):
        base = cycles_of("        cmp %g0, 0\n")
        with_taken = cycles_of(
            "        cmp %g0, 0\n        be target\n        nop\ntarget:\n"
        )
        # be taken (0 == 0): 1 cycle; the nop is skipped
        assert with_taken - base == 1

    def test_load_use_bubble(self):
        no_use = cycles_of(
            """
        set buf, %l0
        ld [%l0], %l1
        add %g0, 1, %l2
        add %l1, 1, %l3
"""
            + "        .data\nbuf:    .word 7\n        .text\n"
        )
        with_use = cycles_of(
            """
        set buf, %l0
        ld [%l0], %l1
        add %l1, 1, %l3
        add %g0, 1, %l2
"""
            + "        .data\nbuf:    .word 7\n        .text\n"
        )
        assert with_use - no_use == 1

    def test_store_data_register_triggers_load_use(self):
        apart = cycles_of(
            """
        set buf, %l0
        ld [%l0], %l1
        add %g0, 1, %l2
        st %l1, [%l0+4]
"""
            + "        .data\nbuf:    .word 7, 0\n        .text\n"
        )
        adjacent = cycles_of(
            """
        set buf, %l0
        ld [%l0], %l1
        st %l1, [%l0+4]
        add %g0, 1, %l2
"""
            + "        .data\nbuf:    .word 7, 0\n        .text\n"
        )
        assert adjacent - apart == 1

    def test_icache_miss_penalty(self):
        cfg = MachineConfig.paper_fixed(4, 4)
        cfg.icache = CacheConfig(
            size=1024, line_size=32, assoc=1, miss_penalty=8
        )
        base = MachineConfig.paper_fixed(4, 4)
        # 8 instructions = 32 bytes = exactly one extra line
        body = "        add %g0, 1, %l0\n" * 8
        diff = cycles_of(body, cfg) - cycles_of(body, base)
        # one miss per 32-byte line touched
        assert diff >= 8

    def test_dcache_miss_penalty(self):
        cfg = MachineConfig.paper_fixed(4, 4)
        cfg.dcache = CacheConfig(
            size=1024, line_size=32, assoc=1, miss_penalty=8
        )
        body = (
            """
        set buf, %l0
        ld [%l0], %l1
        ld [%l0], %l2
"""
            + "        .data\nbuf:    .word 1\n        .text\n"
        )
        base_cfg = MachineConfig.paper_fixed(4, 4)
        diff = cycles_of(body, cfg) - cycles_of(body, base_cfg)
        assert diff == 8  # first load misses, second hits

    def test_window_spill_penalty(self):
        cfg = MachineConfig.paper_fixed(4, 4)
        deep = "".join(
            "        save %sp, -16, %sp\n" for _ in range(8)
        ) + "".join("        restore\n" for _ in range(8))
        shallow = "".join(
            "        save %sp, -16, %sp\n" for _ in range(4)
        ) + "".join("        restore\n" for _ in range(4))
        d = cycles_of(deep, cfg)
        s = cycles_of(shallow, cfg)
        # 8 deep with 8 windows (cansave=6): 2 spills + 2 fills at 16 cycles
        extra_ops = 8  # four more save/restore pairs
        assert d - s == extra_ops + 4 * cfg.window_spill_penalty


class TestInstructionCounting:
    def test_scalar_count_matches_reference(self):
        src = """
        .text
_start: mov 5, %l0
loop:   subcc %l0, 1, %l0
        bne loop
        mov 0, %o0
        ta 0
"""
        program = assemble(src)
        ref = ReferenceMachine(program)
        n = ref.run()
        m = ScalarMachine(program, MachineConfig.paper_fixed(4, 4))
        stats = m.run()
        assert stats.ref_instructions == n
