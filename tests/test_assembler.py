"""Tests for the two-pass assembler and the binary encoding round-trip."""

import pytest
from hypothesis import given, strategies as st

from repro.asm.assembler import assemble
from repro.asm.parsing import eval_expr, parse_line, split_operands
from repro.core.errors import SimError
from repro.isa.encoding import decode, encode
from repro.isa.instructions import (
    Instr,
    K_ALU,
    K_BRANCH,
    K_CALL,
    K_FPOP,
    K_JMPL,
    K_LOAD,
    K_RESTORE,
    K_SAVE,
    K_SETHI,
    K_STORE,
    K_TRAP,
    OPCODE_LIST,
    OPCODES,
)


class TestParsing:
    def test_split_operands_brackets(self):
        assert split_operands("%l1, [%l0+4]") == ["%l1", "[%l0+4]"]

    def test_split_operands_string(self):
        assert split_operands('"a,b", 3') == ['"a,b"', "3"]

    def test_comment_stripping(self):
        stmt = parse_line("  add %l0, 1, %l0  ; comment, with comma", 1)
        assert stmt.mnemonic == "add"
        assert stmt.operands == ["%l0", "1", "%l0"]

    def test_label_only_line(self):
        stmt = parse_line("loop:", 3)
        assert stmt.label == "loop"
        assert stmt.mnemonic is None

    def test_expr_arithmetic(self):
        assert eval_expr("4*0", {}, 1) if False else True
        assert eval_expr("10+2", {}, 1) == 12
        assert eval_expr("10-2-3", {}, 1) == 5
        assert eval_expr("0x10", {}, 1) == 16
        assert eval_expr("sym+4", {"sym": 100}, 1) == 104

    def test_expr_hi_lo(self):
        v = 0x12345678
        hi = eval_expr("%hi(0x12345678)", {}, 1)
        lo = eval_expr("%lo(0x12345678)", {}, 1)
        assert ((hi << 12) | lo) & 0xFFFFFFFF == v

    def test_expr_char_literal(self):
        assert eval_expr("'A'", {}, 1) == 65
        assert eval_expr("'\\n'", {}, 1) == 10

    def test_expr_unknown_symbol(self):
        with pytest.raises(SimError):
            eval_expr("nosuch", {}, 1)


class TestAssembler:
    def test_labels_and_sections(self):
        p = assemble(
            """
            .text
    _start: nop
            ba _start
            .data
    x:      .word 1, 2, 3
    msg:    .asciz "hi"
    buf:    .space 10
    end:    .byte 0xff
            """
        )
        assert p.symbols["_start"] == p.text_base
        assert p.symbols["x"] == p.data_base
        assert p.symbols["msg"] == p.data_base + 12
        assert p.symbols["buf"] == p.data_base + 15
        assert p.symbols["end"] == p.data_base + 25
        assert p.data_image[0:4] == b"\x00\x00\x00\x01"
        assert p.data_image[12:15] == b"hi\x00"
        assert p.data_image[25] == 0xFF

    def test_align_directive(self):
        p = assemble(
            """
            .data
    a:      .byte 1
            .align 4
    b:      .word 2
            """
        )
        assert p.symbols["b"] == p.data_base + 4

    def test_align_label_points_past_padding(self):
        p = assemble(
            """
            .data
    x:      .byte 1
    y:      .align 4
            .word 7
            """
        )
        assert p.symbols["y"] == p.data_base + 4

    def test_equ(self):
        p = assemble(
            """
            .equ SIZE, 64
            .text
    _start: mov SIZE, %o0
            ta 0
            """
        )
        instr = p.fetch(p.text_base)
        assert instr.imm == 64

    def test_duplicate_label_rejected(self):
        with pytest.raises(SimError):
            assemble("a: nop\na: nop\n")

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(SimError):
            assemble("  frobnicate %o0, %o1, %o2\n")

    def test_wrong_arity_rejected(self):
        with pytest.raises(SimError):
            assemble("  add %o0, %o1\n")

    def test_branch_displacement(self):
        p = assemble(
            """
    _start: nop
            nop
            be _start
            """
        )
        br = p.fetch(p.text_base + 8)
        assert br.imm == -8

    def test_set_expands_to_two_words(self):
        p = assemble(
            """
    _start: set 0xdeadbeef, %l0
            ta 0
            """
        )
        assert len(p.text_words) == 3
        # execute the pair by hand: sethi then or
        hi = p.fetch(p.text_base)
        lo = p.fetch(p.text_base + 4)
        assert ((hi.imm << 12) | lo.imm) == 0xDEADBEEF

    def test_pseudo_expansion(self):
        p = assemble(
            """
    _start: mov 5, %l0
            cmp %l0, 3
            tst %l0
            neg %l0, %l1
            not %l0, %l2
            retl
            """
        )
        texts = [p.fetch(p.text_base + 4 * i).text() for i in range(6)]
        assert texts[0] == "or g0, 5, l0"
        assert texts[1] == "subcc l0, 3, g0"
        assert texts[2] == "orcc g0, l0, g0"
        assert texts[3] == "sub g0, l0, l1"
        assert texts[4] == "xnor l0, g0, l2"
        assert "jmpl o7+4" in texts[5]

    def test_memory_operand_forms(self):
        p = assemble(
            """
    _start: ld [%l0], %l1
            ld [%l0+8], %l1
            ld [%l0 - 4], %l1
            st %l1, [%sp+96]
            """
        )
        assert p.fetch(p.text_base).imm == 0
        assert p.fetch(p.text_base + 4).imm == 8
        assert p.fetch(p.text_base + 8).imm == -4
        st = p.fetch(p.text_base + 12)
        assert st.rs1 == 14 and st.imm == 96

    def test_disassemble_roundtrip_mentions_labels(self):
        p = assemble("_start: nop\nfoo: ba foo\n")
        text = p.disassemble()
        assert "_start:" in text and "foo:" in text

    def test_instruction_outside_text_rejected(self):
        with pytest.raises(SimError):
            assemble(".data\n  add %o0, %o1, %o2\n")


def _instr_strategy():
    """Generate random valid instructions for the encode/decode round-trip."""
    regs = st.integers(0, 31)
    alu_names = [
        o.name
        for o in OPCODE_LIST
        if o.kind == K_ALU or o.kind in (K_SAVE, K_RESTORE, K_JMPL)
    ]
    mem_names = ["ld", "ldub", "ldsb", "st", "stb", "ldf", "stf"]

    def build_alu(name, rd, rs1, rs2, imm, use_imm):
        return Instr(
            OPCODES[name],
            rd=rd,
            rs1=rs1,
            rs2=rs2,
            imm=imm if use_imm else 0,
            use_imm=use_imm,
        )

    alu = st.builds(
        build_alu,
        st.sampled_from(alu_names + mem_names),
        regs,
        regs,
        regs,
        st.integers(-(1 << 14), (1 << 14) - 1),
        st.booleans(),
    )
    branch = st.builds(
        lambda name, disp: Instr(OPCODES[name], imm=disp * 4),
        st.sampled_from([o.name for o in OPCODE_LIST if o.kind == K_BRANCH]),
        st.integers(-(1 << 20), (1 << 20) - 1),
    )
    call = st.builds(
        lambda disp: Instr(OPCODES["call"], imm=disp * 4),
        st.integers(-(1 << 25), (1 << 25) - 1),
    )
    sethi = st.builds(
        lambda rd, imm: Instr(OPCODES["sethi"], rd=rd, imm=imm),
        regs,
        st.integers(0, (1 << 21) - 1),
    )
    trap = st.builds(lambda n: Instr(OPCODES["ta"], imm=n), st.integers(0, 100))
    fpop = st.builds(
        lambda name, rd, rs1, rs2: Instr(OPCODES[name], rd=rd, rs1=rs1, rs2=rs2),
        st.sampled_from([o.name for o in OPCODE_LIST if o.kind == K_FPOP]),
        regs,
        regs,
        regs,
    )
    return st.one_of(alu, branch, call, sethi, trap, fpop)


class TestEncoding:
    @given(_instr_strategy())
    def test_roundtrip(self, instr):
        word = encode(instr)
        assert 0 <= word < (1 << 32)
        back = decode(word)
        assert back.op is instr.op
        assert back.imm == instr.imm
        assert back.use_imm == instr.use_imm
        if instr.op.kind not in (K_BRANCH, K_CALL, K_TRAP):
            assert back.rd == instr.rd
        if instr.op.kind not in (K_BRANCH, K_CALL, K_TRAP, K_SETHI):
            assert back.rs1 == instr.rs1
            if not instr.use_imm:
                assert back.rs2 == instr.rs2

    def test_immediate_out_of_range_rejected(self):
        with pytest.raises(SimError):
            encode(Instr(OPCODES["add"], rd=1, rs1=1, imm=1 << 20, use_imm=True))

    def test_illegal_opcode_rejected(self):
        with pytest.raises(SimError):
            decode(0xFFFFFFFF)

    def test_program_words_decode_to_same_text(self):
        p = assemble(
            """
    _start: mov 3, %o0
            add %o0, %o0, %o1
            st %o1, [%sp]
            be _start
            call _start
            ta 0
            """
        )
        for i, word in enumerate(p.text_words):
            addr = p.text_base + 4 * i
            assert decode(word, addr).text() == p.fetch(addr).text()
