"""Tests for the VLIW Cache (section 3.4)."""

import warnings

import pytest

from repro.core.config import MachineConfig
from repro.scheduler.long_instruction import Block, LongInstruction
from repro.vliw.cache import VLIWCache


def blk(addr, nba=0):
    return Block(addr, [LongInstruction(4, None)], nba, 0, 0, 0, 0, 0)


class TestVLIWCache:
    def test_lookup_miss_then_hit(self):
        c = VLIWCache(total_blocks=8, assoc=2)
        assert c.lookup(0x1000) is None
        c.insert(blk(0x1000))
        assert c.lookup(0x1000).start_addr == 0x1000
        assert c.hits == 1 and c.misses == 1

    def test_probe_does_not_touch_stats(self):
        c = VLIWCache(8, 2)
        c.insert(blk(0x1000))
        assert c.probe(0x1000)
        assert not c.probe(0x2000)
        assert c.hits == 0 and c.misses == 0

    def test_same_tag_replaces(self):
        c = VLIWCache(8, 2)
        c.insert(blk(0x1000, nba=1))
        newer = blk(0x1000, nba=2)
        c.insert(newer)
        assert c.lookup(0x1000) is newer
        assert c.resident_blocks() == 1

    def test_lru_eviction_within_set(self):
        c = VLIWCache(total_blocks=2, assoc=2)  # one set
        c.insert(blk(0x1000))
        c.insert(blk(0x2000))
        c.lookup(0x1000)  # 0x1000 becomes MRU
        c.insert(blk(0x3000))  # evicts 0x2000
        assert c.probe(0x1000)
        assert not c.probe(0x2000)
        assert c.probe(0x3000)

    def test_set_indexing_spreads_blocks(self):
        c = VLIWCache(total_blocks=8, assoc=1)
        for i in range(8):
            c.insert(blk(0x1000 + 4 * i))
        assert c.resident_blocks() == 8

    def test_invalidate(self):
        c = VLIWCache(8, 2)
        c.insert(blk(0x1000))
        assert c.invalidate(0x1000)
        assert not c.invalidate(0x1000)
        assert c.lookup(0x1000) is None

    def test_flush_all(self):
        c = VLIWCache(8, 2)
        c.insert(blk(0x1000))
        c.insert(blk(0x2000))
        c.flush_all()
        assert c.resident_blocks() == 0

    def test_impossible_geometry_raises(self):
        """The cache no longer silently clamps ``assoc``: geometry
        validation happens at MachineConfig construction instead."""
        with pytest.raises(ValueError):
            VLIWCache(total_blocks=1, assoc=4)
        with pytest.raises(ValueError):
            VLIWCache(total_blocks=8, assoc=0)

    def test_config_clamps_assoc_with_warning(self):
        from repro.core import config as config_mod

        # 1 KB cache at the default 8x8x6 geometry holds 2 blocks < 4 ways
        config_mod._warned_geometries.discard((2, 4))  # warn-once reset
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            cfg = MachineConfig(vliw_cache_bytes=1024, vliw_cache_assoc=4)
        assert cfg.vliw_cache_blocks == 2
        assert cfg.vliw_cache_effective_assoc == 2
        assert any("clamping" in str(w.message) for w in caught)
        c = VLIWCache(cfg.vliw_cache_blocks, cfg.vliw_cache_effective_assoc)
        c.insert(blk(0x1000))
        c.insert(blk(0x2000))
        assert c.resident_blocks() == 2

    def test_config_rejects_bad_assoc(self):
        with pytest.raises(ValueError):
            MachineConfig(vliw_cache_assoc=0)
