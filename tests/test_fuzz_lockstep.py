"""Differential fuzzing: random minicc programs, executed on the DTSVLIW in
lockstep test mode (plus a DIF run) against the sequential reference.

The generator only produces terminating, memory-safe programs (counted
loops, ``while`` loops whose compound exit condition carries an
unconditionally-decremented counter conjunct, power-of-two array sizes
indexed through masks), but otherwise mixes arithmetic, control flow,
array traffic, signed byte loads (``load_s8`` -> ``ldsb``), calls and
recursion freely -- this is the widest net for scheduler/engine
interaction bugs.
"""

from hypothesis import given, settings, strategies as st

from repro import DTSVLIW, MachineConfig, compile_and_load, CompilerOptions
from repro.asm.assembler import assemble
from repro.baselines.dif import DIFMachine
from repro.baselines.scalar import ScalarMachine
from repro.core.reference import ReferenceMachine
from repro.lang import compile_minicc
from repro.obs import EventProbe, NullProbe

ARRAY = 32  # power of two; indices masked with & 31

EXPR_LEAVES = ["a", "b", "c", "i", "j", "3", "7", "25", "100"]
BIN_OPS = ["+", "-", "&", "|", "^", "<<", ">>"]  # * via helper only (mul is slow in software)
CMP_OPS = ["<", "<=", "==", "!=", ">", ">="]


def gen_expr(draw, depth):
    if depth <= 0 or draw(st.integers(0, 2)) == 0:
        leaf = draw(st.sampled_from(EXPR_LEAVES + ["data[(%s) & 31]" % draw(st.sampled_from(EXPR_LEAVES))]))
        return leaf
    op = draw(st.sampled_from(BIN_OPS))
    left = gen_expr(draw, depth - 1)
    right = gen_expr(draw, depth - 1)
    if op == ">>":
        return "((%s) >> ((%s) & 7))" % (left, right)
    if op == "<<":
        return "((%s) << ((%s) & 7))" % (left, right)
    return "((%s) %s (%s))" % (left, op, right)


def gen_stmt(draw, depth, allow_loop=True):
    kinds = ["assign", "store", "if", "call", "rec", "sload", "cstore"]
    if allow_loop:
        kinds += ["for", "while"]
    kind = draw(st.sampled_from(kinds))
    if kind == "assign":
        var = draw(st.sampled_from(["a", "b", "c"]))
        return "%s = (%s) & 0xffff;" % (var, gen_expr(draw, depth))
    if kind == "store":
        return "data[(%s) & 31] = (%s) & 0xffff;" % (
            gen_expr(draw, 1),
            gen_expr(draw, depth),
        )
    if kind == "if":
        cmp_ = draw(st.sampled_from(CMP_OPS))
        return "if ((%s) %s (%s)) { %s } else { %s }" % (
            gen_expr(draw, 1),
            cmp_,
            gen_expr(draw, 1),
            gen_stmt(draw, depth - 1, allow_loop),
            gen_stmt(draw, depth - 1, allow_loop),
        )
    if kind == "call":
        return "a = helper((%s) & 255, b);" % gen_expr(draw, 1)
    if kind == "rec":
        return "b = b + rec((%s) & 7);" % gen_expr(draw, 1)
    if kind == "sload":
        # the only minicc path to ld_signed (plain char loads are ldub)
        var = draw(st.sampled_from(["a", "b", "c"]))
        return "%s = load_s8(&cdata[(%s) & 31]) & 0xffff;" % (
            var,
            gen_expr(draw, 1),
        )
    if kind == "cstore":
        return "cdata[(%s) & 31] = (%s) & 255;" % (
            gen_expr(draw, 1),
            gen_expr(draw, depth),
        )
    if kind == "while":
        # compound exit: the w-counter conjunct (decremented
        # unconditionally at the body's end) guarantees termination, the
        # data-dependent disjunct exercises multi-branch loop exits; the
        # body must not contain another loop (it would reuse w or j)
        body = gen_stmt(draw, depth - 1, allow_loop=False)
        cond = "(%s) %s (%s)" % (
            gen_expr(draw, 1),
            draw(st.sampled_from(CMP_OPS)),
            gen_expr(draw, 1),
        )
        if draw(st.booleans()):
            cond = "w > 0 && (%s)" % cond
        else:
            cond = "w > 0 && ((%s) || w > 1)" % cond
        return "w = %d; while (%s) { %s w = w - 1; }" % (
            draw(st.integers(1, 6)),
            cond,
            body,
        )
    # counted loop over j: the body must not contain another j-loop
    # (nested loops sharing the induction variable would not terminate)
    body = gen_stmt(draw, depth - 1, allow_loop=False)
    return "for (j = 0; j < %d; j++) { %s }" % (draw(st.integers(1, 6)), body)


@st.composite
def program_source(draw):
    n_stmts = draw(st.integers(2, 6))
    body = "\n      ".join(gen_stmt(draw, 2) for _ in range(n_stmts))
    return (
        """
int data[%d];
char cdata[%d];
int helper(int x, int y) { return (x ^ y) + (x & 15); }
int rec(int n) { if (n <= 0) return 1; return rec(n - 1) + n; }
int main() {
  int a = 5; int b = 9; int c = 12; int i; int j = 0; int w = 0;
  for (i = 0; i < %d; i++) data[i] = i * 3;
  for (i = 0; i < %d; i++) cdata[i] = (i * 37) & 255;
  for (i = 0; i < 8; i++) {
      %s
  }
  int s = a + b + c;
  for (i = 0; i < %d; i++) s += data[i];
  for (i = 0; i < %d; i++) s += load_s8(&cdata[i]);
  print_int(s & 0xffffff);
  return s & 0xff;
}
"""
        % (ARRAY, ARRAY, ARRAY, ARRAY, body, ARRAY, ARRAY)
    )


@settings(max_examples=12, deadline=None)
@given(program_source(), st.sampled_from([(4, 4), (8, 8), (2, 6), (6, 2)]))
def test_random_programs_lockstep(source, geom):
    program = compile_and_load(source)
    ref = ReferenceMachine(program)
    ref.run(max_instructions=5_000_000)
    machine = DTSVLIW(program, MachineConfig.paper_fixed(*geom))
    machine.run(max_cycles=50_000_000)  # test mode verifies every step
    assert machine.exit_code == ref.exit_code
    assert machine.output == ref.output


@settings(max_examples=6, deadline=None)
@given(program_source())
def test_random_programs_optimized_compile(source):
    """Unroll + schedule + fold must preserve behaviour on random programs."""
    base = ReferenceMachine(compile_and_load(source))
    base.run(max_instructions=5_000_000)
    opt_prog = assemble(
        compile_minicc(source, CompilerOptions(unroll=3, schedule=True))
    )
    opt = ReferenceMachine(opt_prog)
    opt.run(max_instructions=5_000_000)
    assert opt.output == base.output
    assert opt.exit_code == base.exit_code
    machine = DTSVLIW(opt_prog, MachineConfig.paper_fixed(8, 8))
    machine.run(max_cycles=50_000_000)
    assert machine.output == base.output


@settings(max_examples=5, deadline=None)
@given(program_source())
def test_random_programs_on_dif(source):
    program = compile_and_load(source)
    ref = ReferenceMachine(program)
    ref.run(max_instructions=5_000_000)
    dif = DIFMachine(program, MachineConfig.fig9(test_mode=False))
    dif.run(max_cycles=100_000_000)
    assert dif.exit_code == ref.exit_code
    assert dif.output == ref.output


@settings(max_examples=6, deadline=None)
@given(
    program_source(),
    st.sampled_from(
        [
            ("dtsvliw", DTSVLIW, lambda: MachineConfig.paper_fixed(4, 4)),
            ("dif", DIFMachine, lambda: MachineConfig.fig9(test_mode=False)),
            ("scalar", ScalarMachine, lambda: MachineConfig.fig9(test_mode=False)),
        ]
    ),
)
def test_probes_are_observers_only(source, machine_kind):
    """Zero-overhead differential on random programs: attaching a probe --
    at any depth -- may never change the architectural outcome.

    ``Stats`` excludes host wall time from equality, so the comparison
    covers every cycle, instruction, scheduler and event counter; output
    bytes and exit code make it a full behavioural identity.
    """
    _name, cls, mk_cfg = machine_kind
    program = compile_and_load(source)
    outcomes = []
    for probe in (None, NullProbe(), EventProbe()):
        m = cls(program, mk_cfg(), probe=probe)
        stats = m.run(max_cycles=50_000_000)
        outcomes.append((stats, m.output, m.exit_code))
    off, nullp, events = outcomes
    assert off == nullp
    assert off == events
