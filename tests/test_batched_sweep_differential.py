"""Differential oracle for the batched sweep evaluator (src/repro/batch).

The batch layer's central claim (DESIGN.md section 12) is that grouping
sweep cells into trace-sharing families and evaluating each family off
one bound trace -- closed-form scalar reductions, per-config replay
machines, the family-shared scheduling memo -- is **bit-identical** to
simulating every cell on its own: same Stats (dataclass equality, wall
time excluded), same cycle counts, cell for cell.  This suite pins that
claim over the exact paper grids (fig5-fig9), over randomized config
grids, and over every opt-out knob (``--no-batch`` / ``REPRO_NO_BATCH``,
``REPRO_NO_SCHED_MEMO``), so any future edit to a timing model that
forgets one of the two paths fails loudly.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import CacheConfig, MachineConfig
from repro.harness.experiments import figure_specs
from repro.harness.sweep import RunSpec, run_sweep
from repro.scheduler.memo import ScheduleMemo, config_sig, memo_disabled

SCALE = 0.05
BENCH = "compress"

FIGURES = ["fig5", "fig6", "fig7", "fig8", "fig9"]


def _pairs(specs, a, b):
    assert len(a.results) == len(b.results) == len(specs)
    return zip(specs, a.results, b.results)


def _assert_identical(specs, per_cell, batched):
    for spec, ra, rb in _pairs(specs, per_cell, batched):
        label = (spec.benchmark, spec.machine, spec.meta)
        assert ra.stats == rb.stats, label
        assert ra.cycles == rb.cycles, label
        assert ra.ref_instructions == rb.ref_instructions, label


# ------------------------------------------------------------ paper grids
@pytest.mark.parametrize("figure", FIGURES)
def test_figure_grid_bit_identical(figure):
    """Every paper-figure grid: per-cell vs family-batched, cell by cell."""
    specs = figure_specs(figure, [BENCH], scale=SCALE)
    per_cell = run_sweep(specs, use_cache=False, batch=False)
    batched = run_sweep(specs, use_cache=False, batch=True)
    _assert_identical(specs, per_cell, batched)
    # the batched run must actually have batched something -- a silent
    # fall-through to per-cell simulation would pass the identity check
    # while measuring nothing
    assert batched.summary.batched > 0, figure
    assert per_cell.summary.batched == 0, figure
    assert batched.summary.batched + batched.summary.live == len(specs)


def test_partial_family_mixes_batched_and_live():
    """fig8's real-dcache rows cannot replay: they fall back per-cell
    inside the batched sweep, and both provenances stay bit-identical."""
    specs = figure_specs("fig8", [BENCH], scale=SCALE)
    batched = run_sweep(specs, use_cache=False, batch=True)
    assert batched.summary.batched > 0
    assert batched.summary.live > 0
    per_cell = run_sweep(specs, use_cache=False, batch=False)
    _assert_identical(specs, per_cell, batched)


# ------------------------------------------------------------- opt-outs
def test_no_batch_env_is_lockstep(monkeypatch):
    """``REPRO_NO_BATCH=1`` routes ``batch=None`` to the per-cell path:
    zero batched cells, identical results."""
    specs = figure_specs("fig6", [BENCH], scale=SCALE)
    batched = run_sweep(specs, use_cache=False, batch=True)
    monkeypatch.setenv("REPRO_NO_BATCH", "1")
    plain = run_sweep(specs, use_cache=False, batch=None)
    assert plain.summary.batched == 0
    _assert_identical(specs, batched, plain)


def test_no_sched_memo_env_is_lockstep(monkeypatch):
    """``REPRO_NO_SCHED_MEMO=1`` disables segment memoization inside the
    batched evaluator without changing a single statistic."""
    specs = figure_specs("fig6", [BENCH], scale=SCALE)
    with_memo = run_sweep(specs, use_cache=False, batch=True)
    monkeypatch.setenv("REPRO_NO_SCHED_MEMO", "1")
    assert memo_disabled()
    without = run_sweep(specs, use_cache=False, batch=True)
    assert without.summary.batched == with_memo.summary.batched
    _assert_identical(specs, with_memo, without)


# --------------------------------------------------- randomized config grids
def _random_config(draw):
    width = draw(st.sampled_from([2, 4, 8, 16]))
    height = draw(st.sampled_from([2, 4, 8, 16]))
    cfg = MachineConfig.paper_fixed(width, height, test_mode=False)
    kw = {
        "vliw_cache_bytes": draw(st.sampled_from([2048, 16 * 1024, 3072 * 1024])),
        "vliw_cache_assoc": draw(st.sampled_from([1, 2, 4])),
        "nwindows": draw(st.sampled_from([4, 6, 8])),
        "int_renaming_limit": draw(st.sampled_from([None, 0, 4, 16])),
        "load_use_bubble": draw(st.sampled_from([0, 1])),
        "switch_to_vliw_cost": draw(st.sampled_from([0, 2])),
    }
    if draw(st.booleans()):
        # a real data cache makes the cell replay-ineligible: it must
        # fall back to live per-cell simulation inside the batched sweep
        kw["dcache"] = CacheConfig(
            size=8 * 1024, line_size=32, assoc=1, miss_penalty=8, perfect=False
        )
    return cfg.with_(**kw)


@settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
)
@given(st.data())
def test_random_config_grid_bit_identical(data):
    """Random config grids (mixed machines, mixed replay eligibility):
    the batched sweep stays bit-identical to the per-cell sweep."""
    n = data.draw(st.integers(min_value=2, max_value=4))
    specs = [
        RunSpec(BENCH, _random_config(data.draw), machine="dtsvliw", scale=SCALE)
        for _ in range(n)
    ]
    specs.append(RunSpec(BENCH, MachineConfig.fig9(test_mode=False),
                         machine="scalar", scale=SCALE))
    specs.append(RunSpec(BENCH, MachineConfig.fig9(test_mode=False),
                         machine="dif", scale=SCALE))
    per_cell = run_sweep(specs, use_cache=False, batch=False)
    batched = run_sweep(specs, use_cache=False, batch=True)
    _assert_identical(specs, per_cell, batched)
    assert batched.summary.batched >= 2  # scalar + dif at minimum


# ----------------------------------------------------------- memo internals
def test_config_sig_shares_across_vcache_geometry():
    """The memo table key ignores VLIW Cache geometry (that is what lets
    a fig6/fig7 family share one table) but tracks the scheduler-visible
    fields."""
    base = MachineConfig.paper_fixed(8, 8, test_mode=False)
    assert config_sig(base) == config_sig(base.with_(vliw_cache_bytes=2048))
    assert config_sig(base) == config_sig(base.with_(vliw_cache_assoc=1))
    assert config_sig(base) != config_sig(base.with_(block_width=4))
    assert config_sig(base) != config_sig(base.with_(nwindows=4))
    assert config_sig(base) != config_sig(base.with_(int_renaming_limit=0))


def test_memo_caps_are_per_table():
    """Admission caps bind per config signature: one sweep's tables can
    never starve a later sweep that shares the memo."""
    memo = ScheduleMemo(max_records=2, bucket_cap=8)
    t1 = memo.table_for(MachineConfig.paper_fixed(8, 8, test_mode=False))
    t2 = memo.table_for(MachineConfig.paper_fixed(4, 4, test_mode=False))
    assert t1 is not t2
    from repro.scheduler.memo import SegmentRecord

    assert memo.admit(t1, ("k", 0), SegmentRecord())
    assert memo.admit(t1, ("k", 1), SegmentRecord())
    assert not memo.admit(t1, ("k", 2), SegmentRecord())  # t1 full
    assert memo.admit(t2, ("k", 0), SegmentRecord())  # t2 unaffected
