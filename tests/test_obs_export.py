"""Property tests for the profile serialization format (obs/export.py).

Mirrors test_trace_roundtrip.py for the other on-disk artifact:

* encode -> decode -> encode is the byte identity (canonical JSON,
  sorted keys, fixed separators);
* decode(encode(events, meta)) reproduces the stream and the metadata;
* any truncation, bit flip, version skew or foreign bytes raises
  :class:`ProfileFormatError` -- and decoding never unpickles anything,
  so hostile bytes cannot execute.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EVENT_SCHEMA
from repro.obs.export import (
    VERSION,
    ProfileFormatError,
    decode_profile,
    encode_profile,
    load_profile,
    write_csv,
    write_profile,
)

ARG = st.one_of(
    st.integers(min_value=-(2**40), max_value=2**40),
    st.text(
        alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\n"),
        max_size=12,
    ),
)


@st.composite
def events(draw):
    kind = draw(st.sampled_from(sorted(EVENT_SCHEMA)))
    arity = len(EVENT_SCHEMA[kind])
    return (kind,) + tuple(draw(ARG) for _ in range(arity))


EVENT_LISTS = st.lists(events(), max_size=80)
META = st.dictionaries(
    st.text(max_size=8), st.one_of(st.integers(), st.text(max_size=8)), max_size=4
)


@settings(max_examples=100, deadline=None)
@given(EVENT_LISTS, META)
def test_round_trip_is_byte_identity(evs, meta):
    blob = encode_profile(evs, meta)
    out_meta, out_events = decode_profile(blob)
    assert out_events == evs
    assert out_meta == meta
    assert encode_profile(out_events, out_meta) == blob


@settings(max_examples=80, deadline=None)
@given(EVENT_LISTS, META, st.data())
def test_truncation_raises(evs, meta, data):
    blob = encode_profile(evs, meta)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(ProfileFormatError):
        decode_profile(blob[:cut])


@settings(max_examples=100, deadline=None)
@given(EVENT_LISTS, META, st.data())
def test_corruption_raises(evs, meta, data):
    """Any single flipped byte is caught: the digest covers header and
    body, and a flip inside the footer breaks one of its own checks."""
    blob = bytearray(encode_profile(evs, meta))
    pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    blob[pos] ^= flip
    with pytest.raises(ProfileFormatError):
        decode_profile(bytes(blob))


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=400))
def test_garbage_raises_not_crashes(blob):
    with pytest.raises(ProfileFormatError):
        decode_profile(blob)


def _reseal(lines):
    """Re-sign arbitrary profile lines with a valid footer, so tests reach
    the checks *behind* the digest verification."""
    from hashlib import sha256

    body = ("\n".join(lines) + "\n").encode("utf-8")
    footer = {
        "end": True,
        "events": 0,
        "sha256": sha256(body).hexdigest(),
    }
    return body + (
        json.dumps(footer, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def test_wrong_version_raises():
    blob = encode_profile([], {})
    header = json.loads(blob.decode().split("\n", 1)[0])
    header["version"] = VERSION + 1
    forged = _reseal([json.dumps(header, sort_keys=True, separators=(",", ":"))])
    with pytest.raises(ProfileFormatError, match="version"):
        decode_profile(forged)


def test_wrong_format_raises():
    header = {"format": "not-a-profile", "version": VERSION, "events": 0, "meta": {}}
    forged = _reseal([json.dumps(header, sort_keys=True, separators=(",", ":"))])
    with pytest.raises(ProfileFormatError):
        decode_profile(forged)


def test_pickle_bytes_are_rejected():
    import pickle

    evil = pickle.dumps({"never": "unpickled"})
    with pytest.raises(ProfileFormatError):
        decode_profile(evil)


def test_non_scalar_args_are_rejected_at_encode():
    with pytest.raises(ProfileFormatError):
        encode_profile([("mode_switch", [1, 2])])
    with pytest.raises(ProfileFormatError):
        encode_profile([("mode_switch", True)])  # bools are not counters


def test_write_and_load_profile(tmp_path):
    evs = [("mode_switch", 0, 4096), ("cache_miss", "dcache")]
    path = write_profile(tmp_path / "p.jsonl", evs, {"benchmark": "compress"})
    meta, out = load_profile(path)
    assert out == evs
    assert meta == {"benchmark": "compress"}
    assert not list(tmp_path.glob(".tmp-*"))  # atomic write left no temp file


def test_load_missing_file_raises(tmp_path):
    with pytest.raises(ProfileFormatError):
        load_profile(tmp_path / "absent.jsonl")


def test_csv_export_is_lossy_but_rectangular(tmp_path):
    evs = [("mode_switch", 0, 4096), ("block_flush", 8, "full", 3, 9, 64, 1, 0, 0, 2)]
    path = write_csv(tmp_path / "p.csv", evs)
    rows = path.read_text().strip().split("\n")
    assert rows[0] == "seq,kind,field,value"
    assert all(len(r.split(",")) == 4 for r in rows[1:])
    assert len(rows) == 1 + 2 + 9
