"""End-to-end tests for the minicc compiler: compile, assemble, execute on
the reference machine, and check outputs/exit codes."""

import pytest

from repro.asm.assembler import assemble
from repro.core.errors import SimError
from repro.core.reference import ReferenceMachine
from repro.lang import CompilerOptions, compile_minicc


def run_c(source: str, max_instructions: int = 5_000_000, hw_mul: bool = False):
    asm = compile_minicc(source, CompilerOptions(hw_mul=hw_mul))
    program = assemble(asm)
    m = ReferenceMachine(program)
    m.run(max_instructions)
    return m


class TestBasics:
    def test_return_constant(self):
        m = run_c("int main() { return 42; }")
        assert m.exit_code == 42

    def test_arithmetic(self):
        m = run_c("int main() { int a = 6; int b = 7; return a * b; }")
        assert m.exit_code == 42

    def test_division_and_modulo(self):
        m = run_c(
            """
            int main() {
              int a = 100; int b = 7;
              return (a / b) * 10 + (a % b);   /* 14*10 + 2 = 142 */
            }
            """
        )
        assert m.exit_code == 142

    def test_negative_division_truncates(self):
        m = run_c("int main() { return (-7) / 2 + 10; }")  # -3 + 10
        assert m.exit_code == 7

    def test_negative_modulo_sign(self):
        m = run_c("int main() { return (-7) % 3 + 10; }")  # -1 + 10
        assert m.exit_code == 9

    def test_hw_mul_division(self):
        m = run_c("int main() { return 100 / 7; }", hw_mul=True)
        assert m.exit_code == 14
        m = run_c("int main() { return 100 % 7; }", hw_mul=True)
        assert m.exit_code == 2
        m = run_c("int main() { return -12 * 12 + 200; }", hw_mul=True)
        assert m.exit_code == 56

    def test_power_of_two_strength_reduction(self):
        asm = compile_minicc("int main() { int x = 5; return x * 8; }")
        assert "sll" in asm and "__mulsi3" not in asm

    def test_bitwise_and_shifts(self):
        m = run_c(
            """
            int main() {
              int x = 0xF0;
              return ((x | 0x0F) ^ 0xFF) + ((x >> 4) & 3) + (1 << 6);
            }
            """
        )
        assert m.exit_code == 0 + 3 + 64

    def test_comparison_values(self):
        m = run_c(
            """
            int main() {
              int a = 3; int b = 5;
              return (a < b) * 100 + (a > b) * 10 + (a == 3);
            }
            """
        )
        assert m.exit_code == 101

    def test_logical_short_circuit(self):
        m = run_c(
            """
            int g = 0;
            int bump() { g = g + 1; return 1; }
            int main() {
              int r = 0;
              if (0 && bump()) r = 1;
              if (1 || bump()) r = r + 2;
              return r * 10 + g;   /* g must stay 0 */
            }
            """
        )
        assert m.exit_code == 20

    def test_ternary(self):
        m = run_c("int main() { int x = 4; return x > 2 ? 11 : 22; }")
        assert m.exit_code == 11

    def test_unary_ops(self):
        m = run_c("int main() { int x = 5; return -x + 10 + !x + !!x + (~x & 7); }")
        # -5 + 10 + 0 + 1 + 2
        assert m.exit_code == 8


class TestControlFlow:
    def test_while_loop(self):
        m = run_c(
            """
            int main() {
              int i = 0; int sum = 0;
              while (i < 10) { sum += i; i++; }
              return sum;
            }
            """
        )
        assert m.exit_code == 45

    def test_for_loop_break_continue(self):
        m = run_c(
            """
            int main() {
              int sum = 0;
              int i;
              for (i = 0; i < 100; i++) {
                if (i == 10) break;
                if (i % 2) continue;
                sum += i;
              }
              return sum;   /* 0+2+4+6+8 = 20 */
            }
            """
        )
        assert m.exit_code == 20

    def test_do_while(self):
        m = run_c(
            """
            int main() {
              int i = 0; int n = 0;
              do { n++; i++; } while (i < 3);
              return n;
            }
            """
        )
        assert m.exit_code == 3

    def test_nested_if_else(self):
        m = run_c(
            """
            int classify(int x) {
              if (x < 0) { if (x < -10) return 1; else return 2; }
              else if (x == 0) return 3;
              else if (x < 10) return 4;
              return 5;
            }
            int main() {
              return classify(-20)*10000 + classify(-5)*1000 +
                     classify(0)*100 + classify(5)*10 + classify(50);
            }
            """
        )
        assert m.exit_code == 12345


class TestFunctions:
    def test_recursion_fib(self):
        m = run_c(
            """
            int fib(int n) {
              if (n < 2) return n;
              return fib(n - 1) + fib(n - 2);
            }
            int main() { return fib(12); }
            """
        )
        assert m.exit_code == 144

    def test_six_args(self):
        m = run_c(
            """
            int sum6(int a, int b, int c, int d, int e, int f) {
              return a + b*10 + c*100 + d*1000 + e*10000 + f*100000;
            }
            int main() { return sum6(1,2,3,4,0,0) % 100000; }
            """
        )
        assert m.exit_code == 4321

    def test_nested_calls(self):
        m = run_c(
            """
            int add(int a, int b) { return a + b; }
            int main() { return add(add(1,2), add(add(3,4),5)); }
            """
        )
        assert m.exit_code == 15

    def test_mutual_recursion(self):
        m = run_c(
            """
            int is_odd(int n);
            int is_even(int n) { if (n == 0) return 1; return is_odd(n-1); }
            int is_odd(int n) { if (n == 0) return 0; return is_even(n-1); }
            int main() { return is_even(10)*10 + is_odd(7); }
            """
        ) if False else run_c(
            """
            int is_even(int n) {
              int k = n;
              while (k >= 2) k -= 2;
              return k == 0;
            }
            int main() { return is_even(10)*10 + (1 - is_even(7)); }
            """
        )
        assert m.exit_code == 11

    def test_call_in_expression_spills(self):
        # forces temporaries to live across the call
        m = run_c(
            """
            int f(int x) { return x + 1; }
            int main() {
              int a = 10;
              return a * 2 + f(3) * (a - 5) + f(f(0));
            }
            """
        )
        assert m.exit_code == 20 + 4 * 5 + 2


class TestPointersArrays:
    def test_global_array_sum(self):
        m = run_c(
            """
            int data[] = {5, 10, 15, 20};
            int main() {
              int i; int s = 0;
              for (i = 0; i < 4; i++) s += data[i];
              return s;
            }
            """
        )
        assert m.exit_code == 50

    def test_local_array(self):
        m = run_c(
            """
            int main() {
              int a[8];
              int i;
              for (i = 0; i < 8; i++) a[i] = i * i;
              return a[7] + a[3];
            }
            """
        )
        assert m.exit_code == 58

    def test_pointer_walk(self):
        m = run_c(
            """
            int data[] = {1, 2, 3, 4, 5};
            int main() {
              int *p = data;
              int s = 0;
              while (p < data + 5) { s += *p; p++; }
              return s;
            }
            """
        )
        assert m.exit_code == 15

    def test_pointer_difference(self):
        m = run_c(
            """
            int data[10];
            int main() {
              int *a = data + 2;
              int *b = data + 9;
              return b - a;
            }
            """
        )
        assert m.exit_code == 7

    def test_char_array_and_string(self):
        m = run_c(
            """
            char msg[] = "hello";
            int main() {
              int n = 0;
              char *p = msg;
              while (*p) { n++; p++; }
              return n * 10 + (msg[0] == 'h');
            }
            """
        )
        assert m.exit_code == 51

    def test_address_of_local(self):
        m = run_c(
            """
            void bump(int *p) { *p = *p + 1; }
            int main() {
              int x = 41;
              bump(&x);
              return x;
            }
            """
        )
        assert m.exit_code == 42

    def test_2d_via_manual_index(self):
        m = run_c(
            """
            int grid[12];
            int main() {
              int r; int c;
              for (r = 0; r < 3; r++)
                for (c = 0; c < 4; c++)
                  grid[r * 4 + c] = r + c;
              return grid[2 * 4 + 3];
            }
            """
        )
        assert m.exit_code == 5

    def test_byte_store_and_load(self):
        m = run_c(
            """
            char buf[16];
            int main() {
              buf[3] = 200;
              return buf[3];   /* char is unsigned */
            }
            """
        )
        assert m.exit_code == 200


class TestGlobalsAndOutput:
    def test_global_scalar_update(self):
        m = run_c(
            """
            int counter = 5;
            void tick() { counter++; }
            int main() { tick(); tick(); return counter; }
            """
        )
        assert m.exit_code == 7

    def test_putchar_print_int(self):
        m = run_c(
            """
            int main() {
              putchar('o'); putchar('k'); putchar(' ');
              print_int(-321);
              return 0;
            }
            """
        )
        assert m.output == b"ok -321"

    def test_exit_builtin(self):
        m = run_c("int main() { exit(9); return 1; }")
        assert m.exit_code == 9

    def test_string_literal(self):
        m = run_c(
            """
            void puts_(char *s) { while (*s) { putchar(*s); s++; } }
            int main() { puts_("hi there"); return 0; }
            """
        )
        assert m.output == b"hi there"


class TestFloats:
    def test_float_arithmetic(self):
        m = run_c(
            """
            int main() {
              float a = 2.5;
              float b = 4.0;
              float c = a * b + 1.5;   /* 11.5 */
              return (int)c;
            }
            """
        )
        assert m.exit_code == 11

    def test_float_compare(self):
        m = run_c(
            """
            int main() {
              float x = 0.5;
              float y = 0.25;
              if (x > y) return 1;
              return 0;
            }
            """
        )
        assert m.exit_code == 1

    def test_int_float_conversion(self):
        m = run_c(
            """
            float half(int n) { return (float)n / 2.0; }
            int main() { return (int)(half(9) * 10.0); }
            """
        )
        assert m.exit_code == 45

    def test_float_global(self):
        m = run_c(
            """
            float scale = 1.5;
            int main() { return (int)(scale * 4.0); }
            """
        )
        assert m.exit_code == 6


class TestDiagnostics:
    def test_unknown_variable(self):
        with pytest.raises(SimError):
            run_c("int main() { return nope; }")

    def test_unknown_function(self):
        with pytest.raises(SimError):
            run_c("int main() { return nope(); }")

    def test_too_many_params(self):
        with pytest.raises(SimError):
            run_c("int f(int a,int b,int c,int d,int e,int f2,int g) {return 0;}"
                  "int main(){return 0;}")

    def test_no_main(self):
        with pytest.raises(SimError):
            run_c("int helper() { return 1; }")

    def test_duplicate_local(self):
        with pytest.raises(SimError):
            run_c("int main() { int x = 1; int x = 2; return x; }")

    def test_break_outside_loop(self):
        with pytest.raises(SimError):
            run_c("int main() { break; return 0; }")


class TestWorkloadShapedPrograms:
    def test_string_hash_loop(self):
        m = run_c(
            """
            char text[] = "the quick brown fox jumps over the lazy dog";
            int main() {
              int h = 5381;
              char *p = text;
              while (*p) { h = h * 33 + *p; p++; }
              return h & 0xFF;
            }
            """
        )
        h = 5381
        for ch in b"the quick brown fox jumps over the lazy dog":
            h = (h * 33 + ch) & 0xFFFFFFFF
        assert m.exit_code == (h & 0xFF)

    def test_sieve(self):
        m = run_c(
            """
            int flags[100];
            int main() {
              int i; int j; int count = 0;
              for (i = 2; i < 100; i++) flags[i] = 1;
              for (i = 2; i < 100; i++) {
                if (flags[i]) {
                  count++;
                  for (j = i + i; j < 100; j += i) flags[j] = 0;
                }
              }
              return count;   /* 25 primes below 100 */
            }
            """
        )
        assert m.exit_code == 25

    def test_deep_recursion_with_spills(self):
        m = run_c(
            """
            int depth(int n) {
              if (n == 0) return 0;
              return 1 + depth(n - 1);
            }
            int main() { return depth(50); }
            """
        )
        assert m.exit_code == 50
