"""Property tests for the trace serialization format (store.py).

Three invariants:

* encode -> decode -> encode is the byte identity (the format is
  canonical: little-endian aux column, deterministic zlib level);
* decode(encode(t)) reproduces every field of ``t``;
* any truncation or corruption raises :class:`TraceFormatError` -- and
  decoding never unpickles anything, so hostile bytes cannot execute.
"""

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.events import Trace
from repro.trace.store import TraceFormatError, decode_trace, encode_trace

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@st.composite
def traces(draw):
    count = draw(st.integers(min_value=0, max_value=300))
    return Trace(
        draw(st.binary(min_size=32, max_size=32)),
        draw(U32),
        count,
        draw(st.binary(min_size=count, max_size=count)),
        array("I", draw(st.lists(U32, min_size=count, max_size=count))),
        draw(st.binary(max_size=200)),
        draw(st.integers(min_value=-(2**31), max_value=2**31 - 1)),
    )


@settings(max_examples=150, deadline=None)
@given(traces())
def test_round_trip_is_byte_identity(trace):
    blob = encode_trace(trace)
    decoded = decode_trace(blob)
    assert encode_trace(decoded) == blob
    assert decoded.fingerprint == trace.fingerprint
    assert decoded.mem_size == trace.mem_size
    assert decoded.count == trace.count
    assert bytes(decoded.flags) == bytes(trace.flags)
    assert list(decoded.aux) == list(trace.aux)
    assert bytes(decoded.output) == bytes(trace.output)
    assert decoded.exit_code == trace.exit_code


@settings(max_examples=100, deadline=None)
@given(traces(), st.data())
def test_truncation_raises(trace, data):
    blob = encode_trace(trace)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(TraceFormatError):
        decode_trace(blob[:cut])


@settings(max_examples=150, deadline=None)
@given(traces(), st.data())
def test_corruption_raises(trace, data):
    """Any single flipped byte is caught (the digest covers everything)."""
    blob = bytearray(encode_trace(trace))
    pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    flip = data.draw(st.integers(min_value=1, max_value=255))
    blob[pos] ^= flip
    with pytest.raises(TraceFormatError):
        decode_trace(bytes(blob))


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=400))
def test_garbage_raises_not_crashes(blob):
    with pytest.raises(TraceFormatError):
        decode_trace(blob)


def test_pickle_bytes_are_rejected():
    import pickle

    evil = pickle.dumps({"never": "unpickled"})
    with pytest.raises(TraceFormatError):
        decode_trace(evil)
