"""Unit and property tests for the Scheduler Unit.

The property tests validate the core claim of the FCFS list scheduler: a
block executed long-instruction by long-instruction with read-then-write
semantics (and the split/COPY renaming) is architecturally equivalent to
executing the trace sequentially -- including truncation at a deviating
branch (tag annulment).
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import MachineConfig
from repro.core.stats import Stats
from repro.isa.instructions import FU_INT, Instr, OPCODES
from repro.isa.registers import CC_ID, CRR_BASE, FRR_BASE, IRR_BASE
from repro.scheduler.ops import SchedOp, X_ALU, X_BRANCH
from repro.scheduler.renaming import RenamePools, split_candidate
from repro.scheduler.unit import FLUSH_DRAIN, SchedulerUnit

# Abstract locations: integer "globals" 1..6 (physical == visible) and cc.
LOCS = [1, 2, 3, 4, 5, 6, CC_ID]


def make_op(opid, reads=(), writes=(), branch=False, taken=True):
    if branch:
        instr = Instr(OPCODES["be"], imm=16, addr=0x1000 + 4 * opid)
        op = SchedOp(instr, X_BRANCH, OPCODES["be"].fu, 1)
        op.no_split = True
        op.taken = taken
        op.reads = frozenset(reads) | {CC_ID}
        op.writes = frozenset()
        op.src_fields = (("cc", CC_ID),)
        return op
    instr = Instr(OPCODES["add"], rd=1, rs1=1, rs2=2, addr=0x1000 + 4 * opid)
    op = SchedOp(instr, X_ALU, FU_INT, 1)
    op.reads = frozenset(reads)
    op.writes = frozenset(writes)
    # first two register reads are substitutable sources (like rs1/rs2),
    # so the rename-map reader-redirect machinery gets exercised
    srcs = []
    for field, loc in zip(("rs1", "rs2"), sorted(r for r in op.reads if r != CC_ID)):
        srcs.append((field, loc))
    op.src_fields = tuple(srcs)
    int_w = [w for w in op.writes if w < 8]
    op.int_dst_visible = int_w[0] if int_w else None
    if not op.writes:
        op.no_split = True
    return op


def sched(width=4, height=4, **kw):
    cfg = MachineConfig.paper_fixed(width, height, **kw)
    return SchedulerUnit(cfg, Stats())


def run_schedule(unit, ops):
    """Insert ops one cycle apart; return the list of flushed blocks."""
    blocks = []
    for op in ops:
        unit.tick(1)
        b = unit.insert(op)
        if b is not None:
            blocks.append(b)
    unit.tick(unit.cfg.block_height + 2)
    b = unit.flush(FLUSH_DRAIN, 0)
    if b is not None:
        blocks.append(b)
    return blocks


class AbstractState:
    """Value store over abstract locations + per-block renaming files."""

    def __init__(self):
        self.vals = {loc: ("init", loc) for loc in LOCS}

    def op_value(self, op, loc, read_vals):
        # independent of the destination and of operand *order*: renaming
        # relabels where values live, not what they are
        return ("v", op.addr, tuple(sorted(read_vals)))


def arch_reads(op, state, int_rr=None, cc_rr=None):
    """Fetch read values; renamed locations come from the rename files."""
    out = []
    for r in sorted(op.reads):
        if r in state.vals:
            out.append(state.vals[r])
        elif int_rr is not None and IRR_BASE <= r < FRR_BASE:
            out.append(int_rr[r - IRR_BASE])
        elif cc_rr is not None and CRR_BASE <= r < CRR_BASE + 10000:
            out.append(cc_rr[r - CRR_BASE])
    return out


def exec_sequential(ops, flip_branch_at=None):
    """Golden model: program order; optionally stop after a branch whose
    direction 'deviates' (everything after it must not commit)."""
    state = AbstractState()
    for i, op in enumerate(ops):
        if op.is_branch:
            if flip_branch_at is not None and i == flip_branch_at:
                return state
            continue
        rv = arch_reads(op, state)
        for w in sorted(op.writes):
            state.vals[w] = state.op_value(op, w, rv)
    return state


def exec_blocks(blocks, flip_branch_addr=None):
    """Execute blocks LI-by-LI with read-phase/write-phase semantics,
    renaming registers and tag annulment, mirroring the VLIW Engine."""
    state = AbstractState()
    for block in blocks:
        int_rr = [None] * block.n_int_rr
        cc_rr = [None] * block.n_cc_rr
        redirect = False
        for li in block.lis:
            # read phase
            computed = []
            mismatch_at = None
            for op in li.installed_ops():
                if op.is_copy:
                    vals = []
                    for act in op.copy_actions:
                        if act[0] in ("int", "irr"):
                            vals.append(int_rr[act[1]])
                        else:
                            vals.append(cc_rr[act[1]])
                    computed.append((op, vals))
                else:
                    computed.append((op, arch_reads(op, state, int_rr, cc_rr)))
            for k, br in enumerate(li.branches):
                if flip_branch_addr is not None and br.addr == flip_branch_addr:
                    mismatch_at = k
                    break
            limit = mismatch_at if mismatch_at is not None else 1 << 30
            # write phase
            for op, rv in computed:
                if op.tag_depth > limit:
                    continue
                if op.is_copy:
                    for act, v in zip(op.copy_actions, rv):
                        assert v is not None, "copy read unwritten rename"
                        if act[0] == "int":
                            state.vals[act[2]] = v
                        elif act[0] == "irr":
                            int_rr[act[2]] = v
                        elif act[0] == "cc":
                            state.vals[CC_ID] = v
                        else:
                            cc_rr[act[2]] = v
                    continue
                if op.is_branch:
                    continue
                for w in sorted(op.writes):
                    val = state.op_value(op, w, rv)
                    if IRR_BASE <= w < FRR_BASE:
                        int_rr[w - IRR_BASE] = val
                    elif CRR_BASE <= w < CRR_BASE + 10000:
                        cc_rr[w - CRR_BASE] = val
                    else:
                        state.vals[w] = val
            if mismatch_at is not None:
                redirect = True
                break
        if redirect:
            break
    return state


def _loc_sets(draw_sets):
    return draw_sets


# Like real srisc ops: at most one integer destination plus optionally the
# condition codes.
op_strategy = st.lists(
    st.tuples(
        st.lists(st.sampled_from(LOCS), max_size=3),  # reads
        st.lists(st.sampled_from([1, 2, 3, 4, 5, 6]), max_size=1),  # int dest
        st.booleans(),  # sets cc too
        st.integers(0, 9),  # branch roll (0 => branch)
    ),
    min_size=1,
    max_size=40,
)


def build_ops(spec):
    ops = []
    for i, (reads, writes, sets_cc, roll) in enumerate(spec):
        if roll == 0:
            ops.append(make_op(i, branch=True))
        else:
            w = set(writes)
            if sets_cc:
                w.add(CC_ID)
            ops.append(make_op(i, reads=reads, writes=w))
    return ops


class TestSchedulerProperties:
    @settings(max_examples=120, deadline=None)
    @given(op_strategy, st.sampled_from([(2, 2), (4, 4), (8, 4), (3, 5), (1, 4)]))
    def test_block_execution_equals_sequential(self, spec, geom):
        ops = build_ops(spec)
        # golden model first: scheduling mutates ops in place (splits)
        want = exec_sequential(ops)
        unit = sched(*geom)
        blocks = run_schedule(unit, ops)
        got = exec_blocks(blocks)
        assert got.vals == want.vals

    @settings(max_examples=60, deadline=None)
    @given(op_strategy, st.integers(0, 39))
    def test_branch_annulment_truncates(self, spec, flip_idx):
        ops = build_ops(spec)
        branches = [i for i, op in enumerate(ops) if op.is_branch]
        if not branches:
            return
        flip = min(branches, key=lambda i: abs(i - flip_idx))
        want = exec_sequential(ops, flip_branch_at=flip)
        unit = sched(4, 4)
        blocks = run_schedule(unit, ops)
        got = exec_blocks(blocks, flip_branch_addr=ops[flip].addr)
        assert got.vals == want.vals

    @settings(max_examples=60, deadline=None)
    @given(op_strategy)
    def test_no_intra_li_flow_dependences(self, spec):
        """Within one long instruction, no op reads a location written by
        another op of the same long instruction placed earlier in program
        order (read-then-write makes same-LI WAR legal, RAW illegal)."""
        ops = build_ops(spec)
        unit = sched(4, 4)
        blocks = run_schedule(unit, ops)
        for block in blocks:
            for li in block.lis:
                installed = sorted(li.installed_ops(), key=lambda o: o.addr)
                for i, earlier in enumerate(installed):
                    for later in installed[i + 1 :]:
                        assert not (
                            later.reads & earlier.writes
                        ), "RAW within one long instruction"

    @settings(max_examples=60, deadline=None)
    @given(op_strategy)
    def test_same_location_writes_stay_ordered(self, spec):
        """Two unrenamed writes to one location never share a long
        instruction and keep program order within a block."""
        ops = build_ops(spec)
        unit = sched(4, 4)
        blocks = run_schedule(unit, ops)
        for block in blocks:
            writers = {}  # loc -> (li_index, addr) of last writer seen
            for idx, li in enumerate(block.lis):
                for op in li.installed_ops():
                    for w in op.writes:
                        if w >= IRR_BASE and w < CRR_BASE + 10000 and w != CC_ID:
                            continue  # renames are single-assignment
                        if w in writers:
                            prev_idx, prev_addr = writers[w]
                            assert idx != prev_idx, (
                                "two writes to %r share a long instruction" % w
                            )
                            assert (idx > prev_idx) == (op.addr > prev_addr), (
                                "write order inverted for %r" % w
                            )
                        writers[w] = (idx, op.addr)


class TestSchedulerMechanics:
    def test_independent_ops_pack_into_one_li(self):
        unit = sched(4, 4)
        ops = [make_op(i, reads=(), writes={i + 1}) for i in range(3)]
        blocks = run_schedule(unit, ops)
        assert len(blocks) == 1
        assert blocks[0].lis[0].op_count() == 3

    def test_flow_dependence_opens_new_entry(self):
        unit = sched(4, 4)
        ops = [make_op(0, writes={1}), make_op(1, reads={1}, writes={2})]
        (block,) = run_schedule(unit, ops)
        assert len(block.lis) == 2

    def test_chain_fills_block_height(self):
        unit = sched(4, 4)
        ops = [make_op(i, reads={i}, writes={i + 1}) for i in range(4)]
        # chain through locations 0..4 is serial: 4 entries
        ops[0] = make_op(0, reads=(), writes={1})
        (block,) = run_schedule(unit, ops)
        assert len(block.lis) == 4

    def test_full_list_flushes(self):
        unit = sched(2, 2)
        ops = [make_op(0, writes={1})]
        for i in range(1, 5):
            ops.append(make_op(i, reads={i}, writes={i + 1}))
        blocks = run_schedule(unit, ops)
        assert len(blocks) >= 2
        assert blocks[0].nba_addr == blocks[1].start_addr

    def test_independent_op_moves_up(self):
        unit = sched(4, 4)
        ops = [
            make_op(0, writes={1}),
            make_op(1, reads={1}, writes={2}),  # dependent: entry 1
            make_op(2, reads=(), writes={3}),  # independent: climbs to LI 0
        ]
        (block,) = run_schedule(unit, ops)
        li0_addrs = {op.addr for op in block.lis[0].installed_ops()}
        assert ops[2].addr in li0_addrs

    def test_waw_split_leaves_copy(self):
        unit = sched(4, 4)
        ops = [
            make_op(0, writes={1}),
            make_op(1, reads={1}, writes={2}),
            make_op(2, reads=(), writes={1}),  # WAW with op0 -> split
        ]
        (block,) = run_schedule(unit, ops)
        copies = [
            op
            for li in block.lis
            for op in li.installed_ops()
            if op.is_copy
        ]
        assert len(copies) == 1
        assert copies[0].copy_actions[0][0] == "int"
        assert unit.stats.splits == 1

    def test_branch_never_moves_and_tags_followers(self):
        unit = sched(4, 4)
        ops = [
            make_op(0, writes={CC_ID}),
            make_op(1, branch=True),  # reads cc -> entry 1
            make_op(2, reads=(), writes={3}),  # independent; joins branch LI
        ]
        (block,) = run_schedule(unit, ops)
        br_li = next(
            i for i, li in enumerate(block.lis) if li.num_branches
        )
        follower = next(
            op
            for li in block.lis[: br_li + 1]
            for op in li.installed_ops()
            if op.addr == ops[2].addr
        )
        if follower.dst_rr is None:
            # landed beside the branch: must carry its tag
            assert follower.tag_depth == 1

    def test_rename_pool_exhaustion_installs(self):
        unit = sched(4, 8, int_renaming_limit=0)
        ops = [
            make_op(0, writes={1}),
            make_op(1, reads={1}, writes={2}),
            make_op(2, reads=(), writes={1}),  # WAW but no renaming left
        ]
        (block,) = run_schedule(unit, ops)
        assert unit.stats.splits == 0
        assert block.n_int_rr == 0

    def test_order_counter_assigned_to_memory_ops(self):
        from repro.isa.registers import mem_loc

        unit = sched(4, 4)
        op1 = make_op(0, writes={mem_loc(0x100)})
        op1.is_store_effect = True
        op1.mem_addr = 0x100
        op1.mem_size = 4
        op1.int_dst_visible = None
        op2 = make_op(1, reads={mem_loc(0x200)}, writes={2})
        op2.is_load = True
        op2.mem_addr = 0x200
        op2.mem_size = 4
        run_schedule(unit, [op1, op2])
        assert op1.order == 0
        assert op2.order == 1

    def test_slot_typing_restricts_placement(self):
        from repro.isa.instructions import FU_BR, FU_LS

        cfg = MachineConfig.paper_fixed(2, 4)
        cfg.slot_classes = [FU_LS, FU_BR]
        unit = SchedulerUnit(cfg, Stats())
        op = make_op(0, writes={1})  # an FU_INT op fits no slot
        import pytest
        from repro.core.errors import SimError

        with pytest.raises(SimError):
            unit.insert(op)


class TestRenameMapRedirect:
    """The paper's Figure 2 shows ``subcc r32, ...``: after a split, later
    readers are redirected to the renaming register."""

    def test_reader_after_split_reads_rename(self):
        unit = sched(4, 8)
        producer = make_op(2, reads=(), writes={1})  # WAW on 1 -> split
        for op in [
            make_op(0, writes={1}),
            make_op(1, reads={1}, writes={2}),
            producer,
        ]:
            unit.tick(1)
            unit.insert(op)
        unit.tick(6)  # let the candidate climb and split
        assert producer.dst_rr is not None  # the split happened
        reader = make_op(3, reads={1}, writes={3})
        unit.insert(reader)
        assert reader.rs1_rr == producer.dst_rr  # redirected (Fig. 2)
        assert IRR_BASE + producer.dst_rr in reader.reads

    def test_reader_after_newer_writer_not_redirected(self):
        unit = sched(4, 8)
        ops = [
            make_op(0, writes={1}),
            make_op(1, reads={1}, writes={2}),
            make_op(2, reads=(), writes={1}),  # splits eventually
            make_op(3, reads=(), writes={1}),  # newer definition of 1
            make_op(4, reads={1}, writes={3}),  # must NOT read op2's rename
        ]
        run_schedule(unit, ops)
        if ops[2].dst_rr is not None and ops[3].dst_rr is None:
            assert ops[4].rs1_rr != ops[2].dst_rr or ops[4].rs1_rr is None

    def test_flush_clears_redirects(self):
        unit = sched(2, 2)
        ops = [
            make_op(0, writes={1}),
            make_op(1, reads={1}, writes={2}),
            make_op(2, reads=(), writes={1}),
            make_op(3, reads={2}, writes={4}),
            make_op(4, reads={4}, writes={5}),
            make_op(5, reads={5}, writes={6}),
            make_op(6, reads={1}, writes={3}),  # lands in a later block
        ]
        blocks = run_schedule(unit, ops)
        assert len(blocks) >= 2
        # an op whose block does not contain the split must read the
        # architectural location (renames are per-block)
        last = ops[6]
        for loc in last.reads:
            assert loc < IRR_BASE or loc == CC_ID


class TestSplitCandidate:
    def test_split_renames_offending_output(self):
        pools = RenamePools()
        op = make_op(0, reads={2}, writes={1, CC_ID})
        copy = split_candidate(op, {1}, rename_all=False, pools=pools)
        assert copy is not None
        assert op.dst_rr == 0
        assert op.cc_rr is None
        assert CC_ID in op.writes
        assert IRR_BASE in op.writes
        assert copy.writes == frozenset({1})

    def test_control_split_renames_everything(self):
        pools = RenamePools()
        op = make_op(0, writes={1, CC_ID})
        copy = split_candidate(op, set(), rename_all=True, pools=pools)
        assert op.dst_rr == 0 and op.cc_rr == 0
        assert copy.writes == frozenset({1, CC_ID})
        kinds = sorted(a[0] for a in copy.copy_actions)
        assert kinds == ["cc", "int"]

    def test_double_split_chains_renames(self):
        pools = RenamePools()
        op = make_op(0, writes={1})
        c1 = split_candidate(op, {1}, rename_all=False, pools=pools)
        c2 = split_candidate(op, set(op.writes), rename_all=True, pools=pools)
        assert c2.copy_actions[0][0] == "irr"
        assert c2.copy_actions[0][2] == 0  # writes the first rename
        assert op.dst_rr == 1

    def test_pool_limit_returns_none_without_side_effects(self):
        pools = RenamePools(limit_int=1)
        op1 = make_op(0, writes={1})
        assert split_candidate(op1, {1}, False, pools) is not None
        op2 = make_op(1, writes={2})
        before = frozenset(op2.writes)
        assert split_candidate(op2, {2}, False, pools) is None
        assert op2.writes == before
        assert pools.n_int == 1

    def test_nothing_to_rename_returns_none(self):
        pools = RenamePools()
        op = make_op(0, writes={1})
        assert split_candidate(op, {99}, rename_all=False, pools=pools) is None
