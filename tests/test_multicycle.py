"""Tests for multicycle-instruction scheduling ([14] / section 3.9)."""

import pytest

from repro.asm.assembler import assemble
from repro.core.config import MachineConfig
from repro.core.machine import DTSVLIW
from repro.core.reference import ReferenceMachine
from repro.core.stats import Stats
from repro.isa.instructions import FU_INT, Instr, OPCODES
from repro.scheduler.ops import SchedOp, X_ALU
from repro.scheduler.unit import FLUSH_DRAIN, SchedulerUnit

from tests.test_scheduler_unit import make_op, run_schedule, sched


def make_mc_op(opid, reads=(), writes=(), latency=4):
    op = make_op(opid, reads=reads, writes=writes)
    op.latency = latency
    return op


def li_index_of(block, addr):
    for i, li in enumerate(block.lis):
        for op in li.installed_ops():
            if op.addr == addr:
                return i
    raise AssertionError("op not found")


class TestLatencyAwarePlacement:
    def test_consumer_keeps_latency_distance(self):
        unit = sched(4, 16)
        producer = make_mc_op(0, writes={1}, latency=4)
        consumer = make_op(1, reads={1}, writes={2})
        (block,) = run_schedule(unit, [producer, consumer])
        p = li_index_of(block, producer.addr)
        c = li_index_of(block, consumer.addr)
        assert c - p >= 4

    def test_unit_latency_distance_is_one(self):
        unit = sched(4, 16)
        producer = make_op(0, writes={1})
        consumer = make_op(1, reads={1}, writes={2})
        (block,) = run_schedule(unit, [producer, consumer])
        assert (
            li_index_of(block, consumer.addr)
            - li_index_of(block, producer.addr)
            == 1
        )

    def test_independent_op_may_sit_between(self):
        unit = sched(4, 16)
        producer = make_mc_op(0, writes={1}, latency=3)
        free = make_op(1, reads=(), writes={5})
        consumer = make_op(2, reads={1}, writes={2})
        (block,) = run_schedule(unit, [producer, free, consumer])
        assert li_index_of(block, free.addr) <= li_index_of(block, consumer.addr)

    def test_multicycle_disabled_ignores_latency(self):
        unit = sched(4, 16, multicycle=False)
        producer = make_mc_op(0, writes={1}, latency=4)
        consumer = make_op(1, reads={1}, writes={2})
        (block,) = run_schedule(unit, [producer, consumer])
        assert (
            li_index_of(block, consumer.addr)
            - li_index_of(block, producer.addr)
            == 1
        )

    def test_chain_of_multicycle_ops(self):
        unit = sched(4, 16)
        ops = [
            make_mc_op(0, writes={1}, latency=3),
            make_mc_op(1, reads={1}, writes={2}, latency=3),
            make_op(2, reads={2}, writes={3}),
        ]
        (block,) = run_schedule(unit, ops)
        i0 = li_index_of(block, ops[0].addr)
        i1 = li_index_of(block, ops[1].addr)
        i2 = li_index_of(block, ops[2].addr)
        assert i1 - i0 >= 3
        assert i2 - i1 >= 3


class TestHardwareMulDiv:
    SRC = """
        .text
_start: mov 7, %l0
        mov 6, %l1
        smul %l0, %l1, %l2
        add %l2, 0, %l3
        mov 100, %l4
        sdiv %l4, %l0, %l5
        add %l3, %l5, %o0
        ta 0
"""

    def test_smul_sdiv_semantics(self):
        m = ReferenceMachine(assemble(self.SRC))
        m.run()
        assert m.exit_code == 42 + 14

    def test_lockstep_with_multicycle_units(self):
        program = assemble(self.SRC)
        ref = ReferenceMachine(program)
        ref.run()
        for flag in (True, False):
            machine = DTSVLIW(
                assemble(self.SRC),
                MachineConfig.paper_fixed(4, 16, multicycle=flag),
            )
            machine.run()
            assert machine.exit_code == ref.exit_code

    def test_mc_loop_lockstep(self):
        src = """
        .text
_start: mov 0, %l0
        mov 1, %l1
loop:   smul %l1, 3, %l1
        and %l1, 0xfff, %l1
        add %l0, 1, %l0
        cmp %l0, 30
        bl loop
        mov %l1, %o0
        ta 0
"""
        program = assemble(src)
        ref = ReferenceMachine(program)
        ref.run()
        machine = DTSVLIW(program, MachineConfig.paper_fixed(8, 8))
        machine.run()
        assert machine.exit_code == ref.exit_code
