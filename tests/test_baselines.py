"""Tests for the DIF and scalar baselines."""

import pytest

from repro.asm.assembler import assemble
from repro.baselines.dif import DIFMachine, DIFScheduler
from repro.baselines.scalar import ScalarMachine
from repro.core.config import MachineConfig
from repro.core.reference import ReferenceMachine
from repro.core.stats import Stats
from repro.lang import compile_minicc
from repro.workloads import registry

SMALL = 0.08


def run_all_three(source: str):
    program = assemble(compile_minicc(source))
    ref = ReferenceMachine(program)
    ref.run()
    cfg = MachineConfig.fig9(test_mode=False)
    results = {}
    for name, machine in [
        ("scalar", ScalarMachine(program, cfg)),
        ("dif", DIFMachine(program, cfg)),
    ]:
        stats = machine.run(max_cycles=200_000_000)
        assert machine.exit_code == ref.exit_code, name
        assert machine.output == ref.output, name
        results[name] = stats
    return ref, results


class TestScalarMachine:
    def test_correctness_and_ipc_below_one(self):
        ref, res = run_all_three(
            """
            int main(){int i;int s=0;for(i=0;i<200;i++)s+=i&7;return s&0xff;}
            """
        )
        assert res["scalar"].ref_instructions == ref.instret
        assert res["scalar"].ipc <= 1.0  # in-order scalar cannot beat 1

    @pytest.mark.parametrize("name", ["compress", "go", "vortex"])
    def test_workloads(self, name):
        program = registry.load_program(name, SMALL)
        count, out, code = registry.reference_run(name, SMALL)
        m = ScalarMachine(program, MachineConfig.fig9(test_mode=False))
        stats = m.run(max_cycles=200_000_000)
        assert m.exit_code == code and m.output == out
        assert stats.ref_instructions == count


class TestDIFMachine:
    @pytest.mark.parametrize("name", registry.BENCHMARKS)
    def test_workload_correctness(self, name):
        program = registry.load_program(name, SMALL)
        count, out, code = registry.reference_run(name, SMALL)
        m = DIFMachine(program, MachineConfig.fig9(test_mode=False))
        stats = m.run(max_cycles=200_000_000)
        assert m.exit_code == code
        assert m.output == out

    def test_beats_scalar(self):
        ref, res = run_all_three(
            """
            int data[64];
            int main(){int i;int s=0;
            for(i=0;i<64;i++)data[i]=i*3;
            for(i=0;i<64;i++)s+=data[i]^i;
            return s&0xff;}
            """
        )
        assert ref.instret / res["dif"].cycles > res["scalar"].ipc

    def test_groups_are_cached_and_reused(self):
        program = registry.load_program("perl", SMALL)
        m = DIFMachine(program, MachineConfig.fig9(test_mode=False))
        stats = m.run(max_cycles=200_000_000)
        assert stats.vliw_cache_hits > 0
        assert stats.vliw_block_entries > 0
        assert stats.blocks_flushed > 0

    def test_renaming_instances_tracked(self):
        program = registry.load_program("ijpeg", SMALL)
        m = DIFMachine(program, MachineConfig.fig9(test_mode=False))
        stats = m.run(max_cycles=200_000_000)
        assert stats.max_int_renaming > 0


class TestDIFScheduler:
    def _op(self, opid, reads=(), writes=(), branch=False):
        from tests.test_scheduler_unit import make_op

        return make_op(opid, reads=reads, writes=writes, branch=branch)

    def test_greedy_places_independent_ops_in_li0(self):
        cfg = MachineConfig.fig9(test_mode=False)
        s = DIFScheduler(cfg, Stats())
        s.start_group(0x1000)
        for i in range(3):
            assert s.try_place(self._op(i, writes={i + 1}))
        assert s.max_li == 0  # all three in the first long instruction

    def test_dependence_chain_uses_height(self):
        cfg = MachineConfig.fig9(test_mode=False)
        s = DIFScheduler(cfg, Stats())
        s.start_group(0x1000)
        assert s.try_place(self._op(0, writes={1}))
        assert s.try_place(self._op(1, reads={1}, writes={2}))
        assert s.try_place(self._op(2, reads={2}, writes={3}))
        assert s.max_li == 2

    def test_group_full_returns_false(self):
        cfg = MachineConfig.fig9(test_mode=False)
        s = DIFScheduler(cfg, Stats())
        s.start_group(0x1000)
        prev = 0
        placed = 0
        for i in range(20):
            op = self._op(i, reads={prev + 1}, writes={i + 2})
            prev = i + 1
            if not s.try_place(op):
                break
            placed += 1
        assert placed == cfg.block_height  # serial chain: one per LI

    def test_branch_anchors_after_earlier_ops(self):
        cfg = MachineConfig.fig9(test_mode=False)
        s = DIFScheduler(cfg, Stats())
        s.start_group(0x1000)
        s.try_place(self._op(0, writes={1}))
        s.try_place(self._op(1, reads={1}, writes={2}))  # li 1
        br = self._op(2, branch=True)
        assert s.try_place(br)
        # the branch's exit map must cover both earlier ops
        assert s.group.trace[-1][1] >= 1

    def test_exit_map_accounting(self):
        cfg = MachineConfig.fig9(test_mode=False)
        s = DIFScheduler(cfg, Stats())
        s.start_group(0x1000)
        s.try_place(self._op(0, writes={1}))
        s.try_place(self._op(1, branch=True))
        g = s.flush(0x2000)
        assert g.exits == 2  # group end + one branch
        assert g.exit_map_bytes() == 38
