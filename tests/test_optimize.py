"""Tests for the minicc optimisation passes: loop unrolling and
basic-block instruction scheduling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.asm.assembler import assemble
from repro.asm.schedule import schedule_assembly
from repro.core.config import MachineConfig
from repro.core.machine import DTSVLIW
from repro.core.reference import ReferenceMachine
from repro.lang import CompilerOptions, compile_minicc


def run(source, **opts):
    program = assemble(compile_minicc(source, CompilerOptions(**opts)))
    m = ReferenceMachine(program)
    m.run(max_instructions=20_000_000)
    return m


SUM_LOOP = """
int a[40];
int main() {
  int i; int s = 0;
  for (i = 0; i < 37; i++) a[i] = i * 5 + 2;
  for (i = 0; i < 37; i++) s += a[i];
  print_int(s);
  return s & 0xff;
}
"""


class TestUnrolling:
    @pytest.mark.parametrize("factor", [2, 3, 4, 8])
    def test_semantics_preserved(self, factor):
        base = run(SUM_LOOP)
        unrolled = run(SUM_LOOP, unroll=factor)
        assert unrolled.output == base.output
        assert unrolled.exit_code == base.exit_code
        # fewer dynamic instructions: loop overhead amortised
        assert unrolled.instret < base.instret

    def test_remainder_iterations_execute(self):
        # 37 iterations with factor 4: 36 in the main loop + 1 remainder
        src = """
        int main() {
          int i; int n = 0;
          for (i = 0; i < 37; i++) n++;
          return n;
        }
        """
        assert run(src, unroll=4).exit_code == 37
        assert run(src, unroll=8).exit_code == 37

    def test_le_condition(self):
        src = """
        int main() {
          int i; int s = 0;
          for (i = 1; i <= 10; i++) s += i;
          return s;
        }
        """
        assert run(src, unroll=2).exit_code == 55

    def test_step_two(self):
        src = """
        int main() {
          int i; int s = 0;
          for (i = 0; i < 20; i += 2) s += i;
          return s;
        }
        """
        assert run(src, unroll=2).exit_code == 90

    def test_body_writing_ivar_not_unrolled(self):
        src = """
        int main() {
          int i; int n = 0;
          for (i = 0; i < 20; i++) { if (i == 5) i = 10; n++; }
          return n;
        }
        """
        assert run(src, unroll=4).exit_code == run(src).exit_code

    def test_break_prevents_unrolling(self):
        src = """
        int main() {
          int i; int n = 0;
          for (i = 0; i < 100; i++) { if (i == 7) break; n++; }
          return n;
        }
        """
        assert run(src, unroll=4).exit_code == 7

    def test_call_in_bound_prevents_unrolling(self):
        src = """
        int limit() { return 10; }
        int main() {
          int i; int n = 0;
          for (i = 0; i < limit(); i++) n++;
          return n;
        }
        """
        assert run(src, unroll=4).exit_code == 10

    def test_nested_loops_unroll_inner(self):
        src = """
        int main() {
          int i; int j; int s = 0;
          for (i = 0; i < 5; i++)
            for (j = 0; j < 9; j++)
              s += i * j;
          return s & 0xff;
        }
        """
        assert run(src, unroll=2).exit_code == run(src).exit_code

    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(0, 23),
        st.integers(1, 3),
        st.sampled_from([2, 3, 4]),
    )
    def test_trip_count_property(self, count, step, factor):
        src = """
        int main() {
          int i; int n = 0;
          for (i = 0; i < %d; i += %d) n++;
          return n;
        }
        """ % (count, step)
        expected = len(range(0, count, step))
        assert run(src).exit_code == expected
        assert run(src, unroll=factor).exit_code == expected


class TestConstantFolding:
    def test_literal_arithmetic_folds(self):
        asm = compile_minicc("int main() { return 2 * 3 + 4; }")
        assert "mov 10" in asm
        assert "__mulsi3" not in asm

    def test_division_folds(self):
        asm = compile_minicc("int main() { return 100 / 7 + 100 % 7; }")
        assert "__divsi3" not in asm
        m = run("int main() { return 100 / 7 + 100 % 7; }")
        assert m.exit_code == 14 + 2

    def test_negative_fold_semantics(self):
        assert run("int main() { return (-7) / 2 + 10; }").exit_code == 7
        assert run("int main() { return (0 - 7) % 3 + 10; }").exit_code == 9

    def test_wraparound(self):
        m = run("int main() { return (0x7fffffff + 1) >> 24 & 0xff; }")
        assert m.exit_code == ((0x7FFFFFFF + 1 - (1 << 32)) >> 24) & 0xFF

    def test_reassociation_after_unroll(self):
        # (i + 1) * 4-style indices inside unrolled bodies end up as a
        # single add with a folded offset
        asm = compile_minicc(
            """
            int a[64];
            int main() {
              int i; int s = 0;
              for (i = 0; i < 64; i++) s += a[i + 1 + 1];
              return s;
            }
            """
        )
        assert "add %" in asm  # sanity: code exists
        m1 = run(
            """
            int a[8];
            int main() {
              a[0+1+2] = 9;
              return a[3];
            }
            """
        )
        assert m1.exit_code == 9

    def test_ternary_on_constant_folds(self):
        asm = compile_minicc("int main() { return 1 ? 11 : 22; }")
        assert "mov 11" in asm and "22" not in asm

    def test_comparison_folding(self):
        m = run("int main() { return (3 < 5) * 10 + (5 <= 5) + (7 > 9); }")
        assert m.exit_code == 11

    def test_fold_does_not_touch_variables(self):
        m = run("int main() { int x = 6; return x * 7; }")
        assert m.exit_code == 42


class TestScheduling:
    def test_schedule_preserves_semantics(self):
        base = run(SUM_LOOP)
        scheduled = run(SUM_LOOP, schedule=True)
        assert scheduled.output == base.output
        assert scheduled.instret == base.instret  # reorder only

    def test_schedule_reorders_independent_chains(self):
        asm = """
        .text
_start: mov 1, %l0
        add %l0, 1, %l1
        add %l1, 1, %l2
        mov 2, %l3
        add %l3, 1, %l4
        add %l4, 1, %l5
        add %l2, %l5, %o0
        ta 0
"""
        out = schedule_assembly(asm)
        lines = [l.strip() for l in out.splitlines() if l.strip() and not l.strip().startswith(".")]
        body = [l for l in lines if not l.endswith(":")]
        # the two 'mov' roots must both come before the dependent adds of
        # either chain completes -- i.e. the chains interleave
        first_mov2 = next(i for i, l in enumerate(body) if l.startswith("mov 2"))
        last_add_chain1 = max(
            i for i, l in enumerate(body) if "%l2" in l and l.startswith("add %l1")
        )
        assert first_mov2 < last_add_chain1

    def test_schedule_respects_memory_order(self):
        src = """
        int buf[4];
        int main() {
          buf[0] = 11;
          buf[0] = 22;        /* store-store order must hold */
          int v = buf[0];
          buf[1] = 33;
          return v + buf[1];
        }
        """
        assert run(src, schedule=True).exit_code == 55

    def test_schedule_keeps_cc_pairs_together(self):
        src = """
        int main() {
          int a = 5; int b = 9; int r = 0;
          if (a < b) r += 1;
          if (b < a) r += 10;
          if (a == 5) r += 100;
          return r;
        }
        """
        assert run(src, schedule=True).exit_code == 101

    def test_combined_unroll_and_schedule_lockstep(self):
        program = assemble(
            compile_minicc(SUM_LOOP, CompilerOptions(unroll=4, schedule=True))
        )
        ref = ReferenceMachine(program)
        ref.run()
        m = DTSVLIW(program, MachineConfig.paper_fixed(8, 8))
        m.run(max_cycles=50_000_000)
        assert m.output == ref.output

    def test_optimized_code_schedules_denser(self):
        """The whole point: optimized code packs more ops per cycle.
        Needs a long-running kernel so steady-state dominates warmup."""
        kernel = """
        int a[256]; int b[256];
        int main() {
          int i; int r; int s = 0;
          for (r = 0; r < 6; r++) {
            for (i = 0; i < 256; i++) a[i] = (i << 1) + r;
            for (i = 0; i < 256; i++) b[i] = a[i] ^ i;
            for (i = 0; i < 256; i++) s += b[i];
          }
          print_int(s);
          return s & 0xff;
        }
        """
        base = assemble(compile_minicc(kernel))
        opt = assemble(
            compile_minicc(kernel, CompilerOptions(unroll=4, schedule=True))
        )
        rb = ReferenceMachine(base)
        nb = rb.run()
        ro = ReferenceMachine(opt)
        no = ro.run()
        mb = DTSVLIW(base, MachineConfig.paper_fixed(8, 8, test_mode=False))
        sb = mb.run(max_cycles=50_000_000)
        mo = DTSVLIW(opt, MachineConfig.paper_fixed(8, 8, test_mode=False))
        so = mo.run(max_cycles=50_000_000)
        assert no / so.cycles > nb / sb.cycles
