"""Differential oracle for the vectorized multi-config cache kernel.

The kernel's claim (DESIGN.md section 14): one grouped pass over an
address column reproduces, for *every* requested cache geometry at once,
exactly the residency decisions the object-style
:class:`repro.memory.cache.Cache` makes walking the column one access at
a time.  This suite pits the two against each other on random streams
and random geometries (hypothesis), checks the LRU stack-property
grouping (many associativities, one walk), pins the fallback behaviour
(``REPRO_NO_VECTOR``, NumPy absent) and locks full figure grids and a
scalar cache-geometry grid with the kernel on and off.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import mc_kernel
from repro.batch.columns import _miss_profile, cache_geometry_ok
from repro.batch.mc_kernel import (
    GLOBAL_STATS,
    mc_enabled,
    multi_miss_profiles,
    prime_columns,
)
from repro.core.config import CacheConfig, MachineConfig
from repro.harness.experiments import figure_specs
from repro.harness.sweep import RunSpec, run_sweep
from repro.memory.cache import Cache
from repro.obs.probe import EV_MC_BUILD, EV_MC_FALLBACK, EventProbe

SCALE = 0.05
BENCH = "compress"


def _reference_profile(addrs, size, line_size, assoc):
    """Walk the object-style Cache access by access (the oracle)."""
    cache = Cache("t", size, line_size, assoc, miss_penalty=1, perfect=False)
    last = False
    for addr in addrs:
        last = cache.access(addr) != 0
    return cache.stats.misses, last


# ------------------------------------------------------- geometry strategy
geometries = st.builds(
    lambda line_exp, assoc, sets: (
        (1 << line_exp) * assoc * sets,  # size
        1 << line_exp,  # line_size
        assoc,
    ),
    line_exp=st.integers(min_value=2, max_value=6),
    assoc=st.integers(min_value=1, max_value=5),
    sets=st.integers(min_value=1, max_value=8),
)

streams = st.lists(
    st.integers(min_value=0, max_value=0xFFF), min_size=0, max_size=200
).map(lambda xs: np.asarray(xs, dtype=np.uint32))


class TestKernelVsObjectCache:
    @given(geom=geometries, addrs=streams)
    @settings(max_examples=60, deadline=None)
    def test_single_geometry_matches_object_lru(self, geom, addrs):
        """Vectorized kernel vs the object-style Cache, random streams."""
        size, line_size, assoc = geom
        assert cache_geometry_ok(size, line_size, assoc)
        want = _reference_profile(addrs, size, line_size, assoc)
        got = multi_miss_profiles(addrs, [geom], "icache")[geom]
        assert got == want
        # the scalar per-geometry profile agrees too (three-way lockstep)
        assert _miss_profile(addrs, size, line_size, assoc) == want

    @given(
        addrs=streams,
        line_exp=st.integers(min_value=2, max_value=5),
        sets=st.integers(min_value=1, max_value=8),
        assocs=st.lists(
            st.integers(min_value=1, max_value=6),
            min_size=2,
            max_size=4,
            unique=True,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_shared_walk_serves_every_associativity(
        self, addrs, line_exp, sets, assocs
    ):
        """Geometries sharing (line_shift, num_sets) ride one stack walk;
        each associativity's profile must still match its own LRU."""
        line_size = 1 << line_exp
        geoms = [(line_size * k * sets, line_size, k) for k in assocs]
        probe = EventProbe()
        before = GLOBAL_STATS.builds
        out = multi_miss_profiles(addrs, geoms, "dcache", probe)
        if len(addrs):
            # all geometries collapse into one build pass
            assert GLOBAL_STATS.builds - before == 1
            assert probe.counts[EV_MC_BUILD] == 1
        for geom in geoms:
            assert out[geom] == _reference_profile(addrs, *geom), geom

    def test_mixed_groups_count_one_build_each(self):
        addrs = np.arange(0, 4096, 12, dtype=np.uint32)
        geoms = [
            (1024, 32, 1),  # sets=32, shift=5
            (2048, 32, 2),  # sets=32, shift=5  (same group as above)
            (2048, 32, 1),  # sets=64, shift=5
            (1024, 16, 1),  # sets=64, shift=4
        ]
        probe = EventProbe()
        before = GLOBAL_STATS.builds
        out = multi_miss_profiles(addrs, geoms, "icache", probe)
        assert GLOBAL_STATS.builds - before == 3
        assert probe.counts[EV_MC_BUILD] == 3
        for geom in geoms:
            assert out[geom] == _reference_profile(addrs, *geom), geom

    def test_empty_column(self):
        assert multi_miss_profiles(
            np.asarray([], dtype=np.uint32), [(1024, 32, 2)], "dcache"
        ) == {(1024, 32, 2): (0, False)}


# ------------------------------------------------------------ prime/fallback
class _Bound:
    def __init__(self, pcs):
        self.pcs = pcs


class _Cols:
    """Just enough TraceColumns surface for prime_columns."""

    def __init__(self, pcs, mem_addrs):
        self.bound = _Bound(pcs)
        self.mem_addrs = mem_addrs
        self._ic = {}
        self._dc = {}
        self.vec_keys = set()


def _cols():
    pcs = np.arange(0x1000, 0x1400, 4, dtype=np.uint32)
    mem = np.arange(0, 2048, 8, dtype=np.uint32)
    return _Cols(pcs, mem)


class TestPrimeColumns:
    def test_primes_profiles_and_marks_coverage(self):
        cols = _cols()
        ic = [(1024, 32, 1), (1024, 32, 2)]
        dc = [(512, 16, 2)]
        assert prime_columns(cols, ic, dc) is True
        for geom in ic:
            assert cols._ic[geom] == _reference_profile(cols.bound.pcs, *geom)
            assert ("i",) + geom in cols.vec_keys
        for geom in dc:
            assert cols._dc[geom] == _reference_profile(cols.mem_addrs, *geom)[0]
            assert ("d",) + geom in cols.vec_keys
        assert ("d", 1024, 32, 1) not in cols.vec_keys

    def test_no_vector_env_falls_back_probed(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        assert not mc_enabled()
        cols = _cols()
        probe = EventProbe()
        before = GLOBAL_STATS.fallbacks
        assert prime_columns(cols, [(1024, 32, 1)], [], probe) is False
        assert GLOBAL_STATS.fallbacks - before == 1
        assert list(probe.select(EV_MC_FALLBACK)) == [
            (EV_MC_FALLBACK, "disabled")
        ]
        assert not cols._ic and not cols.vec_keys

    def test_numpy_absent_falls_back_probed(self, monkeypatch):
        monkeypatch.setattr(mc_kernel, "_np", None)
        assert not mc_enabled()
        probe = EventProbe()
        assert prime_columns(_cols(), [(1024, 32, 1)], [], probe) is False
        assert list(probe.select(EV_MC_FALLBACK)) == [
            (EV_MC_FALLBACK, "no-numpy")
        ]
        with pytest.raises(ImportError, match="REPRO_NO_VECTOR"):
            mc_kernel.require_numpy()

    def test_nothing_to_vectorize_is_trivially_served(self):
        assert prime_columns(_cols(), [], []) is True


# --------------------------------------------------------- sweep lockstep
def _lockstep(specs, monkeypatch, expect_vectorized):
    vec = run_sweep(specs, use_cache=False)
    monkeypatch.setenv("REPRO_NO_VECTOR", "1")
    novec = run_sweep(specs, use_cache=False)
    monkeypatch.delenv("REPRO_NO_VECTOR")
    assert len(vec.results) == len(novec.results) == len(specs)
    for spec, ra, rb in zip(specs, vec.results, novec.results):
        label = (spec.benchmark, spec.machine, spec.meta)
        assert ra.stats == rb.stats, label
        assert ra.cycles == rb.cycles, label
    if expect_vectorized:
        assert vec.summary.vectorized > 0
    else:
        assert vec.summary.vectorized == 0
    assert novec.summary.vectorized == 0
    # vectorized cells still count inside the batched total
    assert vec.summary.batched == novec.summary.batched


@pytest.mark.parametrize("figure", ["fig6", "fig7"])
def test_figure_grid_lockstep_no_vector_both_ways(figure, monkeypatch):
    """Full fig6/fig7 grids, kernel on vs REPRO_NO_VECTOR=1: identical.

    These grids sweep the VLIW cache with perfect conventional caches, so
    no cell qualifies for vectorized provenance -- the lockstep pins that
    the kernel's presence changes nothing for them.
    """
    specs = figure_specs(figure, [BENCH], scale=SCALE)
    _lockstep(specs, monkeypatch, expect_vectorized=False)


def test_scalar_cache_grid_lockstep_and_vectorizes(monkeypatch):
    """A scalar-machine cache-geometry grid (the kernel's home turf):
    kernel on vs off is bit-identical and the on-run is vectorized."""
    base = MachineConfig.paper_fixed(8, 8, test_mode=False)
    specs = []
    for size_kb in (4, 8, 16):
        for assoc in (1, 2, 4):
            cfg = base.with_(
                icache=CacheConfig(
                    size=size_kb * 1024, line_size=32, assoc=assoc,
                    miss_penalty=8, perfect=False,
                ),
                dcache=CacheConfig(
                    size=size_kb * 1024, line_size=32, assoc=assoc,
                    miss_penalty=8, perfect=False,
                ),
            )
            specs.append(
                RunSpec(BENCH, cfg, machine="scalar", scale=SCALE)
            )
    _lockstep(specs, monkeypatch, expect_vectorized=True)
