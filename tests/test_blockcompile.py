"""Block compilation unit tests: cache store format, invalidation,
dispatch-table structure, truncation semantics and the scalar/capture
fused paths (the four-way architectural lockstep lives in
``tests/test_predecode_differential.py``).
"""

import os

import pytest

from repro import compile_and_load
from repro.core.reference import ReferenceMachine
from repro.isa.blockcompile import (
    GLOBAL_STATS,
    MODE_CAPTURE,
    MODE_LEAN,
    MODE_SCALAR,
    block_key,
    clear_memo,
    compile_blocks,
    discover_leaders,
    generate_module_source,
)
from repro.trace.store import (
    BlockCacheStore,
    BlockFormatError,
    decode_blocks,
    encode_blocks,
)

LOOP_SRC = (
    "int main() { int i; int s = 0;"
    " for (i = 0; i < 25; i++) s = s + (i ^ 3); print_int(s); return 0; }"
)


@pytest.fixture
def program():
    return compile_and_load(LOOP_SRC)


@pytest.fixture
def private_store(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_DIR", str(tmp_path))
    clear_memo()
    yield tmp_path
    clear_memo()


class TestStoreFormat:
    def _code(self):
        return compile("def f():\n    return 41 + 1\n", "<t>", "exec")

    def test_round_trip(self):
        code = self._code()
        clone = decode_blocks(encode_blocks(code))
        ns = {}
        exec(clone, ns)
        assert ns["f"]() == 42

    def test_truncation_rejected(self):
        data = encode_blocks(self._code())
        for cut in (0, 1, 10, len(data) - 1):
            with pytest.raises(BlockFormatError):
                decode_blocks(data[:cut])

    def test_corruption_rejected(self):
        data = bytearray(encode_blocks(self._code()))
        data[len(data) // 2] ^= 0xFF
        with pytest.raises(BlockFormatError):
            decode_blocks(bytes(data))

    def test_wrong_magic_rejected(self):
        data = bytearray(encode_blocks(self._code()))
        data[:4] = b"RTRC"
        # digest still guards first; rebuild it to reach the magic check
        from hashlib import sha256

        body = bytes(data[:-32])
        with pytest.raises(BlockFormatError, match="magic"):
            decode_blocks(body + sha256(body).digest())

    def test_pymagic_mismatch_rejected(self):
        data = bytearray(encode_blocks(self._code()))
        # the interpreter magic lives right after the 8-byte header
        data[8] ^= 0xFF
        from hashlib import sha256

        body = bytes(data[:-32])
        with pytest.raises(BlockFormatError, match="interpreter"):
            decode_blocks(body + sha256(body).digest())

    def test_store_miss_on_unreadable_file(self, tmp_path):
        store = BlockCacheStore(str(tmp_path))
        store.put("k", self._code())
        assert store.get("k") is not None
        store.path("k").write_bytes(b"garbage")
        assert store.get("k") is None  # miss, not an exception
        assert store.get("nonexistent") is None


class TestCompileCache:
    def test_warm_disk_cache_skips_codegen(self, program, private_store):
        before = GLOBAL_STATS.snapshot()
        t1 = compile_blocks(program, MODE_LEAN)
        assert GLOBAL_STATS.compiled - before["compiled"] == len(t1) > 0
        clear_memo()
        mid = GLOBAL_STATS.snapshot()
        t2 = compile_blocks(program, MODE_LEAN)
        after = GLOBAL_STATS.snapshot()
        assert after["compiled"] == mid["compiled"]  # zero fresh compiles
        assert after["cache_hits"] == mid["cache_hits"] + 1
        assert set(t2) == set(t1)
        assert [e[1] for e in t2.values()] == [e[1] for e in t1.values()]

    def test_modes_and_sigs_key_separately(self, program, private_store):
        k_lean = block_key(program, MODE_LEAN)
        k_cap = block_key(program, MODE_CAPTURE)
        k_s1 = block_key(program, MODE_SCALAR, (1, 3, 32))
        k_s2 = block_key(program, MODE_SCALAR, (1, 3, 64))
        assert len({k_lean, k_cap, k_s1, k_s2}) == 4
        for k, mode in ((k_lean, MODE_LEAN), (k_cap, MODE_CAPTURE)):
            assert k.startswith(mode + "-")

    def test_code_version_invalidates(self, program, private_store, tmp_path,
                                      monkeypatch):
        """Mutating a simulator source file must change the cache key, so
        stale compiled blocks can never survive a code change."""
        import shutil

        from repro.harness import resultcache

        src_root = os.path.join(os.path.dirname(resultcache.__file__), "..")
        tree = tmp_path / "srccopy"
        shutil.copytree(src_root, tree)

        def version_of():
            return resultcache._compute_code_version(tree)

        monkeypatch.setattr(resultcache, "_code_version", version_of())
        k1 = block_key(program, MODE_LEAN)
        # a one-byte source mutation (as a git pull would make)
        victim = tree / "isa" / "blockcompile.py"
        victim.write_text(victim.read_text() + "\n# mutated\n")
        monkeypatch.setattr(resultcache, "_code_version", version_of())
        k2 = block_key(program, MODE_LEAN)
        assert k1 != k2

        # and the store treats the new key as a plain miss -> recompile
        clear_memo()
        monkeypatch.setattr(resultcache, "_code_version", version_of())
        before = GLOBAL_STATS.snapshot()
        compile_blocks(program, MODE_LEAN)
        after = GLOBAL_STATS.snapshot()
        assert after["compiled"] > before["compiled"]
        assert after["cache_misses"] == before["cache_misses"] + 1


class TestGeneratedModule:
    def test_deterministic_source(self, program):
        s1, blocks1 = generate_module_source(program, MODE_LEAN)
        s2, blocks2 = generate_module_source(program, MODE_LEAN)
        assert s1 == s2 and blocks1 == blocks2

    def test_table_covers_all_leaders(self, program, private_store):
        leaders = discover_leaders(program)
        table = compile_blocks(program, MODE_LEAN)
        assert sorted(table) == leaders
        assert program.entry in table
        for fn, count in table.values():
            assert callable(fn)
            assert 1 <= count <= 64

    def test_source_compiles_for_all_modes(self, program):
        for mode, sig in (
            (MODE_LEAN, ()),
            (MODE_CAPTURE, ()),
            (MODE_SCALAR, (1, 3, 32)),
        ):
            src, blocks = generate_module_source(program, mode, sig)
            compile(src, "<test>", "exec")
            assert blocks


class TestDispatchSemantics:
    def test_max_instructions_truncation_is_exact(self, program,
                                                  private_store):
        """Stopping mid-run at an arbitrary instruction budget lands on
        the identical pc/instret as the per-instruction path -- blocks
        near the limit fall back to single steps."""
        ref = ReferenceMachine(program, block_compile=False)
        ref.run()
        total = ref.instret
        for budget in (1, 7, 64, total // 2, total - 1):
            a = ReferenceMachine(program, block_compile=False)
            b = ReferenceMachine(program, block_compile=True)
            for m in (a, b):
                try:
                    m.run(max_instructions=budget)
                except Exception:
                    pass  # "exceeded" SimError: expected for partial runs
            assert (a.instret, a.pc, a.halted) == (b.instret, b.pc, b.halted)
            assert a.rf.state_equal(b.rf)
            assert a.mem.data == b.mem.data

    def test_capture_blocks_bit_identical(self, program, private_store,
                                          monkeypatch):
        from repro.trace.capture import capture_trace

        t_blk = capture_trace(program)
        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        t_ref = capture_trace(program)
        assert t_blk.count == t_ref.count
        assert bytes(t_blk.flags) == bytes(t_ref.flags)
        assert t_blk.aux == t_ref.aux
        assert t_blk.output == t_ref.output
        assert t_blk.exit_code == t_ref.exit_code

    def test_scalar_blocks_bit_identical(self, program, private_store,
                                         monkeypatch):
        from repro.baselines.scalar import ScalarMachine

        m_blk = ScalarMachine(program)  # no trace bound: live execution
        assert m_blk.primary.block_dispatch_viable()
        st_blk = m_blk.run()
        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        m_ref = ScalarMachine(program)
        st_ref = m_ref.run()
        assert st_blk == st_ref  # Stats dataclass: every counter
        assert m_blk.output == m_ref.output
        assert m_blk.exit_code == m_ref.exit_code
        assert m_blk.pc == m_ref.pc

    def test_scalar_max_cycles_truncation_is_exact(self, program,
                                                   private_store,
                                                   monkeypatch):
        from repro.baselines.scalar import ScalarMachine
        from repro.core.errors import SimError

        full = ScalarMachine(program)
        total = full.run().cycles
        for budget in (1, 50, total // 2, total - 1):
            # the escape hatch is consulted at run() time, so run the
            # block-dispatched machine before flipping it for the oracle
            monkeypatch.delenv("REPRO_NO_BLOCK_COMPILE", raising=False)
            a = ScalarMachine(program)
            with pytest.raises(SimError):
                a.run(max_cycles=budget)
            monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
            b = ScalarMachine(program)
            with pytest.raises(SimError):
                b.run(max_cycles=budget)
            assert a.stats == b.stats
            assert a.pc == b.pc

    def test_probe_forces_per_instruction_scalar(self, program,
                                                 private_store, monkeypatch):
        from repro.baselines.scalar import ScalarMachine
        from repro.obs import EventProbe

        m = ScalarMachine(program, probe=EventProbe())
        assert not m.primary.block_dispatch_viable()
        st = m.run()  # per-instruction live loop, events emitted as before
        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        ref = ScalarMachine(program, probe=EventProbe())
        assert st == ref.run()
        assert m.probe.events == ref.probe.events
