"""Differential oracle for trace replay: execution-driven vs trace-driven.

The central claim of the trace layer (DESIGN.md section 10) is that for
machines whose statistics never read register *values* -- the DIF and
scalar baselines -- replaying a captured trace is **bit-identical** to
executing the program: same Stats (dataclass equality, wall time
excluded), same cycle count, same output bytes, same exit code.  This
suite pins that claim over every registry workload and a spread of
machine configurations, so any future edit to the timing model that
forgets one of the two paths fails loudly.
"""

import pytest

from repro.baselines.dif import DIFMachine
from repro.baselines.scalar import ScalarMachine
from repro.core.config import MachineConfig
from repro.trace.capture import capture_trace
from repro.workloads.registry import BENCHMARKS, load_program

SCALE = 0.05
MEM = 8 * 1024 * 1024

CONFIGS = [
    ("fig9", MachineConfig.fig9()),
    ("feasible", MachineConfig.feasible()),
    ("paper_fixed", MachineConfig.paper_fixed()),
    # fewer windows than the capture machine: spills happen at different
    # events, so this exercises the per-nwindows window-plan derivation
    ("fig9_nw4", MachineConfig.fig9().with_(nwindows=4)),
]

MACHINES = {"scalar": ScalarMachine, "dif": DIFMachine}

_traces = {}


def _workload(name):
    prog = load_program(name, SCALE)
    if name not in _traces:
        _traces[name] = capture_trace(prog, MEM)
    return prog, _traces[name]


@pytest.mark.parametrize("name", BENCHMARKS)
def test_replay_is_bit_identical(name):
    prog, trace = _workload(name)
    for cfg_name, cfg in CONFIGS:
        for m_name, mk in MACHINES.items():
            live = mk(prog, cfg)
            s_live = live.run()
            replay = mk(prog, cfg, trace=trace)
            assert replay.source is not None, (name, cfg_name, m_name)
            s_replay = replay.run()
            assert s_replay == s_live, (name, cfg_name, m_name)
            assert s_replay.cycles == s_live.cycles
            assert replay.output == live.output, (name, cfg_name, m_name)
            assert replay.exit_code == live.exit_code, (name, cfg_name, m_name)


@pytest.mark.parametrize("name", ["compress", "xlisp"])
def test_replay_consumes_whole_trace(name):
    """The replay cursor must end exactly past the exit event -- anything
    else means live and replay disagreed about the committed stream."""
    prog, trace = _workload(name)
    for _, cfg in CONFIGS:
        for mk in MACHINES.values():
            m = mk(prog, cfg, trace=trace)
            m.run()
            assert m.source.i == trace.count
