"""Differential verification of the predecoded interpreter.

The specialized closures of :mod:`repro.isa.predecode` and the compiled
superblocks of :mod:`repro.isa.blockcompile` claim to be observationally
identical to the generic :func:`repro.isa.semantics.step` oracle.  This
suite holds them to that claim *instruction by instruction* with a
four-way lockstep:

* the **generic** oracle (a reference machine forced onto ``step``),
* the **full** closures (``instr.exec_fn``, driven directly so their
  StepInfo output is visible) -- after every instruction pc, every
  StepInfo field and the cheap register-file scalars must match the
  oracle, with periodic (and final) whole-register-file checks,
* the **lean** closures (the per-instruction reference machine path,
  which skips StepInfo bookkeeping) -- held to identical architectural
  state, and
* the **block-compiled** dispatch (lean superblocks) -- advanced one
  block at a time and compared whenever its committed count aligns with
  the oracle's (a block commits up to 64 instructions per call).

At the end, register files, memory images, trap output and exit codes of
all four must agree bit for bit.  Inputs are randomized minicc programs
(the lockstep fuzz generator), every registry workload, and directed
cases for the block table's weak spot -- indirect jumps into block
*interiors*, which must fall back to per-instruction closures -- plus
both escape hatches (``REPRO_NO_BLOCK_COMPILE``/``REPRO_GENERIC_STEP``).
"""

import pytest
from hypothesis import given, settings

from repro import compile_and_load
from repro.asm.assembler import assemble
from repro.core.errors import ProgramExit
from repro.core.reference import ReferenceMachine, TrapServices, setup_state
from repro.isa.blockcompile import MODE_LEAN, compile_blocks
from repro.isa.predecode import generic_step_forced
from repro.isa.registers import RegFile
from repro.isa.semantics import StepInfo
from repro.memory.main_memory import MainMemory
from repro.workloads import registry

from tests.test_fuzz_lockstep import program_source

SMALL = 0.08  # same tiny workload inputs as tests/test_workloads.py

#: every StepInfo slot, compared after every instruction
INFO_FIELDS = (
    "taken",
    "target",
    "mem_addr",
    "mem_size",
    "is_load",
    "is_store",
    "store_old",
    "value",
    "spilled",
    "cwp_before",
)


class _FullClosureMachine:
    """Minimal machine stepping ``instr.exec_fn`` (the full closures)."""

    def __init__(self, program, mem_size, nwindows):
        self.instrs = program.instrs
        self.mem = MainMemory(mem_size)
        self.rf = RegFile(nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)
        self.info = StepInfo()
        self.halted = False

    def step_one(self):
        fn = self.instrs[self.pc].exec_fn
        try:
            self.pc = fn(self.rf, self.mem, self.services, self.info)
        except ProgramExit:
            self.halted = True


class _BlockSteppedMachine:
    """Machine advancing one compiled superblock -- or one per-instruction
    fallback closure -- per :meth:`advance` call (the block protocol of
    :mod:`repro.isa.blockcompile`, exactly as ``ReferenceMachine.run``
    dispatches it)."""

    def __init__(self, program, mem_size, nwindows):
        self.mem = MainMemory(mem_size)
        self.rf = RegFile(nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)
        self.blocks = compile_blocks(program, MODE_LEAN)
        self.run_table = program.run_table
        self.ctr = [0, None, -1]
        self.instret = 0
        self.halted = False
        self.fallbacks = 0

    def advance(self):
        ctr = self.ctr
        e = self.blocks.get(self.pc)
        try:
            if e is not None:
                try:
                    self.pc = e[0](self.rf, self.mem, self.services, ctr)
                finally:
                    self.instret += ctr[0]
                    ctr[0] = 0
            else:
                self.fallbacks += 1
                fn = self.run_table[self.pc]
                self.pc = fn(self.rf, self.mem, self.services)
                self.instret += 1
        except ProgramExit:
            self.instret += 1
            if ctr[2] >= 0:  # exit trap raised inside a block
                self.pc = ctr[2]
            self.halted = True


def lockstep_diff(program, max_lockstep=200_000, full_check_every=64):
    """Four-way lockstep: generic oracle vs full vs lean closures vs
    block-compiled dispatch.

    The first three advance one instruction per iteration; the block
    machine advances whole superblocks and is compared (pc, cheap scalars,
    periodic full register file) only on the iterations where its
    committed count aligns with the oracle's.  Past ``max_lockstep``
    instructions the machines run free to completion (bounding test time
    on big workloads) and only final states compare.
    """
    mem_size, nwindows = 8 * 1024 * 1024, 8
    gen = ReferenceMachine(program, mem_size, nwindows, generic_step=True)
    lean = ReferenceMachine(
        program, mem_size, nwindows, generic_step=False, block_compile=False
    )
    full = _FullClosureMachine(program, mem_size, nwindows)
    blk = _BlockSteppedMachine(program, mem_size, nwindows)
    assert gen._run is None
    assert lean._run is not None

    n = 0
    while not gen.halted and n < max_lockstep:
        pc = gen.pc
        try:
            gen.step_one()
        except ProgramExit:
            pass
        try:
            lean.step_one()
        except ProgramExit:
            pass
        full.step_one()
        n += 1
        assert full.pc == gen.pc and lean.pc == gen.pc, (
            "pc after 0x%x: full=0x%x lean=0x%x oracle=0x%x"
            % (pc, full.pc, lean.pc, gen.pc)
        )
        fi, gi = full.info, gen.info
        for name in INFO_FIELDS:
            a, b = getattr(fi, name), getattr(gi, name)
            assert a == b and type(a) is type(b), (
                "StepInfo.%s after 0x%x: %r != %r" % (name, pc, a, b)
            )
        grf = gen.rf
        for rf in (full.rf, lean.rf):
            assert rf.icc == grf.icc, "icc after 0x%x" % pc
            assert rf.cwp == grf.cwp, "cwp after 0x%x" % pc
            assert rf.wssp == grf.wssp, "wssp after 0x%x" % pc
        while not blk.halted and blk.instret < gen.instret:
            blk.advance()
        if blk.instret == gen.instret:
            # block boundary aligned with the oracle: state must agree
            assert blk.pc == gen.pc, (
                "block pc after 0x%x: 0x%x != 0x%x" % (pc, blk.pc, gen.pc)
            )
            assert blk.halted == gen.halted
            brf = blk.rf
            assert brf.icc == grf.icc, "block icc after 0x%x" % pc
            assert brf.cwp == grf.cwp, "block cwp after 0x%x" % pc
            assert brf.wssp == grf.wssp, "block wssp after 0x%x" % pc
            if n % full_check_every == 0:
                assert brf.state_equal(grf), "block rf after 0x%x" % pc
        if n % full_check_every == 0:
            assert full.rf.state_equal(grf), "full rf after 0x%x" % pc
            assert lean.rf.state_equal(grf), "lean rf after 0x%x" % pc

    if not gen.halted:  # big program: finish all four off the lockstep loop
        gen.run(max_instructions=100_000_000)
        lean.run(max_instructions=100_000_000)
        while not full.halted:
            full.step_one()
    while not blk.halted:
        blk.advance()

    assert lean.halted == gen.halted and full.halted == gen.halted
    assert lean.instret == gen.instret
    assert blk.instret == gen.instret
    assert blk.pc == gen.pc
    for m in (full, lean, blk):
        assert m.rf.state_equal(gen.rf)
        assert m.mem.data == gen.mem.data
        assert bytes(m.services.output) == gen.output
        assert m.services.exit_code == gen.exit_code
    return gen.instret


class TestDirected:
    def test_deep_recursion_spill_fill(self):
        """Recursion past the window count: spill/fill closures lockstep."""
        program = compile_and_load(
            """
            int rec(int n) { if (n <= 0) return 1; return rec(n - 1) + n; }
            int main() { print_int(rec(40)); return 0; }
            """
        )
        lockstep_diff(program)

    def test_indirect_jump_into_block_interior(self):
        """A computed jmpl landing mid-block: no superblock starts there,
        so the dispatcher must fall back to per-instruction closures --
        with identical architectural results."""
        program = assemble(
            """
            .text
    _start: mov 0, %o0
            set mid, %l0
            jmpl %l0+0, %g0
            mov 99, %o0
    top:    add %o0, 1, %o0
    mid:    add %o0, 2, %o0
            add %o0, 4, %o0
            ta 0
            """
        )
        # `mid` is interior: not a static branch/call target, not a
        # post-transfer fallthrough
        from repro.isa.blockcompile import discover_leaders

        assert program.symbols["mid"] not in discover_leaders(program)
        lockstep_diff(program)
        blk = _BlockSteppedMachine(program, 8 * 1024 * 1024, 8)
        while not blk.halted:
            blk.advance()
        assert blk.fallbacks > 0  # the interior target had no block
        assert blk.services.exit_code == 6  # 0 + 2 + 4: the +1 was jumped over

    def test_arithmetic_and_memory_mix(self):
        program = compile_and_load(
            """
            int data[64];
            int main() {
              int i; int acc = 0;
              for (i = 0; i < 64; i++) data[i] = (i * 7) - 100;
              for (i = 0; i < 64; i++) {
                if (data[i] < 0) acc = acc - data[i];
                else acc = acc + (data[i] >> 1);
              }
              print_int(acc);
              return acc & 0xff;
            }
            """
        )
        lockstep_diff(program)


@settings(max_examples=10, deadline=None)
@given(program_source())
def test_random_programs_differential(source):
    """Randomized instruction sequences: closures vs the generic oracle."""
    lockstep_diff(compile_and_load(source))


@pytest.mark.parametrize("name", registry.BENCHMARKS)
def test_workload_differential(name):
    """Every workload, instruction by instruction (up to the lockstep cap)."""
    program = registry.load_program(name, SMALL)
    instret = lockstep_diff(program)
    assert instret > 0


class TestEscapeHatch:
    def test_env_var_forces_generic_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_GENERIC_STEP", "1")
        assert generic_step_forced()
        program = compile_and_load("int main() { return 42; }")
        m = ReferenceMachine(program)
        assert m.generic_step and m._run is None
        m.run()
        assert m.exit_code == 42

    def test_zero_and_empty_do_not_force(self, monkeypatch):
        monkeypatch.setenv("REPRO_GENERIC_STEP", "0")
        assert not generic_step_forced()
        monkeypatch.delenv("REPRO_GENERIC_STEP")
        assert not generic_step_forced()

    def test_no_block_compile_disables_block_dispatch(self, monkeypatch):
        from repro.isa.blockcompile import block_compile_disabled

        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        assert block_compile_disabled()
        program = compile_and_load("int main() { return 42; }")
        m = ReferenceMachine(program)
        assert not m.block_compile and m._block_table() is None
        m.run()
        assert m.exit_code == 42 and m.block_fallbacks == 0

    def test_block_hatches_imply_no_pm_compile(self, monkeypatch):
        """Primary-mode codegen rides on the block compiler: either
        hatch (and its own REPRO_NO_PRIMARY_COMPILE) disables it."""
        from repro.isa.blockcompile import pm_compile_disabled

        assert not pm_compile_disabled()
        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        assert pm_compile_disabled()
        monkeypatch.delenv("REPRO_NO_BLOCK_COMPILE")
        monkeypatch.setenv("REPRO_GENERIC_STEP", "1")
        assert pm_compile_disabled()

    def test_generic_step_implies_no_blocks(self, monkeypatch):
        from repro.isa.blockcompile import block_compile_disabled

        monkeypatch.setenv("REPRO_GENERIC_STEP", "1")
        assert block_compile_disabled()
        program = compile_and_load("int main() { return 9; }")
        m = ReferenceMachine(program)
        assert m.generic_step and not m.block_compile
        m.run()
        assert m.exit_code == 9

    def test_zero_and_empty_do_not_disable_blocks(self, monkeypatch):
        from repro.isa.blockcompile import block_compile_disabled

        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "0")
        assert not block_compile_disabled()
        monkeypatch.delenv("REPRO_NO_BLOCK_COMPILE")
        assert not block_compile_disabled()

    def test_four_way_holds_under_both_hatches(self, monkeypatch):
        """The lockstep itself under each escape hatch: the block machine
        pins blocks on explicitly, the reference paths honour the env."""
        program = compile_and_load(
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 20; i++) s = s + i; return s & 0xff; }"
        )
        monkeypatch.setenv("REPRO_NO_BLOCK_COMPILE", "1")
        lockstep_diff(program)
        monkeypatch.delenv("REPRO_NO_BLOCK_COMPILE")
        monkeypatch.setenv("REPRO_GENERIC_STEP", "1")
        # generic-step forces the oracle everywhere the env is consulted;
        # the explicit generic_step=False machines still exercise closures
        lockstep_diff(program)

    def test_machines_honour_the_escape_hatch(self, monkeypatch):
        monkeypatch.setenv("REPRO_GENERIC_STEP", "1")
        from repro import DTSVLIW, MachineConfig
        from repro.baselines.dif import DIFMachine

        program = compile_and_load("int main() { return 7; }")
        m = DTSVLIW(program, MachineConfig.paper_fixed(4, 4))
        assert not m.primary.use_exec
        m.run()
        assert m.exit_code == 7
        d = DIFMachine(program, MachineConfig.fig9(test_mode=False))
        assert not d.use_exec and not d.primary.use_exec
        d.run()
        assert d.exit_code == 7


class TestPredecodeTable:
    def test_every_instruction_is_specialized(self):
        program = compile_and_load("int main() { return 3 + 4; }")
        assert set(program.exec_table) == set(program.instrs)
        assert set(program.run_table) == set(program.instrs)
        for addr, instr in program.instrs.items():
            assert instr.exec_fn is program.exec_table[addr]
            assert callable(instr.exec_fn)
            assert callable(program.run_table[addr])

    def test_pickle_round_trip_re_predecodes(self):
        import pickle

        program = compile_and_load("int main() { return 5; }")
        clone = pickle.loads(pickle.dumps(program))
        assert set(clone.exec_table) == set(program.exec_table)
        m = ReferenceMachine(clone)
        m.run()
        assert m.exit_code == 5
