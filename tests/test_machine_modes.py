"""Tests of machine-level mode switching, probing and prediction
accounting (sections 3.6 / 5)."""

import pytest

from repro import DTSVLIW, MachineConfig, compile_and_load
from repro.core.reference import ReferenceMachine

LOOP = """
int main() {
  int i; int s = 0;
  for (i = 0; i < 120; i++) s += i & 7;
  return s & 0xff;
}
"""


def run(src, cfg):
    program = compile_and_load(src)
    machine = DTSVLIW(program, cfg)
    stats = machine.run(max_cycles=50_000_000)
    return machine, stats


class TestModeSwitching:
    def test_switch_costs_accounted(self):
        machine, stats = run(LOOP, MachineConfig.paper_fixed(8, 8))
        cfg = machine.cfg
        assert stats.mode_switches >= 2  # at least one round trip
        expected = 0
        # every probe hit costs switch_to_vliw, every VLIW exit costs
        # switch_to_primary; the totals must be consistent
        assert stats.switch_cycles == (
            stats.vliw_cache_hits * cfg.switch_to_vliw_cost
            + (stats.mode_switches - stats.vliw_cache_hits)
            * cfg.switch_to_primary_cost
        )

    def test_probes_counted_per_primary_instruction(self):
        machine, stats = run(LOOP, MachineConfig.paper_fixed(8, 8))
        assert stats.vliw_cache_probes >= stats.vliw_cache_hits
        # one probe per primary execute-stage instruction plus the probes
        # that hit (whose instruction is annulled rather than executed)
        assert (
            stats.vliw_cache_probes
            <= stats.primary_instructions
            + stats.vliw_cache_hits
            + stats.mode_switches
        )

    def test_loop_converges_to_vliw_execution(self):
        machine, stats = run(LOOP, MachineConfig.paper_fixed(8, 8))
        assert stats.vliw_cycle_fraction > 0.8

    def test_blocks_chain_through_nba(self):
        machine, stats = run(LOOP, MachineConfig.paper_fixed(4, 4))
        # the loop spans several chained blocks executed back to back
        assert stats.vliw_block_entries > stats.mode_switches

    def test_straightline_program_never_reenters(self):
        machine, stats = run(
            "int main() { return 1 + 2 + 3; }", MachineConfig.paper_fixed(4, 4)
        )
        assert stats.vliw_cache_hits == 0
        assert stats.vliw_cycles == 0


class TestNextBlockPredictorAccounting:
    def test_hit_and_total_counters(self):
        cfg = MachineConfig.feasible(next_block_prediction=True)
        machine, stats = run(LOOP, cfg)
        total = stats.next_block_predictions
        hits = stats.next_block_pred_hits
        assert 0 < hits <= total

    def test_predictor_state_is_per_machine(self):
        cfg = MachineConfig.feasible(next_block_prediction=True)
        m1, _ = run(LOOP, cfg)
        m2, _ = run(LOOP, cfg)
        assert m1._next_block_pred is not m2._next_block_pred

    def test_disabled_predictor_keeps_counters_empty(self):
        machine, stats = run(LOOP, MachineConfig.feasible())
        assert stats.next_block_predictions == 0
        assert stats.next_block_pred_hits == 0


class TestTestModeOracle:
    def test_divergence_detected(self):
        """Corrupt the machine state mid-run: test mode must catch it."""
        from repro.core.errors import TestModeMismatch

        program = compile_and_load(LOOP)
        machine = DTSVLIW(program, MachineConfig.paper_fixed(8, 8))

        original = machine.engine.execute_block
        state = {"corrupted": False}

        def corrupt(block):
            out = original(block)
            if not state["corrupted"]:
                state["corrupted"] = True
                machine.rf.write(17, 0xDEAD)  # clobber %l1 behind its back
            return out

        machine.engine.execute_block = corrupt
        with pytest.raises(TestModeMismatch):
            machine.run(max_cycles=50_000_000)

    def test_final_memory_comparison(self):
        program = compile_and_load(
            "int g[4]; int main() { g[2] = 7; return g[2]; }"
        )
        machine = DTSVLIW(program, MachineConfig.paper_fixed(4, 4))
        machine.run()
        assert machine.mem.data == machine.reference.mem.data
