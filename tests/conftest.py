"""Shared fixtures: keep test runs from writing into the repo tree.

The trace store (repro.trace.store) defaults to ``results/traces/`` in
the working directory; tests share one session-scoped temporary store
instead so running the suite leaves no artifacts behind.  Individual
tests that need a private store monkeypatch ``REPRO_TRACE_DIR`` again
(the test body runs after this fixture, so its value wins).
"""

import pytest


@pytest.fixture(scope="session")
def _session_trace_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(autouse=True)
def _isolated_trace_store(_session_trace_dir, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", _session_trace_dir)
