"""Shared fixtures: keep test runs from writing into the repo tree.

The trace store (repro.trace.store) defaults to ``results/traces/`` in
the working directory; tests share one session-scoped temporary store
instead so running the suite leaves no artifacts behind.  The profile
exporter (repro.obs.export) gets the same treatment via
``REPRO_PROFILE_DIR``.  Individual tests that need a private store
monkeypatch the variable again (the test body runs after this fixture,
so its value wins).  ``REPRO_PROBE`` is cleared so an ambient probe in
the developer's shell can never alter what a test observes, and
``REPRO_NO_BLOCK_COMPILE`` likewise so every test sees the default
block-compiled dispatch; the compiled-block cache
(``REPRO_BLOCK_DIR``) is session-isolated like the trace store.
"""

import pytest


@pytest.fixture(scope="session")
def _session_trace_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="session")
def _session_profile_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("profiles"))


@pytest.fixture(autouse=True)
def _isolated_trace_store(_session_trace_dir, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", _session_trace_dir)


@pytest.fixture(scope="session")
def _session_block_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("blocks"))


@pytest.fixture(autouse=True)
def _isolated_profile_dir(_session_profile_dir, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_DIR", _session_profile_dir)
    monkeypatch.delenv("REPRO_PROBE", raising=False)


@pytest.fixture(autouse=True)
def _isolated_block_store(_session_block_dir, monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_DIR", _session_block_dir)
    monkeypatch.delenv("REPRO_NO_BLOCK_COMPILE", raising=False)


@pytest.fixture(scope="session")
def _session_memo_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("memos"))


@pytest.fixture(autouse=True)
def _isolated_memo_store(_session_memo_dir, monkeypatch):
    monkeypatch.setenv("REPRO_MEMO_DIR", _session_memo_dir)
    monkeypatch.delenv("REPRO_NO_PRIMARY_COMPILE", raising=False)
    monkeypatch.delenv("REPRO_NO_MEMO_STORE", raising=False)
