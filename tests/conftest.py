"""Shared fixtures: keep test runs from writing into the repo tree.

The trace store (repro.trace.store) defaults to ``results/traces/`` in
the working directory; tests share one session-scoped temporary store
instead so running the suite leaves no artifacts behind.  The profile
exporter (repro.obs.export) gets the same treatment via
``REPRO_PROFILE_DIR``.  Individual tests that need a private store
monkeypatch the variable again (the test body runs after this fixture,
so its value wins).  ``REPRO_PROBE`` is cleared so an ambient probe in
the developer's shell can never alter what a test observes, and
``REPRO_NO_BLOCK_COMPILE`` likewise so every test sees the default
block-compiled dispatch; the compiled-block cache
(``REPRO_BLOCK_DIR``) is session-isolated like the trace store.

The same treatment covers every other on-disk store (result cache,
scheduling-memo store, synth specs, fuzz repro artifacts) and every
remaining engine hatch (``REPRO_GENERIC_STEP``,
``REPRO_EXECUTION_DRIVEN``, batch/vector/memo/cache switches, the
timing-mutation seam): an ambient setting in the developer's shell must
never change what a test observes, and a failing fuzz test must never
litter the repo's ``results/`` tree.
"""

import pytest


@pytest.fixture(scope="session")
def _session_trace_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("traces"))


@pytest.fixture(scope="session")
def _session_profile_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("profiles"))


@pytest.fixture(autouse=True)
def _isolated_trace_store(_session_trace_dir, monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DIR", _session_trace_dir)


@pytest.fixture(scope="session")
def _session_block_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("blocks"))


@pytest.fixture(autouse=True)
def _isolated_profile_dir(_session_profile_dir, monkeypatch):
    monkeypatch.setenv("REPRO_PROFILE_DIR", _session_profile_dir)
    monkeypatch.delenv("REPRO_PROBE", raising=False)


@pytest.fixture(autouse=True)
def _isolated_block_store(_session_block_dir, monkeypatch):
    monkeypatch.setenv("REPRO_BLOCK_DIR", _session_block_dir)
    monkeypatch.delenv("REPRO_NO_BLOCK_COMPILE", raising=False)


@pytest.fixture(scope="session")
def _session_memo_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("memos"))


@pytest.fixture(autouse=True)
def _isolated_memo_store(_session_memo_dir, monkeypatch):
    monkeypatch.setenv("REPRO_MEMO_DIR", _session_memo_dir)
    monkeypatch.delenv("REPRO_NO_PRIMARY_COMPILE", raising=False)
    monkeypatch.delenv("REPRO_NO_MEMO_STORE", raising=False)


@pytest.fixture(scope="session")
def _session_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("resultcache"))


@pytest.fixture(scope="session")
def _session_synth_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("synth"))


@pytest.fixture(scope="session")
def _session_repro_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repros"))


@pytest.fixture(autouse=True)
def _isolated_result_cache(_session_cache_dir, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", _session_cache_dir)


@pytest.fixture(autouse=True)
def _isolated_synth_stores(_session_synth_dir, _session_repro_dir, monkeypatch):
    monkeypatch.setenv("REPRO_SYNTH_DIR", _session_synth_dir)
    monkeypatch.setenv("REPRO_REPRO_DIR", _session_repro_dir)


@pytest.fixture(autouse=True)
def _no_ambient_hatches(monkeypatch):
    for var in (
        "REPRO_GENERIC_STEP",
        "REPRO_EXECUTION_DRIVEN",
        "REPRO_NO_BATCH",
        "REPRO_NO_VECTOR",
        "REPRO_NO_SCHED_MEMO",
        "REPRO_NO_CACHE",
        "REPRO_MUTATE_TIMING",
    ):
        monkeypatch.delenv(var, raising=False)
