"""Tests for the binary executable format and the cc/asm/exec CLI."""

import pytest

from repro import DTSVLIW, MachineConfig, compile_and_load
from repro.asm.binary import load_program, save_program
from repro.core.errors import SimError
from repro.core.reference import ReferenceMachine
from repro.harness.cli import main as cli_main

SOURCE = """
int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }
int main() { print_int(fib(10)); return fib(10) & 0xff; }
"""


class TestBinaryFormat:
    def test_roundtrip_preserves_execution(self, tmp_path):
        program = compile_and_load(SOURCE)
        path = tmp_path / "fib.bin"
        save_program(program, path)
        loaded = load_program(path)
        m1 = ReferenceMachine(program)
        m1.run()
        m2 = ReferenceMachine(loaded)
        m2.run()
        assert m2.output == m1.output == b"55"
        assert m2.exit_code == m1.exit_code

    def test_roundtrip_preserves_symbols_and_layout(self, tmp_path):
        program = compile_and_load(SOURCE)
        path = tmp_path / "fib.bin"
        save_program(program, path)
        loaded = load_program(path)
        assert loaded.entry == program.entry
        assert loaded.text_base == program.text_base
        assert loaded.text_words == program.text_words
        assert loaded.data_image == program.data_image
        assert loaded.symbols == program.symbols

    def test_loaded_binary_runs_on_dtsvliw(self, tmp_path):
        program = compile_and_load(SOURCE)
        path = tmp_path / "fib.bin"
        save_program(program, path)
        machine = DTSVLIW(load_program(path), MachineConfig.paper_fixed(8, 8))
        machine.run()
        assert machine.output == b"55"

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"ELF\x7f" + b"\x00" * 64)
        with pytest.raises(SimError):
            load_program(path)

    def test_truncated_rejected(self, tmp_path):
        program = compile_and_load(SOURCE)
        path = tmp_path / "fib.bin"
        save_program(program, path)
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(SimError):
            load_program(path)


class TestToolchainCLI:
    def test_cc_exec_pipeline(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text(SOURCE)
        binary = tmp_path / "prog.bin"
        assert cli_main(["cc", str(src), "-o", str(binary)]) == 0
        assert cli_main(["exec", str(binary), "--test-mode"]) == 0
        out = capsys.readouterr().out
        assert "55" in out and "ipc=" in out

    def test_cc_emit_asm(self, tmp_path, capsys):
        src = tmp_path / "prog.c"
        src.write_text("int main() { return 3; }")
        asm = tmp_path / "prog.s"
        assert cli_main(["cc", str(src), "-S", "-o", str(asm)]) == 0
        text = asm.read_text()
        assert "_start:" in text and "call main" in text

    def test_asm_command(self, tmp_path, capsys):
        src = tmp_path / "tiny.s"
        src.write_text("        .text\n_start: mov 9, %o0\n        ta 0\n")
        binary = tmp_path / "tiny.bin"
        assert cli_main(["asm", str(src), "-o", str(binary)]) == 0
        assert cli_main(["exec", str(binary), "--machine", "scalar"]) == 0
        out = capsys.readouterr().out
        assert "exit=9" in out

    def test_cc_with_optimisations(self, tmp_path, capsys):
        src = tmp_path / "loop.c"
        src.write_text(
            """
            int a[16];
            int main() {
              int i; int s = 0;
              for (i = 0; i < 16; i++) a[i] = i;
              for (i = 0; i < 16; i++) s += a[i];
              return s;
            }
            """
        )
        binary = tmp_path / "loop.bin"
        assert (
            cli_main(
                ["cc", str(src), "--unroll", "4", "--schedule", "-o", str(binary)]
            )
            == 0
        )
        assert cli_main(["exec", str(binary), "--test-mode"]) == 0
        out = capsys.readouterr().out
        assert "exit=120" in out
