"""Tests for the synthetic-workload generator subsystem (repro.synth):
spec round-trip and hashing, deterministic generation across the dial
grid, the spec store, registry integration of ``synth:`` names, repro
artifacts, the greedy shrinker and the ``dtsvliw synth`` CLI verb."""

import json

import pytest

from repro import compile_and_load
from repro.core.errors import SimError
from repro.core.reference import ReferenceMachine
from repro.harness.cli import main as cli_main
from repro.synth import (
    SynthSpec,
    corpus_specs,
    generate_source,
    is_synth_name,
    known_specs,
    load_repro,
    register_spec,
    resolve_spec,
    save_repro,
    shrink_spec,
)
from repro.synth.store import _reset_memo_for_tests
from repro.workloads import registry


@pytest.fixture(autouse=True)
def _private_stores(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_SYNTH_DIR", str(tmp_path / "synth"))
    monkeypatch.setenv("REPRO_REPRO_DIR", str(tmp_path / "repros"))
    _reset_memo_for_tests()
    yield
    _reset_memo_for_tests()


class TestSpec:
    def test_round_trip_and_hash_stability(self):
        spec = SynthSpec(
            seed=7,
            while_loops=True,
            access="mixed",
            arith="mixed",
            signed_bytes=True,
            branchiness=0.5,
        )
        again = SynthSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()
        # hashing is dict-order independent (canonical JSON)
        shuffled = dict(reversed(list(spec.to_dict().items())))
        assert SynthSpec.from_dict(shuffled).spec_hash() == spec.spec_hash()

    def test_every_dial_changes_the_hash(self):
        base = SynthSpec()
        variants = [
            base.with_(seed=1),
            base.with_(stmts=5),
            base.with_(depth=2),
            base.with_(branchiness=0.9),
            base.with_(loop_depth=2),
            base.with_(trip=5),
            base.with_(while_loops=True),
            base.with_(mem_pow2=7),
            base.with_(access="chase"),
            base.with_(stride=2),
            base.with_(call_depth=1),
            base.with_(recursion=3),
            base.with_(arith="float"),
            base.with_(signed_bytes=True),
            base.with_(passes=3),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_name_is_prefixed_hash(self):
        spec = SynthSpec()
        assert spec.name == "synth:" + spec.spec_hash()
        assert is_synth_name(spec.name)
        assert not is_synth_name("perl")

    @pytest.mark.parametrize(
        "field,value",
        [
            ("stmts", 0),
            ("stmts", 17),
            ("depth", 4),
            ("branchiness", 1.5),
            ("loop_depth", -1),
            ("trip", 0),
            ("mem_pow2", 3),
            ("mem_pow2", 13),
            ("access", "random"),
            ("stride", 9),
            ("call_depth", 5),
            ("recursion", 16),
            ("arith", "simd"),
            ("passes", 0),
        ],
    )
    def test_validate_rejects_out_of_range(self, field, value):
        with pytest.raises(SimError, match=field):
            SynthSpec(**{field: value}).validate()

    def test_from_dict_rejects_unknown_fields_and_versions(self):
        d = SynthSpec().to_dict()
        d["warp_drive"] = 1
        with pytest.raises(SimError, match="warp_drive"):
            SynthSpec.from_dict(d)
        d = SynthSpec().to_dict()
        d["version"] = 99
        with pytest.raises(SimError, match="version"):
            SynthSpec.from_dict(d)


class TestGenerator:
    def test_deterministic(self):
        spec = SynthSpec(while_loops=True, signed_bytes=True, depth=2)
        assert generate_source(spec) == generate_source(spec)

    def test_distinct_seeds_distinct_programs(self):
        assert generate_source(SynthSpec(seed=1)) != generate_source(
            SynthSpec(seed=2)
        )

    def test_scale_multiplies_passes_only(self):
        spec = SynthSpec(passes=4)
        small = generate_source(spec, 0.5)
        big = generate_source(spec, 2.0)
        assert "t < 2" in small and "t < 8" in big
        assert small.replace("t < 2", "t < 8") == big

    @pytest.mark.parametrize(
        "kw",
        [
            {},
            {"while_loops": True, "branchiness": 0.8, "depth": 2},
            {"access": "chase", "mem_pow2": 5},
            {"access": "mixed", "stride": 7},
            {"call_depth": 3, "recursion": 7},
            {"arith": "mixed", "signed_bytes": True},
            {"loop_depth": 3, "trip": 3, "stmts": 6},
        ],
        ids=lambda kw: ",".join(kw) or "defaults",
    )
    def test_dial_corners_compile_terminate_and_self_check(self, kw):
        spec = SynthSpec(seed=11, **kw)
        program = compile_and_load(generate_source(spec))
        ref = ReferenceMachine(program)
        n = ref.run(max_instructions=20_000_000)
        assert n > 0
        # the printed checksum and the exit code agree (self-check)
        checksum = int(ref.output)
        assert ref.exit_code == checksum & 0xFF

    def test_signed_bytes_reach_ldsb(self):
        spec = SynthSpec(signed_bytes=True, stmts=8, seed=5)
        src = generate_source(spec)
        assert "load_s8" in src

    def test_corpus_spans_the_dial_grid(self):
        specs = corpus_specs(50, seed=0)
        assert len(specs) == 50
        assert len({s.spec_hash() for s in specs}) == 50
        assert corpus_specs(50, seed=0) == specs  # deterministic
        assert any(s.while_loops for s in specs)
        assert any(s.signed_bytes for s in specs)
        assert any(s.recursion for s in specs)
        assert any(s.call_depth for s in specs)
        assert {s.access for s in specs} == {"strided", "chase", "mixed"}
        assert {s.arith for s in specs} == {"alu", "mul", "float", "mixed"}
        assert any(s.loop_depth >= 2 for s in specs)
        assert any(s.branchiness >= 0.7 for s in specs)


class TestStoreAndRegistry:
    def test_register_resolve_round_trip(self):
        spec = SynthSpec(seed=21, while_loops=True)
        name = register_spec(spec)
        assert name == spec.name
        _reset_memo_for_tests()  # force the disk path
        assert resolve_spec(name) == spec
        assert spec in known_specs()

    def test_resolve_unknown_raises(self):
        with pytest.raises(SimError, match="unknown synthetic workload"):
            resolve_spec("synth:ffffffffffff")

    def test_corrupted_store_file_rejected(self, tmp_path, monkeypatch):
        spec = SynthSpec(seed=4)
        register_spec(spec)
        _reset_memo_for_tests()
        import os
        from pathlib import Path

        path = Path(os.environ["REPRO_SYNTH_DIR"]) / (
            "%s.json" % spec.spec_hash()
        )
        edited = spec.with_(seed=5)
        path.write_text(json.dumps(edited.to_dict()))
        with pytest.raises(SimError, match="does not hash"):
            resolve_spec(spec.name)

    def test_registry_accepts_synth_names(self):
        spec = SynthSpec(seed=8)
        name = register_spec(spec)
        desc, mirrors = registry.workload_info(name)
        assert spec.spec_hash() in desc
        assert "synth" in mirrors
        assert registry.workload_source(name) == generate_source(spec)
        program = registry.load_program(name, scale=1.0)
        n, out, code = registry.reference_run(name, scale=1.0)
        assert n > 0 and code == int(out) & 0xFF

    def test_registry_still_rejects_unknown_names(self):
        with pytest.raises(SimError, match="unknown workload"):
            registry.workload_info("quake")


class TestReproArtifacts:
    def test_save_load_round_trip(self):
        spec = SynthSpec(seed=13, signed_bytes=True)
        path = save_repro(spec, reason="cycles 10 != 11", extra={"k": "v"})
        loaded, payload = load_repro(path)
        assert loaded == spec
        assert payload["reason"] == "cycles 10 != 11"
        assert payload["k"] == "v"
        assert "synth replay" in payload["replay"]

    def test_load_malformed_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(SimError, match="malformed"):
            load_repro(str(bad))
        with pytest.raises(SimError, match="unreadable"):
            load_repro(str(tmp_path / "missing.json"))


class TestShrinker:
    def test_converges_to_local_minimum(self):
        # synthetic predicate: fails whenever signed bytes are on and the
        # body has at least 3 statements
        def fails(s):
            return s.signed_bytes and s.stmts >= 3

        start = SynthSpec(
            stmts=12,
            depth=3,
            while_loops=True,
            signed_bytes=True,
            branchiness=0.9,
            loop_depth=3,
            recursion=7,
            passes=8,
        )
        mini = shrink_spec(start, fails)
        assert fails(mini)
        assert mini.stmts == 3 and mini.signed_bytes
        # everything irrelevant got zeroed
        assert mini.passes == 1 and mini.depth == 0 and mini.loop_depth == 0
        assert not mini.while_loops and mini.recursion == 0

    def test_noop_when_predicate_never_fires(self):
        spec = SynthSpec()
        assert shrink_spec(spec, lambda s: False) == spec


class TestCli:
    def test_new_show_emit_list(self, capsys):
        assert (
            cli_main(
                ["synth", "new", "--dial", "while_loops=true", "--dial", "seed=3"]
            )
            == 0
        )
        name = capsys.readouterr().out.splitlines()[0].strip()
        assert name.startswith("synth:")
        spec = resolve_spec(name)
        assert spec.while_loops and spec.seed == 3

        assert cli_main(["synth", "show", name]) == 0
        out = capsys.readouterr().out
        assert name in out and '"while_loops": true' in out

        assert cli_main(["synth", "emit", name]) == 0
        assert "int main()" in capsys.readouterr().out

        assert cli_main(["synth", "list"]) == 0
        assert name in capsys.readouterr().out

    def test_bad_dial_rejected(self):
        with pytest.raises(SimError, match="unknown SynthSpec dial"):
            cli_main(["synth", "new", "--dial", "warp=1"])

    def test_show_without_target_errors(self, capsys):
        assert cli_main(["synth", "show"]) == 2
