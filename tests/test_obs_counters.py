"""Counter cross-validation: the probe event stream is the Stats ledger.

Every emission site sits at exactly the point where the corresponding
``Stats`` counter is charged, so recomputing the counters from a recorded
event stream must reproduce the Stats object field for field -- across
every workload, both reference configurations, all three machine kinds,
and (for the trace-drivable baselines) both the live and the replayed
execution paths.  A divergence here means an instrumentation site drifted
away from its counter, which is precisely the bug class these tests
exist to catch.
"""

import pytest

from repro.core.config import MachineConfig
from repro.core.machine import DTSVLIW
from repro.harness.runner import run_workload
from repro.obs import (
    CounterProbe,
    EventProbe,
    NullProbe,
    cache_miss_counts,
    recompute_counters,
    resolve_probe,
)
from repro.workloads import registry

SCALE = 0.05

CONFIGS = [
    ("paper8x8", MachineConfig.paper_fixed(8, 8, test_mode=False)),
    ("feasible", MachineConfig.feasible(test_mode=False)),
]


def _assert_recomputable(stats, events):
    rec = recompute_counters(events)
    assert rec, "no recomputable counters derived from %d events" % len(events)
    mismatches = {
        k: (v, getattr(stats, k)) for k, v in rec.items() if v != getattr(stats, k)
    }
    assert not mismatches, (
        "event-derived counters diverge from Stats (derived, actual): %r"
        % mismatches
    )


class TestDTSVLIWCrossValidation:
    @pytest.mark.parametrize("bench", registry.BENCHMARKS)
    @pytest.mark.parametrize(
        "cfg", [c for _, c in CONFIGS], ids=[label for label, _ in CONFIGS]
    )
    def test_all_workloads_both_configs(self, bench, cfg):
        probe = EventProbe()
        res = run_workload(bench, cfg, scale=SCALE, probe=probe)
        assert probe.events, "probed run recorded no events"
        _assert_recomputable(res.stats, probe.events)

    def test_cache_miss_events_match_cache_stats(self):
        probe = EventProbe()
        program = registry.load_program("compress", SCALE)
        m = DTSVLIW(program, MachineConfig.feasible(test_mode=False), probe=probe)
        m.run()
        misses = cache_miss_counts(probe.events)
        assert misses.get("icache", 0) == m.icache.stats.misses
        assert misses.get("dcache", 0) == m.dcache.stats.misses


class TestBaselineCrossValidation:
    @pytest.mark.parametrize("machine", ["dif", "scalar"])
    def test_baselines_recompute(self, machine):
        probe = EventProbe()
        res = run_workload(
            "compress", MachineConfig.fig9(), machine=machine, scale=SCALE, probe=probe
        )
        _assert_recomputable(res.stats, probe.events)

    @pytest.mark.parametrize("machine", ["dif", "scalar"])
    def test_replay_emits_identical_events(self, machine, monkeypatch):
        """The trace-replay loops emit the same stream as live execution."""
        cfg = MachineConfig.fig9()
        replayed = EventProbe()
        run_workload("compress", cfg, machine=machine, scale=SCALE, probe=replayed)
        monkeypatch.setenv("REPRO_EXECUTION_DRIVEN", "1")
        live = EventProbe()
        res = run_workload("compress", cfg, machine=machine, scale=SCALE, probe=live)
        assert replayed.events == live.events
        _assert_recomputable(res.stats, live.events)


class TestProbeDepths:
    def test_counter_probe_counts_match_event_probe(self):
        cfg = MachineConfig.paper_fixed(8, 8, test_mode=False)
        counters = CounterProbe()
        run_workload("compress", cfg, scale=SCALE, probe=counters)
        events = EventProbe()
        run_workload("compress", cfg, scale=SCALE, probe=events)
        assert counters.counts == events.counts
        assert events.count("block_flush") == sum(
            1 for _ in events.select("block_flush")
        )

    def test_probe_differential_on_workload(self):
        """Stats (wall time excluded by design), cycles and IPC are
        bit-identical with and without an attached event probe."""
        cfg = MachineConfig.feasible(test_mode=False)
        res_off = run_workload("compress", cfg, scale=SCALE)
        res_ev = run_workload("compress", cfg, scale=SCALE, probe=EventProbe())
        assert res_off.stats == res_ev.stats
        assert res_off.cycles == res_ev.cycles
        assert res_off.ipc == res_ev.ipc

    def test_resolve_probe_depths(self, monkeypatch):
        assert resolve_probe(NullProbe()) is None
        probe = EventProbe()
        assert resolve_probe(probe) is probe
        monkeypatch.delenv("REPRO_PROBE", raising=False)
        assert resolve_probe(None) is None
        monkeypatch.setenv("REPRO_PROBE", "counters")
        assert isinstance(resolve_probe(None), CounterProbe)
        monkeypatch.setenv("REPRO_PROBE", "events")
        assert isinstance(resolve_probe(None), EventProbe)
        monkeypatch.setenv("REPRO_PROBE", "off")
        assert resolve_probe(None) is None
        monkeypatch.setenv("REPRO_PROBE", "bogus")
        assert resolve_probe(None) is None  # unknown depth warns and means off

    def test_env_probe_reaches_machine(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROBE", "counters")
        program = registry.load_program("compress", SCALE)
        m = DTSVLIW(program, MachineConfig.paper_fixed(8, 8, test_mode=False))
        m.run()
        assert isinstance(m.probe, CounterProbe)
        assert m.probe.counts

    def test_summary_probe_line_is_optional(self):
        cfg = MachineConfig.paper_fixed(8, 8, test_mode=False)
        probe = EventProbe()
        res = run_workload("compress", cfg, scale=SCALE, probe=probe)
        assert "probe:" not in res.stats.summary()
        assert "probe:" not in res.stats.summary(NullProbe())
        assert "probe:" in res.stats.summary(probe)


class TestBlockCompileCrossValidation:
    """The ``bc_*`` event stream cross-validates the process-global
    :data:`repro.isa.blockcompile.GLOBAL_STATS` counters (and the
    per-machine fallback count)."""

    def _program(self):
        from repro import compile_and_load

        return compile_and_load(
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 30; i++) s = s + i; return s & 0xff; }"
        )

    def test_compile_and_cache_events_match_global_stats(
        self, tmp_path, monkeypatch
    ):
        from repro.isa.blockcompile import (
            GLOBAL_STATS,
            MODE_LEAN,
            clear_memo,
            compile_blocks,
        )
        from repro.obs import block_compile_counts

        monkeypatch.setenv("REPRO_BLOCK_DIR", str(tmp_path))
        program = self._program()

        # cold: disk miss + fresh codegen, one bc_compile per block
        clear_memo()
        probe = EventProbe()
        before = GLOBAL_STATS.snapshot()
        table = compile_blocks(program, MODE_LEAN, probe=probe)
        delta = {
            k: v - before[k] for k, v in GLOBAL_STATS.snapshot().items()
        }
        counts = block_compile_counts(probe.events)
        assert counts == delta
        assert counts["compiled"] == len(table) > 0
        assert counts["cache_misses"] == 1 and counts["cache_hits"] == 0

        # warm disk: memo cleared, the marshal'd module is reused
        clear_memo()
        probe = EventProbe()
        before = GLOBAL_STATS.snapshot()
        compile_blocks(program, MODE_LEAN, probe=probe)
        delta = {
            k: v - before[k] for k, v in GLOBAL_STATS.snapshot().items()
        }
        counts = block_compile_counts(probe.events)
        assert counts == delta
        assert counts["compiled"] == 0
        assert counts["cache_hits"] == 1 and counts["cache_misses"] == 0

        # memo hit: no store consulted, no events at all
        probe = EventProbe()
        compile_blocks(program, MODE_LEAN, probe=probe)
        assert not probe.events

    def test_fallback_events_match_machine_counter(self, monkeypatch):
        from repro.asm.assembler import assemble
        from repro.core.reference import ReferenceMachine
        from repro.isa.blockcompile import GLOBAL_STATS
        from repro.obs import block_compile_counts

        # computed jmpl into a block interior: every instruction from the
        # landing point to the next leader dispatches through the
        # per-instruction fallback and emits bc_fallback
        program = assemble(
            """
            .text
    _start: mov 0, %o0
            set mid, %l0
            jmpl %l0+0, %g0
            mov 99, %o0
    top:    add %o0, 1, %o0
    mid:    add %o0, 2, %o0
            add %o0, 4, %o0
            ta 0
            """
        )
        probe = EventProbe()
        before = GLOBAL_STATS.fallback_dispatches
        m = ReferenceMachine(program, probe=probe)
        m.run()
        counts = block_compile_counts(probe.events)
        assert m.block_fallbacks > 0
        assert counts["fallback_dispatches"] == m.block_fallbacks
        assert GLOBAL_STATS.fallback_dispatches - before == m.block_fallbacks
        assert m.exit_code == 6

    def test_counter_probe_matches_event_probe_kinds(
        self, tmp_path, monkeypatch
    ):
        from repro.isa.blockcompile import (
            MODE_LEAN,
            clear_memo,
            compile_blocks,
        )

        monkeypatch.setenv("REPRO_BLOCK_DIR", str(tmp_path))
        program = self._program()
        clear_memo()
        counters = CounterProbe()
        compile_blocks(program, MODE_LEAN, probe=counters)
        clear_memo()
        events = EventProbe()
        compile_blocks(program, MODE_LEAN, probe=events)
        # second resolution hits the disk store: bc_cache counts agree,
        # bc_compile appears only in the cold pass
        assert counters.count("bc_cache") == events.count("bc_cache") == 1
        assert counters.count("bc_compile") > 0
        assert events.count("bc_compile") == 0


class TestPrimaryCompileCrossValidation:
    """The ``pm_*`` event stream cross-validates the process-global
    :data:`repro.isa.blockcompile.PM_STATS` counters."""

    MEM = 8 * 1024 * 1024

    def _replay_machine(self, probe):
        from repro.trace.capture import capture_trace

        program = registry.load_program("compress", SCALE)
        trace = capture_trace(program, self.MEM)
        cfg = MachineConfig.paper_fixed().with_(
            test_mode=False, mem_size=self.MEM
        )
        return DTSVLIW(program, cfg, trace=trace, probe=probe)

    def test_pm_events_match_global_stats(self, tmp_path, monkeypatch):
        from repro.isa.blockcompile import PM_STATS, clear_memo
        from repro.obs import pm_counts

        # private block dir + cleared memo: codegen is fresh, so the
        # per-block pm_compile events fire alongside PM_STATS.compiled
        monkeypatch.setenv("REPRO_BLOCK_DIR", str(tmp_path))
        clear_memo()
        probe = EventProbe()
        before = PM_STATS.snapshot()
        m = self._replay_machine(probe)
        assert m._pm_table is not None
        m.run()
        delta = {k: v - before[k] for k, v in PM_STATS.snapshot().items()}
        counts = pm_counts(probe.events)
        assert counts["compiled"] == delta["compiled"] > 0
        assert counts["dispatches"] == delta["dispatches"] > 0
        assert counts["fallback_dispatches"] == delta["fallback_dispatches"]
        assert delta["cache_misses"] == 1 and delta["cache_hits"] == 0

    def test_counter_probe_matches_event_probe(self):
        counters = CounterProbe()
        self._replay_machine(counters).run()
        events = EventProbe()
        self._replay_machine(events).run()
        for kind in ("pm_dispatch", "pm_fallback"):
            assert counters.count(kind) == events.count(kind)
        assert counters.count("pm_dispatch") > 0


class TestMemoStoreCrossValidation:
    """The ``memo_store_*`` event stream cross-validates the
    process-global :data:`repro.scheduler.memostore.GLOBAL_STATS`."""

    MEM = 8 * 1024 * 1024

    def test_hit_miss_events_match_global_stats(self, tmp_path):
        from repro import compile_and_load
        from repro.obs import memo_store_counts
        from repro.scheduler.memo import ScheduleMemo
        from repro.scheduler.memostore import (
            GLOBAL_STATS,
            MemoStore,
            flush_family_memo,
            load_family_memo,
        )
        from repro.trace.capture import capture_trace

        program = compile_and_load(
            "int main() { int i; int s = 0;"
            " for (i = 0; i < 25; i++) s = s + i; return s & 0xff; }"
        )
        trace = capture_trace(program, self.MEM)
        cfg = MachineConfig.paper_fixed().with_(
            test_mode=False, mem_size=self.MEM
        )
        store = MemoStore(str(tmp_path))
        fkey = ("obs", 0)
        probe = EventProbe()
        before = GLOBAL_STATS.snapshot()

        memo = ScheduleMemo()
        assert load_family_memo(memo, fkey, program, probe, store) == 0
        DTSVLIW(program, cfg, trace=trace, sched_memo=memo).run()
        assert flush_family_memo(memo, fkey, store=store)
        warm = ScheduleMemo()
        loaded = load_family_memo(warm, fkey, program, probe, store)
        assert loaded == memo.stored > 0

        delta = {
            k: v - before[k] for k, v in GLOBAL_STATS.snapshot().items()
        }
        counts = memo_store_counts(probe.events)
        assert counts["store_hits"] == delta["store_hits"] == 1
        assert counts["store_misses"] == delta["store_misses"] == 1
        assert counts["records_loaded"] == delta["records_loaded"] == loaded
        assert delta["flushes"] == 1
        assert [ev[1] for ev in probe.select("memo_store_miss")] == ["absent"]

    def test_disabled_miss_reason(self, tmp_path, monkeypatch):
        from repro import compile_and_load
        from repro.scheduler.memo import ScheduleMemo
        from repro.scheduler.memostore import MemoStore, load_family_memo

        monkeypatch.setenv("REPRO_NO_MEMO_STORE", "1")
        probe = EventProbe()
        program = compile_and_load("int main() { return 0; }")
        load_family_memo(
            ScheduleMemo(), ("d", 0), program, probe, MemoStore(str(tmp_path))
        )
        assert [tuple(e) for e in probe.events] == [("memo_store_miss", "disabled")]


class TestMCKernelCrossValidation:
    """The ``mc_*`` event stream cross-validates the process-global
    :data:`repro.batch.mc_kernel.GLOBAL_STATS` counters."""

    class _Cols:
        def __init__(self):
            import numpy as np

            class B:
                pcs = np.arange(0x1000, 0x1200, 4, dtype=np.uint32)

            self.bound = B()
            self.mem_addrs = np.arange(0, 1024, 8, dtype=np.uint32)
            self._ic = {}
            self._dc = {}
            self.vec_keys = set()

    def test_build_apply_fallback_events_match_global_stats(
        self, monkeypatch
    ):
        from repro.batch.mc_kernel import (
            GLOBAL_STATS,
            note_apply,
            prime_columns,
        )
        from repro.obs import mc_counts

        probe = EventProbe()
        before = GLOBAL_STATS.snapshot()
        # two icache groups (32 vs 64 sets) + one dcache group
        prime_columns(
            self._Cols(),
            [(1024, 32, 1), (2048, 32, 1)],
            [(512, 16, 2)],
            probe,
        )
        note_apply("compress", probe)
        note_apply("ijpeg", probe)
        monkeypatch.setenv("REPRO_NO_VECTOR", "1")
        prime_columns(self._Cols(), [(1024, 32, 1)], [], probe)
        delta = {
            k: v - before[k] for k, v in GLOBAL_STATS.snapshot().items()
        }
        counts = mc_counts(probe.events)
        assert counts == delta
        assert counts == {"builds": 3, "applied": 2, "fallbacks": 1}

    def test_counter_probe_matches_event_probe(self):
        from repro.batch.mc_kernel import prime_columns

        counters = CounterProbe()
        prime_columns(self._Cols(), [(1024, 32, 2)], [(512, 16, 1)], counters)
        events = EventProbe()
        prime_columns(self._Cols(), [(1024, 32, 2)], [(512, 16, 1)], events)
        assert counters.count("mc_build") == events.count("mc_build") == 2
        assert counters.count("mc_fallback") == 0
