"""Unit tests for the basic-block assembly scheduler."""

from hypothesis import given, settings, strategies as st

from repro.asm.assembler import assemble
from repro.asm.schedule import _Line, schedule_assembly
from repro.core.reference import ReferenceMachine


def body_lines(text: str):
    return [
        l.strip()
        for l in text.splitlines()
        if l.strip()
        and not l.strip().startswith(".")
        and not l.strip().endswith(":")
    ]


class TestDependenceExtraction:
    def test_three_op(self):
        l = _Line("        add %l0, %l1, %l2", 0)
        assert l.reads == {"l0", "l1"}
        assert l.writes == {"l2"}

    def test_immediate_operand(self):
        l = _Line("        add %l0, 4, %l2", 0)
        assert l.reads == {"l0"}

    def test_cc_writer_and_reader(self):
        w = _Line("        subcc %l0, 1, %l0", 0)
        assert "%cc" in w.writes
        c = _Line("        cmp %l0, 3", 0)
        assert "%cc" in c.writes and c.writes == {"%cc"}

    def test_load_store(self):
        ld = _Line("        ld [%fp - 8], %g1", 0)
        assert ld.is_load and ld.reads == {"i6"} and ld.writes == {"g1"}
        stl = _Line("        st %g1, [%fp - 8]", 0)
        assert stl.is_store and stl.reads == {"g1", "i6"} and not stl.writes

    def test_alias_normalisation(self):
        a = _Line("        st %g1, [%sp]", 0)
        b = _Line("        add %o6, 8, %g2", 0)
        assert "o6" in a.reads and "o6" in b.reads

    def test_g0_writes_ignored(self):
        l = _Line("        add %l0, %l1, %g0", 0)
        assert not l.writes

    def test_set_pseudo(self):
        l = _Line("        set buf, %g3", 0)
        assert l.writes == {"g3"} and not l.reads

    def test_mov_register(self):
        l = _Line("        mov %o0, %g3", 0)
        assert l.reads == {"o0"} and l.writes == {"g3"}


class TestBlockScheduling:
    def test_dependent_order_preserved(self):
        asm = """
        .text
_start: mov 1, %l0
        add %l0, 1, %l0
        add %l0, 1, %l0
        ta 0
"""
        out = schedule_assembly(asm)
        assert body_lines(out) == body_lines(asm)

    def test_store_load_order_preserved(self):
        asm = """
        .text
_start:
        st %l0, [%l1]
        ld [%l2], %l3
        st %l3, [%l4]
        ta 0
"""
        out = schedule_assembly(asm)
        body = body_lines(out)
        assert body.index("st %l0, [%l1]") < body.index("ld [%l2], %l3")
        assert body.index("ld [%l2], %l3") < body.index("st %l3, [%l4]")

    def test_loads_may_reorder_between_themselves(self):
        asm = """
        .text
_start: ld [%l0], %g1
        ld [%l1], %g2
        add %g2, 1, %g3
        add %g1, %g3, %g4
        ta 0
"""
        out = schedule_assembly(asm)
        body = body_lines(out)
        assert len(body) == len(body_lines(asm))

    def test_branches_stay_at_block_ends(self):
        asm = """
        .text
_start:
        cmp %l0, 3
        be done
        add %l1, 1, %l1
        add %l2, 1, %l2
done:   ta 0
"""
        out = schedule_assembly(asm)
        body = [l for l in out.splitlines() if l.strip()]
        be_pos = next(i for i, l in enumerate(body) if l.strip().startswith("be "))
        cmp_pos = next(i for i, l in enumerate(body) if l.strip().startswith("cmp"))
        assert cmp_pos < be_pos

    def test_data_section_untouched(self):
        asm = """
        .text
_start: ta 0
        .data
x:      .word 3, 4
y:      .byte 1
"""
        out = schedule_assembly(asm)
        assert ".word 3, 4" in out and ".byte 1" in out

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 5), min_size=2, max_size=12), st.integers(0, 3))
    def test_scheduled_program_equivalent(self, adds, seed):
        """Random straight-line programs compute the same result after
        scheduling (execution-level equivalence oracle)."""
        lines = ["        mov %d, %%l0" % (seed + 1), "        mov 7, %l1"]
        regs = ["%l0", "%l1", "%l2", "%l3", "%g1", "%g2"]
        for i, k in enumerate(adds):
            dst = regs[(i + 2) % len(regs)]
            a = regs[k % len(regs)]
            b = regs[(k + i) % len(regs)]
            lines.append("        add %s, %s, %s" % (a, b, dst))
        lines.append("        add %l0, %l1, %o0")
        src = ".text\n_start:\n" + "\n".join(lines) + "\n        ta 0\n"
        base = ReferenceMachine(assemble(src))
        base.run()
        sched = ReferenceMachine(assemble(schedule_assembly(src)))
        sched.run()
        assert sched.rf.iregs == base.rf.iregs
