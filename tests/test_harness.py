"""Tests for the experiment harness: runner, experiments, reporting, CLI."""

import pytest

from repro.core.config import MachineConfig
from repro.core.errors import SimError
from repro.harness import experiments
from repro.harness.cli import main as cli_main
from repro.harness.reporting import format_bars, format_stacked, format_table
from repro.harness.runner import run_workload

SMALL = 0.08


class TestRunner:
    def test_run_returns_validated_result(self):
        cfg = MachineConfig.paper_fixed(4, 4, test_mode=False)
        res = run_workload("perl", cfg, scale=SMALL)
        assert res.benchmark == "perl"
        assert res.machine == "dtsvliw"
        assert res.cycles > 0
        assert 0.3 < res.ipc < 5

    def test_machine_kinds(self):
        cfg = MachineConfig.fig9(test_mode=False)
        for kind in ("dtsvliw", "dif", "scalar"):
            res = run_workload("vortex", cfg, machine=kind, scale=SMALL)
            assert res.cycles > 0

    def test_unknown_machine_rejected(self):
        with pytest.raises(SimError):
            run_workload("perl", MachineConfig(), machine="tomasulo", scale=SMALL)

    def test_ipc_uses_reference_count(self):
        from repro.workloads import registry

        cfg = MachineConfig.paper_fixed(4, 4, test_mode=False)
        res = run_workload("xlisp", cfg, scale=SMALL)
        count, _, _ = registry.reference_run("xlisp", SMALL)
        assert res.ref_instructions == count


class TestExperiments:
    def test_fig5_subset(self):
        data = experiments.fig5_geometry(
            ["perl"], geometries=[(4, 4), (8, 8)], scale=SMALL
        )
        assert set(data) == {"perl"}
        assert set(data["perl"]) == {"4x4", "8x8"}

    def test_fig6_subset(self):
        data = experiments.fig6_cache_size(
            ["xlisp"], sizes_kb=[48, 384], scale=SMALL
        )
        assert set(data["xlisp"]) == {48, 384}

    def test_fig8_segments_cover_ideal(self):
        data = experiments.fig8_feasible(["vortex"], scale=SMALL)
        row = data["vortex"]
        total = sum(row[s] for s in experiments.FIG8_SEGMENTS)
        assert total == pytest.approx(row["ideal"], abs=0.2)

    def test_fig9_subset(self):
        data = experiments.fig9_dif_comparison(["m88ksim"], scale=SMALL)
        row = data["m88ksim"]
        assert row["dtsvliw"] > 0 and row["dif"] > 0

    def test_table3_columns(self):
        data = experiments.table3_feasible(["compress"], scale=SMALL)
        row = data["compress"]
        for col in (
            "ipc",
            "int_renaming",
            "aliasing",
            "vliw_cycles_pct",
            "slot_occupancy_pct",
        ):
            assert col in row


class TestReporting:
    DATA = {
        "alpha": {"a": 1.25, "b": 2.0},
        "beta": {"a": 0.5, "b": 1.0},
    }

    def test_table_contains_rows_and_average(self):
        text = format_table(self.DATA, ["a", "b"])
        assert "alpha" in text and "beta" in text
        assert "average" in text
        assert "0.88" in text  # avg of column a

    def test_table_handles_non_numeric(self):
        text = format_table({"x": {"a": "hello", "b": 1}}, ["a", "b"])
        assert "hello" in text

    def test_bars_scale_to_max(self):
        text = format_bars(self.DATA, width=10)
        lines = [l for l in text.splitlines() if "#" in l]
        assert max(l.count("#") for l in lines) == 10

    def test_stacked_legend_and_totals(self):
        data = {"x": {"s1": 1.0, "s2": 0.5}}
        text = format_stacked(data, ["s1", "s2"])
        assert "total=1.50" in text


class TestCLI:
    def test_table1(self, capsys):
        assert cli_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "block_width" in out

    def test_run_command(self, capsys):
        assert (
            cli_main(
                [
                    "run",
                    "--workload",
                    "vortex",
                    "--width",
                    "4",
                    "--height",
                    "4",
                    "--scale",
                    str(SMALL),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "ipc=" in out

    def test_fig5_with_subset(self, capsys):
        assert (
            cli_main(
                ["fig5", "--benchmarks", "vortex", "--scale", str(SMALL)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "vortex" in out and "16x16" in out
