"""Tests for main memory and the cache timing model."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import MemFault, SimError
from repro.memory.cache import Cache
from repro.memory.main_memory import MainMemory


class TestMainMemory:
    def test_word_roundtrip(self):
        m = MainMemory(4096)
        m.write_word(100, 0xDEADBEEF)
        assert m.read_word(100) == 0xDEADBEEF

    def test_big_endian_layout(self):
        m = MainMemory(4096)
        m.write_word(0, 0x11223344)
        assert m.read_byte(0) == 0x11
        assert m.read_byte(3) == 0x44

    def test_byte_write_modifies_word(self):
        m = MainMemory(4096)
        m.write_word(8, 0)
        m.write_byte(9, 0xAB)
        assert m.read_word(8) == 0x00AB0000

    def test_misaligned_word_faults(self):
        m = MainMemory(4096)
        with pytest.raises(MemFault):
            m.read_word(2)
        with pytest.raises(MemFault):
            m.write_word(5, 1)

    def test_out_of_range_faults(self):
        m = MainMemory(4096)
        with pytest.raises(MemFault):
            m.read_word(4096)
        with pytest.raises(MemFault):
            m.read_byte(-1)
        with pytest.raises(MemFault):
            m.write_word(4094, 1)

    def test_float_roundtrip_is_f32(self):
        m = MainMemory(4096)
        m.write_float(16, 1.5)
        assert m.read_float(16) == 1.5
        # values are rounded to binary32
        m.write_float(16, 0.1)
        assert abs(m.read_float(16) - 0.1) < 1e-7
        assert m.read_float(16) != 0.1

    def test_load_image(self):
        m = MainMemory(4096)
        m.load_image(b"\x01\x02\x03\x04", 32)
        assert m.read_word(32) == 0x01020304
        with pytest.raises(MemFault):
            m.load_image(b"\x00" * 8, 4092)

    @given(st.integers(0, 1020), st.integers(0, 0xFFFFFFFF))
    def test_word_roundtrip_property(self, off, value):
        m = MainMemory(1024 + 16)
        addr = off & ~3
        m.write_word(addr, value)
        assert m.read_word(addr) == value


class TestCacheModel:
    def test_first_access_misses(self):
        c = Cache("t", 1024, line_size=32, assoc=1, miss_penalty=8)
        assert c.access(0) == 8
        assert c.access(4) == 0  # same line
        assert c.access(31) == 0
        assert c.access(32) == 8  # next line

    def test_direct_mapped_conflict(self):
        c = Cache("t", 128, line_size=32, assoc=1, miss_penalty=5)
        # 4 sets; addresses 0 and 128 map to the same set
        assert c.access(0) == 5
        assert c.access(128) == 5
        assert c.access(0) == 5  # evicted

    def test_two_way_keeps_both(self):
        c = Cache("t", 256, line_size=32, assoc=2, miss_penalty=5)
        # 4 sets of 2 ways: 0 and 128 share a set but both fit
        assert c.access(0) == 5
        assert c.access(128) == 5
        assert c.access(0) == 0
        assert c.access(128) == 0

    def test_lru_replacement(self):
        c = Cache("t", 256, line_size=32, assoc=2, miss_penalty=5)
        c.access(0)
        c.access(128)
        c.access(0)  # 0 now MRU
        c.access(256)  # evicts 128 (LRU)
        assert c.access(0) == 0
        assert c.access(128) == 5

    def test_perfect_cache_never_misses(self):
        c = Cache("t", 0, perfect=True)
        for addr in (0, 4096, 1 << 20):
            assert c.access(addr) == 0
        assert c.stats.misses == 0

    def test_stats(self):
        c = Cache("t", 1024, line_size=32, assoc=1, miss_penalty=8)
        c.access(0)
        c.access(4)
        c.access(64)
        assert c.stats.misses == 2
        assert c.stats.hits == 1
        assert 0 < c.stats.miss_rate < 1

    def test_flush(self):
        c = Cache("t", 1024, line_size=32, assoc=2, miss_penalty=8)
        c.access(0)
        c.flush()
        assert c.access(0) == 8

    def test_bad_geometry_rejected(self):
        with pytest.raises(SimError):
            Cache("t", 1024, line_size=48, assoc=1)
        with pytest.raises(SimError):
            Cache("t", 96, line_size=32, assoc=2)

    @given(st.lists(st.integers(0, 4095), min_size=1, max_size=200))
    def test_residency_invariant(self, addrs):
        """A second access to the same address with no intervening
        same-set misses beyond associativity always hits."""
        c = Cache("t", 512, line_size=32, assoc=2, miss_penalty=1)
        for a in addrs:
            c.access(a)
            assert c.access(a) == 0  # immediate re-access always hits
