"""Property tests for the scheduling-memo store (scheduler/memostore.py).

Same contract the trace and compiled-block stores are held to:

* encode -> decode -> re-encode is the byte identity (the format is
  canonical for a given record order);
* decoding reproduces every record field, with ``pcs`` restored as
  ``array("I")`` (the apply path compares it against a cursor slice with
  array equality -- ``bytes`` would silently never match);
* any truncation, corruption, version skew, wrong-program fingerprint or
  garbage raises :class:`MemoFormatError`, and the :class:`MemoStore`
  wrapper downgrades all of those to a plain miss -- a damaged file can
  cost scheduling time, never correctness;
* nothing is ever unpickled.
"""

import struct
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_and_load
from repro.core.config import MachineConfig
from repro.core.machine import DTSVLIW
from repro.scheduler.memo import MemoTable, ScheduleMemo
from repro.scheduler.memostore import (
    MEMO_MAGIC,
    MEMO_VERSION,
    MemoFormatError,
    MemoStore,
    decode_memo,
    encode_memo,
    family_memo_key,
)
from repro.trace.capture import capture_trace
from repro.trace.events import program_fingerprint

MEM = 8 * 1024 * 1024


@pytest.fixture(scope="module")
def corpus():
    """A program plus a memo populated by a real scheduling run."""
    program = compile_and_load(
        """
        int data[48];
        int main() {
          int i; int acc = 0;
          for (i = 0; i < 48; i++) data[i] = (i * 5) - 60;
          for (i = 0; i < 48; i++) {
            if (data[i] < 0) acc = acc - data[i];
            else acc = acc + (data[i] >> 1);
          }
          print_int(acc);
          return acc & 0xff;
        }
        """
    )
    trace = capture_trace(program, MEM)
    memo = ScheduleMemo()
    for kb in (2, 64):
        cfg = MachineConfig.paper_fixed().with_(
            test_mode=False, mem_size=MEM, vliw_cache_bytes=kb * 1024
        )
        m = DTSVLIW(program, cfg, trace=trace, sched_memo=memo)
        m.run()
    assert memo.stored > 0
    return program, memo, program_fingerprint(program)


def _rebuild(tables):
    """A ScheduleMemo holding exactly the decoded records, in decode
    order (dict insertion order makes re-encoding canonical)."""
    memo = ScheduleMemo()
    for sig, rows in tables.items():
        table = memo._by_sig[sig] = MemoTable()
        for key, recs in rows:
            table[key] = recs
            table.records += len(recs)
    return memo


def _payload(blob: bytes):
    import marshal
    import zlib

    (clen,) = struct.unpack_from("<I", blob, 38)  # past the header
    return marshal.loads(zlib.decompress(blob[42:42 + clen]))


def test_round_trip_is_canonical(corpus):
    """The *value* encoding is canonical; the raw bytes stabilize after
    one decode/encode cycle (marshal back-references follow object
    sharing, which a live scheduling run and a decoded graph lay out
    differently -- the payload values must still be identical)."""
    program, memo, fp = corpus
    blob = encode_memo(memo, fp)
    blob2 = encode_memo(_rebuild(decode_memo(blob, program, fp)), fp)
    assert _payload(blob2) == _payload(blob)
    blob3 = encode_memo(_rebuild(decode_memo(blob2, program, fp)), fp)
    assert blob3 == blob2


def test_round_trip_reproduces_records(corpus):
    program, memo, fp = corpus
    tables = decode_memo(encode_memo(memo, fp), program, fp)
    assert set(tables) == set(memo._by_sig)
    for sig, rows in tables.items():
        orig_table = memo._by_sig[sig]
        assert {k for k, _ in rows} == set(orig_table)
        for key, recs in rows:
            origs = orig_table[key]
            assert len(recs) == len(origs)
            for rec, orig in zip(recs, origs):
                assert isinstance(rec.pcs, array) and rec.pcs.typecode == "I"
                assert rec.pcs == array("I", orig.pcs)
                assert bytes(rec.flags) == bytes(orig.flags)
                assert bytes(rec.spilled) == bytes(orig.spilled)
                assert rec.kind == orig.kind and rec.ext == orig.ext
                assert rec.delta == orig.delta
                assert rec.mem_fix == orig.mem_fix
                assert rec.probe_addrs == orig.probe_addrs
                assert (rec.block is None) == (orig.block is None)
                if rec.block is not None:
                    ob = orig.block
                    assert rec.block.start_addr == ob.start_addr
                    assert rec.block.nba_addr == ob.nba_addr
                    assert rec.block.entry_cwp == ob.entry_cwp
                    assert len(rec.block.lis) == len(ob.lis)
                    for li, oli in zip(rec.block.lis, ob.lis):
                        assert len(li.dense) == len(oli.dense)
                        for op, oop in zip(li.dense, oli.dense):
                            assert op.instr is oop.instr  # rebound, shared
                            assert op.addr == oop.addr
                            assert op.reads == oop.reads
                            assert op.writes == oop.writes


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_truncation_raises(corpus, data):
    program, memo, fp = corpus
    blob = encode_memo(memo, fp)
    cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    with pytest.raises(MemoFormatError):
        decode_memo(blob[:cut], program, fp)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_corruption_raises(corpus, data):
    program, memo, fp = corpus
    blob = bytearray(encode_memo(memo, fp))
    pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
    blob[pos] ^= data.draw(st.integers(min_value=1, max_value=255))
    with pytest.raises(MemoFormatError):
        decode_memo(bytes(blob), program, fp)


@settings(max_examples=40, deadline=None)
@given(st.binary(max_size=400))
def test_garbage_raises_not_crashes(corpus, blob):
    program, _, fp = corpus
    with pytest.raises(MemoFormatError):
        decode_memo(blob, program, fp)


def _rehash(body: bytes) -> bytes:
    from hashlib import sha256

    return body + sha256(body).digest()


def test_version_skew_raises(corpus):
    program, memo, fp = corpus
    blob = encode_memo(memo, fp)
    body = bytearray(blob[:-32])
    struct.pack_into("<H", body, 4, MEMO_VERSION + 1)  # after the magic
    with pytest.raises(MemoFormatError, match="version"):
        decode_memo(_rehash(bytes(body)), program, fp)


def test_wrong_program_fingerprint_raises(corpus):
    program, memo, fp = corpus
    blob = encode_memo(memo, fp)
    with pytest.raises(MemoFormatError, match="different program"):
        decode_memo(blob, program, b"\x00" * 32)


def test_bad_magic_raises(corpus):
    program, memo, fp = corpus
    blob = encode_memo(memo, fp)
    body = bytearray(blob[:-32])
    body[:4] = b"NOPE"
    with pytest.raises(MemoFormatError, match="magic"):
        decode_memo(_rehash(bytes(body)), program, fp)
    assert blob[:4] == MEMO_MAGIC


def test_pickle_bytes_are_rejected(corpus):
    import pickle

    program, _, fp = corpus
    with pytest.raises(MemoFormatError):
        decode_memo(pickle.dumps({"never": "unpickled"}), program, fp)


def test_unknown_instr_addr_is_a_defect(corpus):
    """Records pointing outside the program image (fingerprint collision
    or hand-edited file) must miss, not build a broken block."""
    program, memo, fp = corpus
    other = compile_and_load("int main() { return 3; }")
    blob = encode_memo(memo, fp)
    # force the program mismatch past the fingerprint check by lying
    # about the fingerprint, leaving the instr addresses dangling
    with pytest.raises(MemoFormatError):
        decode_memo(blob, other, fp)


class TestMemoStore:
    def test_absent_and_defect_miss(self, tmp_path, corpus):
        program, memo, fp = corpus
        store = MemoStore(str(tmp_path))
        assert store.get("nope", program, fp) == (None, "absent")
        assert store.put("k", memo, fp)
        tables, reason = store.get("k", program, fp)
        assert reason is None and tables
        # corrupt the file in place: warn-and-miss, never an exception
        path = store.path("k")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert store.get("k", program, fp) == (None, "defect")

    def test_atomic_write_leaves_no_temp_files(self, tmp_path, corpus):
        _, memo, fp = corpus
        store = MemoStore(str(tmp_path))
        store.put("k", memo, fp)
        names = [p.name for p in tmp_path.iterdir()]
        assert names == ["k.mem"]


def test_family_key_separates_families_and_versions():
    a = family_memo_key(("compress", 0.1, False, True, 1 << 22))
    b = family_memo_key(("compress", 0.2, False, True, 1 << 22))
    assert a != b and a.startswith("memo-")
