"""Tests for the statistics container, error taxonomy and Program helpers."""

import pytest

from repro import compile_and_load
from repro.core import errors
from repro.core.stats import Stats


class TestStats:
    def test_ipc_zero_without_cycles(self):
        assert Stats().ipc == 0.0

    def test_derived_metrics(self):
        s = Stats(cycles=200, vliw_cycles=150, ref_instructions=300)
        s.slots_filled = 30
        s.slots_total = 120
        assert s.ipc == 1.5
        assert s.vliw_cycle_fraction == 0.75
        assert s.slot_occupancy == 0.25

    def test_summary_mentions_key_numbers(self):
        s = Stats(cycles=100, primary_cycles=40, vliw_cycles=60)
        s.ref_instructions = 150
        text = s.summary()
        assert "cycles=100" in text
        assert "ipc=1.500" in text


class TestErrors:
    def test_program_exit_carries_code(self):
        e = errors.ProgramExit(7)
        assert e.code == 7
        assert "7" in str(e)

    def test_mem_fault_fields(self):
        e = errors.MemFault(0x1234, "misaligned word read")
        assert e.addr == 0x1234
        assert "0x1234" in str(e)

    def test_aliasing_exception_orders(self):
        e = errors.AliasingException(3, 7)
        assert e.load_order == 3 and e.store_order == 7

    def test_hierarchy(self):
        assert issubclass(errors.MemFault, errors.ArchException)
        assert issubclass(errors.AliasingException, errors.ArchException)
        assert issubclass(errors.WindowOverflow, errors.ArchException)
        assert not issubclass(errors.SimError, errors.ArchException)
        assert issubclass(errors.TestModeMismatch, errors.SimError)

    def test_deferred_wraps_original(self):
        inner = errors.MemFault(4, "x")
        e = errors.DeferredException(inner)
        assert e.original is inner


class TestProgramHelpers:
    SRC = "int add2(int x) { return x + 2; } int main() { return add2(40); }"

    def test_disassemble_contains_functions(self):
        p = compile_and_load(self.SRC)
        text = p.disassemble()
        assert "main:" in text and "add2:" in text
        assert "save" in text

    def test_fetch_outside_text_raises(self):
        p = compile_and_load(self.SRC)
        with pytest.raises(errors.SimError):
            p.fetch(0x10)

    def test_symbol_lookup(self):
        p = compile_and_load(self.SRC)
        assert p.symbol("main") in p.instrs
        with pytest.raises(errors.SimError):
            p.symbol("nonexistent")

    def test_text_image_matches_words(self):
        p = compile_and_load(self.SRC)
        image = p.text_image()
        assert len(image) == 4 * len(p.text_words)
        assert int.from_bytes(image[:4], "big") == p.text_words[0]
