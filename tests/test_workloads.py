"""Tests for the SPECint95-analogue workloads (Table 2 substitutes)."""

import pytest

from repro.asm.assembler import assemble
from repro.core.config import MachineConfig
from repro.core.errors import SimError
from repro.core.machine import DTSVLIW
from repro.core.reference import ReferenceMachine
from repro.lang import compile_minicc
from repro.workloads import registry

SMALL = 0.08  # tiny inputs: every workload finishes in well under a second


class TestRegistry:
    def test_benchmark_list_matches_paper_table2(self):
        assert registry.BENCHMARKS == [
            "compress",
            "gcc",
            "go",
            "ijpeg",
            "m88ksim",
            "perl",
            "vortex",
            "xlisp",
        ]

    def test_unknown_workload_rejected(self):
        with pytest.raises(SimError):
            registry.load_program("specfp")
        with pytest.raises(SimError):
            registry.workload_info("specfp")

    def test_program_cache_returns_same_object(self):
        a = registry.load_program("compress", SMALL)
        b = registry.load_program("compress", SMALL)
        assert a is b

    def test_info_available_for_all(self):
        for name in registry.BENCHMARKS:
            desc, mirrors = registry.workload_info(name)
            assert desc and mirrors

    @pytest.mark.parametrize("name", registry.BENCHMARKS)
    def test_source_compiles_and_is_deterministic(self, name):
        src = registry.workload_source(name, SMALL)
        program = assemble(compile_minicc(src))
        m1 = ReferenceMachine(program)
        m1.run(max_instructions=20_000_000)
        m2 = ReferenceMachine(program)
        m2.run(max_instructions=20_000_000)
        assert m1.output == m2.output
        assert m1.exit_code == m2.exit_code
        assert m1.output  # every workload prints a checksum

    @pytest.mark.parametrize("name", registry.BENCHMARKS)
    def test_scale_changes_work(self, name):
        small, _, _ = registry.reference_run(name, SMALL)
        larger, _, _ = registry.reference_run(name, 1.0)
        assert larger > small

    def test_reference_run_is_cached(self):
        r1 = registry.reference_run("perl", SMALL)
        r2 = registry.reference_run("perl", SMALL)
        assert r1 == r2


class TestWorkloadsOnDTSVLIW:
    """Every workload runs lockstep-verified at tiny scale."""

    @pytest.mark.parametrize("name", registry.BENCHMARKS)
    def test_lockstep(self, name):
        program = registry.load_program(name, SMALL)
        count, out, code = registry.reference_run(name, SMALL)
        m = DTSVLIW(program, MachineConfig.paper_fixed(8, 8))
        stats = m.run(max_cycles=100_000_000)
        assert m.exit_code == code
        assert m.output == out
        assert stats.ref_instructions == count
        assert stats.ipc > 0.5

    def test_hw_mul_variant(self):
        program = registry.load_program("compress", SMALL, hw_mul=True)
        count, out, code = registry.reference_run("compress", SMALL, hw_mul=True)
        m = DTSVLIW(program, MachineConfig.paper_fixed(8, 8))
        m.run(max_cycles=100_000_000)
        assert m.exit_code == code and m.output == out

    def test_character_differs_across_workloads(self):
        """The analogues must not be eight copies of one kernel: their
        branch/memory mixes should differ measurably."""
        mixes = {}
        for name in ("ijpeg", "xlisp", "go"):
            program = registry.load_program(name, SMALL)
            mem = branch = total = 0
            for instr in program.instrs.values():
                total += 1
                if instr.is_mem:
                    mem += 1
                if instr.is_branch:
                    branch += 1
            mixes[name] = (mem / total, branch / total)
        # branch density separates the loop kernel (ijpeg) from the
        # pointer/recursion workloads (xlisp, go)
        assert mixes["xlisp"][1] > mixes["ijpeg"][1] * 1.5
        assert mixes["go"][1] > mixes["ijpeg"][1] * 1.5
        assert len({round(m[1], 2) for m in mixes.values()}) >= 2
