"""Smoke tests of the package-level public API."""

import repro


def test_compile_and_load_roundtrip():
    program = repro.compile_and_load("int main() { return 6 * 7; }")
    machine = repro.DTSVLIW(program, repro.MachineConfig.paper_fixed(4, 4))
    stats = machine.run()
    assert machine.exit_code == 42
    assert isinstance(stats, repro.Stats)


def test_all_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_config_presets():
    feasible = repro.MachineConfig.feasible()
    assert feasible.block_width == 10
    assert feasible.next_li_miss_penalty == 1
    fig9 = repro.MachineConfig.fig9()
    assert fig9.block_width == 6 and fig9.block_height == 6
    assert repro.MachineConfig.paper_fixed(4, 16).block_bytes == 4 * 16 * 6


def test_config_with_copies():
    cfg = repro.MachineConfig.paper_fixed(8, 8)
    other = cfg.with_(vliw_cache_bytes=1024)
    assert other.vliw_cache_bytes == 1024
    assert cfg.vliw_cache_bytes != 1024


def test_bad_slot_classes_rejected():
    import pytest

    with pytest.raises(ValueError):
        repro.MachineConfig(block_width=4, slot_classes=[0, 1])
