"""Long instructions and VLIW blocks.

A :class:`LongInstruction` is one row of the scheduling list and, after the
block is flushed, one fetch unit of the VLIW Cache (section 3.4: the
DTSVLIW fetches one long instruction per access, unlike DIF's whole-block
fetch).  It tracks

* typed slots (functional-unit classes for non-homogeneous machines),
* aggregate read/write location sets of *installed* operations (candidate
  companions are excluded, exactly as the paper's comparators are disabled
  for the companion's slot -- section 3.7),
* the ordered list of control transfers for the branch-tag system
  (section 3.8).
"""

from __future__ import annotations

from typing import List, Optional

from ..isa.instructions import FU_BR
from .ops import SchedOp


class LongInstruction:
    __slots__ = (
        "width",
        "slot_classes",
        "slots",
        "installed_reads",
        "installed_writes",
        "lat_writes",
        "branches",
        "mem_effect_stores",
        "mem_effect_loads",
        "dense",
    )

    def __init__(self, width: int, slot_classes: Optional[List[Optional[int]]]):
        self.width = width
        self.slot_classes = slot_classes
        self.slots: List[Optional[SchedOp]] = [None] * width
        self.installed_reads: set = set()
        self.installed_writes: set = set()
        #: writes of installed multicycle ops: loc -> max latency
        self.lat_writes: dict = {}
        #: installed control transfers in placement (= program) order
        self.branches: List[SchedOp] = []
        self.mem_effect_stores = 0  # stores + memory copies installed
        self.mem_effect_loads = 0
        #: dense op list frozen at block flush (the VLIW Engine's hot path)
        self.dense: List[SchedOp] = []

    # ------------------------------------------------------------------ slots
    def slot_ok(self, idx: int, op: SchedOp) -> bool:
        """Can ``op`` legally occupy slot ``idx`` (FU typing)?"""
        if self.slot_classes is None:
            return True
        cls = self.slot_classes[idx]
        if cls is None:
            return op.fu != FU_BR
        return cls == op.fu

    def find_free_slot(self, op: SchedOp, exclude: int = -1) -> int:
        """First free slot compatible with ``op`` (-1 if none).

        ``exclude`` marks a slot to treat as unavailable (used when checking
        whether freeing the candidate's companion slot would help)."""
        for i in range(self.width):
            if i != exclude and self.slots[i] is None and self.slot_ok(i, op):
                return i
        return -1

    def count_free_slots(self, op: SchedOp) -> int:
        """Number of free slots compatible with ``op``."""
        n = 0
        for i in range(self.width):
            if self.slots[i] is None and self.slot_ok(i, op):
                n += 1
        return n

    # ------------------------------------------------------------ companions
    def place_companion(self, op: SchedOp, slot: int) -> None:
        self.slots[slot] = op
        op.slot = slot

    def remove_companion(self, slot: int) -> None:
        self.slots[slot] = None

    # ---------------------------------------------------------------- install
    def install(self, op: SchedOp) -> None:
        """Mark the op in ``op.slot`` as permanently installed."""
        self.installed_reads |= op.reads
        self.installed_writes |= op.writes
        if op.latency > 1:
            for w in op.writes:
                if op.latency > self.lat_writes.get(w, 0):
                    self.lat_writes[w] = op.latency
        if op.is_branch:
            self.branches.append(op)
        if op.is_store_effect or op.commits_memory:
            self.mem_effect_stores += 1
        elif op.is_load:
            self.mem_effect_loads += 1

    @property
    def num_branches(self) -> int:
        return len(self.branches)

    def installed_ops(self):
        """Iterate the operations currently occupying slots."""
        for op in self.slots:
            if op is not None:
                yield op

    def op_count(self) -> int:
        return sum(1 for s in self.slots if s is not None)

    def text(self) -> str:
        return " | ".join(
            op.text() if op is not None else "--" for op in self.slots
        )


class Block:
    """A flushed block of long instructions, as stored in the VLIW Cache."""

    __slots__ = (
        "start_addr",
        "lis",
        "nba_addr",
        "nba_line",
        "entry_cwp",
        "n_int_rr",
        "n_fp_rr",
        "n_cc_rr",
        "n_mem_rr",
        "keep_mem_order",
        "req_canrestore",
        "req_cansave",
        "build_ops",
        "replay_plan",
    )

    def __init__(
        self,
        start_addr: int,
        lis: List[LongInstruction],
        nba_addr: int,
        entry_cwp: int,
        n_int_rr: int,
        n_fp_rr: int,
        n_cc_rr: int,
        n_mem_rr: int,
        keep_mem_order: bool = False,
        req_canrestore: int = 0,
        req_cansave: int = 0,
        build_ops: Optional[List["SchedOp"]] = None,
    ):
        self.start_addr = start_addr
        self.lis = lis
        for li in lis:  # freeze the execution-order op lists
            li.dense = [op for op in li.slots if op is not None]
        self.nba_addr = nba_addr
        self.nba_line = len(lis) - 1
        self.entry_cwp = entry_cwp
        self.n_int_rr = n_int_rr
        self.n_fp_rr = n_fp_rr
        self.n_cc_rr = n_cc_rr
        self.n_mem_rr = n_mem_rr
        # Set after an aliasing exception: reschedules of this address must
        # keep memory operations in program order (section 3.11).
        self.keep_mem_order = keep_mem_order
        # Window residency requirements at block entry: the VLIW Engine
        # eagerly fills/spills so hoisted operations find every window they
        # touch valid (ancestors resident, descendants free).
        self.req_canrestore = req_canrestore
        self.req_cansave = req_cansave
        # Ops in build (program) order -- the committed stream the block
        # covers; None for blocks built outside the Scheduler Unit (tests).
        self.build_ops = build_ops
        # Lazily built trace-replay flow plan (repro.vliw.replay_engine).
        self.replay_plan = None

    def op_count(self) -> int:
        return sum(li.op_count() for li in self.lis)

    def text(self) -> str:
        lines = ["block @0x%x -> 0x%x" % (self.start_addr, self.nba_addr)]
        for i, li in enumerate(self.lis):
            lines.append("  [%d] %s" % (i, li.text()))
        return "\n".join(lines)
