"""Content-keyed memoization of trace-driven scheduling stints.

A replay-eligible DTSVLIW run spends most of its host time in *primary
mode*: every committed instruction walks the pipeline timing model, the
Scheduler Unit ticks and the block under construction grows until a
flush hands it to the VLIW Cache.  All of that work is a pure function
of the committed-stream content between two flush boundaries -- the
machine never reads register or memory *values* on the replay path --
so when the trace revisits the same code (loop bodies re-entering
primary mode after an eviction, or the same workload evaluated under a
different VLIW Cache geometry), the stint's entire effect can be
replayed from a record: a Stats delta, the flushed :class:`Block`, and
the cursor/window fast-forward.

A *segment* runs from one canonical scheduler state (empty list, or
exactly the one spillover op a ``FLUSH_FULL`` left behind) to the next
flush boundary:

* ``full``  -- ``insert`` flushed a full block; the incoming op starts
  the next block (rebuilt live on apply, so its renaming state and the
  ``keep_mem_order`` decision come from the applying machine);
* ``nonsched`` -- a non-schedulable instruction flushed the list;
* ``hit``   -- the Fetch Unit probe hit: the partial block is flushed
  (chained to the hit address) and the segment ends just before the
  VLIW excursion, which always runs live (its cost depends on VLIW
  Cache contents the segment key deliberately ignores).

Records are validated before every apply, never trusted:

* the event slice must match exactly (``pcs``/taken flags/spill plan);
* memory addresses are compared as a *collision pattern* over
  word-granular :func:`~repro.isa.registers.mem_loc` ids -- the only
  property scheduling reads from them -- and every baked ``op.mem_addr``
  is rewritten from the applying cursor's ``aux`` column, which is also
  what keeps post-deviation aliasing checks in the replay twin
  bit-identical;
* every in-segment Fetch Unit probe must still miss (and, for ``hit``
  segments, the boundary probe must still hit) -- segments never insert
  mid-stint, so probing the unique addresses once is exact;
* the reschedule-after-aliasing state must agree (``keep_mem_order``
  for the block under construction, membership of ``alias_addrs`` for
  a block started in-segment).

The table is keyed by a *config signature* covering every field the
primary-mode walk reads (block geometry, renaming limits, pipeline
bubbles, window count...) and deliberately **excluding** the VLIW Cache
geometry: a batched sweep family (``src/repro/batch``) shares one
:class:`ScheduleMemo` across all its cells, so a block built once at
2KB is reused by the 4KB..3MB cells -- this is what collapses the
config-invariant scheduling work of a figure sweep to roughly one
cell's worth.  ``REPRO_NO_SCHED_MEMO=1`` disables the memo everywhere
(the differential suite runs both ways).
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

#: segment kinds (flush boundary that closed the segment)
SEG_FULL = 0
SEG_NONSCHED = 1
SEG_HIT = 2


def memo_disabled() -> bool:
    """True when ``$REPRO_NO_SCHED_MEMO`` turns segment memoization off."""
    return os.environ.get("REPRO_NO_SCHED_MEMO", "") not in ("", "0")


def config_sig(cfg) -> Tuple:
    """Everything the primary-mode stint walk reads from the config.

    Two configs with equal signatures schedule identical committed
    streams into identical blocks with identical Stats deltas.  VLIW
    Cache geometry and VLIW-engine costs are *excluded* on purpose:
    probes are verified per apply and the VLIW excursion always runs
    live, so fig5/fig6/fig7 sweep cells share one table.
    """
    return (
        cfg.block_width,
        cfg.block_height,
        tuple(cfg.slot_classes) if cfg.slot_classes is not None else None,
        cfg.int_renaming_limit,
        cfg.fp_renaming_limit,
        cfg.cc_renaming_limit,
        cfg.mem_renaming_limit,
        cfg.nwindows,
        cfg.multicycle,
        cfg.vliw_window_spill_inline,
        cfg.load_use_bubble,
        cfg.branch_not_taken_bubble,
        cfg.window_spill_penalty,
        cfg.switch_to_vliw_cost,
        cfg.mem_size,
    )


class SegmentRecord:
    """One recorded stint: verification material plus the replayable
    effect (see module docstring)."""

    __slots__ = (
        "kind",
        "ext",
        "pcs",
        "flags",
        "spilled",
        "mem_offs",
        "mem_pat",
        "probe_addrs",
        "block",
        "mem_fix",
        "delta",
        "d_cycles",
        "keep_entry",
        "start_op_addr",
        "d_cansave",
        "d_canrestore",
        "d_wssp",
        "end_llr",
        "end_cwp",
    )

    def __init__(self):
        self.kind = SEG_FULL
        #: entered with the previous FULL flush's spillover op pending
        self.ext = False
        #: pcs[base : end+1] -- events plus the boundary pc (= the hit
        #: address for SEG_HIT, the block nba / resume pc otherwise)
        self.pcs = None
        self.flags = None
        self.spilled = None
        #: offsets (relative to base) of memory events, and the
        #: first-occurrence collision pattern of their word ids
        self.mem_offs: Tuple[int, ...] = ()
        self.mem_pat: Tuple[int, ...] = ()
        #: unique addresses the Fetch Unit probed (all missed)
        self.probe_addrs: Tuple[int, ...] = ()
        #: the Block this segment flushed into the VLIW Cache, or None
        self.block = None
        #: (build_ops index, event offset) pairs whose ``mem_addr`` is
        #: rewritten from the applying cursor's aux column
        self.mem_fix: Tuple[Tuple[int, int], ...] = ()
        #: additive Stats delta (the four renaming maxima are excluded:
        #: they are re-derived from the block's high-water marks)
        self.delta: Tuple[Tuple[str, int], ...] = ()
        self.d_cycles = 0
        #: ``keep_mem_order`` in force at entry (ext) / for the block
        #: started in-segment (via its start address, checked against
        #: the applying machine's ``alias_addrs``)
        self.keep_entry = False
        self.start_op_addr: Optional[int] = None
        self.d_cansave = 0
        self.d_canrestore = 0
        self.d_wssp = 0
        self.end_llr: Optional[int] = None
        self.end_cwp = 0


#: Stats fields whose segment change is a max, not a sum -- re-derived
#: from the flushed block's renaming high-water marks on apply.
_MAX_FIELDS = {
    "max_int_renaming": "n_int_rr",
    "max_fp_renaming": "n_fp_rr",
    "max_cc_renaming": "n_cc_rr",
    "max_mem_renaming": "n_mem_rr",
}


class MemoTable(dict):
    """One config signature's lookup table, with its own record count.

    The admission cap is per table: a sweep touching many signatures
    (fig5 varies the block geometry cell by cell) must not starve the
    tables of a later sweep sharing the same memo."""

    __slots__ = ("records",)

    def __init__(self):
        super().__init__()
        self.records = 0


class ScheduleMemo:
    """A per-family store of :class:`SegmentRecord` tables, one table
    per config signature.

    Shared across the sequentially-evaluated cells of a batched sweep
    family -- and, via :func:`shared_memo`, across the sweeps of one
    process; never pickled (pool workers each build their own).
    """

    def __init__(self, max_records: int = 8192, bucket_cap: int = 8,
                 max_tables: int = 64):
        self._by_sig: Dict[Tuple, MemoTable] = {}
        #: per-table (per config signature) record cap
        self.max_records = max_records
        self.bucket_cap = bucket_cap
        self.max_tables = max_tables
        #: diagnostics: segments applied / recorded
        self.applied = 0
        self.stored = 0

    def table_for(self, cfg) -> MemoTable:
        """The lookup table for ``cfg``'s signature (created on demand).

        Keys are ``(pc, cwp, last_load_rd, ext)``; values are lists of
        candidate records (verified content-first on every apply)."""
        sig = config_sig(cfg)
        table = self._by_sig.get(sig)
        if table is None:
            if len(self._by_sig) >= self.max_tables:
                self._by_sig.clear()
            table = self._by_sig[sig] = MemoTable()
        return table

    def admit(self, table: MemoTable, key: Tuple, rec: SegmentRecord) -> bool:
        """Store ``rec`` under ``key`` unless the caps say no."""
        if table.records >= self.max_records:
            return False
        bucket = table.get(key)
        if bucket is None:
            bucket = table[key] = []
        elif len(bucket) >= self.bucket_cap:
            return False
        bucket.append(rec)
        table.records += 1
        self.stored += 1
        return True


#: process-global registry of family memos, LRU-ordered (least recently
#: used first).  Consecutive sweeps over the same family reuse each
#: other's scheduling work: fig6 after fig5 (same workload, same trace,
#: overlapping config signatures), or a warm re-run of the same figure.
#: Per-process only -- pool workers grow their own.
_shared: "OrderedDict[Tuple, ScheduleMemo]" = OrderedDict()

#: distinct families kept resident before the least recently used one is
#: evicted (each family's memo is itself capped by ``max_records``).  A
#: long-lived process sweeping many families stays bounded; evicted
#: memos with unflushed records are spilled to the on-disk store first.
_SHARED_FAMILY_CAP = 32

#: families evicted from the registry since process start (surfaced by
#: ``dtsvliw profile``; reset by tests via :func:`reset_shared_memo`)
shared_evictions = 0


def shared_memo(family_key: Tuple) -> "ScheduleMemo":
    """The process-wide :class:`ScheduleMemo` for one sweep family.

    ``family_key`` is the batch layer's grouping key (workload, scale,
    hw_mul, optimize, mem_size): cells with equal keys replay the same
    captured trace, so their segment records are mutually applicable --
    and every apply re-verifies content, so a stale record can only cost
    a lookup, never correctness.

    The registry is an LRU capped at :data:`_SHARED_FAMILY_CAP` families:
    asking for a family refreshes it, and overflow evicts the least
    recently used memo (flushing its unsaved records to the on-disk
    store when persistence is on)."""
    global shared_evictions
    memo = _shared.get(family_key)
    if memo is None:
        while len(_shared) >= _SHARED_FAMILY_CAP:
            old_key, old_memo = _shared.popitem(last=False)
            shared_evictions += 1
            from .memostore import flush_family_memo  # lazy: import cycle

            flush_family_memo(old_memo, old_key)
        memo = _shared[family_key] = ScheduleMemo()
    else:
        _shared.move_to_end(family_key)
    return memo


def reset_shared_memo() -> None:
    """Drop every registered family memo (tests use this for isolation;
    nothing is flushed to disk)."""
    global shared_evictions
    _shared.clear()
    shared_evictions = 0


def collision_pattern(aux, base: int, offs) -> Tuple[int, ...]:
    """First-occurrence canonical form of the memory events' word ids.

    Scheduling only ever compares ``mem_loc`` ids for equality (flow /
    output / anti dependences through memory words), so two stints whose
    addresses collide in the same pattern build identical blocks even
    when the absolute addresses differ."""
    seen: Dict[int, int] = {}
    pat = []
    for k, off in enumerate(offs):
        w = aux[base + off] >> 2
        pat.append(seen.setdefault(w, k))
    return tuple(pat)


def pattern_matches(rec: SegmentRecord, aux, base: int) -> bool:
    """Does the applying cursor's aux column collide like the record's?"""
    seen: Dict[int, int] = {}
    pat = rec.mem_pat
    for k, off in enumerate(rec.mem_offs):
        w = aux[base + off] >> 2
        if seen.setdefault(w, k) != pat[k]:
            return False
    return True
