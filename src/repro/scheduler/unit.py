"""The Scheduler Unit: a hardware FCFS list scheduler (sections 3.1-3.3, 3.7-3.10).

Completed instructions arrive from the Primary Processor strictly in program
order, one per cycle at most.  The Primary produces them from its *trace
source* (:mod:`repro.trace.replay`) -- live execution or a captured trace
replayed in committed order; the scheduler is agnostic to which, since a
:class:`~repro.scheduler.ops.SchedOp` carries everything it reads.  Each is inserted at the tail of the
*scheduling list*; on every following cycle its *candidate* copy moves one
element up until a dependence or resource conflict installs it.  The
install/split decisions are computed with the carry-lookahead recurrences of
section 3.7::

    install(0) = 1
    install(i) = Td(i) | Rd(i) | ((CTd(i) | CRd(i)) & install(i-1))
    split(i)   = Od(i) | Ad(i) | Cd(i) | (COd(i) & install(i-1))

where the plain signals compare the candidate against *installed* operations
(Td/Rd/Od against long instruction ``i-1``, Ad/Cd against the candidate's own
long instruction ``i``) and the C-prefixed ones against the candidate of
element ``i-1`` alone.  Install wins over split; a candidate that does
neither moves up.

The circular head/tail/output-pointer organisation of section 3.2 is
modelled with flush-at-once semantics: because instructions are inserted at
most one per cycle while the old block drains one long instruction per
cycle, the tail can never overrun the output pointer, so draining never
stalls the Primary Processor and block contents are unaffected.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.config import MachineConfig
from ..core.errors import SimError
from ..core.stats import Stats
from ..isa.registers import MEMSEQ_ID
from ..obs.probe import (
    EV_BLOCK_FLUSH,
    EV_BLOCK_OPEN,
    EV_INSTALL,
    EV_MOVE,
    EV_SCHED,
    EV_SPLIT,
)
from .long_instruction import Block, LongInstruction
from .ops import SchedOp
from .renaming import RenamePools, split_candidate

#: flush reasons (recorded in stats)
FLUSH_FULL = "full"
FLUSH_HIT = "hit"
FLUSH_NONSCHED = "nonsched"
FLUSH_DRAIN = "drain"


class Entry:
    """One scheduling-list element: a long instruction plus its candidate.

    The element's line-index field (section 3.3) equals its position from
    the head because blocks are built head-first and elements are only
    retired wholesale at a flush.
    """

    __slots__ = ("li", "candidate")

    def __init__(self, li: LongInstruction):
        self.li = li
        self.candidate: Optional[SchedOp] = None


class SchedulerUnit:
    def __init__(self, cfg: MachineConfig, stats: Stats, probe=None):
        self.cfg = cfg
        self.stats = stats
        #: active probe or None (block lifecycle + list-scheduling events)
        self.probe = probe
        self.entries: List[Entry] = []
        self.pools = RenamePools(
            cfg.int_renaming_limit,
            cfg.fp_renaming_limit,
            cfg.cc_renaming_limit,
            cfg.mem_renaming_limit,
        )
        self.block_start_addr = 0
        self.block_entry_cwp = 0
        self.ls_order = 0  # load/store order counter (section 3.10)
        self.keep_mem_order = False
        self.n_candidates = 0
        self.has_multicycle = False
        self.max_latency = 1
        #: block start addresses that previously raised aliasing exceptions
        self.alias_addrs: set = set()
        # signed call depth within the block and the window-residency
        # requirements it accumulates (eager spill/fill at VLIW block entry)
        self.signed_depth = 0
        self.req_canrestore = 0
        self.req_cansave = 0
        #: newest live rename of each architectural location in the block
        #: (readers are redirected here -- the paper's Figure 2 shows
        #: ``subcc r32, ...`` reading a renaming register)
        self.rename_map: dict = {}
        #: newest writer op of each architectural location: a split only
        #: publishes its rename when the candidate is still the newest
        #: definition (a later instruction may have redefined the location)
        self.newest_writer: dict = {}
        #: ops of the current block in *build* (program) order -- the
        #: committed-stream order a trace-driven replay of the block walks
        #: (see repro.vliw.replay_engine); carried on the flushed Block
        self.build_ops: List[SchedOp] = []

    # --------------------------------------------------------------- queries
    @property
    def is_empty(self) -> bool:
        return not self.entries

    # ----------------------------------------------------------------- clock
    def tick(self, cycles: int) -> None:
        """Advance candidate movement by ``cycles`` scheduler clocks."""
        for _ in range(cycles):
            if self.n_candidates == 0:
                return
            self._resolve_candidates()

    def _resolve_candidates(self) -> None:
        """One parallel step: every candidate installs, splits or moves up."""
        entries = self.entries
        decisions = []  # (p, cand, action, offending_set)
        # ``prev_stays`` gates the C-signals: the candidate of the element
        # above keeps its footprint in that long instruction when it
        # installs *or splits* (the paper's formulas use install(i-1) alone;
        # a split leaves the COPY in the companion slot writing the original
        # locations, so it must gate identically -- see DESIGN.md).
        prev_stays = True
        prev_cand: Optional[SchedOp] = None

        for p, entry in enumerate(entries):
            cand = entry.candidate
            if cand is None:
                prev_stays = False
                prev_cand = None
                continue
            if p == 0:
                decisions.append((p, cand, "install", None))
                prev_stays = True
                prev_cand = cand  # its companion footprint still gates entry 1
                continue
            above = entries[p - 1]
            ali = above.li

            td = bool(cand.reads & ali.installed_writes)
            if not td and self.has_multicycle:
                td = self._latency_violation(p, cand)
            od_set = cand.writes & ali.installed_writes
            ad_set = cand.writes & entry.li.installed_reads
            cd = entry.li.num_branches > 0

            # resource signals
            free = ali.count_free_slots(cand)
            rd = False
            crd = False
            if free == 0:
                if (
                    prev_cand is not None
                    and prev_cand.slot >= 0
                    and ali.slot_ok(prev_cand.slot, cand)
                ):
                    crd = True
                else:
                    rd = True

            ctd = prev_cand is not None and bool(cand.reads & prev_cand.writes)
            cod_set = (
                (cand.writes & prev_cand.writes) if prev_cand is not None else set()
            )

            install = td or rd or ((ctd or crd) and prev_stays)
            split = bool(od_set or ad_set or cd or (cod_set and prev_stays))

            if install:
                decisions.append((p, cand, "install", None))
                prev_stays = True
            elif split:
                offending = set(od_set)
                if cod_set and prev_stays:
                    offending |= cod_set
                decisions.append((p, cand, "split", (offending, set(ad_set), cd)))
                prev_stays = True  # the COPY keeps the slot and the writes
            else:
                decisions.append((p, cand, "move", None))
                prev_stays = False
            prev_cand = cand

        # Apply head-side first so slots freed by a move become visible to
        # the candidate right below (the signal chain already accounted
        # for occupancy).
        for p, cand, action, extra in decisions:
            entry = entries[p]
            if action == "install":
                self._install(entry, cand)
            elif action == "move":
                self._move_up(p, cand)
            else:
                self._split_and_move(p, cand, extra)

    def _latency_violation(self, p: int, cand: SchedOp) -> bool:
        """Multicycle-aware flow check: moving to ``p-1`` must keep the
        candidate at least ``latency`` long instructions below each
        producer ([14])."""
        # After moving to p-1, the distance to a producer in entry p-m is
        # m-1, so any producer there with latency >= m blocks the move.
        for m in range(1, min(self.max_latency, p) + 1):
            lw = self.entries[p - m].li.lat_writes
            if m == 1:
                if cand.reads & self.entries[p - 1].li.installed_writes:
                    return True
            if lw:
                for loc in cand.reads:
                    if lw.get(loc, 0) >= m:
                        return True
        return False

    # ------------------------------------------------------------- mutations
    def _install(self, entry: Entry, cand: SchedOp) -> None:
        entry.li.install(cand)
        entry.candidate = None
        self.n_candidates -= 1
        self.stats.installs_on_dependence += 1
        if self.probe is not None:
            self.probe.emit(EV_INSTALL, cand.addr)

    def _move_up(self, p: int, cand: SchedOp) -> None:
        entries = self.entries
        entry = entries[p]
        above = entries[p - 1]
        # cross bit (section 3.10): the op is leaving a long instruction
        # whose memory effects it will now precede in execution order.
        li = entry.li
        if cand.is_load and li.mem_effect_stores > 0:
            cand.cross = True
        elif cand.is_store_effect and (
            li.mem_effect_stores > 0 or li.mem_effect_loads > 0
        ):
            cand.cross = True
        slot = above.li.find_free_slot(cand)
        if slot < 0:
            raise SimError("scheduler: move-up with no free slot (signal bug)")
        li.remove_companion(cand.slot)
        above.li.place_companion(cand, slot)
        cand.tag_depth = above.li.num_branches
        if above.candidate is not None:
            raise SimError("scheduler: two candidates in one element")
        above.candidate = cand
        entry.candidate = None
        self.stats.moves += 1
        if self.probe is not None:
            self.probe.emit(EV_MOVE, cand.addr)

    def _split_and_move(self, p: int, cand: SchedOp, extra) -> None:
        offending_out, offending_anti, cd = extra
        if cand.no_split:
            self._install(self.entries[p], cand)
            return
        copy = split_candidate(
            cand, offending_out | offending_anti, rename_all=cd, pools=self.pools
        )
        if copy is None:
            # Renaming impossible (pool exhausted / nothing to rename).
            self._install(self.entries[p], cand)
            return
        entry = self.entries[p]
        li = entry.li
        # The COPY takes over the companion's slot, permanently.
        copy.slot = cand.slot
        copy.tag_depth = cand.tag_depth
        li.slots[cand.slot] = copy
        li.install(copy)
        cand.slot = copy.slot  # candidate keeps the slot id until re-placed
        # future readers of the renamed locations read the rename directly,
        # but only while this candidate is still the newest definition
        from ..isa.registers import IRR_BASE

        for orig, new in copy.rename_updates or ():
            if orig >= IRR_BASE:  # a re-split: retarget existing mappings
                for key, val in list(self.rename_map.items()):
                    if val == orig:
                        self.rename_map[key] = new
            elif self.newest_writer.get(orig) is cand:
                self.rename_map[orig] = new
        self.stats.splits += 1
        if self.probe is not None:
            self.probe.emit(EV_SPLIT, cand.addr)
        # Now move the renamed candidate up.
        above = self.entries[p - 1]
        if cand.is_load and li.mem_effect_stores > 0:
            cand.cross = True
        elif cand.is_store_effect and (
            li.mem_effect_stores > 0 or li.mem_effect_loads > 0
        ):
            cand.cross = True
        slot = above.li.find_free_slot(cand)
        if slot < 0:
            raise SimError("scheduler: split move-up with no free slot")
        above.li.place_companion(cand, slot)
        cand.tag_depth = above.li.num_branches
        if above.candidate is not None:
            raise SimError("scheduler: two candidates in one element (split)")
        above.candidate = cand
        entry.candidate = None
        self.stats.moves += 1
        if self.probe is not None:
            self.probe.emit(EV_MOVE, cand.addr)

    # ------------------------------------------------------------- insertion
    def insert(self, op: SchedOp) -> Optional[Block]:
        """Insert one completed instruction; may flush a full block.

        Returns the flushed :class:`Block` when insertion found the list
        full (the incoming op then starts a fresh block), else None.
        """
        flushed = None
        if op.base_reads is None:
            op.base_reads = op.reads
        if self.entries:
            self._substitute_sources(op)
            self._apply_mem_order(op)
            tail = self.entries[-1]
            if (
                self._fits_tail(op, tail)
                and self._mc_pad(op, len(self.entries) - 1) == 0
            ):
                self._place(op, tail)
                return None
            pad = self._mc_pad(op, len(self.entries))
            if len(self.entries) + pad >= self.cfg.block_height:
                flushed = self.flush(FLUSH_FULL, op.addr)
            else:
                for _ in range(pad):
                    # empty long instructions keep the consumer a full
                    # latency below its multicycle producer ([14]); they
                    # execute as bubbles -- the honest cost of the latency
                    self.entries.append(
                        Entry(
                            LongInstruction(
                                self.cfg.block_width, self.cfg.slot_classes
                            )
                        )
                    )
        if not self.entries:
            self._start_block(op)
            self._substitute_sources(op)  # empty map: restores originals
            self._apply_mem_order(op)
        self._open_entry(op)
        return flushed

    def _mc_pad(self, op: SchedOp, idx: int) -> int:
        """Extra empty elements needed so that placing ``op`` at element
        ``idx`` respects every multicycle producer's latency."""
        if not self.has_multicycle:
            return 0
        need = 0
        lo = max(0, idx - self.max_latency)
        hi = min(idx, len(self.entries))
        for j in range(lo, hi):
            lw = self.entries[j].li.lat_writes
            if not lw:
                continue
            for r in op.reads:
                lat = lw.get(r)
                if lat and j + lat > idx + need:
                    need = j + lat - idx
        return need

    def _substitute_sources(self, op: SchedOp) -> None:
        """Redirect source operands to the newest renames of their
        locations.  Recomputed from ``base_reads`` so an op that triggers a
        flush (and lands in a fresh block with an empty map) reverts to its
        architectural sources."""
        op.rs1_rr = op.rs2_rr = op.rddata_rr = op.ccsrc_rr = None
        rmap = self.rename_map
        if not rmap or not op.src_fields:
            if op.reads is not op.base_reads:
                op.reads = op.base_reads
            return
        reads = set(op.base_reads)
        for field, loc in op.src_fields:
            new = rmap.get(loc)
            if new is None:
                continue
            reads.discard(loc)
            reads.add(new)
            k = new % 10_000  # index within its renaming file
            if field == "rs1":
                op.rs1_rr = k
            elif field == "rs2":
                op.rs2_rr = k
            elif field == "rd":
                op.rddata_rr = k
            else:
                op.ccsrc_rr = k
        op.reads = frozenset(reads)

    def _apply_mem_order(self, op: SchedOp) -> None:
        """Reschedule-after-aliasing constraint (section 3.11): artificial
        flow dependences through a pseudo-location keep every memory access
        of the block in program order."""
        if self.keep_mem_order and op.is_mem_effect and MEMSEQ_ID not in op.writes:
            op.reads = op.reads | {MEMSEQ_ID}
            op.writes = op.writes | {MEMSEQ_ID}
            op.no_split = True

    def _start_block(self, op: SchedOp) -> None:
        self.block_start_addr = op.addr
        self.block_entry_cwp = op.cwp_src
        self.ls_order = 0
        self.pools.reset()
        self.has_multicycle = False
        self.max_latency = 1
        self.keep_mem_order = op.addr in self.alias_addrs
        self.signed_depth = 0
        self.req_canrestore = 0
        self.req_cansave = 0
        self.rename_map = {}
        self.newest_writer = {}
        self.build_ops = []
        if self.probe is not None:
            self.probe.emit(EV_BLOCK_OPEN, op.addr)

    def _fits_tail(self, op: SchedOp, tail: Entry) -> bool:
        li = tail.li
        if op.is_branch:
            # Control transfers may share a long instruction (section 3.8);
            # only data and resource dependencies force a new element.
            if op.reads & li.installed_writes:
                return False
            if op.writes & (li.installed_reads | li.installed_writes):
                return False
            return li.find_free_slot(op) >= 0
        if li.num_branches > 0:  # control dependency
            return False
        if op.reads & li.installed_writes:
            return False
        if op.writes & (li.installed_reads | li.installed_writes):
            return False
        return li.find_free_slot(op) >= 0

    def _prepare(self, op: SchedOp) -> None:
        nw = self.cfg.nwindows
        op.cwp_delta_src = (op.cwp_src - self.block_entry_cwp) % nw
        op.cwp_delta_dst = (op.cwp_dst - self.block_entry_cwp) % nw
        # Window residency requirements: an op that was hoisted above the
        # save/restore it follows in program order must still find its
        # window's physical registers valid, so the block records how far
        # above (resident ancestors) and below (free windows) the entry
        # window it reaches; the VLIW Engine spills/fills eagerly at block
        # entry to satisfy this (see DESIGN.md).
        d = self.signed_depth
        op.depth = d
        from ..isa.instructions import K_RESTORE, K_SAVE

        kind = op.instr.op.kind if op.instr is not None else None
        dd = d - 1 if kind == K_SAVE else d + 1 if kind == K_RESTORE else d
        for k in op.win_src:
            self._note_window(d + k)
        for k in op.win_dst:
            self._note_window(dd + k)
        if kind == K_SAVE:
            self._note_window(d - 1)  # the window being entered
            self.signed_depth = d - 1
        elif kind == K_RESTORE:
            self._note_window(d + 1)  # the parent frame being re-entered
            self.signed_depth = d + 1
        if op.is_mem_effect:
            op.order = self.ls_order
            self.ls_order += 1
        # this op's (architectural) writes are now the newest definitions
        for w in op.writes:
            self.newest_writer[w] = op
            if self.rename_map:
                self.rename_map.pop(w, None)
        if op.latency > 1 and self.cfg.multicycle:
            self.has_multicycle = True
            if op.latency > self.max_latency:
                self.max_latency = op.latency
        elif not self.cfg.multicycle:
            op.latency = 1
        self.stats.instructions_scheduled += 1
        self.build_ops.append(op)
        if self.probe is not None:
            self.probe.emit(EV_SCHED, op.addr)

    def _place(self, op: SchedOp, entry: Entry) -> None:
        """Insert into an existing tail element."""
        self._prepare(op)
        slot = entry.li.find_free_slot(op)
        entry.li.place_companion(op, slot)
        op.tag_depth = entry.li.num_branches
        if op.is_branch:
            entry.li.install(op)  # branches never move (section 3.8)
        else:
            if entry.candidate is not None:
                raise SimError("scheduler: tail candidate not resolved")
            entry.candidate = op
            self.n_candidates += 1

    def _open_entry(self, op: SchedOp) -> None:
        """Append a new tail element holding ``op``."""
        self._prepare(op)
        li = LongInstruction(self.cfg.block_width, self.cfg.slot_classes)
        entry = Entry(li)
        self.entries.append(entry)
        slot = li.find_free_slot(op)
        if slot < 0:
            raise SimError(
                "instruction %s fits no slot of an empty long instruction "
                "(functional unit mix too restrictive)" % op.text()
            )
        li.place_companion(op, slot)
        op.tag_depth = 0
        if op.is_branch:
            li.install(op)
        else:
            entry.candidate = op
            self.n_candidates += 1

    # ----------------------------------------------------------------- flush
    def flush(self, reason: str, next_addr: int) -> Optional[Block]:
        """Finalize and emit the current block (None when list is empty)."""
        if not self.entries:
            return None
        for entry in self.entries:
            if entry.candidate is not None:
                entry.li.install(entry.candidate)
                entry.candidate = None
                self.n_candidates -= 1
        block = Block(
            self.block_start_addr,
            [e.li for e in self.entries],
            next_addr,
            self.block_entry_cwp,
            self.pools.n_int,
            self.pools.n_fp,
            self.pools.n_cc,
            self.pools.n_mem,
            keep_mem_order=self.keep_mem_order,
            req_canrestore=self.req_canrestore,
            req_cansave=self.req_cansave,
            build_ops=self.build_ops,
        )
        st = self.stats
        st.blocks_flushed += 1
        if reason == FLUSH_FULL:
            st.blocks_flushed_full += 1
        elif reason == FLUSH_HIT:
            st.blocks_flushed_hit += 1
        elif reason == FLUSH_NONSCHED:
            st.blocks_flushed_nonsched += 1
        st.long_instructions_saved += len(block.lis)
        st.slots_filled += block.op_count()
        st.slots_total += self.cfg.block_width * self.cfg.block_height
        st.max_int_renaming = max(st.max_int_renaming, self.pools.n_int)
        st.max_fp_renaming = max(st.max_fp_renaming, self.pools.n_fp)
        st.max_cc_renaming = max(st.max_cc_renaming, self.pools.n_cc)
        st.max_mem_renaming = max(st.max_mem_renaming, self.pools.n_mem)
        if self.probe is not None:
            self.probe.emit(
                EV_BLOCK_FLUSH,
                block.start_addr,
                reason,
                len(block.lis),
                block.op_count(),
                self.cfg.block_width * self.cfg.block_height,
                self.pools.n_int,
                self.pools.n_fp,
                self.pools.n_cc,
                self.pools.n_mem,
            )
        self.entries = []
        self.n_candidates = 0
        self.build_ops = []
        return block

    def _note_window(self, k: int) -> None:
        """Record that the block touches window ``entry + k``."""
        if k > 0 and k > self.req_canrestore:
            self.req_canrestore = k
        elif k < -1 and (-k - 1) > self.req_cansave:
            self.req_cansave = -k - 1
