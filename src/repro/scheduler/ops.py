"""Scheduled operations: the unit that flows from the Primary Processor
through the Scheduler Unit into VLIW Cache blocks.

When an instruction completes in the Primary Processor, :func:`build_sched_op`
captures everything scheduling and VLIW re-execution need:

* *dependence footprint*: frozensets of physical location ids (integer
  registers resolved through the register windows with the ``cwp`` in force
  at execution, fp registers, the condition codes, the ``cwp`` itself for
  save/restore ordering, and the memory words observed by loads/stores);
* *replay recipe*: visible register numbers plus ``cwp`` deltas relative to
  the block entry window (section 3.9: the cwp accompanies instructions into
  the scheduling list and VLIW Cache), immediates, and for control transfers
  the direction observed during scheduling (section 3.5);
* *renaming state* filled in by splits (section 3.2): renamed outputs and,
  for COPY operations, the copy actions that commit renamed values to their
  architectural destinations.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import SimError
from ..isa.instructions import (
    Instr,
    K_ALU,
    K_BRANCH,
    K_CALL,
    K_FLOAD,
    K_FPOP,
    K_FSTORE,
    K_JMPL,
    K_LOAD,
    K_RESTORE,
    K_SAVE,
    K_SETHI,
    K_STORE,
)
from ..isa.registers import CC_ID, CWP_ID, fp_loc, mem_loc
from ..isa.semantics import StepInfo

#: Execution categories used by the VLIW engine dispatcher.
X_ALU = 0
X_SETHI = 1
X_LOAD = 2
X_STORE = 3
X_BRANCH = 4  # conditional branch
X_JMPL = 5  # indirect branch
X_CALL = 6  # link-register write with a fixed direction
X_SAVE = 7
X_RESTORE = 8
X_FPOP = 9
X_FLOAD = 10
X_FSTORE = 11
X_COPY = 12

_KIND_TO_X = {
    K_ALU: X_ALU,
    K_SETHI: X_SETHI,
    K_LOAD: X_LOAD,
    K_STORE: X_STORE,
    K_BRANCH: X_BRANCH,
    K_JMPL: X_JMPL,
    K_CALL: X_CALL,
    K_SAVE: X_SAVE,
    K_RESTORE: X_RESTORE,
    K_FPOP: X_FPOP,
    K_FLOAD: X_FLOAD,
    K_FSTORE: X_FSTORE,
}


class SchedOp:
    """One operation inside the scheduling list / a VLIW block."""

    __slots__ = (
        "instr",
        "xkind",
        "fu",
        "latency",
        "addr",
        "reads",
        "writes",
        "cwp_src",
        "cwp_dst",
        "cwp_delta_src",
        "cwp_delta_dst",
        "mem_addr",
        "mem_size",
        "is_load",
        "is_store_effect",
        "taken",
        "target",
        "dst_rr",
        "cc_rr",
        "mem_rr",
        "copy_actions",
        "tag_depth",
        "order",
        "cross",
        "slot",
        "no_split",
        "int_dst_visible",
        "win_src",
        "win_dst",
        "depth",
        "src_fields",
        "base_reads",
        "rs1_rr",
        "rs2_rr",
        "rddata_rr",
        "ccsrc_rr",
        "rename_updates",
    )

    def __init__(self, instr: Instr, xkind: int, fu: int, latency: int):
        self.instr = instr
        self.xkind = xkind
        self.fu = fu
        self.latency = latency
        self.addr = instr.addr if instr is not None else 0
        self.reads: frozenset = frozenset()
        self.writes: frozenset = frozenset()
        self.cwp_src = 0
        self.cwp_dst = 0
        self.cwp_delta_src = 0
        self.cwp_delta_dst = 0
        self.mem_addr = -1
        self.mem_size = 0
        self.is_load = False
        self.is_store_effect = False  # performs an actual memory write
        self.taken = False
        self.target = 0
        # renaming: indices into the per-block renaming register files
        self.dst_rr: Optional[int] = None  # int or fp result rename
        self.cc_rr: Optional[int] = None
        self.mem_rr: Optional[int] = None
        self.copy_actions: Optional[List[Tuple]] = None  # COPY ops only
        self.tag_depth = 0
        self.order = 0
        self.cross = False
        self.slot = -1
        self.no_split = False
        #: visible register of the integer destination (COPY actions are
        #: window-relative so blocks work at any re-entry call depth)
        self.int_dst_visible: Optional[int] = None
        #: window offsets touched by sources/destination relative to the
        #: op's own window (0 = ins/locals, -1 = outs); used to compute the
        #: block's window-residency requirements (eager spill/fill)
        self.win_src: tuple = ()
        self.win_dst: tuple = ()
        #: signed call depth at execution relative to the block entry
        #: (negative = deeper, assigned by the Scheduler Unit)
        self.depth = 0
        #: substitutable source operands: tuple of (field, physical loc)
        #: where field is 'rs1' | 'rs2' | 'rd' | 'cc'.  The Scheduler Unit
        #: redirects these to the newest renaming register of the location
        #: (the paper's Figure 2 shows ``subcc r32, ...`` -- consumers read
        #: the rename, which is what makes splits shorten critical paths).
        self.src_fields: Tuple = ()
        self.base_reads: Optional[frozenset] = None
        self.rs1_rr: Optional[int] = None
        self.rs2_rr: Optional[int] = None
        self.rddata_rr: Optional[int] = None
        self.ccsrc_rr: Optional[int] = None
        #: set by split_candidate: [(original loc, new rename loc), ...]
        self.rename_updates: Optional[List[Tuple[int, int]]] = None

    # -- classification -------------------------------------------------------
    @property
    def is_branch(self) -> bool:
        return self.xkind in (X_BRANCH, X_JMPL)

    @property
    def is_copy(self) -> bool:
        return self.xkind == X_COPY

    @property
    def commits_memory(self) -> bool:
        """True for memory COPY ops (they perform the actual store)."""
        return self.xkind == X_COPY and any(
            act[0] == "mem" for act in self.copy_actions or ()
        )

    @property
    def is_mem_effect(self) -> bool:
        """Reads or writes memory when executed (split stores do not --
        their effect happens at the memory COPY)."""
        return self.is_load or self.is_store_effect

    def text(self) -> str:
        if self.xkind == X_COPY:
            parts = []
            for act in self.copy_actions or []:
                parts.append("%s%s->%s" % (act[0], act[1], act[2:]))
            return "COPY " + ", ".join(parts)
        base = self.instr.text()
        extra = []
        for field, rr in (
            ("rs1", self.rs1_rr),
            ("rs2", self.rs2_rr),
            ("rd", self.rddata_rr),
            ("cc", self.ccsrc_rr),
        ):
            if rr is not None:
                extra.append("%s<-rr%d" % (field, rr))
        if self.dst_rr is not None:
            extra.append("rd->rr%d" % self.dst_rr)
        if self.cc_rr is not None:
            extra.append("cc->crr%d" % self.cc_rr)
        if self.mem_rr is not None:
            extra.append("mem->mrr%d" % self.mem_rr)
        if self.tag_depth:
            extra.append("tag%d" % self.tag_depth)
        return base + (" {%s}" % ",".join(extra) if extra else "")

    def __repr__(self) -> str:  # pragma: no cover
        return "SchedOp(%s)" % self.text()

    def clone(self) -> "SchedOp":
        """A field-for-field copy (compiled primary mode's op factory).

        Prototype ops built by :func:`build_sched_proto` are cached per
        static instruction and cloned per dynamic instance; the Scheduler
        Unit then mutates the clone freely (``_prepare`` clamps latency,
        renaming assigns ``*_rr`` fields) without touching the prototype.
        Immutable members (frozensets, tuples) are shared between clones --
        the scheduler rebinds them, it never mutates them in place.
        """
        so = SchedOp.__new__(SchedOp)
        so.instr = self.instr
        so.xkind = self.xkind
        so.fu = self.fu
        so.latency = self.latency
        so.addr = self.addr
        so.reads = self.reads
        so.writes = self.writes
        so.cwp_src = self.cwp_src
        so.cwp_dst = self.cwp_dst
        so.cwp_delta_src = self.cwp_delta_src
        so.cwp_delta_dst = self.cwp_delta_dst
        so.mem_addr = self.mem_addr
        so.mem_size = self.mem_size
        so.is_load = self.is_load
        so.is_store_effect = self.is_store_effect
        so.taken = self.taken
        so.target = self.target
        so.dst_rr = self.dst_rr
        so.cc_rr = self.cc_rr
        so.mem_rr = self.mem_rr
        so.copy_actions = self.copy_actions
        so.tag_depth = self.tag_depth
        so.order = self.order
        so.cross = self.cross
        so.slot = self.slot
        so.no_split = self.no_split
        so.int_dst_visible = self.int_dst_visible
        so.win_src = self.win_src
        so.win_dst = self.win_dst
        so.depth = self.depth
        so.src_fields = self.src_fields
        so.base_reads = self.base_reads
        so.rs1_rr = self.rs1_rr
        so.rs2_rr = self.rs2_rr
        so.rddata_rr = self.rddata_rr
        so.ccsrc_rr = self.ccsrc_rr
        so.rename_updates = self.rename_updates
        return so


def build_sched_op(instr: Instr, info: StepInfo, rf, cwp_after: int) -> SchedOp:
    """Create a :class:`SchedOp` from one completed Primary execution.

    ``info`` is the :class:`StepInfo` produced by ``semantics.step``;
    ``rf`` supplies the window tables; ``cwp_after`` is the window pointer
    after the instruction executed.
    """
    op = instr.op
    kind = op.kind
    xkind = _KIND_TO_X.get(kind)
    if xkind is None:
        raise SimError("unschedulable kind for %s" % instr.text())
    so = SchedOp(instr, xkind, op.fu, op.latency)
    cwp_before = info.cwp_before
    so.cwp_src = cwp_before
    so.cwp_dst = cwp_after
    table_src = rf.tables[cwp_before]
    table_dst = rf.tables[cwp_after]

    reads = []
    writes = []

    if kind == K_ALU:
        reads.append(table_src[instr.rs1])
        if not instr.use_imm:
            reads.append(table_src[instr.rs2])
        d = table_src[instr.rd]
        if d:
            writes.append(d)
        if op.sets_cc:
            writes.append(CC_ID)
    elif kind == K_SETHI:
        d = table_src[instr.rd]
        if d:
            writes.append(d)
    elif kind == K_LOAD:
        reads.append(table_src[instr.rs1])
        if not instr.use_imm:
            reads.append(table_src[instr.rs2])
        reads.append(mem_loc(info.mem_addr))
        d = table_src[instr.rd]
        if d:
            writes.append(d)
        so.is_load = True
        so.mem_addr = info.mem_addr
        so.mem_size = info.mem_size
    elif kind == K_STORE:
        reads.append(table_src[instr.rs1])
        if not instr.use_imm:
            reads.append(table_src[instr.rs2])
        reads.append(table_src[instr.rd])
        writes.append(mem_loc(info.mem_addr))
        so.is_store_effect = True
        so.mem_addr = info.mem_addr
        so.mem_size = info.mem_size
    elif kind == K_BRANCH:
        if op.reads_cc:
            reads.append(CC_ID)
        so.taken = info.taken
        so.target = info.target
        so.no_split = True
    elif kind == K_CALL:
        d = table_src[15]  # o7
        writes.append(d)
        so.taken = True
        so.target = info.target
    elif kind == K_JMPL:
        reads.append(table_src[instr.rs1])
        d = table_src[instr.rd]
        if d:
            writes.append(d)
        so.taken = True
        so.target = info.target
        so.no_split = True
    elif kind in (K_SAVE, K_RESTORE):
        reads.append(table_src[instr.rs1])
        if not instr.use_imm:
            reads.append(table_src[instr.rs2])
        reads.append(CWP_ID)
        writes.append(CWP_ID)
        d = table_dst[instr.rd]  # destination is in the NEW window
        if d:
            writes.append(d)
        so.no_split = True  # the cwp change cannot be renamed
    elif kind == K_FPOP:
        name = op.name
        if name == "fitos":
            reads.append(table_src[instr.rs1])
            writes.append(fp_loc(instr.rd))
        elif name == "fstoi":
            reads.append(fp_loc(instr.rs1))
            d = table_src[instr.rd]
            if d:
                writes.append(d)
        elif name == "fcmp":
            reads.append(fp_loc(instr.rs1))
            reads.append(fp_loc(instr.rs2))
            writes.append(CC_ID)
        elif name in ("fmov", "fneg"):
            reads.append(fp_loc(instr.rs1))
            writes.append(fp_loc(instr.rd))
        else:
            reads.append(fp_loc(instr.rs1))
            reads.append(fp_loc(instr.rs2))
            writes.append(fp_loc(instr.rd))
    elif kind == K_FLOAD:
        reads.append(table_src[instr.rs1])
        if not instr.use_imm:
            reads.append(table_src[instr.rs2])
        reads.append(mem_loc(info.mem_addr))
        writes.append(fp_loc(instr.rd))
        so.is_load = True
        so.mem_addr = info.mem_addr
        so.mem_size = 4
    elif kind == K_FSTORE:
        reads.append(table_src[instr.rs1])
        if not instr.use_imm:
            reads.append(table_src[instr.rs2])
        reads.append(fp_loc(instr.rd))
        writes.append(mem_loc(info.mem_addr))
        so.is_store_effect = True
        so.mem_addr = info.mem_addr
        so.mem_size = 4

    # Record the visible integer destination for window-relative renaming.
    if kind in (K_ALU, K_SETHI, K_LOAD, K_JMPL, K_SAVE, K_RESTORE):
        if instr.rd != 0:
            so.int_dst_visible = instr.rd
    elif kind == K_CALL:
        so.int_dst_visible = 15  # o7
    elif kind == K_FPOP and op.name == "fstoi" and instr.rd != 0:
        so.int_dst_visible = instr.rd

    # Window offsets of integer register accesses (for the block's window
    # residency requirements): 0 for ins/locals, -1 for outs (the outs of a
    # window physically live one window below).
    src_wins = []
    src_regs = []
    if kind in (K_ALU, K_LOAD, K_STORE, K_JMPL, K_SAVE, K_RESTORE, K_FLOAD, K_FSTORE):
        src_regs.append(instr.rs1)
        if (
            kind in (K_ALU, K_SAVE, K_RESTORE, K_LOAD, K_STORE, K_FLOAD, K_FSTORE)
            and not instr.use_imm
        ):
            src_regs.append(instr.rs2)
    if kind == K_STORE:
        src_regs.append(instr.rd)
    if kind == K_FPOP and op.name == "fitos":
        src_regs.append(instr.rs1)
    for v in src_regs:
        if 8 <= v <= 15:
            src_wins.append(-1)
        elif v >= 16:
            src_wins.append(0)
    so.win_src = tuple(src_wins)
    v = so.int_dst_visible
    if v is not None:
        so.win_dst = ((-1,) if 8 <= v <= 15 else (0,) if v >= 16 else ())

    # Substitutable source fields (physical locations) for the scheduler's
    # rename map.
    src_fields = []
    if kind in (K_ALU, K_LOAD, K_STORE, K_JMPL, K_SAVE, K_RESTORE, K_FLOAD, K_FSTORE):
        if table_src[instr.rs1]:
            src_fields.append(("rs1", table_src[instr.rs1]))
        if (
            not instr.use_imm
            and kind != K_JMPL
            and table_src[instr.rs2]
        ):
            src_fields.append(("rs2", table_src[instr.rs2]))
    if kind == K_STORE and table_src[instr.rd]:
        src_fields.append(("rd", table_src[instr.rd]))
    elif kind == K_FSTORE:
        src_fields.append(("rd", fp_loc(instr.rd)))
    elif kind == K_BRANCH and op.reads_cc:
        src_fields.append(("cc", CC_ID))
    elif kind == K_FPOP:
        name = op.name
        if name == "fitos":
            if table_src[instr.rs1]:
                src_fields.append(("rs1", table_src[instr.rs1]))
        elif name in ("fstoi", "fmov", "fneg"):
            src_fields.append(("rs1", fp_loc(instr.rs1)))
        else:  # fadd/fsub/fmul/fdiv/fcmp
            src_fields.append(("rs1", fp_loc(instr.rs1)))
            src_fields.append(("rs2", fp_loc(instr.rs2)))
    so.src_fields = tuple(src_fields)

    # g0 reads are harmless (nothing ever writes physical register 0) but
    # excluding them keeps the dependence sets minimal.
    so.reads = frozenset(r for r in reads if r != 0)
    so.writes = frozenset(writes)
    if not so.writes and not so.is_branch:
        # Nothing to rename: an op with no outputs cannot be split (and a
        # speculative faulting load would have nowhere to defer into).
        so.no_split = True
    return so


def build_sched_proto(
    instr: Instr, rf, cwp_before: int, cwp_after: int
) -> Tuple[SchedOp, Optional[Tuple[int, ...]]]:
    """The static half of :func:`build_sched_op` for compiled primary mode.

    Everything that depends only on the instruction encoding and the entry
    window (operand location sets, src_fields, window offsets, no_split) is
    computed once here; the compiled block clones the returned prototype
    per dynamic instance and patches in the per-instance facts the trace
    supplies (memory address, branch direction, target).

    Returns ``(proto, static_reads)``; ``static_reads`` is a tuple of the
    register-side read locations for loads (the runtime read set is
    ``frozenset(static_reads + (mem_loc(addr),))``) and ``None`` for every
    other kind.  Store prototypes carry an empty write set -- the runtime
    write set is ``frozenset((mem_loc(addr),))``.  Branch prototypes have
    ``taken=False``/``target=0`` placeholders (call/jmpl keep their
    unconditional ``taken=True``).
    """
    info = StepInfo()
    info.cwp_before = cwp_before
    if instr.mem_size:
        # placeholder address 0: mem_loc(0) == MEM_BASE is stripped below
        # (register location ids are all far smaller than MEM_BASE)
        info.mem_addr = 0
        info.mem_size = instr.mem_size
    so = build_sched_op(instr, info, rf, cwp_after)
    rtup: Optional[Tuple[int, ...]] = None
    placeholder = mem_loc(0)
    if so.is_load:
        rtup = tuple(sorted(r for r in so.reads if r != placeholder))
        so.reads = frozenset(rtup)
        so.mem_addr = -1
    elif so.is_store_effect:
        so.writes = frozenset()
        so.mem_addr = -1
    return so, rtup


def make_copy_op(actions: List[Tuple], fu: int) -> SchedOp:
    """Build a COPY operation committing renamed outputs (section 3.2).

    ``actions`` entries:

    * ``("int", rr, visible_rd, cwp_delta)`` -- integer rename -> register
    * ``("irr", rr_src, rr_dst)``            -- rename -> earlier rename
    * ``("fp", rr, f)``                      -- fp rename -> fp register
    * ``("frr", rr_src, rr_dst)``
    * ``("cc", rr)``                         -- cc rename -> icc
    * ``("crr", rr_src, rr_dst)``
    * ``("mem", mrr)``                       -- store buffer -> memory
    * ``("mrr", mrr_src, mrr_dst)``
    """
    so = SchedOp(None, X_COPY, fu, 1)
    so.copy_actions = actions
    return so
