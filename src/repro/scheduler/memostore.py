"""On-disk persistence for the scheduling memo (:mod:`repro.scheduler.memo`).

A process-global :func:`~repro.scheduler.memo.shared_memo` already lets
consecutive sweeps in *one* process reuse each other's scheduling work;
this module extends that across processes and CLI invocations: each
family's :class:`~repro.scheduler.memo.ScheduleMemo` can be spilled to a
content-addressed file and reloaded by the next process, so a warm sweep
re-schedules (ideally) zero segments.

Discipline matches :mod:`repro.trace.store` (``TraceStore`` /
``BlockCacheStore``): a versioned binary format, sha256 verified before
anything is decoded, atomic mkstemp+rename writes, and **warn-and-miss**
on any defect -- a corrupt, truncated, version-skewed or foreign file can
cost scheduling time, never correctness.  The memo layer's own per-apply
content verification (pc/flag/spill slices, collision patterns, probe
re-checks) still runs against every restored record, so even a
maliciously crafted *valid* file could only ever inject records that
fail verification and are ignored.

Format (version 1, integers little-endian)::

    magic "RMEM" | u16 version | 32B program fingerprint
    | u32 zlen | zlib(marshal(payload)) | 32B sha256 of everything above

The payload is pure ``marshal`` data (ints, strings, bytes, tuples,
lists, dicts, sets -- never pickled objects): segment records are
flattened slot-by-slot, with ``Instr`` references encoded as addresses
and rebound through ``program.instrs`` on load (a missing address is a
defect).  Files live under ``results/memos/`` (``$REPRO_MEMO_DIR``),
keyed by family key + ``resultcache.code_version()`` + interpreter magic
+ format version; ``$REPRO_NO_MEMO_STORE=1`` disables the store in both
directions.
"""

from __future__ import annotations

import importlib.util
import logging
import marshal
import os
import struct
import zlib
from array import array
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.errors import SimError
from .long_instruction import Block, LongInstruction
from .memo import MemoTable, ScheduleMemo, SegmentRecord
from .ops import SchedOp

log = logging.getLogger(__name__)

MEMO_MAGIC = b"RMEM"
MEMO_VERSION = 1

#: default memo-store location, relative to the working directory
DEFAULT_MEMO_DIR = os.path.join("results", "memos")

_HEADER = struct.Struct("<4sH32s")
_U32 = struct.Struct("<I")
_DIGEST_LEN = 32


class MemoFormatError(SimError):
    """A memo file is truncated, corrupt, wrong-version or inconsistent."""


def memo_store_disabled() -> bool:
    """True when ``$REPRO_NO_MEMO_STORE`` turns memo persistence off."""
    return os.environ.get("REPRO_NO_MEMO_STORE", "") not in ("", "0")


def memo_dir() -> str:
    return os.environ.get("REPRO_MEMO_DIR", DEFAULT_MEMO_DIR)


class MemoStoreStats:
    """Process-global memo-store counters (mirrored by the
    ``memo_store_hit`` / ``memo_store_miss`` probe events and surfaced by
    ``dtsvliw profile``)."""

    __slots__ = ("store_hits", "store_misses", "records_loaded", "flushes")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.store_hits = 0  # family loads served from disk
        self.store_misses = 0  # absent/defective/disabled lookups
        self.records_loaded = 0  # segment records restored
        self.flushes = 0  # families written back

    def snapshot(self) -> Dict[str, int]:
        return {
            "store_hits": self.store_hits,
            "store_misses": self.store_misses,
            "records_loaded": self.records_loaded,
            "flushes": self.flushes,
        }


GLOBAL_STATS = MemoStoreStats()


def family_memo_key(family_key: Tuple) -> str:
    """Content key for one family's memo file: the batch-layer family key
    plus everything that invalidates the records it holds (simulator
    source fingerprint, marshal compatibility, format version)."""
    from ..harness.resultcache import code_version  # lazy: import cycle

    h = sha256()
    h.update(repr(family_key).encode("utf-8"))
    h.update(code_version().encode("ascii"))
    h.update(importlib.util.MAGIC_NUMBER)
    h.update(b"rmem%d" % MEMO_VERSION)
    return "memo-%s" % h.hexdigest()[:24]


# ---------------------------------------------------------------------------
# Flattening: SchedOp / LongInstruction / Block -> marshal-able tuples.
# ---------------------------------------------------------------------------
#: SchedOp slots serialized verbatim (everything except ``instr``, which
#: is encoded as an address and rebound through ``program.instrs``)
_OP_SLOTS = tuple(s for s in SchedOp.__slots__ if s != "instr")

_REC_SLOTS = SegmentRecord.__slots__


#: slots holding frozensets of int ids -- flattened to *sorted* tuples,
#: because ``marshal`` is not canonical for sets (iteration order varies
#: with construction history)
_OP_FSET_SLOTS = frozenset(("reads", "writes", "base_reads"))
#: slots holding (possibly None) lists of plain tuples
_OP_LIST_SLOTS = frozenset(("copy_actions", "rename_updates"))


def _build_op_codec():
    """Synthesize the unrolled encode/decode pair for SchedOp's slot
    layout (decode sits on the warm-sweep critical path: a generic
    setattr loop over 36 slots is measurably slower than straight-line
    attribute assignments).  Regenerating from ``__slots__`` keeps the
    codec in lockstep with the class."""
    enc = ["op.instr.addr if op.instr is not None else None"]
    dec = [
        "def _decode_op(raw, instrs):",
        "    op = _new(SchedOp)",
        "    a = raw[0]",
        "    if a is None:",
        "        op.instr = None",
        "    else:",
        "        ins = instrs.get(a)",
        "        if ins is None:",
        "            raise MemoFormatError('op references unknown instr "
        "0x%x' % a)",
        "        op.instr = ins",
    ]
    for i, slot in enumerate(_OP_SLOTS, start=1):
        if slot in _OP_FSET_SLOTS:
            enc.append(
                "None if op.{s} is None else tuple(sorted(op.{s}))".format(s=slot)
            )
            dec.append(
                "    v = raw[%d]; op.%s = None if v is None else frozenset(v)"
                % (i, slot)
            )
        elif slot in _OP_LIST_SLOTS:
            enc.append("None if op.{s} is None else tuple(op.{s})".format(s=slot))
            dec.append(
                "    v = raw[%d]; op.%s = None if v is None else list(v)"
                % (i, slot)
            )
        else:  # ints / bools / None / plain tuples: marshal-canonical
            enc.append("op.%s" % slot)
            dec.append("    op.%s = raw[%d]" % (slot, i))
    dec.append("    return op")
    src = "def _encode_op(op):\n    return (%s,)\n\n%s\n" % (
        ",\n        ".join(enc),
        "\n".join(dec),
    )
    ns = {
        "_new": SchedOp.__new__,
        "SchedOp": SchedOp,
        "MemoFormatError": MemoFormatError,
    }
    exec(compile(src, "<memostore:op-codec>", "exec"), ns)
    return ns["_encode_op"], ns["_decode_op"]


_encode_op, _decode_op = _build_op_codec()


def _encode_block(block: Block) -> Tuple:
    # identity-ordered op table: every SchedOp the block references,
    # exactly once (slots, branches, dense and build_ops share objects)
    ops: List[SchedOp] = []
    index: Dict[int, int] = {}

    def ref(op: SchedOp) -> int:
        i = index.get(id(op))
        if i is None:
            i = index[id(op)] = len(ops)
            ops.append(op)
        return i

    lis = []
    for li in block.lis:
        lis.append((
            li.width,
            tuple(li.slot_classes) if li.slot_classes is not None else None,
            tuple(ref(op) if op is not None else None for op in li.slots),
            tuple(sorted(li.installed_reads)),
            tuple(sorted(li.installed_writes)),
            tuple(li.lat_writes.items()),
            tuple(ref(op) for op in li.branches),
            li.mem_effect_stores,
            li.mem_effect_loads,
            tuple(ref(op) for op in li.dense),
        ))
    build = (
        tuple(ref(op) for op in block.build_ops)
        if block.build_ops is not None
        else None
    )
    return (
        tuple(_encode_op(op) for op in ops),
        tuple(lis),
        block.start_addr,
        block.nba_addr,
        block.nba_line,
        block.entry_cwp,
        block.n_int_rr,
        block.n_fp_rr,
        block.n_cc_rr,
        block.n_mem_rr,
        block.keep_mem_order,
        block.req_canrestore,
        block.req_cansave,
        build,
    )


def _decode_block(raw: Tuple, instrs) -> Block:
    (raw_ops, raw_lis, start_addr, nba_addr, nba_line, entry_cwp,
     n_int_rr, n_fp_rr, n_cc_rr, n_mem_rr, keep_mem_order,
     req_canrestore, req_cansave, build) = raw
    ops = [_decode_op(r, instrs) for r in raw_ops]
    lis = []
    for (width, slot_classes, slots, ireads, iwrites, lat_writes,
         branches, mes, mel, dense) in raw_lis:
        li = LongInstruction.__new__(LongInstruction)
        li.width = width
        li.slot_classes = list(slot_classes) if slot_classes is not None else None
        li.slots = [ops[i] if i is not None else None for i in slots]
        li.installed_reads = set(ireads)
        li.installed_writes = set(iwrites)
        li.lat_writes = dict(lat_writes)
        li.branches = [ops[i] for i in branches]
        li.mem_effect_stores = mes
        li.mem_effect_loads = mel
        li.dense = [ops[i] for i in dense]
        lis.append(li)
    block = Block.__new__(Block)
    block.start_addr = start_addr
    block.lis = lis
    block.nba_addr = nba_addr
    block.nba_line = nba_line
    block.entry_cwp = entry_cwp
    block.n_int_rr = n_int_rr
    block.n_fp_rr = n_fp_rr
    block.n_cc_rr = n_cc_rr
    block.n_mem_rr = n_mem_rr
    block.keep_mem_order = keep_mem_order
    block.req_canrestore = req_canrestore
    block.req_cansave = req_cansave
    block.build_ops = [ops[i] for i in build] if build is not None else None
    block.replay_plan = None  # rebuilt lazily by the replay engine
    return block


def _pcs_to_le(pcs) -> bytes:
    a = pcs if isinstance(pcs, array) else array("I", pcs)
    import sys

    if sys.byteorder != "little":
        a = array("I", a)
        a.byteswap()
    return a.tobytes()


def _pcs_from_le(raw: bytes):
    import sys

    a = array("I")
    a.frombytes(raw)
    if sys.byteorder != "little":
        a.byteswap()
    return a


def _encode_record(rec: SegmentRecord) -> Tuple:
    return (
        rec.kind,
        rec.ext,
        _pcs_to_le(rec.pcs),
        bytes(rec.flags),
        bytes(rec.spilled),
        rec.mem_offs,
        rec.mem_pat,
        rec.probe_addrs,
        _encode_block(rec.block) if rec.block is not None else None,
        rec.mem_fix,
        rec.delta,
        rec.d_cycles,
        rec.keep_entry,
        rec.start_op_addr,
        rec.d_cansave,
        rec.d_canrestore,
        rec.d_wssp,
        rec.end_llr,
        rec.end_cwp,
    )


def _decode_record(raw: Tuple, instrs) -> SegmentRecord:
    rec = SegmentRecord.__new__(SegmentRecord)
    (rec.kind, rec.ext, pcs, rec.flags, rec.spilled, rec.mem_offs,
     rec.mem_pat, rec.probe_addrs, block, rec.mem_fix, rec.delta,
     rec.d_cycles, rec.keep_entry, rec.start_op_addr, rec.d_cansave,
     rec.d_canrestore, rec.d_wssp, rec.end_llr, rec.end_cwp) = raw
    rec.block = _decode_block(block, instrs) if block is not None else None
    # pcs must round-trip as array("I"): _seg_apply compares it against a
    # cursor slice with array equality, and bytes would never match
    rec.pcs = _pcs_from_le(pcs)
    return rec


# ---------------------------------------------------------------------------
# File format.
# ---------------------------------------------------------------------------
def encode_memo(memo: ScheduleMemo, fingerprint: bytes) -> bytes:
    """Serialize every table of ``memo`` for the program with
    ``fingerprint`` (32-byte :func:`~repro.trace.events.program_fingerprint`)."""
    payload = []
    for sig, table in memo._by_sig.items():
        entries = []
        for key, bucket in table.items():
            entries.append((key, tuple(_encode_record(r) for r in bucket)))
        payload.append((sig, tuple(entries)))
    out = bytearray()
    out += _HEADER.pack(MEMO_MAGIC, MEMO_VERSION, fingerprint)
    comp = zlib.compress(marshal.dumps(tuple(payload)), 6)
    out += _U32.pack(len(comp))
    out += comp
    out += sha256(out).digest()
    return bytes(out)


def decode_memo(
    data: bytes, program, fingerprint: bytes
) -> Dict[Tuple, List[Tuple[Tuple, List[SegmentRecord]]]]:
    """Parse ``data`` into ``{config_sig: [(key, records), ...]}``;
    raises :class:`MemoFormatError` on any defect.  Never unpickles:
    the payload is ``marshal`` data behind a verified digest, and every
    ``Instr`` reference is resolved through ``program.instrs``."""
    if len(data) < _HEADER.size + _U32.size + _DIGEST_LEN:
        raise MemoFormatError("memo file truncated (%d bytes)" % len(data))
    body, digest = data[:-_DIGEST_LEN], data[-_DIGEST_LEN:]
    if sha256(body).digest() != digest:
        raise MemoFormatError("memo integrity digest mismatch")
    magic, version, fp = _HEADER.unpack_from(body, 0)
    if magic != MEMO_MAGIC:
        raise MemoFormatError("bad memo magic %r" % magic)
    if version != MEMO_VERSION:
        raise MemoFormatError(
            "unsupported memo version %d (expected %d)" % (version, MEMO_VERSION)
        )
    if fp != fingerprint:
        raise MemoFormatError("memo was recorded for a different program")
    off = _HEADER.size
    (clen,) = _U32.unpack_from(body, off)
    off += _U32.size
    if off + clen != len(body):
        raise MemoFormatError("memo payload length mismatch")
    try:
        raw = zlib.decompress(body[off:off + clen])
    except zlib.error as exc:
        raise MemoFormatError("memo payload corrupt: %s" % exc) from exc
    try:
        payload = marshal.loads(raw)
    except (ValueError, EOFError, TypeError) as exc:
        raise MemoFormatError("memo marshal unreadable: %s" % exc) from exc
    instrs = program.instrs
    tables: Dict[Tuple, List[Tuple[Tuple, List[SegmentRecord]]]] = {}
    try:
        for sig, entries in payload:
            rows = []
            for key, raw_recs in entries:
                rows.append(
                    (key, [_decode_record(r, instrs) for r in raw_recs])
                )
            tables[sig] = rows
    except MemoFormatError:
        raise
    except Exception as exc:  # malformed shapes, wrong arity, bad types
        raise MemoFormatError("memo payload malformed: %s" % exc) from exc
    return tables


class MemoStore:
    """Directory of ``<key>.mem`` files with the same miss-on-defect /
    atomic-write discipline as :class:`~repro.trace.store.TraceStore`."""

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root if root is not None else memo_dir())

    def path(self, key: str) -> Path:
        return self.root / ("%s.mem" % key)

    def get(self, key: str, program, fingerprint: bytes):
        """The decoded tables for ``key``, or ``(None, reason)`` misses:
        returns ``(tables, None)`` on success, ``(None, "absent")`` or
        ``(None, "defect")`` otherwise."""
        try:
            data = self.path(key).read_bytes()
        except OSError:
            return None, "absent"
        try:
            return decode_memo(data, program, fingerprint), None
        except MemoFormatError as exc:
            log.warning("ignoring unreadable memo %s: %s", key, exc)
            return None, "defect"

    def put(self, key: str, memo: ScheduleMemo, fingerprint: bytes) -> bool:
        from ..trace.store import atomic_write_bytes  # lazy: import cycle

        try:
            atomic_write_bytes(
                self.root, self.path(key), encode_memo(memo, fingerprint), ".mem"
            )
            return True
        except OSError as exc:
            log.warning("memo store write failed for %s: %s", key, exc)
            return False


# ---------------------------------------------------------------------------
# Family-level load/flush (the batch evaluator's entry points).
# ---------------------------------------------------------------------------
def load_family_memo(
    memo: ScheduleMemo, family_key: Tuple, program, probe=None,
    store: Optional[MemoStore] = None,
) -> int:
    """Merge the on-disk records for ``family_key`` into ``memo``.

    Only keys absent from the in-process memo are filled (process-warm
    records win -- they are at least as fresh).  Returns the number of
    records restored; remembers the program fingerprint and the flushed
    high-water mark on the memo so :func:`flush_family_memo` can tell
    whether there is anything new to write back.
    """
    from ..obs.probe import EV_MEMO_STORE_HIT, EV_MEMO_STORE_MISS
    from ..trace.events import program_fingerprint

    fingerprint = program_fingerprint(program)
    memo._fingerprint = fingerprint
    memo._family_key = family_key
    if memo_store_disabled():
        GLOBAL_STATS.store_misses += 1
        if probe is not None:
            probe.emit(EV_MEMO_STORE_MISS, "disabled")
        memo._disk_stored = memo.stored
        return 0
    if store is None:
        store = MemoStore()
    tables, reason = store.get(family_memo_key(family_key), program, fingerprint)
    if tables is None:
        GLOBAL_STATS.store_misses += 1
        if probe is not None:
            probe.emit(EV_MEMO_STORE_MISS, reason)
        memo._disk_stored = memo.stored
        return 0
    loaded = 0
    for sig, rows in tables.items():
        table = memo._by_sig.get(sig)
        if table is None:
            if len(memo._by_sig) >= memo.max_tables:
                continue
            table = memo._by_sig[sig] = MemoTable()
        for key, recs in rows:
            if key in table or table.records >= memo.max_records:
                continue
            recs = recs[: memo.bucket_cap]
            table[key] = recs
            table.records += len(recs)
            loaded += len(recs)
    GLOBAL_STATS.store_hits += 1
    GLOBAL_STATS.records_loaded += loaded
    if probe is not None:
        probe.emit(EV_MEMO_STORE_HIT, loaded)
    memo._disk_stored = memo.stored
    return loaded


def flush_family_memo(
    memo: ScheduleMemo, family_key: Tuple,
    store: Optional[MemoStore] = None,
) -> bool:
    """Write ``memo`` back to disk if it recorded anything new since the
    last load/flush.  Safe to call on any memo (no-ops without a
    remembered fingerprint, with persistence disabled, or when clean)."""
    if memo_store_disabled():
        return False
    fingerprint = getattr(memo, "_fingerprint", None)
    if fingerprint is None:
        return False
    if getattr(memo, "_disk_stored", -1) == memo.stored:
        return False
    if store is None:
        store = MemoStore()
    if not store.put(family_memo_key(family_key), memo, fingerprint):
        return False
    GLOBAL_STATS.flushes += 1
    memo._disk_stored = memo.stored
    return True
