"""Split-based register renaming (section 3.2 / 3.8).

A *split* renames the candidate's offending outputs to fresh renaming
registers and turns its companion into a COPY pinned in the long instruction
the candidate is leaving.  The COPY commits the renamed values to the
original destinations; because only committed COPYs write architectural
state, the renamed instruction may execute speculatively above conditional
and indirect branches, with exceptions deferred in the renaming register
(section 3.8).

Renaming registers come in four classes -- integer, floating point,
condition-code and memory (store buffers) -- matching the Table 3 resource
columns.  Pools are per-block: the scheduling list is the lifetime of every
rename.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.errors import SimError
from ..isa.registers import (
    CC_ID,
    CRR_BASE,
    CWP_ID,
    FPR_BASE,
    FRR_BASE,
    IRR_BASE,
    MEM_BASE,
    MRR_BASE,
)
from .ops import SchedOp, make_copy_op


def irr_loc(k: int) -> int:
    return IRR_BASE + k


def frr_loc(k: int) -> int:
    return FRR_BASE + k


def crr_loc(k: int) -> int:
    return CRR_BASE + k


def mrr_loc(k: int) -> int:
    return MRR_BASE + k


# location classes
_INT, _FP, _CC, _MEM = 0, 1, 2, 3


def _classify(w: int) -> Tuple[int, str]:
    """-> (rename class, location kind) for an output location id."""
    if w < IRR_BASE:
        return _INT, "arch_int"
    if IRR_BASE <= w < FPR_BASE:
        return _INT, "irr"
    if FPR_BASE <= w < FRR_BASE:
        return _FP, "arch_fp"
    if FRR_BASE <= w < CC_ID:
        return _FP, "frr"
    if w == CC_ID:
        return _CC, "arch_cc"
    if CRR_BASE <= w < CWP_ID:
        return _CC, "crr"
    if CWP_ID <= w < MRR_BASE:
        raise SimError("location %d (cwp/memseq) cannot be renamed" % w)
    if MRR_BASE <= w < MEM_BASE:
        return _MEM, "mrr"
    return _MEM, "mem"


class RenamePools:
    """Per-block renaming register allocator with high-water tracking."""

    __slots__ = ("counts", "limits")

    def __init__(
        self,
        limit_int: Optional[int] = None,
        limit_fp: Optional[int] = None,
        limit_cc: Optional[int] = None,
        limit_mem: Optional[int] = None,
    ):
        self.counts = [0, 0, 0, 0]
        self.limits = [limit_int, limit_fp, limit_cc, limit_mem]

    def reset(self) -> None:
        self.counts = [0, 0, 0, 0]

    @property
    def n_int(self) -> int:
        return self.counts[_INT]

    @property
    def n_fp(self) -> int:
        return self.counts[_FP]

    @property
    def n_cc(self) -> int:
        return self.counts[_CC]

    @property
    def n_mem(self) -> int:
        return self.counts[_MEM]

    def can_alloc(self, needs: List[int]) -> bool:
        for cls in range(4):
            limit = self.limits[cls]
            if limit is not None and self.counts[cls] + needs[cls] > limit:
                return False
        return True

    def alloc(self, cls: int) -> int:
        k = self.counts[cls]
        self.counts[cls] = k + 1
        return k


def split_candidate(
    cand: SchedOp,
    offending: set,
    rename_all: bool,
    pools: RenamePools,
) -> Optional[SchedOp]:
    """Rename the candidate's outputs; return the COPY op to pin behind.

    ``offending`` is the set of output locations that caused the anti/output
    dependency; with ``rename_all`` (control dependency) every output is
    renamed.  Returns ``None`` -- the split is impossible (renaming pool
    exhausted or nothing to rename) and the candidate must install instead --
    without mutating the candidate or the pools.
    """
    to_rename = [
        w for w in cand.writes if rename_all or w in offending
    ]
    if not to_rename:
        return None

    # Check pool capacity up front so failure has no side effects.
    needs = [0, 0, 0, 0]
    for w in to_rename:
        needs[_classify(w)[0]] += 1
    if not pools.can_alloc(needs):
        return None

    actions: List[Tuple] = []
    copy_reads = set()
    copy_writes = set()
    new_writes = set(cand.writes)
    mem_effect_copy = False
    rename_updates: List[Tuple[int, int]] = []

    for w in to_rename:
        cls, kind = _classify(w)
        k = pools.alloc(cls)
        new_writes.discard(w)
        if cls != _MEM:
            # later readers are redirected to the newest rename (Figure 2's
            # ``subcc r32, ...``); memory reads are never redirected
            new_loc = (
                irr_loc(k) if cls == _INT else frr_loc(k) if cls == _FP else crr_loc(k)
            )
            rename_updates.append((w, new_loc))
        if cls == _INT:
            new_writes.add(irr_loc(k))
            copy_reads.add(irr_loc(k))
            copy_writes.add(w)
            if kind == "irr":
                actions.append(("irr", k, w - IRR_BASE))
            else:
                # Window-relative destination: (visible reg, cwp delta).
                if cand.int_dst_visible is None:
                    raise SimError(
                        "split of %s: integer output without a visible "
                        "destination" % cand.text()
                    )
                actions.append(
                    ("int", k, cand.int_dst_visible, cand.cwp_delta_dst)
                )
            cand.dst_rr = k
        elif cls == _FP:
            new_writes.add(frr_loc(k))
            copy_reads.add(frr_loc(k))
            copy_writes.add(w)
            actions.append(
                ("frr", k, w - FRR_BASE) if kind == "frr" else ("fp", k, w - FPR_BASE)
            )
            cand.dst_rr = k
        elif cls == _CC:
            new_writes.add(crr_loc(k))
            copy_reads.add(crr_loc(k))
            copy_writes.add(w)
            actions.append(("crr", k, w - CRR_BASE) if kind == "crr" else ("cc", k))
            cand.cc_rr = k
        else:  # memory word or an existing store buffer
            new_writes.add(mrr_loc(k))
            copy_reads.add(mrr_loc(k))
            copy_writes.add(w)
            actions.append(("mrr", k, w - MRR_BASE) if kind == "mrr" else ("mem", k))
            cand.mem_rr = k
            if kind == "mem":
                mem_effect_copy = True

    cand.writes = frozenset(new_writes)

    copy = make_copy_op(actions, cand.fu)
    copy.reads = frozenset(copy_reads)
    copy.writes = frozenset(copy_writes)
    copy.addr = cand.addr
    copy.rename_updates = rename_updates
    if mem_effect_copy:
        # The actual memory write now happens at the COPY (the renamed
        # store only fills a buffer); aliasing bookkeeping moves with it.
        copy.is_store_effect = True
        copy.mem_addr = cand.mem_addr
        copy.mem_size = cand.mem_size
        copy.order = cand.order
        cand.is_store_effect = False
    return copy
