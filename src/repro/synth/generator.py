"""Deterministic minicc generation from a :class:`SynthSpec`.

Every generated program is **terminating** and **memory-safe** by
construction:

* all ``for`` loops are counted with literal bounds; ``while`` loops
  carry a compound exit condition whose first conjunct is a dedicated
  counter decremented unconditionally by the loop body; the recursive
  helper strictly decreases a non-negative argument that is masked at
  every call site;
* every array index is masked with ``& (2**mem_pow2 - 1)`` against
  power-of-two arrays, every divisor is ``(x & k) + 1 > 0``, and the
  pointer-chase permutation is a precomputed table whose entries are in
  range by construction (and masked again on use, so the invariant does
  not even depend on the table);
* float accumulation uses contraction coefficients (< 1), so the value
  stays bounded and its final ``(int)`` cast is exact.

The output self-checks: a running checksum folds in every scalar and
both data arrays, is printed with ``print_int`` and returned as the exit
code, so the reference machine validates every configuration's output
byte for byte -- the same protocol as the fixed Table 2 workloads.

Generation is a pure function of ``(spec, scale)``: the PRNG is seeded
from the spec's content hash, and ``scale`` only multiplies the outer
pass count (like every registry workload's ``source(scale)``).
"""

from __future__ import annotations

import random
from typing import List

from ..workloads.common import XORSHIFT, scaled
from .spec import SynthSpec

#: scalar work variables the statement generator assigns to/reads from
_VARS = ["a", "b", "c", "d", "e"]

_BIN_OPS = ["+", "-", "&", "|", "^", "<<", ">>"]
_CMP_OPS = ["<", "<=", "==", "!=", ">", ">="]


class _Gen:
    def __init__(self, spec: SynthSpec, scale: float):
        spec.validate()
        self.spec = spec
        # the hash covers every dial, so distinct specs with equal seeds
        # still draw distinct programs
        self.rng = random.Random("%s#%d" % (spec.spec_hash(), spec.seed))
        self.n = 1 << spec.mem_pow2
        self.mask = self.n - 1
        self.passes = scaled(spec.passes, scale, lo=1)
        # recursion argument mask: the largest (2**k - 1) <= recursion,
        # so one & instruction bounds the depth within the dial
        self.rec_mask = (1 << spec.recursion.bit_length()) - 1
        if self.rec_mask > spec.recursion:
            self.rec_mask >>= 1
        self.loop_level = 0  # current loop nesting (names i0, i1, ...)
        self.while_count = 0  # distinct while counters (names w0, w1, ...)

    # ------------------------------------------------------------- expressions
    def leaf(self) -> str:
        r = self.rng
        kind = r.randrange(8)
        if kind < 3:
            return r.choice(_VARS)
        if kind == 3:
            return str(r.choice([1, 2, 3, 7, 25, 100, 255]))
        if kind == 4 and self.loop_level:
            return "i%d" % r.randrange(self.loop_level)
        if kind == 5 and self.spec.access in ("chase", "mixed"):
            return "p"
        if kind == 6 and self.spec.signed_bytes:
            return "load_s8(&cdata[(%s) & %d])" % (r.choice(_VARS), self.mask)
        return "data[(%s) & %d]" % (r.choice(_VARS), self.mask)

    def expr(self, depth: int) -> str:
        r = self.rng
        if depth <= 0 or r.randrange(3) == 0:
            return self.leaf()
        op = r.choice(_BIN_OPS)
        left = self.expr(depth - 1)
        right = self.expr(depth - 1)
        if op in ("<<", ">>"):
            # shift amounts masked to 0..7: defined, and >> (sra) keeps
            # sign-extension behaviour on negative intermediates honest
            return "((%s) %s ((%s) & 7))" % (left, op, right)
        return "((%s) %s (%s))" % (left, op, right)

    def cond(self) -> str:
        return "(%s) %s (%s)" % (
            self.expr(1),
            self.rng.choice(_CMP_OPS),
            self.expr(1),
        )

    # -------------------------------------------------------------- statements
    def stmt(self, depth: int) -> List[str]:
        """One statement as indented source lines."""
        r = self.rng
        spec = self.spec
        # weighted statement menu; dials add/remove entries
        menu = ["assign", "assign", "store"]
        menu.append("check")
        if spec.branchiness > 0 and r.random() < spec.branchiness:
            menu = ["if"] * 4 + menu
        if depth > 0 and self.loop_level < spec.loop_depth:
            menu.append("for")
            if spec.while_loops:
                menu.append("while")
        if spec.call_depth:
            menu.append("call")
        if spec.recursion:
            menu.append("rec")
        if spec.signed_bytes:
            menu.append("sload")
            menu.append("cstore")
        if spec.access in ("chase", "mixed"):
            menu.append("chase")
        if spec.access in ("strided", "mixed"):
            menu.append("stride")
        if spec.arith in ("mul", "mixed"):
            menu.append("muldiv")
        if spec.arith in ("float", "mixed"):
            menu.append("float")
        kind = r.choice(menu)
        if kind == "assign":
            return [
                "%s = (%s) & 0xffff;" % (r.choice(_VARS), self.expr(depth + 1))
            ]
        if kind == "store":
            return [
                "data[(%s) & %d] = (%s) & 0xffff;"
                % (self.expr(1), self.mask, self.expr(depth + 1))
            ]
        if kind == "check":
            return ["check = (check + %s) & 0xffffff;" % r.choice(_VARS)]
        if kind == "if":
            then = self.block(depth - 1)
            if r.random() < 0.5:
                els = self.block(depth - 1)
                return (
                    ["if (%s) {" % self.cond()]
                    + then
                    + ["} else {"]
                    + els
                    + ["}"]
                )
            return ["if (%s) {" % self.cond()] + then + ["}"]
        if kind == "for":
            var = "i%d" % self.loop_level
            self.loop_level += 1
            body = self.block(depth - 1)
            self.loop_level -= 1
            trip = r.randint(1, spec.trip)
            return (
                ["for (%s = 0; %s < %d; %s++) {" % (var, var, trip, var)]
                + body
                + ["}"]
            )
        if kind == "while":
            # compound exit: the counter conjunct guarantees termination,
            # the data-dependent conjunct exercises multi-branch exits
            w = "w%d" % self.while_count
            self.while_count += 1
            body = self.block(depth - 1)
            trip = r.randint(1, spec.trip)
            if r.random() < 0.5:
                cond = "%s > 0 && (%s)" % (w, self.cond())
            else:
                cond = "%s > 0 && ((%s) || %s > 1)" % (w, self.cond(), w)
            return (
                ["%s = %d;" % (w, trip), "while (%s) {" % cond]
                + body
                + ["%s = %s - 1;" % (w, w), "}"]
            )
        if kind == "call":
            return [
                "%s = h1((%s) & 255, (%s) & 255);"
                % (r.choice(_VARS), self.expr(1), self.expr(1))
            ]
        if kind == "rec":
            return [
                "%s = %s + rec((%s) & %d);"
                % (r.choice(_VARS), r.choice(_VARS), self.expr(1), self.rec_mask)
            ]
        if kind == "sload":
            return [
                "%s = load_s8(&cdata[(%s) & %d]) & 0xffff;"
                % (r.choice(_VARS), self.expr(1), self.mask)
            ]
        if kind == "cstore":
            return [
                "cdata[(%s) & %d] = (%s) & 255;"
                % (self.expr(1), self.mask, self.expr(1))
            ]
        if kind == "chase":
            return [
                "p = perm[p & %d];" % self.mask,
                "%s = (%s + data[p & %d]) & 0xffff;"
                % (r.choice(_VARS), r.choice(_VARS), self.mask),
            ]
        if kind == "stride":
            return [
                "s = (s + %d) & %d;" % (spec.stride, self.mask),
                "%s = (%s + data[s]) & 0xffff;"
                % (r.choice(_VARS), r.choice(_VARS)),
            ]
        if kind == "muldiv":
            which = r.randrange(3)
            if which == 0:
                return [
                    "%s = ((%s) * ((%s) & 15)) & 0xffff;"
                    % (r.choice(_VARS), self.expr(1), self.expr(1))
                ]
            op = "/" if which == 1 else "%"
            return [
                "%s = ((%s) & 0xffff) %s (((%s) & 7) + 1);"
                % (r.choice(_VARS), self.expr(1), op, self.expr(1))
            ]
        if kind == "float":
            return [
                "facc = facc * 0.5 + (float)((%s) & 255);" % self.expr(1)
            ]
        raise AssertionError(kind)

    def block(self, depth: int) -> List[str]:
        n = self.rng.randint(1, 2)
        out: List[str] = []
        for _ in range(n):
            out.extend("  " + line for line in self.stmt(depth))
        return out

    # ----------------------------------------------------------------- program
    def helpers(self) -> str:
        spec = self.spec
        out = []
        if spec.recursion:
            out.append(
                "int rec(int n) {\n"
                "  if (n <= 0) return 1;\n"
                "  return rec(n - 1) + ((n ^ %d) & 255);\n"
                "}\n" % self.rng.randrange(256)
            )
        # call chain h<depth> ... h1, leaf first so calls resolve
        for level in range(spec.call_depth, 0, -1):
            body = "int t = ((x ^ y) + (x & %d)) & 0xffff;" % (
                self.rng.choice([15, 31, 63])
            )
            if level < spec.call_depth:
                call = "  t = (t + h%d(y & 255, t & 255)) & 0xffff;\n" % (
                    level + 1
                )
            else:
                call = ""
            out.append(
                "int h%d(int x, int y) {\n  %s\n%s  return t;\n}\n"
                % (level, body, call)
            )
        return "\n".join(out)

    def perm_table(self) -> str:
        # a real random permutation (one cycle not guaranteed, but every
        # entry in range): computed here so the program pays no setup
        vals = list(range(self.n))
        self.rng.shuffle(vals)
        return "int perm[%d] = {%s};" % (
            self.n,
            ", ".join(str(v) for v in vals),
        )

    def source(self) -> str:
        spec = self.spec
        body: List[str] = []
        for _ in range(spec.stmts):
            body.extend("    " + line for line in self.stmt(spec.depth))
        decls = ["int %s;" % ("i%d" % k) for k in range(spec.loop_depth + 1)]
        decls += ["int w%d;" % k for k in range(self.while_count)]
        globals_ = [
            XORSHIFT,
            "int data[%d];" % self.n,
            "char cdata[%d];" % self.n,
        ]
        if spec.access in ("chase", "mixed"):
            globals_.append(self.perm_table())
        if spec.arith in ("float", "mixed"):
            globals_.append("float facc = 0.0;")
        globals_.append("int check = 0;")
        epilogue = [
            "  for (i0 = 0; i0 < %d; i0++) check = (check + data[i0]) & 0xffffff;"
            % self.n,
            "  for (i0 = 0; i0 < %d; i0++) check = (check + cdata[i0]) & 0xffffff;"
            % self.n,
            "  check = (check + a + b + c + d + e + p + s) & 0xffffff;",
        ]
        if spec.arith in ("float", "mixed"):
            epilogue.append("  check = (check + (int)facc) & 0xffffff;")
        return (
            "\n".join(globals_)
            + "\n\n"
            + self.helpers()
            + "\nint init() {\n"
            + "  int i;\n"
            + "  for (i = 0; i < %d; i++) data[i] = rng() & 0xffff;\n" % self.n
            + "  for (i = 0; i < %d; i++) cdata[i] = rng() & 255;\n" % self.n
            + "  return 0;\n}\n"
            + "\nint main() {\n"
            + "  int a = 5; int b = 9; int c = 12; int d = 3; int e = 7;\n"
            + "  int p = 0; int s = 0; int t;\n"
            + "  " + " ".join(decls) + "\n"
            + "  init();\n"
            + "  for (t = 0; t < %d; t++) {\n" % self.passes
            + "\n".join(body)
            + "\n  }\n"
            + "\n".join(epilogue)
            + "\n  print_int(check);\n"
            + "  return check & 0xff;\n"
            + "}\n"
        )


def generate_source(spec: SynthSpec, scale: float = 1.0) -> str:
    """The minicc source of ``spec`` at ``scale`` (pure, deterministic)."""
    return _Gen(spec, scale).source()
