"""Parametric synthetic workloads and the full-tower differential harness.

The eight Table 2 analogues are a narrow lens on trace-scheduling
behaviour; this package widens it to a *family* of program behaviours
(ROADMAP item 5a).  A :class:`SynthSpec` is a small, hashable bundle of
explicit dials -- branchiness, loop nesting and trip counts, memory
footprint and access pattern, call depth, recursion, arithmetic mix --
and :func:`generate_source` turns it deterministically into minicc
source that always terminates, never touches memory out of bounds, and
self-checks through the usual ``print_int(checksum)`` / ``exit(checksum
& 0xff)`` protocol, so every machine's output is validated byte for
byte exactly like the fixed workloads.

Registered specs become first-class registry workloads under the name
``synth:<spec-hash>`` (:func:`register_spec` / ``repro.workloads.registry``),
so ``run_sweep``, the result cache, the trace store, family batching and
every experiment driver accept them unchanged.

On top of the generator, :mod:`repro.synth.tower` runs one workload
through every speed-layer combination the repo has grown (generic step,
predecode, block-compiled, trace replay, batched families, vectorized
cache kernel, compiled primary-mode scheduling -- crossed with their
``REPRO_NO_*`` escape hatches) in lockstep and demands bit-identical
``Stats``/output/exit everywhere; failures shrink to a minimal spec
stored under ``results/repros/`` as a replayable artifact.
"""

from .generator import generate_source
from .spec import SPEC_VERSION, SynthSpec
from .store import (
    SYNTH_PREFIX,
    is_synth_name,
    known_specs,
    register_spec,
    resolve_spec,
    synth_dir,
)
from .tower import (
    TOWER_STACKS,
    Stack,
    TowerMismatch,
    check_spec,
    corpus_specs,
    default_cells,
    load_repro,
    repro_dir,
    run_tower,
    save_repro,
    shrink_spec,
)

__all__ = [
    "SPEC_VERSION",
    "SynthSpec",
    "generate_source",
    "SYNTH_PREFIX",
    "is_synth_name",
    "known_specs",
    "register_spec",
    "resolve_spec",
    "synth_dir",
    "TOWER_STACKS",
    "Stack",
    "TowerMismatch",
    "check_spec",
    "corpus_specs",
    "default_cells",
    "load_repro",
    "repro_dir",
    "run_tower",
    "save_repro",
    "shrink_spec",
]
