"""The dial set of one synthetic workload, hashable by content.

A :class:`SynthSpec` is deliberately *small*: every field is a coarse,
explicitly-validated dial, so hypothesis shrinking (tests) and the
greedy CLI shrinker (:func:`repro.synth.tower.shrink_spec`) both walk a
short, meaningful lattice instead of an unbounded program space.  The
spec -- not the generated source -- is the unit of storage, hashing and
reproduction: ``generate_source(spec, scale)`` is a pure function of the
two, and the generator's own code is covered by the repo-wide source
fingerprint (``resultcache.code_version``), so cached sweep results can
never survive a generator change.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace
from typing import Any, Dict

from ..core.errors import SimError

#: bumped whenever the spec schema or generator output changes shape
#: incompatibly; part of the content hash so old names never collide.
SPEC_VERSION = 1

ACCESS_PATTERNS = ("strided", "chase", "mixed")
ARITH_MIXES = ("alu", "mul", "float", "mixed")


@dataclass(frozen=True)
class SynthSpec:
    """Dials of one generated workload (all ranges inclusive).

    Termination and memory safety hold for *every* valid spec -- see
    DESIGN.md section 16 for the argument -- so any spec drawn from
    these ranges is a legal sweep workload.
    """

    #: PRNG seed: same seed + same dials => byte-identical source
    seed: int = 0
    #: top-level statement budget inside the repeated body (1..16)
    stmts: int = 4
    #: maximum statement nesting depth for if/loop bodies (0..3)
    depth: int = 1
    #: probability weight of branching statements (0.0..1.0)
    branchiness: float = 0.3
    #: maximum loop nesting depth (0..3; 0 = straight-line body)
    loop_depth: int = 1
    #: base trip count of generated counted loops (1..16)
    trip: int = 4
    #: also emit ``while`` loops with compound exit conditions
    while_loops: bool = False
    #: data footprint: arrays hold ``2**mem_pow2`` elements (4..12)
    mem_pow2: int = 6
    #: array access pattern: strided walks, pointer chasing, or both
    access: str = "strided"
    #: stride of the strided walks (1..8)
    stride: int = 1
    #: helper-function call chain length (0..4; 0 = leaf main)
    call_depth: int = 0
    #: maximum recursion depth (0 = no recursive function; 1..15)
    recursion: int = 0
    #: arithmetic mix: plain ALU, software/hw mul-div, float, or all
    arith: str = "alu"
    #: emit signed byte loads (``load_s8`` -> ``ldsb``) from char data
    signed_bytes: bool = False
    #: outer repetitions of the generated body (1..8; scaled by sweep
    #: ``scale`` like every registry workload)
    passes: int = 2

    # ------------------------------------------------------------ validation
    def validate(self) -> "SynthSpec":
        """Self (for chaining); raises :class:`SimError` on a bad dial."""
        checks = [
            ("seed", 0 <= self.seed <= 2**63, "0..2**63"),
            ("stmts", 1 <= self.stmts <= 16, "1..16"),
            ("depth", 0 <= self.depth <= 3, "0..3"),
            (
                "branchiness",
                0.0 <= self.branchiness <= 1.0,
                "0.0..1.0",
            ),
            ("loop_depth", 0 <= self.loop_depth <= 3, "0..3"),
            ("trip", 1 <= self.trip <= 16, "1..16"),
            ("mem_pow2", 4 <= self.mem_pow2 <= 12, "4..12"),
            ("access", self.access in ACCESS_PATTERNS, ACCESS_PATTERNS),
            ("stride", 1 <= self.stride <= 8, "1..8"),
            ("call_depth", 0 <= self.call_depth <= 4, "0..4"),
            ("recursion", 0 <= self.recursion <= 15, "0..15"),
            ("arith", self.arith in ARITH_MIXES, ARITH_MIXES),
            ("passes", 1 <= self.passes <= 8, "1..8"),
        ]
        for name, ok, expect in checks:
            if not ok:
                raise SimError(
                    "SynthSpec.%s=%r outside %s"
                    % (name, getattr(self, name), expect)
                )
        for name, want in (("branchiness", float),):
            if not isinstance(getattr(self, name), (int, float)):
                raise SimError("SynthSpec.%s must be numeric" % name)
        for name in ("while_loops", "signed_bytes"):
            if not isinstance(getattr(self, name), bool):
                raise SimError("SynthSpec.%s must be a bool" % name)
        return self

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        d = asdict(self)
        d["version"] = SPEC_VERSION
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SynthSpec":
        kw = dict(d)
        version = kw.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise SimError(
                "SynthSpec version %r unsupported (have %d)"
                % (version, SPEC_VERSION)
            )
        known = {f.name for f in fields(cls)}
        unknown = set(kw) - known
        if unknown:
            raise SimError("unknown SynthSpec fields: %s" % sorted(unknown))
        return cls(**kw).validate()

    def spec_hash(self) -> str:
        """Stable content hash (hex, 12 chars) over the canonical dict."""
        blob = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:12]

    @property
    def name(self) -> str:
        """The registry workload name of this spec."""
        return "synth:%s" % self.spec_hash()

    def with_(self, **kw) -> "SynthSpec":
        """A validated copy with the given dials replaced."""
        return replace(self, **kw).validate()

    # ------------------------------------------------------------ description
    def describe(self) -> str:
        """One line of human-readable dial values."""
        extras = []
        if self.while_loops:
            extras.append("while")
        if self.signed_bytes:
            extras.append("ldsb")
        if self.call_depth:
            extras.append("calls=%d" % self.call_depth)
        if self.recursion:
            extras.append("rec=%d" % self.recursion)
        return (
            "%s seed=%d stmts=%d depth=%d br=%.2f loops=%dx%d "
            "mem=2^%d/%s arith=%s passes=%d%s"
            % (
                self.name,
                self.seed,
                self.stmts,
                self.depth,
                self.branchiness,
                self.loop_depth,
                self.trip,
                self.mem_pow2,
                self.access,
                self.arith,
                self.passes,
                (" [" + ",".join(extras) + "]") if extras else "",
            )
        )
