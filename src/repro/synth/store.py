"""Spec persistence: ``synth:<hash>`` names resolvable in any process.

A registered spec is written as one small JSON file under
``results/synth/`` (override with ``$REPRO_SYNTH_DIR``), named by its
content hash.  Resolution order is per-process memo, then disk -- the
same shape as the trace store -- so a parallel sweep's worker processes
resolve ``synth:`` workload names without any registration handshake:
the parent registers (writes) once, the workers read.

Files are plain JSON (never pickled) and verified on load: the stored
dials must hash back to the file's own name, so a corrupted or
hand-edited file can never silently stand in for a different workload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from ..core.errors import SimError
from .spec import SynthSpec

SYNTH_PREFIX = "synth:"

#: default spec directory, relative to the working directory
DEFAULT_SYNTH_DIR = os.path.join("results", "synth")

_memo: Dict[str, SynthSpec] = {}


def synth_dir() -> str:
    return os.environ.get("REPRO_SYNTH_DIR", DEFAULT_SYNTH_DIR)


def is_synth_name(name: str) -> bool:
    """True for ``synth:<hash>`` registry names."""
    return name.startswith(SYNTH_PREFIX)


def _spec_path(hash_: str) -> Path:
    return Path(synth_dir()) / ("%s.json" % hash_)


def register_spec(spec: SynthSpec, persist: bool = True) -> str:
    """Make ``spec`` resolvable as a registry workload; returns its name.

    Registration is idempotent (the name is the content hash).  With
    ``persist=True`` (default) the spec is also written to the store so
    other processes -- sweep workers, a later CLI invocation -- resolve
    the same name.
    """
    spec = spec.validate()
    hash_ = spec.spec_hash()
    _memo[hash_] = spec
    if persist:
        path = _spec_path(hash_)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            blob = json.dumps(spec.to_dict(), sort_keys=True, indent=1)
            tmp = path.with_suffix(".tmp.%d" % os.getpid())
            tmp.write_text(blob + "\n")
            os.replace(tmp, path)
    return SYNTH_PREFIX + hash_


def resolve_spec(name: str) -> SynthSpec:
    """The spec behind a ``synth:<hash>`` name (memo, then disk)."""
    hash_ = name[len(SYNTH_PREFIX):] if is_synth_name(name) else name
    spec = _memo.get(hash_)
    if spec is not None:
        return spec
    path = _spec_path(hash_)
    try:
        raw = json.loads(path.read_text())
    except FileNotFoundError:
        raise SimError(
            "unknown synthetic workload %r (no %s; register it with "
            "`dtsvliw synth new` or repro.synth.register_spec)"
            % (name, path)
        ) from None
    except (OSError, ValueError) as exc:
        raise SimError("unreadable synth spec %s: %s" % (path, exc)) from exc
    spec = SynthSpec.from_dict(raw)
    if spec.spec_hash() != hash_:
        raise SimError(
            "synth spec %s does not hash to its name (%s): corrupted or "
            "edited store file" % (path, spec.spec_hash())
        )
    _memo[hash_] = spec
    return spec


def known_specs() -> List[SynthSpec]:
    """Every spec in the store (sorted by hash), plus in-memory ones."""
    specs: Dict[str, SynthSpec] = dict(_memo)
    root = Path(synth_dir())
    if root.is_dir():
        for path in root.glob("*.json"):
            hash_ = path.stem
            if hash_ in specs:
                continue
            try:
                specs[hash_] = resolve_spec(hash_)
            except SimError:
                continue  # corrupted files simply do not list
    return [specs[h] for h in sorted(specs)]


def _reset_memo_for_tests() -> None:
    _memo.clear()
