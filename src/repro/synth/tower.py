"""Full-tower differential harness: every speed layer, in lockstep.

The repo's performance tower grew one PR at a time: generic ``step()``
oracle, predecoded closures, block-compiled superblocks, compiled
primary-mode scheduling, trace capture/replay, batched family evaluation
and the vectorized multi-config cache kernel.  Each layer claims bit
identity with the one below it, and each claim is guarded by its own
differential test -- but those tests pin one layer pair at a time over
the eight fixed workloads.  This module closes the loop for *arbitrary*
generated programs: :func:`run_tower` runs one :class:`SynthSpec`
through every layer combination (the ``TOWER_STACKS``: engine hatches
crossed with the batch/vector switches), with the slow generic
interpreter as the oracle, and demands bit-identical ``Stats``, cycle
counts and reference instruction counts everywhere.  Output and exit
code are checked implicitly: ``run_program`` validates both against the
reference machine inside every cell and raises on divergence.

A failing spec is shrunk (:func:`shrink_spec`: greedy single-dial
descent, deterministic) and stored under ``results/repros/``
(``$REPRO_REPRO_DIR``) as a small JSON artifact that
``dtsvliw synth replay`` re-runs verbatim -- the fuzzing counterpart of
the result cache's provenance trail.
"""

from __future__ import annotations

import contextlib
import json
import os
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.config import MachineConfig
from ..core.errors import SimError
from ..harness.sweep import RunSpec, run_sweep
from .spec import ACCESS_PATTERNS, ARITH_MIXES, SynthSpec
from .store import register_spec

#: default minimal-repro directory, relative to the working directory
DEFAULT_REPRO_DIR = os.path.join("results", "repros")

#: every escape hatch the tower pins per stack; anything ambient in the
#: caller's environment would otherwise leak into (and equalize) stacks
_HATCHES = (
    "REPRO_GENERIC_STEP",
    "REPRO_NO_BLOCK_COMPILE",
    "REPRO_NO_PRIMARY_COMPILE",
    "REPRO_EXECUTION_DRIVEN",
    "REPRO_NO_BATCH",
    "REPRO_NO_VECTOR",
    "REPRO_NO_SCHED_MEMO",
    "REPRO_NO_MEMO_STORE",
)


@dataclass(frozen=True)
class Stack:
    """One layer combination: env hatches plus run_sweep switches."""

    name: str
    env: Dict[str, str] = field(default_factory=dict)
    batch: bool = False
    vector: bool = False


#: the layer combinations, cheapest-engine first; ``generic`` is the
#: oracle every other stack must match bit for bit
TOWER_STACKS: Tuple[Stack, ...] = (
    # pure interpreter: no predecode closures, no trace replay
    Stack("generic", {"REPRO_GENERIC_STEP": "1", "REPRO_EXECUTION_DRIVEN": "1"}),
    # predecoded closures, block compilation off
    Stack("predecoded", {"REPRO_NO_BLOCK_COMPILE": "1", "REPRO_EXECUTION_DRIVEN": "1"}),
    # block-compiled superblocks, compiled primary-mode scheduling off
    Stack("block", {"REPRO_NO_PRIMARY_COMPILE": "1", "REPRO_EXECUTION_DRIVEN": "1"}),
    # block compilation plus compiled primary-mode scheduling
    Stack("block+pm", {"REPRO_EXECUTION_DRIVEN": "1"}),
    # trace capture + replay for eligible cells (live fallback otherwise)
    Stack("replay", {}),
    # batched family evaluation, scheduling memo off, scalar cache walks
    Stack("batched", {"REPRO_NO_SCHED_MEMO": "1"}, batch=True),
    # batched with the family-shared scheduling memo
    Stack("batched+memo", {}, batch=True),
    # batched families priming through the vectorized multi-config kernel
    Stack("vectorized", {}, batch=True, vector=True),
)


class TowerMismatch(SimError):
    """Two layer combinations disagreed on a generated workload."""

    def __init__(self, report: "TowerReport"):
        self.report = report
        super().__init__(report.summary())


@dataclass
class TowerReport:
    """Everything one :func:`run_tower` call compared, plus the verdict."""

    spec: SynthSpec
    cells: List[str]
    stacks: List[str]
    mismatches: List[str]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        if self.ok:
            return "%s: %d stacks x %d cells bit-identical" % (
                self.spec.name,
                len(self.stacks),
                len(self.cells),
            )
        return "%s: %d divergence(s):\n  %s" % (
            self.spec.name,
            len(self.mismatches),
            "\n  ".join(self.mismatches),
        )


@contextlib.contextmanager
def _stack_env(overrides: Dict[str, str]) -> Iterator[None]:
    """Pin every tower hatch: ``overrides`` set, the rest cleared."""
    saved = {v: os.environ.get(v) for v in _HATCHES}
    try:
        for v in _HATCHES:
            os.environ.pop(v, None)
        os.environ.update(overrides)
        yield
    finally:
        for v, old in saved.items():
            if old is None:
                os.environ.pop(v, None)
            else:
                os.environ[v] = old


def default_cells() -> List[Tuple[str, MachineConfig]]:
    """The tower's machine-config axis.

    One ideal-memory geometry (replay-eligible: exercises capture,
    replay, batching and the memo) and the section 4.4 feasible machine
    (real dcache: replay-*ineligible*, so batched stacks take the live
    fallback and the vectorized kernel sees real cache geometry).
    """
    return [
        ("4x4", MachineConfig.paper_fixed(4, 4, test_mode=False)),
        ("feasible", MachineConfig.feasible(test_mode=False)),
    ]


def _diff(base, got) -> str:
    """Short field-level diff of two RunResults."""
    parts = []
    if got.cycles != base.cycles:
        parts.append("cycles %d != %d" % (got.cycles, base.cycles))
    if got.ref_instructions != base.ref_instructions:
        parts.append(
            "ref_instructions %d != %d"
            % (got.ref_instructions, base.ref_instructions)
        )
    for f in vars(base.stats):
        b, g = getattr(base.stats, f), getattr(got.stats, f)
        if f != "wall_time_s" and b != g:
            parts.append("stats.%s %r != %r" % (f, g, b))
    return "; ".join(parts) or "results differ"


def run_tower(
    spec: SynthSpec,
    scale: Optional[float] = 1.0,
    machines: Sequence[str] = ("dtsvliw", "dif", "scalar"),
    configs: Optional[Sequence[Tuple[str, MachineConfig]]] = None,
    stacks: Optional[Sequence[Stack]] = None,
    max_cycles: Optional[int] = None,
) -> TowerReport:
    """Run ``spec`` through every stack; compare all results to generic.

    Every cell is ``use_cache=False`` (the result cache would collapse
    the stacks into one run) and ``jobs=1`` (in-process, so the trace
    store, block cache and scheduling memo warm across stacks exactly
    like a long-lived session).  Stats equality already excludes wall
    time; output and exit code are validated against the reference
    machine inside ``run_program`` itself, so a content divergence
    surfaces as a raised ``SimError`` rather than a silent pass.
    """
    register_spec(spec)
    configs = default_cells() if configs is None else list(configs)
    stacks = TOWER_STACKS if stacks is None else list(stacks)
    specs = [
        RunSpec(
            spec.name,
            cfg,
            machine=m,
            scale=scale,
            max_cycles=max_cycles,
            meta={"cell": "%s/%s" % (label, m)},
        )
        for label, cfg in configs
        for m in machines
    ]
    cells = [s.meta["cell"] for s in specs]
    mismatches: List[str] = []
    baseline = None
    for stack in stacks:
        with _stack_env(stack.env):
            try:
                run = run_sweep(
                    specs,
                    jobs=1,
                    use_cache=False,
                    batch=stack.batch,
                    vector=stack.vector,
                )
            except SimError as exc:
                mismatches.append("[%s] raised: %s" % (stack.name, exc))
                continue
        if baseline is None:
            baseline = run.results
            continue
        for cell, base, got in zip(cells, baseline, run.results):
            if (
                got.stats != base.stats
                or got.cycles != base.cycles
                or got.ref_instructions != base.ref_instructions
            ):
                mismatches.append(
                    "[%s] %s: %s" % (stack.name, cell, _diff(base, got))
                )
    return TowerReport(
        spec=spec,
        cells=cells,
        stacks=[s.name for s in stacks],
        mismatches=mismatches,
    )


def check_spec(spec: SynthSpec, **kw) -> TowerReport:
    """:func:`run_tower`, raising :class:`TowerMismatch` on divergence."""
    report = run_tower(spec, **kw)
    if not report.ok:
        raise TowerMismatch(report)
    return report


# ------------------------------------------------------------------ shrinking
def _shrink_candidates(spec: SynthSpec) -> Iterator[SynthSpec]:
    """Single-dial reductions of ``spec``, most drastic first."""
    moves: List[Tuple[str, object]] = [
        ("passes", 1),
        ("stmts", max(1, spec.stmts // 2)),
        ("stmts", spec.stmts - 1),
        ("loop_depth", 0),
        ("loop_depth", spec.loop_depth - 1),
        ("depth", 0),
        ("depth", spec.depth - 1),
        ("trip", 1),
        ("trip", max(1, spec.trip // 2)),
        ("while_loops", False),
        ("branchiness", 0.0),
        ("mem_pow2", 4),
        ("access", "strided"),
        ("stride", 1),
        ("call_depth", 0),
        ("recursion", 0),
        ("arith", "alu"),
        ("signed_bytes", False),
        ("seed", 0),
    ]
    for name, value in moves:
        if getattr(spec, name) == value:
            continue
        try:
            yield spec.with_(**{name: value})
        except SimError:
            continue  # reduction fell outside the dial range


def shrink_spec(
    spec: SynthSpec,
    still_fails: Callable[[SynthSpec], bool],
    log: Optional[Callable[[str], None]] = None,
) -> SynthSpec:
    """Greedy deterministic shrink: smallest spec where ``still_fails``.

    Repeatedly tries single-dial reductions (first-accepted-wins, then
    restart), so the result is a local minimum: no single dial can be
    reduced further without losing the failure.  ``still_fails`` should
    be pure -- typically ``lambda s: not run_tower(s).ok``.
    """
    spec = spec.validate()
    progress = True
    while progress:
        progress = False
        for cand in _shrink_candidates(spec):
            if still_fails(cand):
                if log:
                    log("shrunk to %s" % cand.describe())
                spec = cand
                progress = True
                break
    return spec


# ------------------------------------------------------------ repro artifacts
def repro_dir() -> str:
    return os.environ.get("REPRO_REPRO_DIR", DEFAULT_REPRO_DIR)


def save_repro(
    spec: SynthSpec, reason: str, extra: Optional[Dict] = None
) -> str:
    """Store a failing spec as a replayable JSON artifact; returns path."""
    root = Path(repro_dir())
    root.mkdir(parents=True, exist_ok=True)
    path = root / ("%s.json" % spec.spec_hash())
    payload = {
        "version": 1,
        "name": spec.name,
        "spec": spec.to_dict(),
        "reason": reason,
        "replay": "PYTHONPATH=src python -m repro.harness.cli synth replay %s"
        % path,
    }
    if extra:
        payload.update(extra)
    tmp = path.with_suffix(".tmp.%d" % os.getpid())
    tmp.write_text(json.dumps(payload, sort_keys=True, indent=1) + "\n")
    os.replace(tmp, path)
    return str(path)


def load_repro(path: str) -> Tuple[SynthSpec, Dict]:
    """-> (spec, full payload) of a stored repro artifact."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, ValueError) as exc:
        raise SimError("unreadable repro artifact %s: %s" % (path, exc))
    try:
        spec = SynthSpec.from_dict(payload["spec"])
    except (KeyError, TypeError) as exc:
        raise SimError("malformed repro artifact %s: %s" % (path, exc))
    return spec, payload


# ------------------------------------------------------------------- corpora
#: hand-picked dial-grid corners: each preset stresses one dial family
_PRESETS = (
    dict(),
    dict(branchiness=0.9, depth=2, stmts=6),
    dict(loop_depth=3, trip=6, stmts=6),
    dict(while_loops=True, branchiness=0.5, depth=2),
    dict(access="chase", mem_pow2=7),
    dict(access="mixed", stride=5, mem_pow2=8),
    dict(call_depth=3, stmts=6),
    dict(recursion=7, branchiness=0.4),
    dict(arith="mul", stmts=6),
    dict(arith="float", stmts=6),
    dict(arith="mixed", signed_bytes=True, depth=2),
    dict(signed_bytes=True, while_loops=True, branchiness=0.6),
)


def corpus_specs(count: int = 50, seed: int = 0) -> List[SynthSpec]:
    """A deterministic corpus spanning the dial grid.

    The fixed presets cover each dial family's far corner; the remainder
    are random draws (seeded, so the corpus is stable across runs)
    biased toward small bodies to keep a full-tower pass affordable.
    """
    rng = random.Random("corpus#%d" % seed)
    specs = [SynthSpec(**kw).validate() for kw in _PRESETS[:count]]
    while len(specs) < count:
        specs.append(
            SynthSpec(
                seed=rng.randrange(2**32),
                stmts=rng.randint(1, 8),
                depth=rng.randint(0, 2),
                branchiness=round(rng.random(), 2),
                loop_depth=rng.randint(0, 2),
                trip=rng.randint(1, 8),
                while_loops=rng.random() < 0.5,
                mem_pow2=rng.randint(4, 8),
                access=rng.choice(ACCESS_PATTERNS),
                stride=rng.randint(1, 8),
                call_depth=rng.randint(0, 2),
                recursion=rng.choice([0, 0, 3, 7]),
                arith=rng.choice(ARITH_MIXES),
                signed_bytes=rng.random() < 0.5,
                passes=rng.randint(1, 3),
            ).validate()
        )
    return specs
