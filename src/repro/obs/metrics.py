"""Derived metrics over probe event streams.

Two consumers:

* the ``profile`` CLI turns an event stream into histograms (block
  length, LI commit occupancy, block residency), a renaming-pressure
  high-water series and derived rates, rendered with
  :mod:`repro.harness.reporting`;
* ``tests/test_obs_counters.py`` uses :func:`recompute_counters` to
  re-derive every recomputable :class:`~repro.core.stats.Stats` counter
  from events alone and assert exact equality -- the events and the
  counters are charged at the same sites, so any drift between them is a
  bug in one of the two.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .probe import (
    EV_BC_CACHE,
    EV_BC_COMPILE,
    EV_BC_FALLBACK,
    EV_BLOCK_ENTRY,
    EV_BLOCK_FLUSH,
    EV_BLOCK_INVALIDATE,
    EV_CACHE_MISS,
    EV_CACHE_STALL,
    EV_EXCEPTION,
    EV_INSTALL,
    EV_LI_EXEC,
    EV_MC_APPLY,
    EV_MC_BUILD,
    EV_MC_FALLBACK,
    EV_MEMO_STORE_HIT,
    EV_MEMO_STORE_MISS,
    EV_MISPREDICT,
    EV_MODE_SWITCH,
    EV_MOVE,
    EV_PM_COMPILE,
    EV_PM_DISPATCH,
    EV_PM_FALLBACK,
    EV_SCHED,
    EV_SPLIT,
    EV_VCACHE_PROBE,
    EV_WINDOW_SPILL,
    Event,
)


class Histogram:
    """Sparse integer histogram with the usual summary moments."""

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[int, int] = {}

    def add(self, value: int, n: int = 1) -> None:
        self.counts[value] = self.counts.get(value, 0) + n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        t = self.total
        return sum(v * n for v, n in self.counts.items()) / t if t else 0.0

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def bars(self) -> Dict[str, int]:
        """Dense ``{str(value): count}`` mapping for ``format_bars``."""
        if not self.counts:
            return {}
        lo, hi = min(self.counts), max(self.counts)
        return {str(v): self.counts.get(v, 0) for v in range(lo, hi + 1)}

    def to_dict(self) -> Dict[str, int]:
        return {str(v): n for v, n in sorted(self.counts.items())}


def recompute_counters(events: Iterable[Event]) -> Dict[str, int]:
    """Re-derive every :class:`Stats` field that the event stream fully
    determines.  Keys are Stats attribute names; values must match the
    run's Stats exactly (cross-validation contract)."""
    c: Dict[str, int] = {
        "mode_switches": 0,
        "vliw_cache_probes": 0,
        "vliw_cache_hits": 0,
        "blocks_flushed": 0,
        "blocks_flushed_full": 0,
        "blocks_flushed_hit": 0,
        "blocks_flushed_nonsched": 0,
        "long_instructions_saved": 0,
        "slots_filled": 0,
        "slots_total": 0,
        "instructions_scheduled": 0,
        "splits": 0,
        "installs_on_dependence": 0,
        "moves": 0,
        "mispredicts": 0,
        "aliasing_exceptions": 0,
        "other_exceptions": 0,
        "vliw_block_entries": 0,
        "block_invalidations": 0,
        "spill_cycles": 0,
        "icache_stall_cycles": 0,
        "dcache_stall_cycles": 0,
        "max_int_renaming": 0,
        "max_fp_renaming": 0,
        "max_cc_renaming": 0,
        "max_mem_renaming": 0,
    }
    for ev in events:
        kind = ev[0]
        if kind == EV_MODE_SWITCH:
            c["mode_switches"] += 1
        elif kind == EV_VCACHE_PROBE:
            c["vliw_cache_probes"] += 1
            c["vliw_cache_hits"] += ev[2]
        elif kind == EV_BLOCK_FLUSH:
            _, _addr, reason, n_lis, ops, slots, n_int, n_fp, n_cc, n_mem = ev
            c["blocks_flushed"] += 1
            key = "blocks_flushed_%s" % reason
            if key in c:
                c[key] += 1
            c["long_instructions_saved"] += n_lis
            c["slots_filled"] += ops
            c["slots_total"] += slots
            c["max_int_renaming"] = max(c["max_int_renaming"], n_int)
            c["max_fp_renaming"] = max(c["max_fp_renaming"], n_fp)
            c["max_cc_renaming"] = max(c["max_cc_renaming"], n_cc)
            c["max_mem_renaming"] = max(c["max_mem_renaming"], n_mem)
        elif kind == EV_SCHED:
            c["instructions_scheduled"] += 1
        elif kind == EV_SPLIT:
            c["splits"] += 1
        elif kind == EV_INSTALL:
            c["installs_on_dependence"] += 1
        elif kind == EV_MOVE:
            c["moves"] += 1
        elif kind == EV_MISPREDICT:
            c["mispredicts"] += 1
        elif kind == EV_EXCEPTION:
            if ev[1] == 0:
                c["aliasing_exceptions"] += 1
            else:
                c["other_exceptions"] += 1
        elif kind == EV_BLOCK_ENTRY:
            c["vliw_block_entries"] += 1
        elif kind == EV_BLOCK_INVALIDATE:
            c["block_invalidations"] += 1
        elif kind == EV_WINDOW_SPILL:
            c["spill_cycles"] += ev[1]
        elif kind == EV_CACHE_STALL:
            if ev[1] == "icache":
                c["icache_stall_cycles"] += ev[2]
            elif ev[1] == "dcache":
                c["dcache_stall_cycles"] += ev[2]
    return c


def cache_miss_counts(events: Iterable[Event]) -> Dict[str, int]:
    """``{cache_name: misses}`` -- cross-validates ``CacheStats.misses``."""
    out: Dict[str, int] = {}
    for ev in events:
        if ev[0] == EV_CACHE_MISS:
            out[ev[1]] = out.get(ev[1], 0) + 1
    return out


def block_compile_counts(events: Iterable[Event]) -> Dict[str, int]:
    """Block-compilation activity from the ``bc_*`` event stream --
    cross-validates :data:`repro.isa.blockcompile.GLOBAL_STATS` deltas."""
    out = {
        "compiled": 0,
        "cache_hits": 0,
        "cache_misses": 0,
        "fallback_dispatches": 0,
    }
    for ev in events:
        kind = ev[0]
        if kind == EV_BC_COMPILE:
            out["compiled"] += 1
        elif kind == EV_BC_CACHE:
            if ev[1]:
                out["cache_hits"] += 1
            else:
                out["cache_misses"] += 1
        elif kind == EV_BC_FALLBACK:
            out["fallback_dispatches"] += 1
    return out


def mc_counts(events: Iterable[Event]) -> Dict[str, int]:
    """Multi-config timing-kernel activity from the ``mc_*`` event stream
    -- cross-validates :data:`repro.batch.mc_kernel.GLOBAL_STATS` deltas."""
    out = {"builds": 0, "applied": 0, "fallbacks": 0}
    for ev in events:
        kind = ev[0]
        if kind == EV_MC_BUILD:
            out["builds"] += 1
        elif kind == EV_MC_APPLY:
            out["applied"] += 1
        elif kind == EV_MC_FALLBACK:
            out["fallbacks"] += 1
    return out


def pm_counts(events: Iterable[Event]) -> Dict[str, int]:
    """Compiled primary-mode activity from the ``pm_*`` event stream --
    cross-validates the matching :data:`repro.isa.blockcompile.PM_STATS`
    deltas (the disk-cache hit/miss counters have no per-event mirror:
    they are charged once per code-object resolution, like ``bc_cache``,
    but the pm path resolves through its in-process memo first)."""
    out = {"compiled": 0, "dispatches": 0, "fallback_dispatches": 0}
    for ev in events:
        kind = ev[0]
        if kind == EV_PM_COMPILE:
            out["compiled"] += 1
        elif kind == EV_PM_DISPATCH:
            out["dispatches"] += 1
        elif kind == EV_PM_FALLBACK:
            out["fallback_dispatches"] += 1
    return out


def memo_store_counts(events: Iterable[Event]) -> Dict[str, int]:
    """Scheduling-memo store activity from the ``memo_store_*`` event
    stream -- cross-validates :data:`repro.scheduler.memostore.GLOBAL_STATS`
    deltas (``flushes`` has no event: families flush after their cells'
    probes detach)."""
    out = {"store_hits": 0, "store_misses": 0, "records_loaded": 0}
    for ev in events:
        kind = ev[0]
        if kind == EV_MEMO_STORE_HIT:
            out["store_hits"] += 1
            out["records_loaded"] += ev[1]
        elif kind == EV_MEMO_STORE_MISS:
            out["store_misses"] += 1
    return out


def renaming_highwater(events: Iterable[Event]) -> List[Tuple[int, int, int, int, int]]:
    """Running renaming-pressure maxima over time: one
    ``(flush_index, int, fp, cc, mem)`` row per block flush."""
    series: List[Tuple[int, int, int, int, int]] = []
    hi = [0, 0, 0, 0]
    i = 0
    for ev in events:
        if ev[0] != EV_BLOCK_FLUSH:
            continue
        for j, v in enumerate(ev[6:10]):
            if v > hi[j]:
                hi[j] = v
        series.append((i, hi[0], hi[1], hi[2], hi[3]))
        i += 1
    return series


def profile_metrics(events: List[Event]) -> Dict:
    """Everything the ``profile`` report shows, as plain data."""
    block_len = Histogram()  # long instructions per flushed block
    block_ops = Histogram()  # valid ops per flushed block
    li_commit = Histogram()  # committed ops per executed LI
    residency: Dict[int, int] = {}  # entries per distinct block address
    counters = recompute_counters(events)
    for ev in events:
        kind = ev[0]
        if kind == EV_BLOCK_FLUSH:
            block_len.add(ev[3])
            block_ops.add(ev[4])
        elif kind == EV_LI_EXEC:
            li_commit.add(ev[2])
        elif kind == EV_BLOCK_ENTRY:
            residency[ev[1]] = residency.get(ev[1], 0) + 1
    block_residency = Histogram()
    for n in residency.values():
        block_residency.add(n)
    probes = counters["vliw_cache_probes"]
    entries = counters["vliw_block_entries"]
    sched = counters["instructions_scheduled"]
    rates = {
        "vcache_hit_rate": counters["vliw_cache_hits"] / probes if probes else 0.0,
        "mispredicts_per_entry": counters["mispredicts"] / entries if entries else 0.0,
        "splits_per_sched": counters["splits"] / sched if sched else 0.0,
        "slot_occupancy": (
            counters["slots_filled"] / counters["slots_total"]
            if counters["slots_total"]
            else 0.0
        ),
        "mean_block_lis": block_len.mean,
        "mean_li_commit": li_commit.mean,
        "mean_block_entries": block_residency.mean,
    }
    return {
        "counters": counters,
        "rates": rates,
        "block_len": block_len,
        "block_ops": block_ops,
        "li_commit": li_commit,
        "block_residency": block_residency,
        "renaming_highwater": renaming_highwater(events),
        "cache_misses": cache_miss_counts(events),
        "block_compile": block_compile_counts(events),
        "mc_kernel": mc_counts(events),
    }


def profile_report(name: str, events: List[Event], width: int = 40) -> str:
    """Human-readable per-workload report (tables + bar charts)."""
    from ..harness.reporting import format_bars, format_table

    m = profile_metrics(events)
    counters = m["counters"]
    rates = m["rates"]
    lines = ["== %s: %d events ==" % (name, len(events))]

    rate_rows = {
        "vcache hit rate": {"value": rates["vcache_hit_rate"]},
        "slot occupancy": {"value": rates["slot_occupancy"]},
        "mispredicts / block entry": {"value": rates["mispredicts_per_entry"]},
        "splits / scheduled instr": {"value": rates["splits_per_sched"]},
        "mean block length (LIs)": {"value": rates["mean_block_lis"]},
        "mean LI commit width": {"value": rates["mean_li_commit"]},
        "mean entries / cached block": {"value": rates["mean_block_entries"]},
    }
    lines.append(
        format_table(
            rate_rows, ["value"], row_header="rate", precision=3, average=False
        )
    )

    for title, hist in (
        ("block length (long instructions per flushed block)", m["block_len"]),
        ("LI commit width (ops committed per long instruction)", m["li_commit"]),
        ("block residency (VLIW-engine entries per cached block)", m["block_residency"]),
    ):
        bars = hist.bars()
        if bars:
            lines.append("")
            lines.append(title + ":")
            lines.append(format_bars({"n": bars}, width=width, precision=0))

    hw = m["renaming_highwater"]
    if hw:
        last = hw[-1]
        lines.append("")
        lines.append(
            "renaming high-water after %d flushes: int=%d fp=%d cc=%d mem=%d"
            % (last[0] + 1, last[1], last[2], last[3], last[4])
        )
    if m["cache_misses"]:
        lines.append(
            "cache misses: "
            + "  ".join("%s=%d" % kv for kv in sorted(m["cache_misses"].items()))
        )
    bc = m["block_compile"]
    if any(bc.values()):
        lines.append(
            "block compile: compiled=%d cache_hits=%d cache_misses=%d "
            "fallbacks=%d"
            % (
                bc["compiled"],
                bc["cache_hits"],
                bc["cache_misses"],
                bc["fallback_dispatches"],
            )
        )
    mc = m["mc_kernel"]
    if any(mc.values()):
        lines.append(
            "mc kernel: builds=%d applied=%d fallbacks=%d"
            % (mc["builds"], mc["applied"], mc["fallbacks"])
        )
    top = sorted(counters.items(), key=lambda kv: -kv[1])
    lines.append(
        "top counters: "
        + "  ".join("%s=%d" % kv for kv in top[:6] if kv[1])
    )
    return "\n".join(lines)
