"""Observability layer: probes, derived metrics and the profile exporter.

See DESIGN.md section 11.  Quick use::

    from repro.obs import EventProbe
    from repro.harness.runner import run_workload

    probe = EventProbe()
    result = run_workload("compress", probe=probe)
    print(len(probe.events), probe.counts)

or set ``REPRO_PROBE=counters|events`` to attach one to every machine.
"""

from .probe import (  # noqa: F401
    EVENT_SCHEMA,
    CounterProbe,
    Event,
    EventProbe,
    NullProbe,
    Probe,
    probe_from_env,
    resolve_probe,
)
from .export import (  # noqa: F401
    ProfileFormatError,
    decode_profile,
    encode_profile,
    load_profile,
    profile_dir,
    write_csv,
    write_profile,
)
from .metrics import (  # noqa: F401
    Histogram,
    block_compile_counts,
    cache_miss_counts,
    mc_counts,
    memo_store_counts,
    pm_counts,
    profile_metrics,
    profile_report,
    recompute_counters,
    renaming_highwater,
)
