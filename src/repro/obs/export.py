"""Versioned on-disk profile format for probe event streams.

A profile is plain JSONL (version 2)::

    {"format": "repro-profile", "version": 2, "events": N,
     "schema": {...}, "meta": {...}}          <- header line
    ["mode_switch", 0, 4096]                  <- one line per event
    ...
    {"end": true, "events": N, "sha256": "<hex over all prior bytes>"}

Pure JSON end to end -- nothing is ever pickled or eval'd.  The trailing
digest is verified before any event is handed to a caller, so truncation,
bit flips, version skew and foreign files all raise
:class:`ProfileFormatError` instead of yielding silently wrong metrics
(property-tested in ``tests/test_obs_export.py``).

Files live under ``results/profiles/`` (override with
``$REPRO_PROFILE_DIR``) and are written atomically -- parallel sweep
workers race benignly.  A lossy CSV export rides along for spreadsheet
use; only the JSONL form round-trips.
"""

from __future__ import annotations

import json
import os
import tempfile
from hashlib import sha256
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..core.errors import SimError
from .probe import EVENT_SCHEMA, Event

FORMAT = "repro-profile"
#: version 4: compiled primary-mode scheduling and memo-store events
#: (pm_compile/pm_dispatch/pm_fallback, memo_store_hit/memo_store_miss)
#: joined the schema (version 3 added the multi-config timing-kernel
#: events mc_build/mc_apply/mc_fallback, version 2 the block-compilation
#: events bc_compile/bc_cache/bc_fallback)
VERSION = 4

#: default profile location, relative to the working directory
DEFAULT_PROFILE_DIR = os.path.join("results", "profiles")


class ProfileFormatError(SimError):
    """A profile file or byte string is truncated, corrupt or wrong-version."""


def profile_dir() -> str:
    return os.environ.get("REPRO_PROFILE_DIR", DEFAULT_PROFILE_DIR)


def _dumps(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def encode_profile(events: List[Event], meta: Optional[Dict] = None) -> bytes:
    """Serialize an event stream (deterministic for a given input, so
    re-encoding a decoded profile is the identity)."""
    header = {
        "format": FORMAT,
        "version": VERSION,
        "events": len(events),
        "schema": {k: list(v) for k, v in sorted(EVENT_SCHEMA.items())},
        "meta": dict(meta or {}),
    }
    lines = [_dumps(header)]
    for ev in events:
        for arg in ev[1:]:
            if not isinstance(arg, (int, str)) or isinstance(arg, bool):
                raise ProfileFormatError(
                    "non-scalar %r arg in %r event" % (arg, ev[0])
                )
        lines.append(_dumps(list(ev)))
    body = ("\n".join(lines) + "\n").encode("utf-8")
    footer = {
        "end": True,
        "events": len(events),
        "sha256": sha256(body).hexdigest(),
    }
    return body + (_dumps(footer) + "\n").encode("utf-8")


def decode_profile(data: bytes) -> Tuple[Dict, List[Event]]:
    """Parse profile bytes into ``(meta, events)``.

    Raises :class:`ProfileFormatError` on any defect; never executes or
    unpickles the input.
    """
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProfileFormatError("profile is not UTF-8: %s" % exc) from exc
    if not text.endswith("\n"):
        raise ProfileFormatError("profile truncated (no trailing newline)")
    lines = text[:-1].split("\n")
    if len(lines) < 2:
        raise ProfileFormatError("profile truncated (%d lines)" % len(lines))
    footer_line = lines[-1]
    body = text[: len(text) - len(footer_line) - 1].encode("utf-8")
    footer = _load_json_line(footer_line, "footer")
    if not isinstance(footer, dict) or footer.get("end") is not True:
        raise ProfileFormatError("profile truncated (footer missing)")
    if footer.get("sha256") != sha256(body).hexdigest():
        raise ProfileFormatError("profile integrity digest mismatch")
    header = _load_json_line(lines[0], "header")
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise ProfileFormatError("not a %s file" % FORMAT)
    version = header.get("version")
    if version != VERSION:
        raise ProfileFormatError(
            "unsupported profile version %r (expected %d)" % (version, VERSION)
        )
    count = header.get("events")
    event_lines = lines[1:-1]
    if count != len(event_lines) or footer.get("events") != count:
        raise ProfileFormatError(
            "profile event count mismatch (header says %r, found %d)"
            % (count, len(event_lines))
        )
    events: List[Event] = []
    for i, line in enumerate(event_lines):
        row = _load_json_line(line, "event %d" % i)
        if (
            not isinstance(row, list)
            or not row
            or not isinstance(row[0], str)
            or any(
                not isinstance(a, (int, str)) or isinstance(a, bool)
                for a in row[1:]
            )
        ):
            raise ProfileFormatError("malformed event %d: %r" % (i, row))
        events.append(tuple(row))
    meta = header.get("meta")
    return (meta if isinstance(meta, dict) else {}), events


def _load_json_line(line: str, what: str):
    try:
        return json.loads(line)
    except ValueError as exc:
        raise ProfileFormatError("profile %s is not JSON: %s" % (what, exc)) from exc


def write_profile(
    path, events: List[Event], meta: Optional[Dict] = None
) -> Path:
    """Atomically write a profile; creates parent directories."""
    path = Path(path)
    data = encode_profile(events, meta)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent), prefix=".tmp-", suffix=path.suffix or ".jsonl"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise
    return path


def load_profile(path) -> Tuple[Dict, List[Event]]:
    """Read and validate a profile file.

    I/O problems surface as :class:`ProfileFormatError` too -- an explicit
    load has no cache-miss fallback.
    """
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise ProfileFormatError("cannot read profile %s: %s" % (path, exc)) from exc
    return decode_profile(data)


def write_csv(path, events: List[Event]) -> Path:
    """Lossy spreadsheet export: ``kind,field,value`` triples per arg.

    One row per event argument keeps the file rectangular regardless of
    event arity; the JSONL form is the one that round-trips.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    rows = ["seq,kind,field,value"]
    for seq, ev in enumerate(events):
        fields = EVENT_SCHEMA.get(ev[0], ())
        for j, arg in enumerate(ev[1:]):
            name = fields[j] if j < len(fields) else "arg%d" % j
            rows.append("%d,%s,%s,%s" % (seq, ev[0], name, arg))
    fd, tmp = tempfile.mkstemp(dir=str(path.parent), prefix=".tmp-", suffix=".csv")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(("\n".join(rows) + "\n").encode("utf-8"))
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise
    return path
