"""Probe interface: event-level telemetry for every simulation engine.

A *probe* is the single observer object threaded through a machine and its
subcomponents (Primary Processor, Scheduler Unit, VLIW Engine, caches).
Instrumentation sites call ``probe.emit(kind, *args)`` at exactly the
points where the corresponding :class:`~repro.core.stats.Stats` counters
are charged, which is what makes every recomputable counter derivable
from the event stream (``tests/test_obs_counters.py`` asserts equality).

Three depths, selected by ``$REPRO_PROBE`` or an explicit ``probe=``
constructor argument:

* ``off`` (default) -- no probe object is attached at all.  Hot paths see
  ``None`` and skip emission with a single local ``is not None`` test,
  almost always nested inside a conditional that already existed (miss
  paths, flush paths), so throughput is unchanged
  (``benchmarks/bench_obs.py`` enforces the +-2% contract against
  ``BENCH_interp.json``).
* ``counters`` -- :class:`CounterProbe` keeps one integer per event kind.
* ``events`` -- :class:`EventProbe` additionally records every event as a
  ``(kind, *args)`` tuple, the input of :mod:`repro.obs.metrics` and the
  :mod:`repro.obs.export` serializer.

Probes only ever *read* simulation state: attaching one may never change
``Stats``, output bytes or the exit code (the zero-overhead differential
tests pin this down, including on trace-replay runs -- every replay loop
emits the same events as its live counterpart).
"""

from __future__ import annotations

import logging
import os
from typing import Dict, Iterator, List, Optional, Tuple

log = logging.getLogger(__name__)

# ------------------------------------------------------------- event kinds
#: primary<->VLIW engine swap; args: (direction, pc) with direction
#: 0 = primary->vliw, 1 = vliw->primary
EV_MODE_SWITCH = "mode_switch"
#: Fetch Unit VLIW-cache probe in primary mode; args: (pc, hit)
EV_VCACHE_PROBE = "vcache_probe"
#: Scheduler Unit opened a fresh scheduling-list block; args: (addr,)
EV_BLOCK_OPEN = "block_open"
#: one instruction entered the scheduling list; args: (addr,)
EV_SCHED = "sched"
#: candidate installed on a dependence/resource signal; args: (addr,)
EV_INSTALL = "install"
#: candidate moved one element up; args: (addr,)
EV_MOVE = "move"
#: split-based renaming: a COPY was left behind; args: (addr,)
EV_SPLIT = "split"
#: block flushed to the VLIW cache; args: (addr, reason, n_lis, ops,
#: slots, n_int, n_fp, n_cc, n_mem) -- the last four are the block's
#: renaming high-water marks (the renaming-pressure sample stream)
EV_BLOCK_FLUSH = "block_flush"
#: block written into the VLIW/DIF cache; args: (addr, evicted_addr|-1)
EV_BLOCK_INSTALL = "block_install"
#: block dropped from the VLIW cache; args: (addr, was_resident)
EV_BLOCK_INVALIDATE = "block_invalidate"
#: VLIW engine started executing a cached block/group; args: (addr,)
EV_BLOCK_ENTRY = "block_entry"
#: one long instruction executed; args: (issued, committed) slot widths
EV_LI_EXEC = "li_exec"
#: a conventional cache line miss; args: (cache_name,)
EV_CACHE_MISS = "cache_miss"
#: cache stall cycles actually charged; args: (cache_name, cycles)
EV_CACHE_STALL = "cache_stall"
#: mispredicted control transfer; args: (branch_addr, actual_target)
EV_MISPREDICT = "mispredict"
#: VLIW block rolled back; args: (kind, fault_addr) with kind
#: 0 = aliasing, 1 = other architectural exception
EV_EXCEPTION = "exception"
#: register-window spill/fill penalty charged; args: (cycles,)
EV_WINDOW_SPILL = "window_spill"
#: one superblock freshly code-generated (repro.isa.blockcompile);
#: args: (addr, count) -- entry address and max commit count
EV_BC_COMPILE = "bc_compile"
#: one compiled-block disk-cache resolution; args: (hit,) with hit 0/1
#: (process-memo hits emit nothing -- no store was consulted)
EV_BC_CACHE = "bc_cache"
#: block-table miss fell back to a per-instruction dispatch; args: (pc,)
EV_BC_FALLBACK = "bc_fallback"
#: one multi-config kernel pass over an address column; args:
#: (cache, geoms, events) -- cache "icache"/"dcache", geoms = number of
#: geometry cells served by the pass, events = column length walked
EV_MC_BUILD = "mc_build"
#: one sweep cell answered from kernel-primed miss profiles; args:
#: (benchmark,)
EV_MC_APPLY = "mc_apply"
#: a vectorizable family fell back to scalar miss profiles; args:
#: (reason,) -- "disabled" (REPRO_NO_VECTOR) or "no-numpy"
EV_MC_FALLBACK = "mc_fallback"
#: one primary-mode superblock freshly code-generated
#: (repro.isa.blockcompile MODE_PM); args: (addr, count)
EV_PM_COMPILE = "pm_compile"
#: one compiled primary-mode dispatch that committed >= 1 instruction;
#: args: (pc,)
EV_PM_DISPATCH = "pm_dispatch"
#: primary-mode table miss fell back to an interpreted step; args: (pc,)
EV_PM_FALLBACK = "pm_fallback"
#: on-disk scheduling-memo load served a family; args: (records,) --
#: number of segment records restored into the process memo
EV_MEMO_STORE_HIT = "memo_store_hit"
#: on-disk scheduling-memo lookup missed; args: (reason,) -- "absent",
#: "defect" (corrupt/version-skewed payload) or "disabled"
EV_MEMO_STORE_MISS = "memo_store_miss"

#: event kind -> ordered field names (the exporter writes this as the
#: schema header; bump :data:`repro.obs.export.VERSION` when it changes)
EVENT_SCHEMA: Dict[str, Tuple[str, ...]] = {
    EV_MODE_SWITCH: ("direction", "pc"),
    EV_VCACHE_PROBE: ("pc", "hit"),
    EV_BLOCK_OPEN: ("addr",),
    EV_SCHED: ("addr",),
    EV_INSTALL: ("addr",),
    EV_MOVE: ("addr",),
    EV_SPLIT: ("addr",),
    EV_BLOCK_FLUSH: (
        "addr",
        "reason",
        "n_lis",
        "ops",
        "slots",
        "n_int",
        "n_fp",
        "n_cc",
        "n_mem",
    ),
    EV_BLOCK_INSTALL: ("addr", "evicted"),
    EV_BLOCK_INVALIDATE: ("addr", "resident"),
    EV_BLOCK_ENTRY: ("addr",),
    EV_LI_EXEC: ("issued", "committed"),
    EV_CACHE_MISS: ("cache",),
    EV_CACHE_STALL: ("cache", "cycles"),
    EV_MISPREDICT: ("addr", "target"),
    EV_EXCEPTION: ("kind", "addr"),
    EV_WINDOW_SPILL: ("cycles",),
    EV_BC_COMPILE: ("addr", "count"),
    EV_BC_CACHE: ("hit",),
    EV_BC_FALLBACK: ("pc",),
    EV_MC_BUILD: ("cache", "geoms", "events"),
    EV_MC_APPLY: ("benchmark",),
    EV_MC_FALLBACK: ("reason",),
    EV_PM_COMPILE: ("addr", "count"),
    EV_PM_DISPATCH: ("pc",),
    EV_PM_FALLBACK: ("pc",),
    EV_MEMO_STORE_HIT: ("records",),
    EV_MEMO_STORE_MISS: ("reason",),
}

Event = Tuple  # (kind, *args) -- args are ints or short strings only


class Probe:
    """Base probe: the interface every depth implements.

    ``active`` gates attachment: machines normalise an inactive probe to
    ``None`` internally, so a :class:`NullProbe` run takes the *identical*
    code path as probes-off (that is the zero-overhead dispatch).
    """

    active = False

    __slots__ = ()

    def emit(self, kind: str, *args) -> None:  # pragma: no cover - no-op
        pass


class NullProbe(Probe):
    """The default probe: records nothing, costs nothing."""

    __slots__ = ()


class CounterProbe(Probe):
    """Depth ``counters``: one integer per event kind, no event objects."""

    active = True

    __slots__ = ("counts",)

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}

    def emit(self, kind: str, *args) -> None:
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1

    def count(self, kind: str) -> int:
        return self.counts.get(kind, 0)


class EventProbe(CounterProbe):
    """Depth ``events``: the full typed event stream, in emission order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        super().__init__()
        self.events: List[Event] = []

    def emit(self, kind: str, *args) -> None:
        self.events.append((kind,) + args)
        counts = self.counts
        counts[kind] = counts.get(kind, 0) + 1

    # ------------------------------------------------------------- queries
    def select(self, kind: str) -> Iterator[Event]:
        """Events of one kind, in emission order."""
        return (e for e in self.events if e[0] == kind)


# --------------------------------------------------------------- selection
_PROBE_DEPTHS = ("off", "counters", "events")
_warned_probe_env = False


def probe_from_env() -> Optional[Probe]:
    """Probe selected by ``$REPRO_PROBE`` (``off``/``counters``/``events``;
    default off -> None).  Unknown values warn once and mean off."""
    global _warned_probe_env
    raw = os.environ.get("REPRO_PROBE", "off").strip().lower()
    if raw in ("", "off", "0"):
        return None
    if raw == "counters":
        return CounterProbe()
    if raw == "events":
        return EventProbe()
    if not _warned_probe_env:
        _warned_probe_env = True
        log.warning(
            "ignoring unknown REPRO_PROBE=%r (expected one of %s)",
            raw,
            "/".join(_PROBE_DEPTHS),
        )
    return None


def resolve_probe(probe: Optional[Probe]) -> Optional[Probe]:
    """Normalise a constructor's ``probe`` argument.

    ``None`` consults ``$REPRO_PROBE``; an inactive probe (e.g.
    :class:`NullProbe`) becomes ``None`` so every emission site reduces to
    one ``is not None`` test on a local -- probes-off and NullProbe runs
    are literally the same machine code.
    """
    if probe is None:
        return probe_from_env()
    return probe if probe.active else None
