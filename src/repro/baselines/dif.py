"""The DIF machine of Nair & Hopkins, reimplemented from [9] and the
paper's section 3.12 for the Figure 9 comparison.

Differences from the DTSVLIW, as the paper describes them:

* **Scheduling**: a *greedy* algorithm over a hardware resource table --
  each incoming instruction is placed in the earliest long instruction
  where its operands are available and a slot is free, inside a group of
  fixed geometry (6x6 in Figure 9).  The window is the whole group, not
  the two-element neighbourhood of the DTSVLIW's FCFS list.
* **Renaming**: per-architectural-register *instances* (4 of each in the
  DIF evaluation) rather than split/COPY; output and anti dependences cost
  an instance instead of a slot, so the greedy scheduler reorders more
  freely but needs far more renaming registers.
* **Commit**: each exit point (every branch plus the group end) carries an
  *exit map* (19 bytes in [9]) restoring the architectural mapping, so a
  deviating branch simply discards the instances of later operations.
  Instances make speculative writes invisible until commit; an executed
  group is therefore architecturally equivalent to the sequential prefix
  up to its exit point, which is exactly how this simulator executes it.
* **DIF cache**: whole groups are the unit of communication with the VLIW
  engine (the DTSVLIW fetches one long instruction per access), and exit
  maps consume cache space (the Figure 9 accounting: 463 KB DIF cache vs
  216 KB VLIW cache for the same code).

Timing model: one cycle per long instruction executed, plus the mispredict
bubble on a deviating branch, the same Primary Processor as the DTSVLIW,
and one cycle per group fetch (whole-group access).  A branch is
constrained to a long instruction no earlier than every program-earlier
operation (its exit map must cover them).
"""

from __future__ import annotations

import time

from typing import Dict, List, Optional, Tuple

from ..asm.program import Program
from ..batch.timing import charge_dif_group_replay
from ..core.config import MachineConfig
from ..core.errors import ProgramExit, SimError
from ..core.reference import TrapServices, setup_state
from ..core.stats import Stats
from ..isa.instructions import FU_BR, K_BRANCH, K_NOP, UNCONDITIONAL
from ..isa.predecode import generic_step_forced
from ..isa.registers import RegFile
from ..isa.semantics import StepInfo, step
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..obs.probe import (
    EV_BLOCK_ENTRY,
    EV_BLOCK_FLUSH,
    EV_BLOCK_OPEN,
    EV_CACHE_STALL,
    EV_MISPREDICT,
    EV_MODE_SWITCH,
    EV_VCACHE_PROBE,
    resolve_probe,
)
from ..primary.pipeline import PrimaryProcessor
from ..scheduler.ops import SchedOp
from ..trace.events import Trace
from ..trace.replay import replay_source_for


class DIFGroup:
    """One scheduled group: geometry bookkeeping plus the recorded trace
    (instruction addresses and branch directions) for re-execution."""

    __slots__ = (
        "start_addr",
        "next_addr",
        "height_used",
        "trace",
        "exits",
        "max_instances",
    )

    def __init__(self, start_addr: int):
        self.start_addr = start_addr
        self.next_addr = 0
        self.height_used = 0
        #: program-ordered (addr, li_index, is_branch, taken, target)
        self.trace: List[Tuple[int, int, bool, bool, int]] = []
        self.exits = 1  # group end; +1 per branch
        self.max_instances = 0

    @property
    def op_count(self) -> int:
        return len(self.trace)

    def exit_map_bytes(self) -> int:
        return 19 * self.exits  # [9]: 19 bytes per exit point


class DIFScheduler:
    """Greedy resource-table scheduling into a group (section 3.12)."""

    def __init__(self, cfg: MachineConfig, stats: Stats, probe=None):
        self.cfg = cfg
        self.stats = stats
        #: active probe or None (group lifecycle events)
        self.probe = probe
        self.instance_limit = 4  # instances of each register ([9])
        self.group: Optional[DIFGroup] = None
        self._reset_tables()

    def _reset_tables(self) -> None:
        self.avail: Dict[int, int] = {}  # loc -> LI where value is ready
        self.last_write_li: Dict[int, int] = {}
        self.write_counts: Dict[int, int] = {}
        self.slots_free: List[int] = []
        self.branch_slots_free: List[int] = []
        self.max_li = -1
        self.last_branch_li = -1

    def _slot_capacity(self) -> Tuple[int, int]:
        """(universal/typed slots, branch slots) per long instruction."""
        if self.cfg.slot_classes is None:
            return self.cfg.block_width, self.cfg.block_width
        br = sum(1 for c in self.cfg.slot_classes if c == FU_BR)
        return self.cfg.block_width - br, br

    def start_group(self, addr: int) -> None:
        """Open a fresh group starting at ``addr``."""
        self.group = DIFGroup(addr)
        self._reset_tables()
        normal, br = self._slot_capacity()
        h = self.cfg.block_height
        self.slots_free = [normal] * h
        self.branch_slots_free = [br] * h
        if self.probe is not None:
            self.probe.emit(EV_BLOCK_OPEN, addr)

    def try_place(self, op: SchedOp) -> bool:
        """Place one op in the current group; False => the group is full
        (caller flushes and retries in a fresh group)."""
        g = self.group
        h = self.cfg.block_height
        earliest = 0
        for r in op.reads:
            ready = self.avail.get(r)
            if ready is not None and ready + 1 > earliest:
                earliest = ready + 1
        # memory ordering: no renaming for memory locations
        for w in op.writes:
            if w >= 10_000_000:  # a memory word: WAW/WAR keep order
                prev = self.last_write_li.get(w)
                if prev is not None and prev + 1 > earliest:
                    earliest = prev + 1
        # register instances: beyond the limit, serialise on the last writer
        for w in op.writes:
            if w < 10_000_000:
                count = self.write_counts.get(w, 0)
                if count >= self.instance_limit:
                    prev = self.last_write_li.get(w, -1)
                    if prev + 1 > earliest:
                        earliest = prev + 1
        if op.is_branch:
            # the exit map must cover every program-earlier operation, and
            # branch order is preserved
            if self.max_li > earliest:
                earliest = self.max_li
            if self.last_branch_li > earliest:
                earliest = self.last_branch_li
        free = self.branch_slots_free if op.is_branch else self.slots_free
        li = earliest
        while li < h and free[li] == 0:
            li += 1
        if li >= h:
            return False
        free[li] -= 1
        if li > self.max_li:
            self.max_li = li
        for w in op.writes:
            self.avail[w] = li
            self.last_write_li[w] = li
            if w < 10_000_000:
                self.write_counts[w] = self.write_counts.get(w, 0) + 1
        instances = sum(max(0, c - 1) for c in self.write_counts.values())
        if instances > g.max_instances:
            g.max_instances = instances
        if op.is_branch:
            self.last_branch_li = li
            g.exits += 1
        g.trace.append((op.addr, li, op.is_branch, op.taken, op.target))
        g.height_used = self.max_li + 1
        return True

    def flush(self, next_addr: int) -> Optional[DIFGroup]:
        g = self.group
        self.group = None
        if g is None or not g.trace:
            return None
        g.next_addr = next_addr
        st = self.stats
        st.blocks_flushed += 1
        st.slots_filled += g.op_count
        st.slots_total += self.cfg.block_width * self.cfg.block_height
        st.long_instructions_saved += g.height_used
        if g.max_instances > st.max_int_renaming:
            st.max_int_renaming = g.max_instances
        if self.probe is not None:
            self.probe.emit(
                EV_BLOCK_FLUSH,
                g.start_addr,
                "group",
                g.height_used,
                g.op_count,
                self.cfg.block_width * self.cfg.block_height,
                g.max_instances,
                0,
                0,
                0,
            )
        return g


class DIFCache:
    """Group-granularity cache; lines sized by block + exit maps."""

    def __init__(self, total_groups: int, assoc: int, probe=None):
        from ..vliw.cache import VLIWCache

        self._c = VLIWCache(total_groups, assoc, probe=probe)

    def probe(self, addr: int) -> bool:
        return self._c.probe(addr)

    def lookup(self, addr: int):
        return self._c.lookup(addr)

    def insert(self, group: DIFGroup) -> None:
        # reuse the VLIW cache structure with group objects (they expose
        # the same ``start_addr`` key)
        self._c.insert(group)  # type: ignore[arg-type]

    @property
    def hits(self):
        return self._c.hits

    @property
    def misses(self):
        return self._c.misses


class DIFMachine:
    """DIF simulation sharing the srisc substrate.

    Execution-driven by default; unlike the DTSVLIW (whose VLIW Engine
    re-executes register *values*), the DIF statistics depend only on the
    committed instruction stream -- addresses, branch directions, memory
    addresses, window spills -- so passing ``trace=`` replays a captured
    trace bit-identically without executing anything (groups are walked
    by :meth:`_execute_group_replay` instead of :meth:`_execute_group`).
    """

    def __init__(
        self,
        program: Program,
        cfg: Optional[MachineConfig] = None,
        trace: Optional[Trace] = None,
        probe=None,
    ):
        self.program = program
        self.cfg = cfg or MachineConfig.fig9()
        c = self.cfg
        self.stats = Stats()
        #: active probe or None (``probe=None`` consults ``$REPRO_PROBE``);
        #: group replay emits the same events as the live group walk
        self.probe = resolve_probe(probe)
        self.mem = MainMemory(c.mem_size)
        self.rf = RegFile(c.nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)
        self.icache = Cache(
            "icache", c.icache.size, c.icache.line_size, c.icache.assoc,
            c.icache.miss_penalty, c.icache.perfect, probe=self.probe,
        )
        self.dcache = Cache(
            "dcache", c.dcache.size, c.dcache.line_size, c.dcache.assoc,
            c.dcache.miss_penalty, c.dcache.perfect, probe=self.probe,
        )
        group_bytes = c.block_bytes + 19 * (c.block_height + 1)
        total_groups = max(1, c.vliw_cache_bytes // group_bytes)
        # Group lines are larger than VLIW-cache blocks, so the requested
        # associativity can exceed *this* cache's capacity even when the
        # config-level geometry is fine; clamp against our own line count.
        self.dif_cache = DIFCache(
            total_groups,
            min(c.vliw_cache_assoc, total_groups),
            probe=self.probe,
        )
        self.scheduler = DIFScheduler(c, self.stats, probe=self.probe)
        self.source = replay_source_for(
            trace, program, self.rf, self.services, c
        )
        self.replay = self.source is not None
        self.primary = PrimaryProcessor(
            c, self.rf, self.mem, self.icache, self.dcache, self.services,
            self.stats, source=self.source, probe=self.probe,
        )
        self.halted = False
        self.info = StepInfo()
        self.use_exec = not generic_step_forced()

    @property
    def output(self) -> bytes:
        return bytes(self.services.output)

    @property
    def exit_code(self) -> int:
        return self.services.exit_code

    # ------------------------------------------------------------------ run
    def run(self, max_cycles: int = 2_000_000_000) -> Stats:
        """Run to the exit trap; returns the statistics."""
        st = self.stats
        t0 = time.perf_counter()
        try:
            while st.cycles < max_cycles:
                self._primary_mode(max_cycles)
        except ProgramExit:
            self.halted = True
        finally:
            st.wall_time_s += time.perf_counter() - t0
        if not self.halted:
            raise SimError("DIF machine exceeded %d cycles" % max_cycles)
        st.ref_instructions = st.primary_instructions + st.dif_instructions
        return st

    def _primary_mode(self, max_cycles: int) -> None:
        st = self.stats
        cfg = self.cfg
        fetch = self.program.instrs.get
        sched = self.scheduler
        probe = self.probe
        while st.cycles < max_cycles:
            pc = self.pc
            st.vliw_cache_probes += 1
            if self.dif_cache.probe(pc):
                st.vliw_cache_hits += 1
                if probe is not None:
                    probe.emit(EV_VCACHE_PROBE, pc, 1)
                    probe.emit(EV_MODE_SWITCH, 0, pc)
                group = sched.flush(pc)
                if group is not None:
                    self.dif_cache.insert(group)
                st.mode_switches += 1
                st.switch_cycles += cfg.switch_to_vliw_cost
                st.cycles += cfg.switch_to_vliw_cost
                self._dif_mode(pc)
                self.primary.reset_pipeline()
                continue
            if probe is not None:
                probe.emit(EV_VCACHE_PROBE, pc, 0)
            instr = fetch(pc)
            if instr is None:
                raise SimError("fetch outside text segment: 0x%x" % pc)
            try:
                next_pc, cycles, sop, nonsched = self.primary.step(instr)
            except ProgramExit:
                st.cycles += 1
                st.primary_cycles += 1
                raise
            st.cycles += cycles
            st.primary_cycles += cycles
            self.pc = next_pc
            if nonsched:
                group = sched.flush(instr.addr)
                if group is not None:
                    self.dif_cache.insert(group)
            elif sop is not None:
                if sched.group is None:
                    sched.start_group(sop.addr)
                if not sched.try_place(sop):
                    group = sched.flush(sop.addr)
                    if group is not None:
                        self.dif_cache.insert(group)
                    sched.start_group(sop.addr)
                    if not sched.try_place(sop):
                        raise SimError("DIF: op fits no empty group")

    def _dif_mode(self, addr: int) -> None:
        """Execute cached groups: whole-group fetch, one cycle per long
        instruction, sequential-prefix commit semantics (see module doc)."""
        st = self.stats
        cfg = self.cfg
        probe = self.probe
        while True:
            group = self.dif_cache.lookup(addr)
            if group is None:
                st.mode_switches += 1
                if probe is not None:
                    probe.emit(EV_MODE_SWITCH, 1, addr)
                st.switch_cycles += cfg.switch_to_primary_cost
                st.cycles += cfg.switch_to_primary_cost
                self.pc = addr
                return
            st.vliw_block_entries += 1
            if probe is not None:
                probe.emit(EV_BLOCK_ENTRY, group.start_addr)
            st.cycles += 1  # whole-group fetch
            st.vliw_cycles += 1
            if self.replay:
                next_addr, cycles = self._execute_group_replay(group)
            else:
                next_addr, cycles = self._execute_group(group)
            st.cycles += cycles
            st.vliw_cycles += cycles
            addr = next_addr
            self.pc = next_addr

    def _execute_group(self, group: DIFGroup) -> Tuple[int, int]:
        """-> (next address, cycles).  Instances make uncommitted writes
        invisible, so executing the committed prefix sequentially is
        architecturally exact; cycles count the long instructions covering
        the committed operations plus per-LI worst data-cache penalties.

        Unscheduled instructions on the recorded path (nops, unconditional
        branches) are executed for free; any other deviation bails out to
        the Primary Processor at the current pc."""
        rf, mem, services, info = self.rf, self.mem, self.services, self.info
        use_exec = self.use_exec
        fetch = self.program.instrs
        st = self.stats
        probe = self.probe
        max_li = -1
        executed = 0
        pc = group.start_addr
        idx = 0
        trace = group.trace
        li_pen: Dict[int, int] = {}
        deviated_to = None
        while idx < len(trace):
            addr, li, is_branch, rec_taken, rec_target = trace[idx]
            instr = fetch.get(pc)
            if instr is None:
                break
            if pc != addr:
                kind = instr.op.kind
                free_rider = kind == K_NOP or (
                    kind == K_BRANCH and instr.op.name in UNCONDITIONAL
                )
                if not free_rider:
                    break  # path deviates: resume in the Primary Processor
                fn = instr.exec_fn
                if fn is not None and use_exec:
                    pc = fn(rf, mem, services, info)
                else:
                    pc = step(rf, mem, instr, services, info)
                executed += 1
                continue
            fn = instr.exec_fn
            if fn is not None and use_exec:
                next_pc = fn(rf, mem, services, info)
            else:
                next_pc = step(rf, mem, instr, services, info)
            executed += 1
            idx += 1
            if li > max_li:
                max_li = li
            if info.mem_addr >= 0:
                pen = self.dcache.access(info.mem_addr)
                if pen:
                    st.dcache_stall_cycles += pen
                    if probe is not None:
                        probe.emit(EV_CACHE_STALL, "dcache", pen)
                    if pen > li_pen.get(li, 0):
                        li_pen[li] = pen
            if is_branch:
                deviates = (
                    info.taken != rec_taken
                    or (info.taken and info.target != rec_target)
                )
                if deviates:
                    st.mispredicts += 1
                    if probe is not None:
                        probe.emit(EV_MISPREDICT, addr, next_pc)
                    deviated_to = next_pc
                    break
            pc = next_pc
        st.dif_instructions += executed
        cycles = (group.height_used if max_li < 0 else max_li + 1) + sum(
            li_pen.values()
        )
        if deviated_to is not None:
            return deviated_to, max(cycles, 1) + self.cfg.mispredict_penalty
        return pc, max(cycles, 1)

    def _execute_group_replay(self, group: DIFGroup) -> Tuple[int, int]:
        """Replay counterpart of :meth:`_execute_group`.

        The whole walk -- free riders, deviation detection, per-LI worst
        data-cache penalties, cursor/window-pointer advance -- lives in
        the shared timing model
        (:func:`repro.batch.timing.charge_dif_group_replay`); see its
        docstring for the decision-for-decision correspondence with the
        live group walk.
        """
        return charge_dif_group_replay(
            group,
            self.source,
            self.stats,
            self.rf,
            self.dcache,
            self.probe,
            self.cfg.mispredict_penalty,
        )
