"""Scalar baseline: the Primary Processor running alone.

Useful to quantify how much of the DTSVLIW speed-up comes from VLIW
execution versus the scalar pipeline's own behaviour (and as the x1
reference for speed-up plots).

There is no Scheduler Unit here, so the pipeline runs with
``build_sched=False`` (no dependence footprints are built for ops nobody
consumes), and the machine is fully *trace-drivable*: its statistics
depend only on instruction addresses, memory addresses, branch directions
and window spills -- all recorded in a captured trace -- so passing
``trace=`` replays the committed stream through a dedicated loop that
charges the exact Table 1 timing without executing anything.  Replay is
bit-identical to live execution (the differential tests enforce it);
``REPRO_EXECUTION_DRIVEN=1`` disables it.
"""

from __future__ import annotations

import time

from ..asm.program import Program
from ..batch.timing import charge_scalar_replay
from ..core.config import MachineConfig
from ..core.errors import ProgramExit, SimError
from ..core.reference import TrapServices, setup_state
from ..core.stats import Stats
from ..isa.blockcompile import (
    GLOBAL_STATS,
    MODE_SCALAR,
    block_compile_disabled,
    compile_blocks,
)
from ..isa.registers import RegFile
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..obs.probe import resolve_probe
from ..primary.pipeline import PrimaryProcessor
from ..trace.events import Trace
from ..trace.replay import replay_source_for


class ScalarMachine:
    """In-order scalar execution with the Table 1 Primary timing."""

    def __init__(
        self,
        program: Program,
        cfg: MachineConfig | None = None,
        trace: Trace | None = None,
        probe=None,
    ):
        self.program = program
        self.cfg = cfg or MachineConfig()
        c = self.cfg
        self.stats = Stats()
        #: active probe or None (``probe=None`` consults ``$REPRO_PROBE``);
        #: the replay loop emits the same events as live execution
        self.probe = resolve_probe(probe)
        self.mem = MainMemory(c.mem_size)
        self.rf = RegFile(c.nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)
        self.icache = Cache(
            "icache",
            c.icache.size,
            c.icache.line_size,
            c.icache.assoc,
            c.icache.miss_penalty,
            c.icache.perfect,
            probe=self.probe,
        )
        self.dcache = Cache(
            "dcache",
            c.dcache.size,
            c.dcache.line_size,
            c.dcache.assoc,
            c.dcache.miss_penalty,
            c.dcache.perfect,
            probe=self.probe,
        )
        self.source = replay_source_for(
            trace, program, self.rf, self.services, c
        )
        self.primary = PrimaryProcessor(
            c,
            self.rf,
            self.mem,
            self.icache,
            self.dcache,
            self.services,
            self.stats,
            source=self.source,
            build_sched=False,
            probe=self.probe,
        )
        self.halted = False
        self.block_fallbacks = 0

    @property
    def output(self) -> bytes:
        return bytes(self.services.output)

    @property
    def exit_code(self) -> int:
        return self.services.exit_code

    def run(self, max_cycles: int = 2_000_000_000) -> Stats:
        """Run to the exit trap; returns the statistics."""
        if self.source is not None:
            return self._run_replay(max_cycles)
        if (
            self.primary.block_dispatch_viable()
            and not block_compile_disabled()
        ):
            return self._run_blocks(max_cycles)
        st = self.stats
        fetch = self.program.instrs.get
        t0 = time.perf_counter()
        try:
            while st.cycles < max_cycles:
                instr = fetch(self.pc)
                if instr is None:
                    raise SimError("fetch outside text segment: 0x%x" % self.pc)
                next_pc, cycles, _sched, _nonsched = self.primary.step(instr)
                st.cycles += cycles
                st.primary_cycles += cycles
                st.ref_instructions += 1
                self.pc = next_pc
        except ProgramExit:
            st.cycles += 1
            st.primary_cycles += 1
            st.ref_instructions += 1  # the exit trap itself
            self.halted = True
        finally:
            st.wall_time_s += time.perf_counter() - t0
        if not self.halted:
            raise SimError("scalar machine exceeded %d cycles" % max_cycles)
        return st

    def _run_blocks(self, max_cycles: int) -> Stats:
        """Live loop dispatching through fused scalar superblocks
        (:mod:`repro.isa.blockcompile`, ``MODE_SCALAR``).

        Each block charges the exact Table 1 timing into ``Stats`` itself
        (icache/dcache in live access order, load-use bubbles, not-taken
        branch bubbles, spill penalties); the load-use register crosses
        block boundaries through the ``ctr`` protocol.  Near the
        ``max_cycles`` limit -- where a fused block could overrun the
        per-instruction cycle check -- and at addresses with no block
        (interior jump targets) the loop falls back to
        :meth:`PrimaryProcessor.step`, so truncation behaviour is
        bit-identical to the plain live loop.
        """
        st = self.stats
        cfg = self.cfg
        primary = self.primary
        rf, mem, services = self.rf, self.mem, self.services
        blocks = compile_blocks(
            self.program,
            MODE_SCALAR,
            sig=(
                cfg.load_use_bubble,
                cfg.branch_not_taken_bubble,
                cfg.window_spill_penalty,
            ),
            probe=self.probe,
        )
        btg = blocks.get
        fetch = self.program.instrs.get
        ic = self.icache.access
        dc = self.dcache.access
        # worst-case cycles one instruction can charge: entering a block
        # under this bound can never overshoot where the per-instruction
        # loop would have stopped
        worst = (
            1
            + self.icache.miss_penalty
            + self.dcache.miss_penalty
            + cfg.load_use_bubble
            + cfg.branch_not_taken_bubble
            + cfg.window_spill_penalty
        )
        ctr = [0, None, -1]  # block protocol: committed / llr out / fault pc
        pc = self.pc
        fb = 0
        t0 = time.perf_counter()
        try:
            while st.cycles < max_cycles:
                e = btg(pc)
                if e is not None and st.cycles + e[1] * worst <= max_cycles:
                    pc = e[0](
                        rf, mem, services, st, ic, dc, primary.last_load_rd, ctr
                    )
                    primary.last_load_rd = ctr[1]
                else:
                    instr = fetch(pc)
                    if instr is None:
                        raise SimError(
                            "fetch outside text segment: 0x%x" % pc
                        )
                    fb += 1
                    next_pc, cycles, _sched, _nonsched = primary.step(instr)
                    st.cycles += cycles
                    st.primary_cycles += cycles
                    st.ref_instructions += 1
                    pc = next_pc
                self.pc = pc
        except ProgramExit:
            st.cycles += 1
            st.primary_cycles += 1
            st.ref_instructions += 1  # the exit trap itself
            if ctr[2] >= 0:  # exit trap raised inside a block
                self.pc = ctr[2]
            self.halted = True
        except BaseException:
            if ctr[2] >= 0:  # restore the faulting instruction's address
                self.pc = ctr[2]
            raise
        finally:
            st.wall_time_s += time.perf_counter() - t0
            if fb:
                self.block_fallbacks += fb
                GLOBAL_STATS.fallback_dispatches += fb
        if not self.halted:
            raise SimError("scalar machine exceeded %d cycles" % max_cycles)
        return st

    def _run_replay(self, max_cycles: int) -> Stats:
        """Replay loop over the bound trace columns.

        All stall charging lives in the shared timing model
        (:func:`repro.batch.timing.charge_scalar_replay`); this wrapper
        only owns machine state (pc, halted), wall-time accounting and
        the cycle-budget error.
        """
        st = self.stats
        t0 = time.perf_counter()
        try:
            self.halted, self.pc = charge_scalar_replay(
                self.source,
                self.cfg,
                st,
                self.icache,
                self.dcache,
                self.services,
                self.probe,
                max_cycles,
                self.pc,
            )
        finally:
            st.wall_time_s += time.perf_counter() - t0
        if not self.halted:
            raise SimError("scalar machine exceeded %d cycles" % max_cycles)
        return st
