"""Scalar baseline: the Primary Processor running alone.

Useful to quantify how much of the DTSVLIW speed-up comes from VLIW
execution versus the scalar pipeline's own behaviour (and as the x1
reference for speed-up plots).
"""

from __future__ import annotations

import time

from ..asm.program import Program
from ..core.config import MachineConfig
from ..core.errors import ProgramExit, SimError
from ..core.reference import TrapServices, setup_state
from ..core.stats import Stats
from ..isa.registers import RegFile
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..primary.pipeline import PrimaryProcessor


class ScalarMachine:
    """In-order scalar execution with the Table 1 Primary timing."""

    def __init__(self, program: Program, cfg: MachineConfig | None = None):
        self.program = program
        self.cfg = cfg or MachineConfig()
        c = self.cfg
        self.stats = Stats()
        self.mem = MainMemory(c.mem_size)
        self.rf = RegFile(c.nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)
        self.icache = Cache(
            "icache",
            c.icache.size,
            c.icache.line_size,
            c.icache.assoc,
            c.icache.miss_penalty,
            c.icache.perfect,
        )
        self.dcache = Cache(
            "dcache",
            c.dcache.size,
            c.dcache.line_size,
            c.dcache.assoc,
            c.dcache.miss_penalty,
            c.dcache.perfect,
        )
        self.primary = PrimaryProcessor(
            c, self.rf, self.mem, self.icache, self.dcache, self.services, self.stats
        )
        self.halted = False

    @property
    def output(self) -> bytes:
        return bytes(self.services.output)

    @property
    def exit_code(self) -> int:
        return self.services.exit_code

    def run(self, max_cycles: int = 2_000_000_000) -> Stats:
        """Run to the exit trap; returns the statistics."""
        st = self.stats
        fetch = self.program.instrs.get
        t0 = time.perf_counter()
        try:
            while st.cycles < max_cycles:
                instr = fetch(self.pc)
                if instr is None:
                    raise SimError("fetch outside text segment: 0x%x" % self.pc)
                next_pc, cycles, _sched, _nonsched = self.primary.step(instr)
                st.cycles += cycles
                st.primary_cycles += cycles
                st.ref_instructions += 1
                self.pc = next_pc
        except ProgramExit:
            st.cycles += 1
            st.primary_cycles += 1
            st.ref_instructions += 1  # the exit trap itself
            self.halted = True
        finally:
            st.wall_time_s += time.perf_counter() - t0
        if not self.halted:
            raise SimError("scalar machine exceeded %d cycles" % max_cycles)
        return st
