"""The VLIW Cache (section 3.4).

Set-associative, LRU, with one *block* of long instructions per line,
tagged with the ISA address of the first instruction the Scheduler Unit
placed in the block.  Each line carries the ``nba`` (next block address)
store: the fall-through block's start address plus the line index of the
block's last valid long instruction, giving bubble-free block chaining
during VLIW fetch (section 3.5).

In this simulator the per-line nba is carried inside the :class:`Block`
object (``nba_addr``/``nba_line``); the cache maps addresses to blocks
through the shared :class:`~repro.memory.kernel.CacheKernel` (word-indexed
sets, full-address tags, LRU replacement).

Geometry validation lives at :class:`~repro.core.config.MachineConfig`
(``vliw_cache_effective_assoc``): a cache too small for the requested
associativity is clamped -- with a one-time warning -- *there*, so this
class rejects impossible geometries instead of silently mutating them.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..memory.kernel import CacheKernel
from ..obs.probe import EV_BLOCK_INSTALL, EV_BLOCK_INVALIDATE
from ..scheduler.long_instruction import Block


class VLIWCache:
    __slots__ = (
        "kernel",
        "hits",
        "misses",
        "insertions",
        "obs",
    )

    def __init__(self, total_blocks: int, assoc: int, probe=None):
        if assoc < 1 or total_blocks < assoc:
            raise ValueError(
                "VLIW cache of %d blocks cannot be %d-way associative"
                " (use MachineConfig.vliw_cache_effective_assoc)"
                % (total_blocks, assoc)
            )
        # word-indexed sets (instruction addresses are 4-aligned), tags
        # are the exact block start address
        self.kernel = CacheKernel(
            max(1, total_blocks // assoc), assoc, shift=2, line_tags=False
        )
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        #: active observability probe or None (install/invalidate
        #: lifecycle events); named ``obs`` because ``probe`` is the
        #: cache's architectural presence-check method below
        self.obs = probe

    @property
    def assoc(self) -> int:
        return self.kernel.assoc

    @property
    def num_sets(self) -> int:
        return self.kernel.num_sets

    @property
    def sets(self) -> List[List[Tuple[int, Block]]]:
        """The raw per-set ``(tag, Block)`` lists (inspection/export)."""
        return self.kernel.sets

    def lookup(self, addr: int) -> Optional[Block]:
        """Tag-match ``addr``; returns the block and refreshes LRU."""
        hit, block = self.kernel.lookup(addr)
        if hit:
            self.hits += 1
            return block
        self.misses += 1
        return None

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (does not touch LRU/stats)."""
        return self.kernel.probe(addr)

    def insert(self, block: Block) -> None:
        """Write a flushed block; replaces a same-tag line, else LRU."""
        addr = block.start_addr
        evicted = self.kernel.insert(addr, block)
        self.insertions += 1
        if self.obs is not None:
            self.obs.emit(EV_BLOCK_INSTALL, addr, evicted)

    def invalidate(self, addr: int) -> bool:
        """Drop the block tagged ``addr``; True when it was resident."""
        found = self.kernel.remove(addr)
        if self.obs is not None:
            self.obs.emit(EV_BLOCK_INVALIDATE, addr, int(found))
        return found

    def flush_all(self) -> None:
        self.kernel.clear()

    def resident_blocks(self) -> int:
        """Total blocks currently cached (all sets)."""
        return self.kernel.occupancy()
