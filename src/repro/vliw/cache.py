"""The VLIW Cache (section 3.4).

Set-associative, LRU, with one *block* of long instructions per line,
tagged with the ISA address of the first instruction the Scheduler Unit
placed in the block.  Each line carries the ``nba`` (next block address)
store: the fall-through block's start address plus the line index of the
block's last valid long instruction, giving bubble-free block chaining
during VLIW fetch (section 3.5).

In this simulator the per-line nba is carried inside the :class:`Block`
object (``nba_addr``/``nba_line``); the cache maps addresses to blocks.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs.probe import EV_BLOCK_INSTALL, EV_BLOCK_INVALIDATE
from ..scheduler.long_instruction import Block


class VLIWCache:
    __slots__ = (
        "num_sets",
        "assoc",
        "sets",
        "hits",
        "misses",
        "insertions",
        "obs",
    )

    def __init__(self, total_blocks: int, assoc: int, probe=None):
        if total_blocks < assoc:
            assoc = max(1, total_blocks)
        self.assoc = assoc
        self.num_sets = max(1, total_blocks // assoc)
        # Each set is a most-recently-used-first list of (tag, Block).
        self.sets: List[List[Tuple[int, Block]]] = [
            [] for _ in range(self.num_sets)
        ]
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        #: active observability probe or None (install/invalidate
        #: lifecycle events); named ``obs`` because ``probe`` is the
        #: cache's architectural presence-check method below
        self.obs = probe

    def _set_for(self, addr: int) -> List[Tuple[int, Block]]:
        return self.sets[(addr >> 2) % self.num_sets]

    def lookup(self, addr: int) -> Optional[Block]:
        """Tag-match ``addr``; returns the block and refreshes LRU."""
        s = self._set_for(addr)
        for i, (tag, block) in enumerate(s):
            if tag == addr:
                self.hits += 1
                if i:
                    s.insert(0, s.pop(i))
                return block
        self.misses += 1
        return None

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (does not touch LRU/stats)."""
        s = self._set_for(addr)
        return any(tag == addr for tag, _ in s)

    def insert(self, block: Block) -> None:
        """Write a flushed block; replaces a same-tag line, else LRU."""
        addr = block.start_addr
        s = self._set_for(addr)
        for i, (tag, _) in enumerate(s):
            if tag == addr:
                s.pop(i)
                break
        s.insert(0, (addr, block))
        evicted = -1
        if len(s) > self.assoc:
            evicted = s.pop()[0]
        self.insertions += 1
        if self.obs is not None:
            self.obs.emit(EV_BLOCK_INSTALL, addr, evicted)

    def invalidate(self, addr: int) -> bool:
        """Drop the block tagged ``addr``; True when it was resident."""
        s = self._set_for(addr)
        found = False
        for i, (tag, _) in enumerate(s):
            if tag == addr:
                s.pop(i)
                found = True
                break
        if self.obs is not None:
            self.obs.emit(EV_BLOCK_INVALIDATE, addr, int(found))
        return found

    def flush_all(self) -> None:
        for s in self.sets:
            s.clear()

    def resident_blocks(self) -> int:
        """Total blocks currently cached (all sets)."""
        return sum(len(s) for s in self.sets)
