"""Trace-driven twin of the VLIW Engine: timing without value execution.

The live :class:`~repro.vliw.engine.VLIWEngine` interleaves two concerns:
*execution* (register/memory values, renaming registers, checkpoint
rollback) and *timing* (cycles per long instruction, mispredict bubbles,
spill penalties, aliasing bookkeeping).  For machines whose statistics
never read register **values** -- perfect data cache, no reference
lockstep, checkpoint-list store scheme -- the timing side is a pure
function of the committed-instruction stream, which a captured trace
already holds.  This module exploits that: :class:`ReplayVLIWEngine`
walks each cached block against the trace cursor and reproduces the live
engine's :class:`~repro.core.stats.Stats` bit-identically while touching
no architectural value state.

How it works
------------

Each :class:`~repro.scheduler.long_instruction.Block` carries its
``build_ops`` -- the scheduled operations in *build* (program) order.  A
:class:`BlockReplayPlan` (built once per block, cached on the block)
replays the Scheduler Unit's construction walk over the static program:
starting at ``start_addr`` it interleaves the build ops with the
``SCHED_SKIP`` instructions (nops, unconditional branches) the Primary
committed between them, assigning every op its *event offset* inside the
block's committed-stream span, and ending exactly at ``nba_addr``.

At block entry the trace cursor ``i`` satisfies ``pcs[i] == start_addr``.
The plan's control transfers (the ``li.branches`` of every long
instruction, in program order) are compared against the trace: the first
whose real direction (``flags``) or next pc (``pcs``) deviates from its
recorded one determines the mispredicting long instruction and branch
tag -- exactly what the live engine's tag validation computes from
register values.  The per-LI walk then mirrors the live commit loop:
executed/annulled/committed op counts, COPY accounting, load/store
order-field aliasing checks (reusing the parent's ``_aliasing_checks``
verbatim), window save/restore occupancy with eager fill/spill at block
entry (reusing ``_satisfy_window_reqs``/``_sr_converged``), checkpoint
list length for the rollback recovery cost, and the cycle charges of
every outcome path.

Memory addresses for committed operations on the trace path come from
the ``aux`` column at the op's event offset; operations *counterfactually*
committed past the deviation point (hoisted above the mispredicted
branch) reuse their address from the previous execution of the block
(``op.mem_addr``), matching the only information a value-free replay can
have.  The differential suite (``tests/test_batched_sweep_differential``)
gates this bit-for-bit against live execution across every paper grid.

Eligibility is decided by :meth:`repro.core.machine.DTSVLIW.replay_eligible`:
perfect data cache (the VLIW Engine never touches the instruction cache),
``test_mode`` off (the reference lockstep reads values), and the
checkpoint-list store scheme (the data-store-list ablation forwards
store *values* to loads).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.config import MachineConfig
from ..core.errors import (
    AliasingException,
    ArchException,
    SimError,
    WindowOverflow,
    WindowUnderflow,
)
from ..core.stats import Stats
from ..isa.instructions import K_BRANCH, SCHED_SKIP
from ..obs.probe import (
    EV_BLOCK_ENTRY,
    EV_EXCEPTION,
    EV_LI_EXEC,
    EV_MISPREDICT,
    EV_WINDOW_SPILL,
)
from ..scheduler.long_instruction import Block
from ..scheduler.ops import (
    SchedOp,
    X_BRANCH,
    X_CALL,
    X_COPY,
    X_FLOAD,
    X_FSTORE,
    X_JMPL,
    X_LOAD,
    X_RESTORE,
    X_SAVE,
    X_STORE,
)
from ..trace.events import TraceDesync
from .engine import (
    MASK32,
    BlockOutcome,
    VLIWEngine,
    WindowDivergence,
    WindowResidencyUnsatisfiable,
)


#: effect kinds of the per-LI fast path (plan.li_plans entries)
_FX_LOAD, _FX_STORE, _FX_COPY = range(3)


class BlockReplayPlan:
    """Event-offset map of one block's committed-stream span."""

    __slots__ = ("n_events", "offs", "mem_offs", "controls", "li_plans")

    def __init__(
        self,
        n_events: int,
        offs: Dict[int, int],
        mem_offs: Dict[int, int],
        controls: List[Tuple[int, SchedOp, int, int]],
        li_plans: List[Tuple[int, int, list]],
    ):
        #: committed events the block consumes when it fully commits
        self.n_events = n_events
        #: id(op) -> event offset from block start, for every build op
        self.offs = offs
        #: order field -> event offset, memory-effect build ops only (a
        #: COPY taking over a split store's memory effect shares its order)
        self.mem_offs = mem_offs
        #: (offset, op, li_index, branch_tag) in program order
        self.controls = controls
        #: per long instruction: (op count, COPY count, effect list,
        #: has save/restore) -- only memory/copy/save/restore operations
        #: are timing-visible, so a non-deviating LI bumps its counters
        #: in O(1) and walks just the effect list (``_commit_li_fast``).
        #: Save/restore can raise mid-commit (the live engine then stops
        #: counting mid-LI), so LIs containing them keep the exact
        #: per-op walk instead.
        self.li_plans = li_plans


def build_replay_plan(block: Block, program) -> BlockReplayPlan:
    """Reconstruct the block's event offsets from the static program.

    Mirrors the Scheduler Unit's build walk: the committed control flow
    between consecutive build ops consists only of ``SCHED_SKIP``
    instructions (any schedulable instruction would itself be a build op,
    any non-schedulable one would have flushed the block), so the path is
    fully determined by the recorded per-op directions and targets.
    """
    if block.build_ops is None:
        raise TraceDesync(
            "block @0x%x has no build-order record" % block.start_addr
        )
    instr_map = program.instrs
    pc = block.start_addr
    off = 0
    offs: Dict[int, int] = {}
    mem_offs: Dict[int, int] = {}
    # A block covers at most height*width schedulable events plus the skip
    # runs between them, all within the text segment; anything larger is a
    # desynchronized walk, not a block.
    budget = 16 * len(instr_map) + 64

    def skip_to(target: int) -> None:
        nonlocal pc, off, budget
        while pc != target:
            instr = instr_map.get(pc)
            if (
                instr is None
                or instr.sched_class != SCHED_SKIP
                or budget <= 0
            ):
                raise TraceDesync(
                    "replay plan walk desync in block @0x%x: pc=0x%x "
                    "expecting 0x%x" % (block.start_addr, pc, target)
                )
            if instr.op.kind == K_BRANCH and instr.op.name == "ba":
                pc = (pc + instr.imm) & MASK32
            else:  # nop or bn: falls through
                pc += 4
            off += 1
            budget -= 1

    for op in block.build_ops:
        skip_to(op.addr)
        offs[id(op)] = off
        instr = op.instr
        if instr is not None and instr.mem_size:
            mem_offs[op.order] = off
        xk = op.xkind
        if xk == X_BRANCH:
            pc = (op.addr + instr.imm) & MASK32 if op.taken else op.addr + 4
        elif xk == X_JMPL or xk == X_CALL:
            pc = op.target
        else:
            pc = op.addr + 4
        off += 1
        budget -= 1
    skip_to(block.nba_addr)

    controls: List[Tuple[int, SchedOp, int, int]] = []
    for li_idx, li in enumerate(block.lis):
        for k, br in enumerate(li.branches):
            controls.append((offs[id(br)], br, li_idx, k))
    # Branches install at the scheduling-list tail in arrival order, so
    # (li, tag) order already is program order; sort by (unique) offset as
    # a cheap invariant.
    controls.sort(key=lambda c: c[0])

    li_plans: List[Tuple[int, int, list, bool]] = []
    for li in block.lis:
        n_copies = 0
        has_sr = False
        effects: list = []
        for op in li.dense:
            xk = op.xkind
            if xk == X_LOAD or xk == X_FLOAD:
                effects.append((_FX_LOAD, op, offs[id(op)]))
            elif xk == X_STORE or xk == X_FSTORE:
                if op.mem_rr is None:  # renamed stores have no effect yet
                    effects.append((_FX_STORE, op, offs[id(op)]))
            elif xk == X_COPY:
                n_copies += 1
                n_mem = sum(1 for act in op.copy_actions if act[0] == "mem")
                if n_mem:
                    effects.append(
                        (_FX_COPY, op, mem_offs.get(op.order), n_mem)
                    )
            elif xk == X_SAVE or xk == X_RESTORE:
                has_sr = True
        li_plans.append((len(li.dense), n_copies, effects, has_sr))
    return BlockReplayPlan(off, offs, mem_offs, controls, li_plans)


class ReplayVLIWEngine(VLIWEngine):
    """Drop-in :class:`VLIWEngine` that derives block outcomes from the
    trace cursor instead of executing values.

    Reuses the parent's window-requirement satisfaction, save/restore
    convergence check and order-field aliasing checks verbatim; overrides
    ``execute_block`` (the commit walk) and the inline spill/fill
    (occupancy bookkeeping instead of checkpointed memory traffic).
    """

    def __init__(
        self,
        cfg: MachineConfig,
        rf,
        mem,
        dcache,
        stats: Stats,
        source,
        program,
        probe=None,
    ):
        super().__init__(cfg, rf, mem, dcache, stats, probe=probe)
        #: the machine's WindowReplayTraceSource (shared cursor)
        self.source = source
        self.program = program
        #: checkpoint store-list length of the current block (rollback
        #: recovery cost and max_ckpt_list without storing undo records)
        self._ckpt_len = 0

    # ------------------------------------------------------------ top level
    def execute_block(self, block: Block) -> BlockOutcome:
        src = self.source
        plan = block.replay_plan
        if plan is None:
            plan = build_replay_plan(block, self.program)
            block.replay_plan = plan
        rf = self.rf
        pcs = src.pcs
        c0 = src.i
        last = src.last
        if pcs[c0] != block.start_addr:
            raise TraceDesync(
                "VLIW replay desync: block @0x%x entered at event %d "
                "(trace pc 0x%x)" % (block.start_addr, c0, pcs[c0])
            )
        flags = src.flags

        # Tag validation against the trace: the first control transfer
        # whose real outcome deviates from its recorded one.  A committed
        # control's real next pc is by definition the next trace pc.
        dev: Optional[Tuple[int, SchedOp, int, int, int]] = None
        for coff, op, li_idx, k in plan.controls:
            i = c0 + coff
            if i >= last:
                raise TraceDesync(
                    "VLIW replay desync: control at offset %d runs past "
                    "the trace end (block @0x%x)" % (coff, block.start_addr)
                )
            if op.xkind == X_BRANCH:
                if ((flags[i] & 1) != 0) != op.taken:
                    dev = (coff, op, li_idx, k, pcs[i + 1])
                    break
            else:  # X_JMPL: indirect target
                if pcs[i + 1] != op.target:
                    dev = (coff, op, li_idx, k, pcs[i + 1])
                    break
        dev_off = dev[0] if dev is not None else plan.n_events
        dev_li = dev[2] if dev is not None else -1

        self.entry_cwp = rf.cwp
        self.load_list.clear()
        self.store_list.clear()
        self._ckpt_len = 0
        window_shadow = (rf.cwp, rf.cansave, rf.canrestore, rf.wssp)
        cycles = 0
        st = self.stats
        st.vliw_block_entries += 1
        probe = self.probe
        if probe is not None:
            probe.emit(EV_BLOCK_ENTRY, block.start_addr)
        self._eager_count = 0
        self._sr_entry = (rf.cansave, rf.canrestore, rf.wssp)
        self._sr_log = []
        try:
            if (
                block.req_canrestore > rf.canrestore
                or block.req_cansave > rf.cansave
            ):
                self._li_extra_cycles = 0
                self._satisfy_window_reqs(block)
                cycles += self._li_extra_cycles
            li_plans = plan.li_plans
            for li_idx, li in enumerate(block.lis):
                cycles += 1
                if li_idx != dev_li:
                    # No control deviates in this LI: every op commits
                    # (an unbounded tag limit annuls nothing).
                    n_ops, n_copies, effects, has_sr = li_plans[li_idx]
                    if not has_sr:
                        st.vliw_ops_executed += n_ops
                        st.vliw_ops_committed += n_ops
                        if n_copies:
                            st.copies_executed += n_copies
                        if effects:
                            # memory effects only: cannot raise mid-LI,
                            # charges no extra cycles
                            self._commit_li_fast(effects, c0, dev_off)
                        if probe is not None:
                            probe.emit(EV_LI_EXEC, n_ops, n_ops)
                        continue
                    # Save/restore present: it can raise mid-commit (the
                    # live engine then stops counting ops mid-LI) and
                    # charges inline spill/fill cycles -- take the exact
                    # per-op walk.
                    limit = 1 << 30
                else:
                    limit = dev[3]
                if probe is not None:
                    ex0 = st.vliw_ops_executed
                    cm0 = st.vliw_ops_committed
                    self._commit_li(li, limit, plan, c0, dev_off)
                    probe.emit(
                        EV_LI_EXEC,
                        st.vliw_ops_executed - ex0,
                        st.vliw_ops_committed - cm0,
                    )
                else:
                    self._commit_li(li, limit, plan, c0, dev_off)
                # (no dcache time: replay requires a perfect data cache)
                if self._li_extra_cycles:
                    cycles += self._li_extra_cycles
                if li_idx == dev_li:
                    redirect = dev[4]
                    self._redirect_branch_addr = dev[1].addr
                    if self._eager_count and not self._sr_converged():
                        exc = WindowDivergence(
                            "early exit with unconsumed eager window "
                            "fills at 0x%x" % self._redirect_branch_addr
                        )
                        exc.fault_addr = self._redirect_branch_addr
                        raise exc
                    st.mispredicts += 1
                    if probe is not None:
                        probe.emit(
                            EV_MISPREDICT, self._redirect_branch_addr, redirect
                        )
                    cycles += self.cfg.mispredict_penalty
                    st.mispredict_cycles += self.cfg.mispredict_penalty
                    if pcs[c0 + dev_off] != dev[1].addr:
                        raise TraceDesync(
                            "VLIW replay desync: deviating control at "
                            "0x%x vs trace pc 0x%x"
                            % (dev[1].addr, pcs[c0 + dev_off])
                        )
                    ni = c0 + dev_off + 1
                    src.i = ni
                    rf.cwp = src.cwp[ni]
                    return BlockOutcome("mispredict", redirect, cycles)
            ni = c0 + plan.n_events
            if ni > last or pcs[ni] != block.nba_addr:
                raise TraceDesync(
                    "VLIW replay desync: block @0x%x next address 0x%x "
                    "disagrees with trace event %d"
                    % (block.start_addr, block.nba_addr, ni)
                )
            src.i = ni
            rf.cwp = src.cwp[ni]
            return BlockOutcome("ok", block.nba_addr, cycles)
        except ArchException as exc:
            # Checkpoint recovery: the live engine restores registers and
            # undoes stores; here only the cost and the window state exist
            # (the trace cursor never advanced -- the machine re-executes
            # the region from block.start_addr).
            recovery = self._ckpt_len + 4
            rf.cwp, rf.cansave, rf.canrestore, rf.wssp = window_shadow
            cycles += recovery
            fault_addr = getattr(exc, "fault_addr", 0)
            kind = (
                "aliasing" if isinstance(exc, AliasingException) else "exception"
            )
            if kind == "aliasing":
                st.aliasing_exceptions += 1
            else:
                st.other_exceptions += 1
            if probe is not None:
                probe.emit(
                    EV_EXCEPTION, 0 if kind == "aliasing" else 1, fault_addr
                )
            return BlockOutcome(kind, block.start_addr, cycles, exc, fault_addr)

    # --------------------------------------------------------- long instr
    def _commit_li(
        self, li, limit: int, plan: BlockReplayPlan, c0: int, dev_off: int
    ) -> None:
        """Mirror of the live phase-2 commit loop for one long instruction.

        ``limit`` is the valid branch-tag depth (the deviating control's
        tag in the mispredicting long instruction, unbounded elsewhere);
        deeper-tagged operations are annulled.  Committed memory
        operations on the trace path resolve their address from the trace;
        counterfactually committed ones (offset past the deviation) keep
        the address of the block's previous execution.
        """
        st = self.stats
        rf = self.rf
        aux = self.source.aux
        offs = plan.offs
        li_loads: List[Tuple[int, int, int]] = []
        li_stores: List[Tuple[int, int, int]] = []
        committed_mem: List[SchedOp] = []
        self._li_extra_cycles = 0
        for op in li.dense:
            st.vliw_ops_executed += 1
            if op.tag_depth > limit:
                st.speculative_annulled += 1
                continue
            st.vliw_ops_committed += 1
            xk = op.xkind
            if xk == X_LOAD or xk == X_FLOAD:
                off = offs[id(op)]
                addr = aux[c0 + off] if off < dev_off else op.mem_addr
                li_loads.append((addr, op.mem_size, op.order))
                op.mem_addr = addr
                committed_mem.append(op)
            elif xk == X_STORE or xk == X_FSTORE:
                if op.mem_rr is not None:
                    continue  # renamed store: buffered, no memory effect yet
                off = offs[id(op)]
                addr = aux[c0 + off] if off < dev_off else op.mem_addr
                self._ckpt_note(1)
                li_stores.append((addr, op.mem_size, op.order))
                op.mem_addr = addr
                committed_mem.append(op)
            elif xk == X_COPY:
                for act in op.copy_actions:
                    if act[0] == "mem":
                        off = plan.mem_offs.get(op.order)
                        addr = (
                            aux[c0 + off]
                            if off is not None and off < dev_off
                            else op.mem_addr
                        )
                        self._ckpt_note(1)
                        li_stores.append((addr, op.mem_size, op.order))
                        op.mem_addr = addr
                        committed_mem.append(op)
                st.copies_executed += 1
            elif xk == X_SAVE:
                self._sr_log.append("s")
                if rf.cansave == 0:
                    if not self.cfg.vliw_window_spill_inline:
                        exc = WindowOverflow("save at 0x%x" % op.addr)
                        exc.fault_addr = op.addr
                        raise exc
                    self._inline_spill()
                else:
                    rf.cansave -= 1
                    rf.canrestore += 1
                rf.cwp = (rf.cwp - 1) % rf.nwindows
            elif xk == X_RESTORE:
                self._sr_log.append("r")
                if rf.canrestore == 0:
                    if not self.cfg.vliw_window_spill_inline:
                        exc = WindowUnderflow("restore at 0x%x" % op.addr)
                        exc.fault_addr = op.addr
                        raise exc
                    try:
                        self._inline_fill()
                    except ArchException as e:
                        if not hasattr(e, "fault_addr"):
                            e.fault_addr = op.addr
                        raise
                else:
                    rf.canrestore -= 1
                    rf.cansave += 1
                rf.cwp = (rf.cwp + 1) % rf.nwindows
            # X_ALU / X_SETHI / X_BRANCH / X_JMPL / X_CALL / X_FPOP:
            # register-only effects, invisible to the timing model
        if li_loads or li_stores:
            self._aliasing_checks(li_loads, li_stores, committed_mem)

    def _commit_li_fast(self, effects: list, c0: int, dev_off: int) -> None:
        """Commit the memory effects of a fully-committing long
        instruction (no deviating control, no save/restore).

        The op counters were already advanced in O(1) from the plan; only
        loads, stores and memory-carrying copies remain, and none of them
        can raise before the end-of-LI aliasing check -- exactly the
        raise points :meth:`_commit_li` has on the same input.
        """
        aux = self.source.aux
        li_loads: List[Tuple[int, int, int]] = []
        li_stores: List[Tuple[int, int, int]] = []
        committed_mem: List[SchedOp] = []
        for entry in effects:
            fx = entry[0]
            if fx == _FX_LOAD:
                _fx, op, off = entry
                addr = aux[c0 + off] if off < dev_off else op.mem_addr
                li_loads.append((addr, op.mem_size, op.order))
                op.mem_addr = addr
                committed_mem.append(op)
            elif fx == _FX_STORE:
                _fx, op, off = entry
                addr = aux[c0 + off] if off < dev_off else op.mem_addr
                self._ckpt_note(1)
                li_stores.append((addr, op.mem_size, op.order))
                op.mem_addr = addr
                committed_mem.append(op)
            else:  # _FX_COPY with memory actions
                _fx, op, off, n_mem = entry
                addr = (
                    aux[c0 + off]
                    if off is not None and off < dev_off
                    else op.mem_addr
                )
                self._ckpt_note(n_mem)
                for _ in range(n_mem):
                    li_stores.append((addr, op.mem_size, op.order))
                    committed_mem.append(op)
                op.mem_addr = addr
        self._aliasing_checks(li_loads, li_stores, committed_mem)

    # ------------------------------------------------------------- helpers
    def _ckpt_note(self, n: int) -> None:
        """Account ``n`` checkpoint store-list entries (no undo payload)."""
        self._ckpt_len += n
        if self._ckpt_len > self.stats.max_ckpt_list:
            self.stats.max_ckpt_list = self._ckpt_len

    def _inline_spill(self, eager: bool = False) -> None:
        """Occupancy-only mirror of the live checkpointed window spill."""
        rf = self.rf
        sp = rf.wssp - 64
        if sp < self.mem.size - self.mem.spill_region:
            raise SimError("window spill stack overflow (call depth too large)")
        self._ckpt_note(16)
        rf.wssp = sp
        if eager:
            rf.cansave += 1
            rf.canrestore -= 1
        self._li_extra_cycles += self.cfg.window_spill_penalty
        self.stats.spill_cycles += self.cfg.window_spill_penalty
        if self.probe is not None:
            self.probe.emit(EV_WINDOW_SPILL, self.cfg.window_spill_penalty)

    def _inline_fill(self, eager: bool = False) -> None:
        """Occupancy-only mirror of the live checkpointed window fill."""
        rf = self.rf
        sp = rf.wssp
        if sp >= self.mem.size:
            raise WindowResidencyUnsatisfiable("fill with empty spill stack")
        rf.wssp = sp + 64
        if eager:
            rf.canrestore += 1
            rf.cansave -= 1
        self._li_extra_cycles += self.cfg.window_spill_penalty
        self.stats.spill_cycles += self.cfg.window_spill_penalty
        if self.probe is not None:
            self.probe.emit(EV_WINDOW_SPILL, self.cfg.window_spill_penalty)
