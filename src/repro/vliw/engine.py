"""The VLIW Engine (sections 3.5, 3.8, 3.10, 3.11).

Executes cached blocks one long instruction per cycle.  Each long
instruction is processed in two phases, matching the hardware's
read-then-write register file discipline:

* **phase 1** -- every operation reads start-of-cycle state and computes its
  results; conditional/indirect branches are evaluated against the direction
  recorded during scheduling; architectural exceptions are captured, not
  raised.
* **phase 2** -- operations whose branch tags are valid (every control
  transfer placed earlier in the same long instruction followed its recorded
  direction) commit their writes; renamed outputs go to the block's renaming
  registers, COPYs move renamed values to architectural state, stores write
  memory under checkpoint protection, and the cross-bit/order-field aliasing
  checks of section 3.10 run.

A mispredicted branch annuls deeper-tagged operations, redirects the PC to
the actual target (line index zero) and costs one bubble cycle.  Exceptions
roll the whole block back via the Hwu/Patt checkpoint (shadow registers +
checkpoint recovery store list) and are reported to the machine, which
decides between aliasing-reschedule and exception-mode re-execution.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

from ..core.config import MachineConfig
from ..core.errors import AliasingException, ArchException, MemFault, SimError, WindowOverflow, WindowUnderflow
from ..core.stats import Stats
from ..isa.semantics import fcmp_cc, to_signed, to_unsigned
from ..obs.probe import (
    EV_BLOCK_ENTRY,
    EV_CACHE_STALL,
    EV_EXCEPTION,
    EV_LI_EXEC,
    EV_MISPREDICT,
    EV_WINDOW_SPILL,
)
from ..scheduler.long_instruction import Block
from ..scheduler.ops import (
    SchedOp,
    X_ALU,
    X_BRANCH,
    X_CALL,
    X_COPY,
    X_FLOAD,
    X_FPOP,
    X_FSTORE,
    X_JMPL,
    X_LOAD,
    X_RESTORE,
    X_SAVE,
    X_SETHI,
    X_STORE,
)

MASK32 = 0xFFFFFFFF


class WindowResidencyUnsatisfiable(ArchException):
    """A block's window requirements cannot be met in the current machine
    context (typically a block built deep in a call chain re-entered at a
    shallower depth, where its recorded return would mispredict anyway).
    The machine invalidates the block and rebuilds it from the real
    context."""


class WindowDivergence(ArchException):
    """Raised when a mispredicted early exit leaves eager window fills
    unconsumed: the occupancy counters no longer match the lazy sequential
    semantics, so the block rolls back and the region re-executes on the
    Primary Processor (exception mode)."""


class _Exc:
    """A deferred exception stored in a renaming register (section 3.8)."""

    __slots__ = ("exception",)

    def __init__(self, exception: ArchException):
        self.exception = exception


class BlockOutcome:
    __slots__ = ("kind", "next_addr", "cycles", "exception", "fault_addr")

    def __init__(self, kind, next_addr, cycles, exception=None, fault_addr=0):
        self.kind = kind  # 'ok' | 'mispredict' | 'aliasing' | 'exception'
        self.next_addr = next_addr
        self.cycles = cycles
        self.exception = exception
        self.fault_addr = fault_addr


class VLIWEngine:
    def __init__(self, cfg: MachineConfig, rf, mem, dcache, stats: Stats, probe=None):
        self.cfg = cfg
        self.rf = rf
        self.mem = mem
        self.dcache = dcache
        self.stats = stats
        #: active probe or None (block entry / LI width / rollback events)
        self.probe = probe
        # per-block state
        self.int_rr: List = []
        self.fp_rr: List = []
        self.cc_rr: List = []
        self.mem_rr: List = []
        self.load_list: List[Tuple[int, int, int]] = []  # (addr, size, order)
        self.store_list: List[Tuple[int, int, int]] = []
        self.ckpt_list: List[Tuple[int, int, int]] = []  # (addr, size, old)
        self.data_store_list: List[Tuple[int, int, int, int]] = []  # +order
        self.entry_cwp = 0
        self._tables = None
        self._li_dcache_penalty = 0
        self._li_extra_cycles = 0
        self._eager_count = 0
        self._sr_entry = (0, 0, 0)
        self._sr_log: List[str] = []
        self._redirect_branch_addr = 0

    # ------------------------------------------------------------ top level
    def execute_block(self, block: Block) -> BlockOutcome:
        rf = self.rf
        self.entry_cwp = rf.cwp
        self._tables = rf.tables
        self.int_rr = [None] * block.n_int_rr
        self.fp_rr = [None] * block.n_fp_rr
        self.cc_rr = [None] * block.n_cc_rr
        self.mem_rr = [None] * block.n_mem_rr
        self.load_list.clear()
        self.store_list.clear()
        self.ckpt_list.clear()
        self.data_store_list.clear()

        shadow = rf.snapshot()  # checkpoint (section 3.11)
        cycles = 0
        st = self.stats
        st.vliw_block_entries += 1
        probe = self.probe
        if probe is not None:
            probe.emit(EV_BLOCK_ENTRY, block.start_addr)
        self._eager_count = 0
        self._sr_entry = (rf.cansave, rf.canrestore, rf.wssp)
        self._sr_log = []
        try:
            # Window residency: hoisted operations may touch ancestor or
            # descendant windows before the save/restore they follow in
            # program order commits, so satisfy the block's requirements up
            # front (checkpointed; counters converge exactly with the lazy
            # sequential spill/fill semantics when the block runs to a
            # point past the corresponding save/restore).
            if (
                block.req_canrestore > rf.canrestore
                or block.req_cansave > rf.cansave
            ):
                self._li_extra_cycles = 0
                self._satisfy_window_reqs(block)
                cycles += self._li_extra_cycles
            for li in block.lis:
                cycles += 1
                if probe is not None:
                    ex0 = st.vliw_ops_executed
                    cm0 = st.vliw_ops_committed
                    redirect = self._execute_li(li)
                    probe.emit(
                        EV_LI_EXEC,
                        st.vliw_ops_executed - ex0,
                        st.vliw_ops_committed - cm0,
                    )
                else:
                    redirect = self._execute_li(li)
                # dcache time: charged via self._li_dcache_penalty
                if self._li_dcache_penalty:
                    cycles += self._li_dcache_penalty
                    st.dcache_stall_cycles += self._li_dcache_penalty
                    if probe is not None:
                        probe.emit(
                            EV_CACHE_STALL, "dcache", self._li_dcache_penalty
                        )
                if self._li_extra_cycles:
                    cycles += self._li_extra_cycles
                if redirect is not None:
                    if self._eager_count and not self._sr_converged():
                        exc = WindowDivergence(
                            "early exit with unconsumed eager window "
                            "fills at 0x%x" % self._redirect_branch_addr
                        )
                        exc.fault_addr = self._redirect_branch_addr
                        raise exc
                    st.mispredicts += 1
                    if probe is not None:
                        probe.emit(
                            EV_MISPREDICT, self._redirect_branch_addr, redirect
                        )
                    cycles += self.cfg.mispredict_penalty
                    st.mispredict_cycles += self.cfg.mispredict_penalty
                    self._drain_data_store_list()
                    return BlockOutcome("mispredict", redirect, cycles)
            self._drain_data_store_list()
            return BlockOutcome("ok", block.nba_addr, cycles)
        except ArchException as exc:
            # Checkpoint recovery: restore registers, undo stores.
            recovery = len(self.ckpt_list) + 4
            for addr, size, old in reversed(self.ckpt_list):
                if size == 4:
                    self.mem.write_word(addr, old)
                else:
                    self.mem.write_byte(addr, old)
            rf.restore(shadow)
            cycles += recovery
            fault_addr = getattr(exc, "fault_addr", 0)
            kind = "aliasing" if isinstance(exc, AliasingException) else "exception"
            if kind == "aliasing":
                st.aliasing_exceptions += 1
            else:
                st.other_exceptions += 1
            if probe is not None:
                probe.emit(
                    EV_EXCEPTION, 0 if kind == "aliasing" else 1, fault_addr
                )
            return BlockOutcome(kind, block.start_addr, cycles, exc, fault_addr)

    # --------------------------------------------------------- long instr
    def _execute_li(self, li) -> Optional[int]:
        """Execute one long instruction; returns a redirect address on a
        branch misprediction, else None."""
        rf = self.rf
        self._li_dcache_penalty = 0
        self._li_extra_cycles = 0

        ops = li.dense
        results = []  # (op, payload) payload: ('ok', data) | ('exc', e)
        branch_outcomes = {}  # id(op) -> (mismatch, actual_target)

        for op in ops:
            try:
                payload = self._phase1(op)
                results.append((op, ("ok", payload)))
                if op.xkind == X_BRANCH or op.xkind == X_JMPL:
                    branch_outcomes[id(op)] = payload[1]
            except ArchException as e:
                e.fault_addr = op.addr
                results.append((op, ("exc", e)))
                if op.xkind == X_BRANCH or op.xkind == X_JMPL:
                    branch_outcomes[id(op)] = ("exc", e)

        # Tag validation (section 3.8): find the first control transfer that
        # deviates from its recorded direction.
        limit = 1 << 30
        redirect = None
        for k, br in enumerate(li.branches):
            outcome = branch_outcomes[id(br)]
            if outcome[0] == "exc":
                # A faulting control transfer with a valid tag is a real
                # architectural exception (e.g. misaligned jmpl target).
                raise outcome[1]
            mismatch, actual = outcome
            if mismatch:
                limit = k
                redirect = actual
                self._redirect_branch_addr = br.addr
                break

        # Phase 2: commit ops whose tag is valid.
        li_loads: List[Tuple[int, int, int]] = []
        li_stores: List[Tuple[int, int, int]] = []
        committed_mem: List[SchedOp] = []
        st = self.stats
        for op, (status, payload) in results:
            st.vliw_ops_executed += 1
            if op.tag_depth > limit:
                st.speculative_annulled += 1
                continue
            st.vliw_ops_committed += 1
            if status == "exc":
                if self._all_outputs_renamed(op):
                    self._defer(op, payload)
                    continue
                raise payload
            try:
                self._commit(op, payload, li_loads, li_stores, committed_mem)
            except ArchException as e:
                if not hasattr(e, "fault_addr"):
                    e.fault_addr = op.addr
                raise

        # Aliasing detection (section 3.10).
        if li_loads or li_stores:
            self._aliasing_checks(li_loads, li_stores, committed_mem)

        return redirect


    # -- renamed-source fetch helpers (Figure 2: consumers read renames) ----
    def _rr_int(self, k):
        v = self.int_rr[k]
        if type(v) is _Exc:
            raise v.exception
        if v is None:
            raise SimError("read of unwritten integer renaming register %d" % k)
        return v

    def _rr_fp(self, k):
        v = self.fp_rr[k]
        if type(v) is _Exc:
            raise v.exception
        if v is None:
            raise SimError("read of unwritten fp renaming register %d" % k)
        return v

    def _rr_cc(self, k):
        v = self.cc_rr[k]
        if type(v) is _Exc:
            raise v.exception
        if v is None:
            raise SimError("read of unwritten cc renaming register %d" % k)
        return v

    # -------------------------------------------------------------- phase 1
    def _phase1(self, op: SchedOp):
        """Compute the op's results against start-of-cycle state."""
        rf = self.rf
        xk = op.xkind
        if xk == X_COPY:
            values = []
            for act in op.copy_actions:
                tag = act[0]
                if tag in ("int", "irr"):
                    values.append(self.int_rr[act[1]])
                elif tag in ("fp", "frr"):
                    values.append(self.fp_rr[act[1]])
                elif tag in ("cc", "crr"):
                    values.append(self.cc_rr[act[1]])
                else:  # mem / mrr
                    values.append(self.mem_rr[act[1]])
            return values

        instr = op.instr
        nw = rf.nwindows
        src_t = self._tables[(self.entry_cwp + op.cwp_delta_src) % nw]
        iregs = rf.iregs

        if xk == X_ALU:
            a = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            if instr.use_imm:
                b = instr.imm & MASK32
            elif op.rs2_rr is not None:
                b = self._rr_int(op.rs2_rr)
            else:
                b = iregs[src_t[instr.rs2]]
            # alu_fn/cc_fn were resolved once at decode time (isa.predecode)
            res = instr.alu_fn(a, b)
            cc_fn = instr.cc_fn
            cc = cc_fn(a, b, res) if cc_fn is not None else None
            return (res, cc)
        if xk == X_SETHI:
            return ((instr.imm << 12) & MASK32, None)
        if xk == X_LOAD:
            base = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            if instr.use_imm:
                off = instr.imm
            elif op.rs2_rr is not None:
                off = self._rr_int(op.rs2_rr)
            else:
                off = iregs[src_t[instr.rs2]]
            addr = (base + off) & MASK32
            penalty = self.dcache.access(addr)
            if penalty > self._li_dcache_penalty:
                self._li_dcache_penalty = penalty
            val = self._load_value(addr, instr.mem_size, instr.ld_signed)
            return (val, addr)
        if xk == X_STORE:
            base = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            if instr.use_imm:
                off = instr.imm
            elif op.rs2_rr is not None:
                off = self._rr_int(op.rs2_rr)
            else:
                off = iregs[src_t[instr.rs2]]
            addr = (base + off) & MASK32
            val = (
                self._rr_int(op.rddata_rr)
                if op.rddata_rr is not None
                else iregs[src_t[instr.rd]]
            )
            return (addr, instr.mem_size, val)
        if xk == X_BRANCH:
            cc = self._rr_cc(op.ccsrc_rr) if op.ccsrc_rr is not None else rf.icc
            taken = instr.cond_fn(cc)
            actual = (
                (instr.addr + instr.imm) & MASK32 if taken else instr.addr + 4
            )
            mismatch = taken != op.taken
            return (None, (mismatch, actual))
        if xk == X_JMPL:
            base = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            target = (base + instr.imm) & MASK32
            if target & 3:
                raise MemFault(target, "misaligned jump target")
            mismatch = target != op.target
            return (instr.addr, (mismatch, target))
        if xk == X_CALL:
            return (instr.addr, None)
        if xk in (X_SAVE, X_RESTORE):
            a = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            if instr.use_imm:
                b = instr.imm & MASK32
            elif op.rs2_rr is not None:
                b = self._rr_int(op.rs2_rr)
            else:
                b = iregs[src_t[instr.rs2]]
            return ((a + b) & MASK32, None)
        if xk == X_FPOP:
            name = instr.op.name
            fregs = rf.fregs
            if name == "fitos":
                a = (
                    self._rr_int(op.rs1_rr)
                    if op.rs1_rr is not None
                    else iregs[src_t[instr.rs1]]
                )
                return (float(to_signed(a)), None)
            fa = (
                self._rr_fp(op.rs1_rr)
                if op.rs1_rr is not None
                else fregs[instr.rs1]
            )
            if name == "fstoi":
                return (to_unsigned(int(fa)), None)
            if name in ("fmov", "fneg"):
                return (instr.fp_fn(fa, 0.0), None)
            fb = (
                self._rr_fp(op.rs2_rr)
                if op.rs2_rr is not None
                else fregs[instr.rs2]
            )
            if name == "fcmp":
                return (None, fcmp_cc(fa, fb))
            return (instr.fp_fn(fa, fb), None)
        if xk == X_FLOAD:
            base = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            if instr.use_imm:
                off = instr.imm
            elif op.rs2_rr is not None:
                off = self._rr_int(op.rs2_rr)
            else:
                off = iregs[src_t[instr.rs2]]
            addr = (base + off) & MASK32
            penalty = self.dcache.access(addr)
            if penalty > self._li_dcache_penalty:
                self._li_dcache_penalty = penalty
            return (self._load_float(addr), addr)
        if xk == X_FSTORE:
            base = (
                self._rr_int(op.rs1_rr)
                if op.rs1_rr is not None
                else iregs[src_t[instr.rs1]]
            )
            if instr.use_imm:
                off = instr.imm
            elif op.rs2_rr is not None:
                off = self._rr_int(op.rs2_rr)
            else:
                off = iregs[src_t[instr.rs2]]
            addr = (base + off) & MASK32
            data = (
                self._rr_fp(op.rddata_rr)
                if op.rddata_rr is not None
                else rf.fregs[instr.rd]
            )
            return (addr, 4, data)
        raise SimError("VLIW engine: unknown xkind %d" % xk)

    def _load_value(self, addr: int, size: int, signed: bool) -> int:
        if self.cfg.data_store_list:
            hit = self._dsl_lookup(addr, size)
            if hit is not None:
                val = hit
                if signed and val & 0x80:
                    val |= 0xFFFFFF00
                return val
        if size == 4:
            return self.mem.read_word(addr)
        val = self.mem.read_byte(addr)
        if signed and val & 0x80:
            val |= 0xFFFFFF00
        return val

    def _load_float(self, addr: int):
        if self.cfg.data_store_list:
            hit = self._dsl_lookup_raw(addr, 4)
            if hit is not None:
                return struct.unpack(">f", hit.to_bytes(4, "big"))[0]
        return self.mem.read_float(addr)

    # -------------------------------------------------------------- phase 2
    def _commit(self, op: SchedOp, payload, li_loads, li_stores, committed_mem):
        rf = self.rf
        xk = op.xkind
        nw = rf.nwindows

        if xk == X_COPY:
            values = payload
            for act, value in zip(op.copy_actions, values):
                if value is None:
                    raise SimError(
                        "COPY at 0x%x reads unwritten renaming register"
                        % op.addr
                    )
                if isinstance(value, _Exc):
                    raise value.exception
                tag = act[0]
                if tag == "int":
                    _, _, visible, delta = act
                    phys = self._tables[(self.entry_cwp + delta) % nw][visible]
                    if phys:
                        rf.iregs[phys] = value
                elif tag == "irr":
                    self.int_rr[act[2]] = value
                elif tag == "fp":
                    rf.fregs[act[2]] = value
                elif tag == "frr":
                    self.fp_rr[act[2]] = value
                elif tag == "cc":
                    rf.icc = value
                elif tag == "crr":
                    self.cc_rr[act[2]] = value
                elif tag == "mem":
                    addr, size, val = value
                    self._do_store(addr, size, val)
                    li_stores.append((addr, size, op.order))
                    op.mem_addr = addr
                    op.mem_size = size
                    committed_mem.append(op)
                elif tag == "mrr":
                    self.mem_rr[act[2]] = value
            self.stats.copies_executed += 1
            return

        if xk in (X_ALU, X_SETHI, X_CALL):
            res, cc = payload
            self._write_int(op, res)
            if cc is not None:
                self._write_cc(op, cc)
            return
        if xk == X_LOAD:
            val, addr = payload
            self._write_int(op, val)
            li_loads.append((addr, op.mem_size, op.order))
            op.mem_addr = addr  # execution-time address for list insertion
            committed_mem.append(op)
            return
        if xk == X_STORE or xk == X_FSTORE:
            addr, size, val = payload
            if op.mem_rr is not None:
                self.mem_rr[op.mem_rr] = (addr, size, val)
                return
            penalty = self.dcache.access(addr)
            if penalty > self._li_dcache_penalty:
                self._li_dcache_penalty = penalty
            self._do_store(addr, size, val)
            li_stores.append((addr, size, op.order))
            op.mem_addr = addr
            committed_mem.append(op)
            return
        if xk == X_BRANCH:
            return  # direction handled by tag validation
        if xk == X_JMPL:
            res, _ = payload
            self._write_int(op, res)
            return
        if xk == X_SAVE:
            res, _ = payload
            self._sr_log.append("s")
            if rf.cansave == 0:
                if not self.cfg.vliw_window_spill_inline:
                    raise WindowOverflow("save at 0x%x" % op.addr)
                self._inline_spill()
            else:
                rf.cansave -= 1
                rf.canrestore += 1
            rf.cwp = (rf.cwp - 1) % nw
            self._write_int(op, res)
            return
        if xk == X_RESTORE:
            res, _ = payload
            self._sr_log.append("r")
            if rf.canrestore == 0:
                if not self.cfg.vliw_window_spill_inline:
                    raise WindowUnderflow("restore at 0x%x" % op.addr)
                self._inline_fill()
            else:
                rf.canrestore -= 1
                rf.cansave += 1
            rf.cwp = (rf.cwp + 1) % nw
            self._write_int(op, res)
            return
        if xk == X_FPOP:
            res, cc = payload
            name = op.instr.op.name
            if name == "fcmp":
                self._write_cc(op, cc)
            elif name == "fstoi":
                self._write_int(op, res)
            else:
                self._write_fp(op, res)
            return
        if xk == X_FLOAD:
            val, addr = payload
            self._write_fp(op, val)
            li_loads.append((addr, op.mem_size, op.order))
            op.mem_addr = addr
            committed_mem.append(op)
            return
        raise SimError("VLIW commit: unknown xkind %d" % xk)

    # ------------------------------------------------------------- helpers
    def _write_int(self, op: SchedOp, value: int, dst: bool = True) -> None:
        if op.dst_rr is not None:
            self.int_rr[op.dst_rr] = value
            return
        visible = op.int_dst_visible
        if visible is None:
            return  # destination was g0
        # The destination delta differs from the source delta only for
        # save/restore (which write into the new window).
        delta = op.cwp_delta_dst
        phys = self._tables[(self.entry_cwp + delta) % self.rf.nwindows][visible]
        if phys:
            self.rf.iregs[phys] = value

    def _write_fp(self, op: SchedOp, value: float) -> None:
        if op.dst_rr is not None:
            self.fp_rr[op.dst_rr] = value
            return
        self.rf.fregs[op.instr.rd] = value

    def _write_cc(self, op: SchedOp, cc: int) -> None:
        if op.cc_rr is not None:
            self.cc_rr[op.cc_rr] = cc
        else:
            self.rf.icc = cc

    def _satisfy_window_reqs(self, block: Block) -> None:
        rf = self.rf
        if block.req_canrestore + block.req_cansave > rf.nwindows - 2:
            # Can never be satisfied (this bound also guarantees no block
            # may write a window that eager spilling saved, keeping the
            # spill-stack contents identical to lazy sequential execution).
            raise WindowResidencyUnsatisfiable(
                "block @0x%x needs %d resident + %d free windows"
                % (block.start_addr, block.req_canrestore, block.req_cansave)
            )
        needed_fills = block.req_canrestore - rf.canrestore
        if needed_fills > 0:
            on_stack = (self.mem.size - rf.wssp) // 64
            if needed_fills > on_stack:
                # the ancestors this block touches do not exist in the
                # current context: its recorded trace cannot apply here
                raise WindowResidencyUnsatisfiable(
                    "block @0x%x needs %d spilled ancestors, stack has %d"
                    % (block.start_addr, needed_fills, on_stack)
                )
        while rf.canrestore < block.req_canrestore:
            if rf.cansave == 0:
                raise WindowUnderflow("cannot fill: no free windows")
            self._inline_fill(eager=True)
            self._eager_count += 1
        while rf.cansave < block.req_cansave:
            if rf.canrestore == 0:
                raise WindowOverflow("cannot spill: no resident ancestors")
            self._inline_spill(eager=True)
            self._eager_count += 1

    def _sr_converged(self) -> bool:
        """Replay the committed save/restore sequence under the lazy
        sequential spill rules; True when the machine's occupancy counters
        and spill stack pointer match (all eager actions were consumed)."""
        cs, cr, wssp = self._sr_entry
        for e in self._sr_log:
            if e == "s":
                if cs:
                    cs -= 1
                    cr += 1
                else:
                    wssp -= 64
            else:
                if cr:
                    cr -= 1
                    cs += 1
                else:
                    wssp += 64
        rf = self.rf
        return (
            cs == rf.cansave and cr == rf.canrestore and wssp == rf.wssp
        )

    def _inline_spill(self, eager: bool = False) -> None:
        """Checkpointed hardware window spill during VLIW execution.

        Mirrors :func:`repro.isa.semantics.do_window_spill` but routes the
        memory writes through the checkpointed store path so block rollback
        stays exact.  The spill region is dedicated (top of memory) and
        never touched by program loads/stores, so no aliasing bookkeeping
        is needed.  ``eager`` spills (block entry) adjust the occupancy
        counters so the in-block save takes the normal path; the counters
        converge with the lazy sequential semantics.
        """
        rf = self.rf
        victim = (rf.cwp + rf.canrestore) % rf.nwindows
        base = 8 + 16 * victim
        sp = rf.wssp - 64
        if sp < self.mem.size - self.mem.spill_region:
            raise SimError("window spill stack overflow (call depth too large)")
        for k in range(16):
            self._do_store(sp + 4 * k, 4, rf.iregs[base + k])
        rf.wssp = sp
        if eager:
            rf.cansave += 1
            rf.canrestore -= 1
        self._li_extra_cycles += self.cfg.window_spill_penalty
        self.stats.spill_cycles += self.cfg.window_spill_penalty
        if self.probe is not None:
            self.probe.emit(EV_WINDOW_SPILL, self.cfg.window_spill_penalty)

    def _inline_fill(self, eager: bool = False) -> None:
        """Checkpointed hardware window fill during VLIW execution."""
        rf = self.rf
        target = (rf.cwp + rf.canrestore + 1) % rf.nwindows if eager else (
            rf.cwp + 1
        ) % rf.nwindows
        base = 8 + 16 * target
        sp = rf.wssp
        if sp >= self.mem.size:
            # the frame this block expects was never spilled in the current
            # context: the recorded trace does not apply here
            raise WindowResidencyUnsatisfiable("fill with empty spill stack")
        for k in range(16):
            rf.iregs[base + k] = self._load_value(sp + 4 * k, 4, False)
        rf.wssp = sp + 64
        if eager:
            rf.canrestore += 1
            rf.cansave -= 1
        self._li_extra_cycles += self.cfg.window_spill_penalty
        self.stats.spill_cycles += self.cfg.window_spill_penalty
        if self.probe is not None:
            self.probe.emit(EV_WINDOW_SPILL, self.cfg.window_spill_penalty)

    def _defer(self, op: SchedOp, exc: ArchException) -> None:
        marker = _Exc(exc)
        if op.dst_rr is not None:
            if op.xkind in (X_FPOP, X_FLOAD) and op.instr.op.name != "fstoi":
                self.fp_rr[op.dst_rr] = marker
            else:
                self.int_rr[op.dst_rr] = marker
        if op.cc_rr is not None:
            self.cc_rr[op.cc_rr] = marker
        if op.mem_rr is not None:
            self.mem_rr[op.mem_rr] = marker

    def _all_outputs_renamed(self, op: SchedOp) -> bool:
        """True when the op is control-speculative: every architectural
        output was renamed, so its exception can be deferred."""
        if op.xkind == X_COPY:
            return False
        has_rename = (
            op.dst_rr is not None or op.cc_rr is not None or op.mem_rr is not None
        )
        if not has_rename:
            return False
        # If any write still targets an architectural location, the op is on
        # the committed path and must raise.
        from ..isa.registers import IRR_BASE, MEM_BASE

        for w in op.writes:
            if w < IRR_BASE or w >= MEM_BASE:
                return False
        return True

    def _do_store(self, addr: int, size: int, value) -> None:
        mem = self.mem
        if self.cfg.data_store_list:
            order = len(self.data_store_list)
            if isinstance(value, float):
                raw = struct.unpack(">I", struct.pack(">f", value))[0]
                self.data_store_list.append((addr, size, raw, order))
            else:
                self.data_store_list.append((addr, size, value, order))
            if len(self.data_store_list) > self.stats.max_ckpt_list:
                self.stats.max_ckpt_list = len(self.data_store_list)
            return
        if size == 4:
            if isinstance(value, float):
                old = mem.read_word(addr)
                self.ckpt_list.append((addr, 4, old))
                mem.write_float(addr, value)
            else:
                old = mem.read_word(addr)
                self.ckpt_list.append((addr, 4, old))
                mem.write_word(addr, value)
        else:
            old = mem.read_byte(addr)
            self.ckpt_list.append((addr, 1, old))
            mem.write_byte(addr, value & 0xFF)
        if len(self.ckpt_list) > self.stats.max_ckpt_list:
            self.stats.max_ckpt_list = len(self.ckpt_list)

    # ---------------------------------------------- data store list scheme
    def _dsl_lookup(self, addr: int, size: int):
        """Latest matching entry in the data store list (section 3.11 alt)."""
        for a, s, v, _ in reversed(self.data_store_list):
            if a == addr and s == size:
                return v if size == 4 else v & 0xFF
            if a < addr + size and addr < a + s:
                # partial overlap: force in-order reschedule
                raise AliasingException(0, 0)
        return None

    def _dsl_lookup_raw(self, addr: int, size: int):
        for a, s, v, _ in reversed(self.data_store_list):
            if a == addr and s == size:
                return v
            if a < addr + size and addr < a + s:
                raise AliasingException(0, 0)
        return None

    def _drain_data_store_list(self) -> None:
        """Commit buffered stores to memory in order-field order."""
        if not self.cfg.data_store_list or not self.data_store_list:
            return
        for addr, size, value, _ in sorted(
            self.data_store_list, key=lambda e: e[3]
        ):
            if size == 4:
                self.mem.write_word(addr, value)
            else:
                self.mem.write_byte(addr, value & 0xFF)
        self.data_store_list.clear()

    # ------------------------------------------------------------- aliasing
    def _aliasing_checks(self, li_loads, li_stores, committed_mem) -> None:
        """Order-field aliasing detection (section 3.10).

        Same-long-instruction pairs: a load reads before a program-earlier
        store writes, so a *program-later* load matching a store is the
        violation here; across long instructions the lists catch operations
        that executed before program-earlier ones.
        """
        for laddr, lsize, lorder in li_loads:
            for saddr, ssize, sorder in li_stores:
                if laddr < saddr + ssize and saddr < laddr + lsize:
                    if lorder > sorder:
                        raise AliasingException(lorder, sorder)
            for saddr, ssize, sorder in self.store_list:
                if laddr < saddr + ssize and saddr < laddr + lsize:
                    if lorder < sorder:
                        raise AliasingException(lorder, sorder)
        for i, (saddr, ssize, sorder) in enumerate(li_stores):
            for j in range(i + 1, len(li_stores)):
                oaddr, osize, oorder = li_stores[j]
                if saddr < oaddr + osize and oaddr < saddr + ssize:
                    raise AliasingException(sorder, oorder)
            for laddr, lsize, lorder in self.load_list:
                if laddr < saddr + ssize and saddr < laddr + lsize:
                    if sorder < lorder:
                        raise AliasingException(lorder, sorder)
            for oaddr, osize, oorder in self.store_list:
                if saddr < oaddr + osize and oaddr < saddr + ssize:
                    if sorder < oorder:
                        raise AliasingException(sorder, oorder)
        # list insertion happens after all checks (section 3.10: only ops
        # with the cross bit enter the lists)
        for op in committed_mem:
            if not op.cross:
                continue
            if op.is_store_effect or op.commits_memory:
                self.store_list.append((op.mem_addr, op.mem_size, op.order))
            else:
                self.load_list.append((op.mem_addr, op.mem_size, op.order))
        if len(self.store_list) > self.stats.max_store_list:
            self.stats.max_store_list = len(self.store_list)
        if len(self.load_list) > self.stats.max_load_list:
            self.stats.max_load_list = len(self.load_list)
