"""Pure geometry-parameterized cache kernel.

One implementation of the address -> (set, tag) mapping plus LRU
residency that was previously written twice: the conventional
:class:`~repro.memory.cache.Cache` (line-granular tags, geometry derived
from size/line_size/assoc) and the :class:`~repro.vliw.cache.VLIWCache`
(one block per line, word-indexed, full-address tags).  Both are now thin
wrappers over :class:`CacheKernel`; the batched multi-config evaluator
(:mod:`repro.batch.mc_kernel`) reproduces exactly this kernel's residency
decisions over whole address columns at once.

The kernel is *pure* mechanism: it knows nothing about miss penalties,
statistics, probes or perfect caches -- that is the wrappers' business --
and raises plain :class:`ValueError` on impossible geometry so each
wrapper can surface its own error type.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from .lru import LRUSets


def geometry_ok(size: int, line_size: int, assoc: int) -> bool:
    """Would a conventional cache accept this geometry?

    Mirrors :func:`conventional_geometry` without raising; the batched
    evaluator refuses such cells (falls back to per-cell machines) rather
    than re-raise, so invalid configurations fail with the live machine's
    own error message.
    """
    if line_size <= 0 or line_size & (line_size - 1):
        return False
    num_lines = size // line_size
    if assoc < 1 or num_lines < 1 or num_lines % assoc:
        return False
    return (num_lines // assoc) >= 1


def conventional_geometry(
    size: int, line_size: int, assoc: int
) -> Tuple[int, int]:
    """``(num_sets, line_shift)`` of a conventional cache geometry.

    Raises :class:`ValueError` with the historical constructor messages
    when the geometry is impossible (line size not a power of two, line
    count not divisible by the associativity).
    """
    if line_size <= 0 or line_size & (line_size - 1):
        raise ValueError("cache line size must be a power of two")
    num_lines = size // line_size
    if assoc < 1 or num_lines % assoc:
        raise ValueError(
            "%d lines not divisible by assoc %d" % (num_lines, assoc)
        )
    num_sets = num_lines // assoc
    if num_sets < 1:
        raise ValueError(
            "%d lines cannot be %d-way associative" % (num_lines, assoc)
        )
    return num_sets, line_size.bit_length() - 1


class CacheKernel:
    """Set-associative LRU residency over an address -> (set, tag) map.

    ``index = (addr >> shift) % num_sets``; the tag is ``addr >> shift``
    (``line_tags=True``, conventional caches -- any address inside a line
    hits) or the raw address (``line_tags=False``, the VLIW cache -- a
    block is keyed by its exact start address).
    """

    __slots__ = ("num_sets", "assoc", "shift", "line_tags", "lru")

    def __init__(
        self,
        num_sets: int,
        assoc: int,
        shift: int = 0,
        line_tags: bool = True,
    ):
        self.num_sets = num_sets
        self.assoc = assoc
        self.shift = shift
        self.line_tags = line_tags
        self.lru = LRUSets(num_sets, assoc)  # validates num_sets/assoc >= 1

    @classmethod
    def conventional(cls, size: int, line_size: int, assoc: int) -> "CacheKernel":
        """Kernel for a conventional geometry (raises ValueError)."""
        num_sets, shift = conventional_geometry(size, line_size, assoc)
        return cls(num_sets, assoc, shift=shift, line_tags=True)

    def locate(self, addr: int) -> Tuple[int, int]:
        """``(set index, tag)`` of ``addr``."""
        key = addr >> self.shift
        return key % self.num_sets, (key if self.line_tags else addr)

    # ------------------------------------------------------------- residency
    def access(self, addr: int) -> bool:
        """Timing-cache touch: LRU lookup, miss-path fill; True on hit."""
        # locate() inlined: this is the hot path of every live machine
        key = addr >> self.shift
        idx = key % self.num_sets
        tag = key if self.line_tags else addr
        hit, _ = self.lru.lookup(idx, tag)
        if not hit:
            self.lru.fill(idx, tag)
        return hit

    def lookup(self, addr: int) -> Tuple[bool, Any]:
        """``(hit, payload)``; a hit refreshes recency, a miss changes nothing."""
        idx, tag = self.locate(addr)
        return self.lru.lookup(idx, tag)

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (LRU order untouched)."""
        idx, tag = self.locate(addr)
        return self.lru.probe(idx, tag)

    def insert(self, addr: int, payload: Any = None) -> int:
        """Install as MRU, replacing a same-tag entry; returns the evicted
        victim's tag or -1."""
        idx, tag = self.locate(addr)
        return self.lru.insert(idx, tag, payload)

    def remove(self, addr: int) -> bool:
        idx, tag = self.locate(addr)
        return self.lru.remove(idx, tag)

    def clear(self) -> None:
        self.lru.clear()

    def occupancy(self) -> int:
        return self.lru.occupancy()

    @property
    def sets(self) -> List[List[Tuple[int, Any]]]:
        """The raw per-set ``(tag, payload)`` lists (inspection/export)."""
        return self.lru.sets
