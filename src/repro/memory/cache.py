"""Parametric set-associative cache timing model with LRU replacement.

Purely a *timing* structure: data always lives in :class:`MainMemory`; the
cache tracks which lines would be resident and charges miss penalties.  Used
for the Instruction Cache and Data Cache of Table 1 / section 4.4.  A
``perfect`` cache never misses (the Figure 5-7 experiments use perfect
instruction and data caches).
"""

from __future__ import annotations

from ..core.errors import SimError
from ..obs.probe import EV_CACHE_MISS
from .lru import LRUSets


class CacheStats:
    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Cache:
    """Set-associative LRU cache.

    ``access(addr)`` returns the cycle penalty (0 on hit, ``miss_penalty``
    on miss) and updates residency.  Residency bookkeeping is the shared
    :class:`~repro.memory.lru.LRUSets` structure (one MRU-first tag list
    per set), also used by the VLIW cache and the batched timing models.
    """

    __slots__ = (
        "name",
        "size",
        "line_size",
        "assoc",
        "miss_penalty",
        "perfect",
        "num_sets",
        "line_shift",
        "lru",
        "stats",
        "probe",
    )

    def __init__(
        self,
        name: str,
        size: int,
        line_size: int = 32,
        assoc: int = 1,
        miss_penalty: int = 8,
        perfect: bool = False,
        probe=None,
    ):
        self.name = name
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.miss_penalty = miss_penalty
        self.perfect = perfect
        if not perfect:
            if line_size & (line_size - 1):
                raise SimError("cache line size must be a power of two")
            num_lines = size // line_size
            if num_lines % assoc:
                raise SimError(
                    "cache %s: %d lines not divisible by assoc %d"
                    % (name, num_lines, assoc)
                )
            self.num_sets = num_lines // assoc
            self.line_shift = line_size.bit_length() - 1
            self.lru = LRUSets(self.num_sets, assoc)
        else:
            self.num_sets = 0
            self.line_shift = 0
            self.lru = None
        self.stats = CacheStats()
        #: active probe or None (miss events only -- hits stay untouched)
        self.probe = probe

    def access(self, addr: int) -> int:
        """Touch ``addr``; return the miss penalty in cycles (0 on hit)."""
        if self.perfect:
            self.stats.hits += 1
            return 0
        line = addr >> self.line_shift
        idx = line % self.num_sets
        hit, _ = self.lru.lookup(idx, line)
        if hit:
            self.stats.hits += 1
            return 0
        self.stats.misses += 1
        if self.probe is not None:
            self.probe.emit(EV_CACHE_MISS, self.name)
        self.lru.fill(idx, line)
        return self.miss_penalty

    def flush(self) -> None:
        """Drop every resident line."""
        if self.lru is not None:
            self.lru.clear()
