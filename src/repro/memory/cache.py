"""Parametric set-associative cache timing model with LRU replacement.

Purely a *timing* structure: data always lives in :class:`MainMemory`; the
cache tracks which lines would be resident and charges miss penalties.  Used
for the Instruction Cache and Data Cache of Table 1 / section 4.4.  A
``perfect`` cache never misses (the Figure 5-7 experiments use perfect
instruction and data caches).
"""

from __future__ import annotations

from ..core.errors import SimError
from ..obs.probe import EV_CACHE_MISS
from .kernel import CacheKernel


class CacheStats:
    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        total = self.hits + self.misses
        return self.misses / total if total else 0.0


class Cache:
    """Set-associative LRU cache.

    ``access(addr)`` returns the cycle penalty (0 on hit, ``miss_penalty``
    on miss) and updates residency.  All residency mechanism -- the
    address -> (set, tag) map and the MRU-first tag lists -- lives in the
    shared :class:`~repro.memory.kernel.CacheKernel`, which the VLIW
    cache and the batched multi-config timing kernel
    (:mod:`repro.batch.mc_kernel`) reuse; this class only adds penalties,
    statistics and the miss probe event.
    """

    __slots__ = (
        "name",
        "size",
        "line_size",
        "assoc",
        "miss_penalty",
        "perfect",
        "kernel",
        "stats",
        "probe",
    )

    def __init__(
        self,
        name: str,
        size: int,
        line_size: int = 32,
        assoc: int = 1,
        miss_penalty: int = 8,
        perfect: bool = False,
        probe=None,
    ):
        self.name = name
        self.size = size
        self.line_size = line_size
        self.assoc = assoc
        self.miss_penalty = miss_penalty
        self.perfect = perfect
        if not perfect:
            try:
                self.kernel = CacheKernel.conventional(size, line_size, assoc)
            except ValueError as exc:
                raise SimError("cache %s: %s" % (name, exc)) from None
        else:
            self.kernel = None
        self.stats = CacheStats()
        #: active probe or None (miss events only -- hits stay untouched)
        self.probe = probe

    @property
    def num_sets(self) -> int:
        return self.kernel.num_sets if self.kernel is not None else 0

    @property
    def line_shift(self) -> int:
        return self.kernel.shift if self.kernel is not None else 0

    def access(self, addr: int) -> int:
        """Touch ``addr``; return the miss penalty in cycles (0 on hit)."""
        if self.perfect:
            self.stats.hits += 1
            return 0
        if self.kernel.access(addr):
            self.stats.hits += 1
            return 0
        self.stats.misses += 1
        if self.probe is not None:
            self.probe.emit(EV_CACHE_MISS, self.name)
        return self.miss_penalty

    def flush(self) -> None:
        """Drop every resident line."""
        if self.kernel is not None:
            self.kernel.clear()
