"""Flat byte-addressed main memory.

Big-endian (SPARC byte order), bounds- and alignment-checked.  Floats are
stored as IEEE-754 single precision so ``stf``/``ldf`` round-trips are
deterministic and identical across engines.

The top :attr:`spill_region` bytes are reserved for the hardware-managed
register-window spill stack (see :func:`repro.isa.semantics.do_window_spill`).
"""

from __future__ import annotations

import struct

from ..core.errors import MemFault

_FLOAT = struct.Struct(">f")


class MainMemory:
    """A single linear RAM image shared by all engines of one machine."""

    __slots__ = ("size", "data", "spill_region")

    def __init__(self, size: int = 8 * 1024 * 1024, spill_region: int = 65536):
        self.size = size
        self.data = bytearray(size)
        self.spill_region = spill_region

    # -- word access ---------------------------------------------------------
    def read_word(self, addr: int) -> int:
        if addr & 3:
            raise MemFault(addr, "misaligned word read")
        if not 0 <= addr <= self.size - 4:
            raise MemFault(addr, "word read out of range")
        d = self.data
        return (d[addr] << 24) | (d[addr + 1] << 16) | (d[addr + 2] << 8) | d[addr + 3]

    def write_word(self, addr: int, value: int) -> None:
        if addr & 3:
            raise MemFault(addr, "misaligned word write")
        if not 0 <= addr <= self.size - 4:
            raise MemFault(addr, "word write out of range")
        d = self.data
        d[addr] = (value >> 24) & 0xFF
        d[addr + 1] = (value >> 16) & 0xFF
        d[addr + 2] = (value >> 8) & 0xFF
        d[addr + 3] = value & 0xFF

    # -- byte access -----------------------------------------------------------
    def read_byte(self, addr: int) -> int:
        if not 0 <= addr < self.size:
            raise MemFault(addr, "byte read out of range")
        return self.data[addr]

    def write_byte(self, addr: int, value: int) -> None:
        if not 0 <= addr < self.size:
            raise MemFault(addr, "byte write out of range")
        self.data[addr] = value & 0xFF

    # -- float access ----------------------------------------------------------
    def read_float(self, addr: int) -> float:
        if addr & 3:
            raise MemFault(addr, "misaligned float read")
        if not 0 <= addr <= self.size - 4:
            raise MemFault(addr, "float read out of range")
        return _FLOAT.unpack_from(self.data, addr)[0]

    def write_float(self, addr: int, value: float) -> None:
        if addr & 3:
            raise MemFault(addr, "misaligned float write")
        if not 0 <= addr <= self.size - 4:
            raise MemFault(addr, "float write out of range")
        _FLOAT.pack_into(self.data, addr, value)

    # -- bulk ----------------------------------------------------------------
    def load_image(self, image: bytes, base: int) -> None:
        """Copy a binary image into memory at ``base``."""
        if base + len(image) > self.size:
            raise MemFault(base, "image does not fit in memory")
        self.data[base : base + len(image)] = image

    def snapshot_range(self, lo: int, hi: int) -> bytes:
        """Immutable copy of the byte range ``[lo, hi)``."""
        return bytes(self.data[lo:hi])
