"""Shared set-associative LRU bookkeeping.

One parameterized implementation of the "most-recently-used-first list per
set" structure that was previously written twice (the conventional
:class:`~repro.memory.cache.Cache` and the
:class:`~repro.vliw.cache.VLIWCache`) and is now also the scalar fallback
of the batched cache timing models (:mod:`repro.batch`).

The class deliberately knows nothing about addresses, line sizes or miss
penalties: callers map an address to ``(set index, tag)`` themselves and
attach whatever payload they need (the VLIW cache stores the
:class:`~repro.scheduler.long_instruction.Block`; the conventional caches
store nothing).  Associativities in the paper are <= 8, so plain list
scans beat any fancier structure.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class LRUSets:
    """``num_sets`` independent MRU-first lists of ``(tag, payload)``."""

    __slots__ = ("num_sets", "assoc", "sets")

    def __init__(self, num_sets: int, assoc: int):
        if num_sets < 1 or assoc < 1:
            raise ValueError(
                "LRUSets needs num_sets >= 1 and assoc >= 1 (got %d, %d)"
                % (num_sets, assoc)
            )
        self.num_sets = num_sets
        self.assoc = assoc
        self.sets: List[List[Tuple[int, Any]]] = [[] for _ in range(num_sets)]

    def lookup(self, index: int, tag: int) -> Tuple[bool, Any]:
        """``(hit, payload)``; a hit refreshes the tag's recency."""
        s = self.sets[index]
        for i, (t, payload) in enumerate(s):
            if t == tag:
                if i:
                    s.insert(0, s.pop(i))
                return True, payload
        return False, None

    def probe(self, index: int, tag: int) -> bool:
        """Non-destructive presence check (LRU order untouched)."""
        return any(t == tag for t, _ in self.sets[index])

    def insert(self, index: int, tag: int, payload: Any = None) -> int:
        """Install ``tag`` as MRU, replacing any same-tag entry.

        Returns the evicted victim's tag, or -1 when nothing was evicted.
        """
        s = self.sets[index]
        for i, (t, _) in enumerate(s):
            if t == tag:
                s.pop(i)
                break
        s.insert(0, (tag, payload))
        if len(s) > self.assoc:
            return s.pop()[0]
        return -1

    def fill(self, index: int, tag: int, payload: Any = None) -> int:
        """Miss-path install: like :meth:`insert` but the caller guarantees
        ``tag`` is absent (skips the same-tag scan).  Returns the victim's
        tag or -1."""
        s = self.sets[index]
        s.insert(0, (tag, payload))
        if len(s) > self.assoc:
            return s.pop()[0]
        return -1

    def remove(self, index: int, tag: int) -> bool:
        """Drop ``tag``; True when it was resident."""
        s = self.sets[index]
        for i, (t, _) in enumerate(s):
            if t == tag:
                s.pop(i)
                return True
        return False

    def clear(self) -> None:
        for s in self.sets:
            s.clear()

    def occupancy(self) -> int:
        """Total resident entries across all sets."""
        return sum(len(s) for s in self.sets)

    def entries(self) -> List[Tuple[int, Any]]:
        """All resident ``(tag, payload)`` pairs (inspection/debugging)."""
        out: List[Tuple[int, Any]] = []
        for s in self.sets:
            out.extend(s)
        return out


def lru_miss_count(
    set_ids,
    tags,
    num_sets: int,
    assoc: int,
    miss_mask: Optional[list] = None,
) -> int:
    """Replay an access stream through a fresh :class:`LRUSets`, counting
    misses.  ``set_ids``/``tags`` are parallel sequences; when
    ``miss_mask`` (a mutable sequence of the same length) is given, each
    miss position is marked 1.  This is the scalar fallback the batched
    cache timing model uses for associativities its vectorized path does
    not cover."""
    sets = LRUSets(num_sets, assoc)
    lookup = sets.lookup
    fill = sets.fill
    misses = 0
    for i in range(len(tags)):
        idx = set_ids[i]
        tag = tags[i]
        hit, _ = lookup(idx, tag)
        if not hit:
            fill(idx, tag)
            misses += 1
            if miss_mask is not None:
                miss_mask[i] = 1
    return misses
