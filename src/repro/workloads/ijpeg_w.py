"""``ijpeg`` analogue: integer DCT + quantisation over an image.

Mirrors SPECint95 132.ijpeg: regular 8x8 loop nests with abundant
instruction-level parallelism concentrated in one hot loop -- the paper's
standout benchmark (ijpeg hits IPC ~7 at 16x16 blocks because several loop
iterations overlap inside one block).
"""

from .common import XORSHIFT, scaled

NAME = "ijpeg"
DESCRIPTION = "integer 8x8 DCT-like transform + quantisation over an image"
MIRRORS = "132.ijpeg: one hot, regular, ILP-rich loop nest"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    blocks = scaled(56, scale, lo=2)
    return (
        XORSHIFT
        + """
int image[64];
int coef[64];
int quant[64];
int histogram[32];

int load_block(int seed) {
  int i;
  int base = seed & 127;
  for (i = 0; i < 64; i++) {
    /* smooth gradient + noise, like photographic data */
    int row = i >> 3;
    int col = i & 7;
    image[i] = base + row * 3 + col * 2 + (rng() & 7);
  }
  return 0;
}

int dct_rows() {
  int r;
  for (r = 0; r < 8; r++) {
    int b = r << 3;
    int s0 = image[b] + image[b + 7];
    int s1 = image[b + 1] + image[b + 6];
    int s2 = image[b + 2] + image[b + 5];
    int s3 = image[b + 3] + image[b + 4];
    int d0 = image[b] - image[b + 7];
    int d1 = image[b + 1] - image[b + 6];
    int d2 = image[b + 2] - image[b + 5];
    int d3 = image[b + 3] - image[b + 4];
    coef[b] = s0 + s1 + s2 + s3;
    coef[b + 4] = (s0 + s3) - (s1 + s2);
    coef[b + 2] = (s0 - s3) + ((s1 - s2) >> 1);
    coef[b + 6] = ((s0 - s3) >> 1) - (s1 - s2);
    coef[b + 1] = d0 + (d1 >> 1) + (d2 >> 2);
    coef[b + 3] = d1 - d3 + (d0 >> 2);
    coef[b + 5] = d2 + (d3 >> 1) - (d1 >> 2);
    coef[b + 7] = d3 - (d0 >> 1) + (d2 >> 1);
  }
  return 0;
}

int dct_cols() {
  int c;
  for (c = 0; c < 8; c++) {
    int s0 = coef[c] + coef[c + 56];
    int s1 = coef[c + 8] + coef[c + 48];
    int s2 = coef[c + 16] + coef[c + 40];
    int s3 = coef[c + 24] + coef[c + 32];
    int d0 = coef[c] - coef[c + 56];
    int d1 = coef[c + 8] - coef[c + 48];
    int d2 = coef[c + 16] - coef[c + 40];
    int d3 = coef[c + 24] - coef[c + 32];
    coef[c] = (s0 + s1 + s2 + s3) >> 3;
    coef[c + 32] = ((s0 + s3) - (s1 + s2)) >> 3;
    coef[c + 16] = ((s0 - s3) + ((s1 - s2) >> 1)) >> 3;
    coef[c + 48] = (((s0 - s3) >> 1) - (s1 - s2)) >> 3;
    coef[c + 8] = (d0 + (d1 >> 1) + (d2 >> 2)) >> 3;
    coef[c + 24] = (d1 - d3 + (d0 >> 2)) >> 3;
    coef[c + 40] = (d2 + (d3 >> 1) - (d1 >> 2)) >> 3;
    coef[c + 56] = (d3 - (d0 >> 1) + (d2 >> 1)) >> 3;
  }
  return 0;
}

int quantise() {
  int i;
  int nz = 0;
  for (i = 0; i < 64; i++) {
    int q = 1 + ((i >> 3) + (i & 7) >> 1);
    int v = coef[i] >> q;
    quant[i] = v;
    if (v != 0) nz++;
    int mag = v < 0 ? -v : v;
    if (mag > 31) mag = 31;
    histogram[mag]++;
  }
  return nz;
}

float activity = 0.0;

int track_activity(int nz) {
  /* adaptive-quantisation activity estimate (fp, like the encoder's
     rate-control arithmetic) */
  float a = (float)nz * 0.125;
  activity = activity * 0.5 + a * a;
  return (int)activity;
}

int main() {
  int check = 0;
  int b;
  int i;
  for (i = 0; i < 32; i++) histogram[i] = 0;
  for (b = 0; b < %(blocks)d; b++) {
    load_block(b * 17);
    dct_rows();
    dct_cols();
    int nz = quantise();
    check = (check + nz + track_activity(nz)) & 0xffffff;
    check = (check + quant[0] + quant[9] + quant[63]) & 0xffffff;
  }
  for (i = 0; i < 32; i++) check = (check + histogram[i]) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
"""
        % {"blocks": blocks}
    )
