"""``go`` analogue: alpha-beta game-tree search.

Mirrors SPECint95 099.go: deep irregular recursion, data-dependent branches
over a board array, a large evaluation function -- the benchmark with the
biggest instruction working set in the paper (go keeps benefitting from
larger VLIW caches).
"""

from .common import scaled

NAME = "go"
DESCRIPTION = "alpha-beta search over a 1-D territory game"
MIRRORS = "099.go: game tree search, irregular branches, large working set"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    games = scaled(3, scale, lo=1)
    depth = 4
    return """
int board[16];
int nodes = 0;

int evaluate(int side) {
  int s = 0;
  int i;
  for (i = 0; i < 16; i++) {
    int v = board[i];
    if (v == side) {
      s = s + 4;
      if (i > 0 && board[i - 1] == side) s = s + 3;   /* connection */
      if (i < 15 && board[i + 1] == side) s = s + 3;
      if (i > 0 && board[i - 1] == 3 - side) s = s - 1; /* contact */
    } else if (v == 3 - side) {
      s = s - 4;
    } else {
      /* empty: territory if flanked */
      int left = i > 0 ? board[i - 1] : 0;
      int right = i < 15 ? board[i + 1] : 0;
      if (left == side && right == side) s = s + 2;
      if (left == 3 - side && right == 3 - side) s = s - 2;
    }
  }
  return s;
}

int search(int side, int depth, int alpha, int beta) {
  nodes++;
  if (depth == 0) return evaluate(side);
  int best = -32000;
  int i;
  int moves = 0;
  for (i = 0; i < 16; i++) {
    if (board[i] != 0) continue;
    /* forward pruning: skip isolated points at depth >= 3 */
    if (depth >= 3) {
      int l = i > 0 ? board[i - 1] : 0;
      int r = i < 15 ? board[i + 1] : 0;
      if (l == 0 && r == 0 && i != 7 && i != 8) continue;
    }
    moves++;
    board[i] = side;
    int v = -search(3 - side, depth - 1, -beta, -alpha);
    board[i] = 0;
    if (v > best) best = v;
    if (best > alpha) alpha = best;
    if (alpha >= beta) break;
  }
  if (moves == 0) return evaluate(side);
  return best;
}

int main() {
  int check = 0;
  int g;
  for (g = 0; g < %(games)d; g++) {
    int i;
    for (i = 0; i < 16; i++) board[i] = 0;
    /* seed position varies per game */
    board[(g * 3) & 15] = 1;
    board[(g * 5 + 2) & 15] = 2;
    int score = search(1, %(depth)d, -32000, 32000);
    check = (check + score + 100) & 0xffffff;
  }
  check = (check + nodes) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
""" % {
        "games": games,
        "depth": depth,
    }
