"""``gcc`` analogue: recursive-descent expression compiler.

Mirrors SPECint95 126.gcc: call-heavy, branchy traversal of token streams
with many distinct code paths (large static footprint relative to the other
workloads), recursion through the precedence levels and a constant-folding
'optimisation' pass.
"""

from .common import XORSHIFT, scaled

NAME = "gcc"
DESCRIPTION = "recursive-descent parser + constant folder over generated expressions"
MIRRORS = "126.gcc: branchy, call-heavy, larger instruction working set"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    exprs = scaled(400, scale, lo=4)
    return (
        XORSHIFT
        + """
/* token kinds: 0=num 1=+ 2=- 3=* 4=( 5=) 6=end */
int tokens[96];
int values[96];
int ntok = 0;
int pos = 0;
int fold_count = 0;

int gen_expr(int depth) {
  /* grammar-directed random generation, bounded depth */
  if (depth <= 0 || (rng() & 7) < 3) {
    tokens[ntok] = 0;
    values[ntok] = rng() & 1023;
    ntok++;
    return 0;
  }
  int r = rng() & 7;
  if (r < 2 && ntok < 80) {
    tokens[ntok] = 4; ntok++;
    gen_expr(depth - 1);
    tokens[ntok] = 5; ntok++;
    return 0;
  }
  gen_expr(depth - 1);
  int op = 1 + (rng() & 1);
  if ((rng() & 7) == 0) op = 3;
  tokens[ntok] = op; ntok++;
  if (ntok < 88) gen_expr(depth - 1);
  else { tokens[ntok] = 0; values[ntok] = 1; ntok++; }
  return 0;
}

/* minicc resolves calls after reading every function, so mutual
   recursion needs no prototypes */
int parse_expr() {
  int v = parse_term();
  while (tokens[pos] == 1 || tokens[pos] == 2) {
    int op = tokens[pos];
    pos++;
    int r = parse_term();
    if (op == 1) v = v + r; else v = v - r;
    fold_count++;
  }
  return v & 0xffffff;
}

int parse_term() {
  int v = parse_primary();
  while (tokens[pos] == 3) {
    pos++;
    int r = parse_primary();
    /* strength-reduced multiply: the 'compiler' folds by shifts */
    v = ((v << 1) + (v >> 1) + r) & 0xffffff;
    fold_count++;
  }
  return v;
}

int parse_primary() {
  if (tokens[pos] == 4) {
    pos++;
    int v = parse_expr();
    if (tokens[pos] == 5) pos++;
    return v;
  }
  int w = values[pos];
  pos++;
  return w;
}

int main() {
  int check = 0;
  int e;
  for (e = 0; e < %(exprs)d; e++) {
    ntok = 0;
    gen_expr(5);
    tokens[ntok] = 6;
    pos = 0;
    check = (check + parse_expr()) & 0xffffff;
  }
  check = (check + fold_count) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
"""
        % {"exprs": exprs}
    )
