"""``compress`` analogue: byte-stream compression with hashing.

Mirrors SPECint95 129.compress: tight byte loops over a buffer, a rolling
hash probing a code table, run-length emission -- small instruction working
set, very loop-dominated (the paper notes compress is insensitive to VLIW
cache size).
"""

from .common import XORSHIFT, scaled

NAME = "compress"
DESCRIPTION = "RLE + rolling-hash byte compressor over synthetic text"
MIRRORS = (
    "129.compress: byte-granularity loops, hash-table probes, small code "
    "footprint"
)


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    size = scaled(1500, scale, lo=64)
    passes = scaled(6, scale, lo=1)
    return (
        XORSHIFT
        + """
char input[%(size)d];
char output[%(osize)d];
int table[256];

int fill_input() {
  int i;
  /* skewed distribution with runs, like text */
  for (i = 0; i < %(size)d; i++) {
    int r = rng() & 255;
    if (r < 90) input[i] = 'e';
    else if (r < 140) input[i] = ' ';
    else if (r < 200) input[i] = 'a' + (r & 15);
    else input[i] = r;
  }
  return 0;
}

int compress_pass() {
  int i = 0;
  int out = 0;
  int hash = 0;
  while (i < %(size)d) {
    int c = input[i];
    int run = 1;
    while (i + run < %(size)d && input[i + run] == c && run < 35)
      run++;
    hash = ((hash << 5) + hash + c) & 255;
    if (run > 3) {
      output[out] = 27;           /* escape */
      output[out + 1] = c;
      output[out + 2] = run;
      out = out + 3;
      table[hash] = table[hash] + run;
    } else {
      int k;
      for (k = 0; k < run; k++) output[out + k] = c;
      out = out + run;
      table[hash]++;
    }
    i = i + run;
  }
  return out;
}

float ratio_acc = 0.0;

int track_ratio(int out_bytes) {
  /* running compression-ratio estimate, like compress's reporting */
  float ratio = (float)out_bytes / %(size)d.0;
  ratio_acc = ratio_acc * 0.75 + ratio * 25.0;
  return (int)ratio_acc;
}

int main() {
  int p;
  int check = 0;
  int i;
  for (i = 0; i < 256; i++) table[i] = 0;
  for (p = 0; p < %(passes)d; p++) {
    fill_input();
    int out = compress_pass();
    check = check + out + track_ratio(out);
    for (i = 0; i < out; i = i + 7) check = (check + output[i]) & 0xffffff;
  }
  for (i = 0; i < 256; i++) check = (check + table[i]) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
"""
        % {"size": size, "osize": size + size // 2 + 8, "passes": passes}
    )
