"""``m88ksim`` analogue: a bytecode CPU interpreter.

Mirrors SPECint95 124.m88ksim (a Motorola 88100 simulator): the classic
fetch-decode-dispatch interpreter loop with a register-file array and an
embedded guest program, giving indirect-branch-like dispatch behaviour and
moderate ILP.
"""

from .common import scaled

NAME = "m88ksim"
DESCRIPTION = "bytecode CPU simulator running an embedded guest program"
MIRRORS = "124.m88ksim: interpreter dispatch loop over a register machine"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    runs = scaled(22, scale, lo=2)
    # guest ISA: op r1 r2 r3 packed in one int: (op<<12)|(a<<8)|(b<<4)|c
    # ops: 0 halt, 1 li(c imm=b), 2 add, 3 sub, 4 shl, 5 shr, 6 and,
    #      7 or, 8 xor, 9 bnz(a, target=b*16+c), 10 ld, 11 st, 12 mov
    guest = [
        (1, 0, 12, 0),  # r0 = 12  (loop counter)
        (1, 1, 0, 1),  # r1 = 0   (sum)
        (1, 2, 1, 2),  # r2 = 1
        (1, 3, 0, 3),  # r3 = 0   (mem index)
        # loop:
        (11, 1, 0, 3),  # mem[r3] = r1
        (2, 1, 1, 0),  # r1 += r0
        (4, 2, 2, 1),  # r2 = r2 << 1 ... encoded as shl r2, r2, imm1
        (10, 4, 0, 3),  # r4 = mem[r3]
        (8, 1, 1, 4),  # r1 ^= r4
        (2, 3, 3, 2),  # r3 += r2 (mod mask applied by interpreter)
        (3, 0, 0, 2),  # r0 -= r2? no: r0 = r0 - r2 -> use imm-ish
        (9, 0, 0, 4),  # bnz r0 -> loop (target slot 4)
        (0, 0, 0, 0),  # halt
    ]
    words = ", ".join(
        str((op << 12) | (a << 8) | (b << 4) | c) for (op, a, b, c) in guest
    )
    return """
int prog[%(proglen)d] = {%(words)s};
int regs[16];
int gmem[32];
int executed = 0;

int run_guest(int seed) {
  int pc = 0;
  int steps = 0;
  int i;
  for (i = 0; i < 16; i++) regs[i] = 0;
  for (i = 0; i < 32; i++) gmem[i] = seed + i;
  while (steps < 600) {
    int insn = prog[pc];
    int op = (insn >> 12) & 15;
    int a = (insn >> 8) & 15;
    int b = (insn >> 4) & 15;
    int c = insn & 15;
    pc++;
    steps++;
    executed++;
    if (op == 0) break;
    else if (op == 1) regs[a] = b;
    else if (op == 2) regs[a] = regs[b] + regs[c];
    else if (op == 3) regs[a] = regs[b] - regs[c];
    else if (op == 4) regs[a] = regs[b] << (c & 7);
    else if (op == 5) regs[a] = (regs[b] >> (c & 7)) & 0xffffff;
    else if (op == 6) regs[a] = regs[b] & regs[c];
    else if (op == 7) regs[a] = regs[b] | regs[c];
    else if (op == 8) regs[a] = regs[b] ^ regs[c];
    else if (op == 9) { if (regs[a] != 0) pc = b * 16 + c; }
    else if (op == 10) regs[a] = gmem[regs[c] & 31];
    else if (op == 11) gmem[regs[c] & 31] = regs[a];
    else if (op == 12) regs[a] = regs[b];
  }
  return regs[1];
}

int main() {
  int check = 0;
  int r;
  for (r = 0; r < %(runs)d; r++) {
    check = (check + run_guest(r * 7 + 1)) & 0xffffff;
  }
  check = (check + executed) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
""" % {
        "runs": runs,
        "proglen": len(guest),
        "words": words,
    }
