"""Workload registry: the Table 2 analogue, plus synthetic workloads.

Maps benchmark names to their minicc sources, compiles and caches the
assembled :class:`~repro.asm.program.Program` objects, and caches the
reference-machine instruction counts (the IPC numerator) per
``(name, scale, hw_mul)`` so parameter sweeps do not re-run the reference
for every machine configuration.

Besides the eight fixed benchmarks, any name of the form
``synth:<spec-hash>`` resolves through :mod:`repro.synth`: the spec is
looked up in the synth store (``results/synth/`` /
``$REPRO_SYNTH_DIR``) and its source generated deterministically, so
generated workloads ride through ``run_sweep``, the result cache, the
trace store and family batching exactly like the fixed ones.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..asm.assembler import assemble
from ..asm.program import Program
from ..core.errors import SimError
from ..core.reference import ReferenceMachine
from ..lang import CompilerOptions, compile_minicc
from . import (
    compress_w,
    gcc_w,
    go_w,
    ijpeg_w,
    m88ksim_w,
    perl_w,
    vortex_w,
    xlisp_w,
)

_MODULES = {
    m.NAME: m
    for m in (
        compress_w,
        gcc_w,
        go_w,
        ijpeg_w,
        m88ksim_w,
        perl_w,
        vortex_w,
        xlisp_w,
    )
}

#: the paper's benchmark order (Table 2)
BENCHMARKS = [
    "compress",
    "gcc",
    "go",
    "ijpeg",
    "m88ksim",
    "perl",
    "vortex",
    "xlisp",
]

_program_cache: Dict[Tuple, Program] = {}
_reference_cache: Dict[Tuple, Tuple[int, bytes, int]] = {}


def workload_info(name: str) -> Tuple[str, str]:
    """-> (description, which SPECint95 program it mirrors)."""
    if name.startswith("synth:"):
        # lazy: repro.synth imports the sweep layer, which imports us
        from ..synth.store import resolve_spec

        spec = resolve_spec(name)
        return spec.describe(), "parametric synthetic workload (repro.synth)"
    mod = _MODULES.get(name)
    if mod is None:
        raise SimError(
            "unknown workload %r (have: %s, plus synth:<hash> names)"
            % (name, BENCHMARKS)
        )
    return mod.DESCRIPTION, mod.MIRRORS


def workload_source(name: str, scale: float = 1.0) -> str:
    """The minicc source of workload ``name`` at ``scale``."""
    if name.startswith("synth:"):
        from ..synth.generator import generate_source
        from ..synth.store import resolve_spec

        return generate_source(resolve_spec(name), scale)
    mod = _MODULES.get(name)
    if mod is None:
        raise SimError(
            "unknown workload %r (have: %s, plus synth:<hash> names)"
            % (name, BENCHMARKS)
        )
    return mod.source(scale)


def load_program(
    name: str, scale: float = 1.0, hw_mul: bool = False, optimize: bool = True
) -> Program:
    """Compile and cache one workload.

    ``optimize=True`` (default) compiles like the paper's methodology (its
    SPECint95 binaries came from optimising gcc): counted loops unrolled
    twice and basic blocks list-scheduled so independent chains interleave.
    ``optimize=False`` gives the naive straight-line code for the
    compiler-quality ablation.
    """
    key = (name, scale, hw_mul, optimize)
    if key not in _program_cache:
        src = workload_source(name, scale)
        opts = CompilerOptions(
            hw_mul=hw_mul,
            unroll=2 if optimize else 1,
            schedule=optimize,
        )
        _program_cache[key] = assemble(compile_minicc(src, opts))
    return _program_cache[key]


def reference_run(
    name: str, scale: float = 1.0, hw_mul: bool = False, optimize: bool = True
) -> Tuple[int, bytes, int]:
    """-> (instruction count, output, exit code) of the reference machine."""
    key = (name, scale, hw_mul, optimize)
    if key not in _reference_cache:
        ref = ReferenceMachine(load_program(name, scale, hw_mul, optimize))
        count = ref.run(max_instructions=1_000_000_000)
        _reference_cache[key] = (count, ref.output, ref.exit_code)
    return _reference_cache[key]
