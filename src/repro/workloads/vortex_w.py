"""``vortex`` analogue: an in-memory object database.

Mirrors SPECint95 147.vortex: record insertion/lookup/deletion through a
hash index with chained buckets -- pointer-style traversals over parallel
arrays (minicc has no structs), mixed with field updates.
"""

from .common import XORSHIFT, scaled

NAME = "vortex"
DESCRIPTION = "hashed record store: insert / lookup / update / delete cycles"
MIRRORS = "147.vortex: OO database transactions, chained hash lookups"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    ops = scaled(3000, scale, lo=16)
    nrec = 128
    return (
        XORSHIFT
        + """
/* record fields as parallel arrays; 0 is the null "pointer" */
int rec_key[%(nrec)d];
int rec_val[%(nrec)d];
int rec_next[%(nrec)d];
int buckets[32];
int freelist = 0;
int live = 0;

int db_init() {
  int i;
  for (i = 1; i < %(nrec)d - 1; i++) rec_next[i] = i + 1;
  rec_next[%(nrec)d - 1] = 0;
  freelist = 1;
  for (i = 0; i < 32; i++) buckets[i] = 0;
  return 0;
}

int db_insert(int key, int val) {
  if (freelist == 0) return 0;
  int r = freelist;
  freelist = rec_next[r];
  int b = key & 31;
  rec_key[r] = key;
  rec_val[r] = val;
  rec_next[r] = buckets[b];
  buckets[b] = r;
  live++;
  return r;
}

int db_lookup(int key) {
  int r = buckets[key & 31];
  while (r != 0) {
    if (rec_key[r] == key) return r;
    r = rec_next[r];
  }
  return 0;
}

int db_delete(int key) {
  int b = key & 31;
  int r = buckets[b];
  int prev = 0;
  while (r != 0) {
    if (rec_key[r] == key) {
      if (prev == 0) buckets[b] = rec_next[r];
      else rec_next[prev] = rec_next[r];
      rec_next[r] = freelist;
      freelist = r;
      live--;
      return 1;
    }
    prev = r;
    r = rec_next[r];
  }
  return 0;
}

int main() {
  int check = 0;
  int i;
  db_init();
  for (i = 0; i < %(ops)d; i++) {
    int key = rng() & 255;
    int action = rng() & 7;
    if (action < 4) {
      if (db_lookup(key) == 0) db_insert(key, key * 2 + 1);
      else check = (check + 1) & 0xffffff;
    } else if (action < 6) {
      int r = db_lookup(key);
      if (r != 0) {
        rec_val[r] = (rec_val[r] + i) & 0xffff;
        check = (check + rec_val[r]) & 0xffffff;
      }
    } else {
      check = (check + db_delete(key)) & 0xffffff;
    }
  }
  /* walk every chain for the final checksum */
  for (i = 0; i < 32; i++) {
    int w = buckets[i];
    while (w != 0) {
      check = (check + rec_key[w] + rec_val[w]) & 0xffffff;
      w = rec_next[w];
    }
  }
  check = (check + live * 64) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
"""
        % {"nrec": nrec, "ops": ops}
    )
