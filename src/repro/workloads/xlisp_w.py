"""``xlisp`` analogue: cons-cell s-expression evaluator with mark-sweep GC.

Mirrors SPECint95 130.li (xlisp): recursive evaluation over boxed cons
cells, pointer chasing through an arena, allocation pressure and a
mark/sweep collection phase.
"""

from .common import XORSHIFT, scaled

NAME = "xlisp"
DESCRIPTION = "cons-cell expression evaluator with mark-sweep collection"
MIRRORS = "130.li: recursive eval, cons allocation, pointer chasing, GC"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    rounds = scaled(26, scale, lo=2)
    ncells = 512
    return (
        XORSHIFT
        + """
/* cell tags: 0 free, 1 number (car=value), 2 op node (car=op, cdr=args
   pair), 3 pair (car=child cell, cdr=next pair) */
int tag[%(n)d];
int car_[%(n)d];
int cdr_[%(n)d];
int marks[%(n)d];
int free_head = 0;
int allocs = 0;
int gcs = 0;
int oom = 0;

int heap_init() {
  int i;
  for (i = 1; i < %(n)d - 1; i++) { tag[i] = 0; cdr_[i] = i + 1; }
  tag[%(n)d - 1] = 0;
  cdr_[%(n)d - 1] = 0;
  free_head = 1;
  for (i = 0; i < %(n)d; i++) marks[i] = 0;
  return 0;
}

int valid(int p) { return p > 0 && p < %(n)d; }

int mark(int p) {
  while (valid(p) && marks[p] == 0) {
    marks[p] = 1;
    int t = tag[p];
    if (t == 2) { p = cdr_[p]; }
    else if (t == 3) { mark(car_[p]); p = cdr_[p]; }
    else p = 0;
  }
  return 0;
}

int sweep() {
  int i;
  int freed = 0;
  free_head = 0;
  for (i = 1; i < %(n)d; i++) {
    if (marks[i] == 0) {
      tag[i] = 0;
      cdr_[i] = free_head;
      free_head = i;
      freed++;
    }
    marks[i] = 0;
  }
  gcs++;
  return freed;
}

int alloc() {
  if (free_head == 0) { oom++; return 0; }
  int p = free_head;
  free_head = cdr_[p];
  allocs++;
  return p;
}

int make_num(int v) {
  int p = alloc();
  if (p == 0) return 0;
  tag[p] = 1;
  car_[p] = v & 1023;
  cdr_[p] = 0;
  return p;
}

int make_tree(int depth) {
  if (depth == 0 || (rng() & 7) < 2) return make_num(rng());
  int left = make_tree(depth - 1);
  int right = make_tree(depth - 1);
  int pr = alloc();              /* pair holding right */
  int pl = alloc();              /* pair holding left */
  int node = alloc();
  if (node == 0 || pl == 0 || pr == 0) return left;
  tag[pr] = 3; car_[pr] = right; cdr_[pr] = 0;
  tag[pl] = 3; car_[pl] = left;  cdr_[pl] = pr;
  tag[node] = 2; car_[node] = rng() & 3; cdr_[node] = pl;
  return node;
}

int eval_cell(int p) {
  if (!valid(p)) return 0;
  int t = tag[p];
  if (t == 1) return car_[p];
  if (t != 2) return 0;
  int op = car_[p];
  int pl = cdr_[p];
  if (!valid(pl)) return 0;
  int a = eval_cell(car_[pl]);
  int pr = cdr_[pl];
  int b = valid(pr) ? eval_cell(car_[pr]) : 0;
  if (op == 0) return (a + b) & 0xffff;
  if (op == 1) return (a - b) & 0xffff;
  if (op == 2) return a > b ? a : b;
  return (a & 1) + (b & 1);
}

int main() {
  int check = 0;
  int r;
  heap_init();
  for (r = 0; r < %(rounds)d; r++) {
    int tree = make_tree(5);
    check = (check + eval_cell(tree)) & 0xffffff;
    check = (check + eval_cell(tree)) & 0xffffff;
    /* collect every other round, keeping the current tree live */
    if ((r & 1) == 1) { mark(tree); check = (check + sweep()) & 0xffffff; }
  }
  check = (check + allocs + gcs * 256 + oom) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
"""
        % {"n": ncells, "rounds": rounds}
    )
