"""``perl`` analogue: string scanning and hashing.

Mirrors SPECint95 134.perl: byte-wise string scanning, word splitting,
hash-table accumulation and a naive pattern-match loop -- branchy,
data-dependent control flow over character data.
"""

from .common import XORSHIFT, scaled

NAME = "perl"
DESCRIPTION = "word split + hash count + substring matching over text"
MIRRORS = "134.perl: string scanning, hashing, branchy byte loops"


def source(scale: float = 1.0) -> str:
    """minicc source at the given size multiplier."""
    text_len = scaled(900, scale, lo=64)
    passes = scaled(5, scale, lo=1)
    return (
        XORSHIFT
        + """
char text[%(tlen)d];
int hashtab[128];
int hashcnt[128];
char pattern[] = "the";

int make_text() {
  int i = 0;
  while (i < %(tlen)d - 8) {
    int r = rng() & 15;
    if (r < 3) { text[i] = ' '; i++; }
    else if (r < 5) {
      text[i] = 't'; text[i+1] = 'h'; text[i+2] = 'e'; i = i + 3;
    } else {
      int len = 1 + (rng() & 3);
      int k;
      for (k = 0; k < len; k++) { text[i] = 'a' + (rng() & 15); i++; }
    }
  }
  while (i < %(tlen)d) { text[i] = ' '; i++; }
  text[%(tlen)d - 1] = 0;
  return 0;
}

int count_words() {
  int i = 0;
  int words = 0;
  while (text[i]) {
    while (text[i] == ' ') i++;
    if (!text[i]) break;
    int h = 5381;
    while (text[i] && text[i] != ' ') {
      h = ((h << 5) + h + text[i]) & 127;
      i++;
    }
    hashtab[h] = h;
    hashcnt[h]++;
    words++;
  }
  return words;
}

int match_pattern() {
  int i;
  int hits = 0;
  for (i = 0; text[i + 2]; i++) {
    if (text[i] == pattern[0]) {
      int j = 1;
      while (pattern[j] && text[i + j] == pattern[j]) j++;
      if (!pattern[j]) hits++;
    }
  }
  return hits;
}

int main() {
  int check = 0;
  int p;
  int i;
  for (i = 0; i < 128; i++) { hashtab[i] = 0; hashcnt[i] = 0; }
  for (p = 0; p < %(passes)d; p++) {
    make_text();
    check = (check + count_words()) & 0xffffff;
    check = (check + match_pattern() * 16) & 0xffffff;
  }
  for (i = 0; i < 128; i++) check = (check + hashcnt[i]) & 0xffffff;
  print_int(check);
  return check & 0xff;
}
"""
        % {"tlen": text_len, "passes": passes}
    )
