"""Shared pieces for the SPECint95-analogue workloads.

Each workload module exposes ``NAME``, ``DESCRIPTION``, ``MIRRORS`` (which
SPECint95 program it stands in for and why) and ``source(scale)`` returning
minicc source.  Programs are deterministic: they print a checksum with
``print_int`` and exit with ``checksum & 0xff``, so the reference machine
validates every configuration's output byte for byte.

The PRNG is a xorshift (shift/xor only -- no multiplies) so random data
generation does not drown the workload's own character in software-multiply
library calls.
"""

XORSHIFT = """
int rng_state = 2463534242;
int rng() {
  int x = rng_state;
  x = x ^ (x << 13);
  x = x ^ ((x >> 17) & 32767);
  x = x ^ (x << 5);
  rng_state = x;
  return x;
}
"""


def scaled(n: int, scale: float, lo: int = 1) -> int:
    """Scale a workload parameter, clamped below at ``lo``."""
    v = int(n * scale)
    return v if v >= lo else lo
