"""Basic-block instruction scheduling over srisc assembly text.

The SPECint95 code the paper measured came from an optimising compiler
whose scheduler interleaves independent computations; minicc emits each
expression's chain contiguously, which makes consecutive instructions
dependent and starves the DTSVLIW's slots.  This pass list-schedules each
basic block of the generated assembly (critical-path priority), so
independent chains -- e.g. unrolled loop iterations -- arrive interleaved
at the Scheduler Unit, just as they would from gcc -O2.

The pass operates on the text the code generator emits, so it only has to
understand minicc's closed output vocabulary.  Dependence rules:

* register true/anti/output dependences (integer %regs, %fN, the condition
  codes written by ``...cc``/``cmp``/``tst``/``fcmp`` and read by branches);
* loads may reorder with loads; stores are ordered against every other
  memory access (addresses are unknown statically);
* control transfers, ``save``/``restore``, and ``ta`` end a block and never
  move; labels start one.

Correctness is guarded end to end by the machine's lockstep test mode: any
violated dependence shows up as a state mismatch against the reference.
"""

from __future__ import annotations

import re
from typing import List, Set

_REG_RE = re.compile(r"%([a-z]+[0-9]*)")

#: ABI aliases normalised so dependence tracking sees one name per register
_ALIASES = {"sp": "o6", "fp": "i6", "r0": "g0"}
_ALIASES.update({"r%d" % i: n for i, n in enumerate(
    ["g%d" % k for k in range(8)]
    + ["o%d" % k for k in range(8)]
    + ["l%d" % k for k in range(8)]
    + ["i%d" % k for k in range(8)]
)})


def _norm(reg: str) -> str:
    return _ALIASES.get(reg, reg)

#: mnemonics that terminate a basic block (and are pinned at its end)
_BLOCK_ENDERS = {
    "ba", "bn", "be", "bne", "bl", "ble", "bg", "bge", "blu", "bleu",
    "bgu", "bgeu", "bpos", "bneg", "bvs", "bvc", "b", "jmp", "bz", "bnz",
    "bcs", "bcc", "call", "jmpl", "ret", "retl", "ta", "save", "restore",
}

_CC_WRITERS = {"addcc", "subcc", "andcc", "orcc", "xorcc", "cmp", "tst", "fcmp"}
_CC_READERS = {
    "be", "bne", "bl", "ble", "bg", "bge", "blu", "bleu", "bgu", "bgeu",
    "bpos", "bneg", "bvs", "bvc", "bz", "bnz", "bcs", "bcc",
}

_THREE_OP = {
    "add", "sub", "and", "or", "xor", "andn", "orn", "xnor", "sll", "srl",
    "sra", "smul", "umul", "sdiv", "udiv", "addcc", "subcc", "andcc",
    "orcc", "xorcc", "fadd", "fsub", "fmul", "fdiv",
}
_TWO_OP_DEST_LAST = {"mov", "set", "neg", "not", "sethi", "fmov", "fneg", "fitos", "fstoi"}
_LOADS = {"ld", "ldub", "ldsb", "ldf"}
_STORES = {"st", "stb", "stf"}


class _Line:
    __slots__ = ("text", "mnemonic", "reads", "writes", "is_load", "is_store", "idx")

    def __init__(self, text: str, idx: int):
        self.text = text
        self.idx = idx
        stripped = text.strip()
        parts = stripped.split(None, 1)
        self.mnemonic = parts[0].lower() if parts else ""
        self.reads: Set[str] = set()
        self.writes: Set[str] = set()
        self.is_load = self.mnemonic in _LOADS
        self.is_store = self.mnemonic in _STORES
        self._analyse(parts[1] if len(parts) > 1 else "")

    def _analyse(self, operands: str) -> None:
        mn = self.mnemonic
        # strip comments
        for marker in (";", "#", "!"):
            if marker in operands:
                operands = operands.split(marker)[0]
        ops = [o.strip() for o in operands.split(",")] if operands.strip() else []

        def regs_of(tok: str) -> List[str]:
            return [_norm(m.group(1)) for m in _REG_RE.finditer(tok)]

        if mn in _CC_WRITERS:
            self.writes.add("%cc")
        if mn in _CC_READERS:
            self.reads.add("%cc")

        if mn in _THREE_OP and len(ops) == 3:
            for r in regs_of(ops[0]) + regs_of(ops[1]):
                self.reads.add(r)
            for r in regs_of(ops[2]):
                self._write(r)
        elif mn in ("cmp",) and len(ops) == 2:
            for tok in ops:
                for r in regs_of(tok):
                    self.reads.add(r)
        elif mn == "tst" and len(ops) == 1:
            for r in regs_of(ops[0]):
                self.reads.add(r)
        elif mn in _TWO_OP_DEST_LAST and len(ops) == 2:
            for r in regs_of(ops[0]):
                self.reads.add(r)
            for r in regs_of(ops[1]):
                self._write(r)
        elif mn in _LOADS and len(ops) == 2:
            for r in regs_of(ops[0]):  # address registers
                self.reads.add(r)
            for r in regs_of(ops[1]):
                self._write(r)
        elif mn in _STORES and len(ops) == 2:
            for r in regs_of(ops[0]) + regs_of(ops[1]):
                self.reads.add(r)
        elif mn == "fcmp" and len(ops) == 2:
            for tok in ops:
                for r in regs_of(tok):
                    self.reads.add(r)
        else:
            # unknown / control transfer: treat every register as read so
            # the line never reorders incorrectly (they end blocks anyway)
            for r in regs_of(operands):
                self.reads.add(r)

    def _write(self, reg: str) -> None:
        if reg == "g0":
            return
        self.writes.add(reg)


def _schedule_block(lines: List[_Line]) -> List[_Line]:
    """Critical-path list scheduling of one basic block."""
    n = len(lines)
    if n < 3:
        return lines
    succs: List[List[int]] = [[] for _ in range(n)]
    npreds = [0] * n
    for j in range(n):
        lj = lines[j]
        for i in range(j - 1, -1, -1):
            li = lines[i]
            dep = bool(
                (lj.reads & li.writes)
                or (lj.writes & li.writes)
                or (lj.writes & li.reads)
            )
            if not dep and (lj.is_load or lj.is_store):
                # stores order against all memory ops; loads only vs stores
                if lj.is_store and (li.is_load or li.is_store):
                    dep = True
                elif lj.is_load and li.is_store:
                    dep = True
            if dep:
                succs[i].append(j)
                npreds[j] += 1
    # height = longest path to the block end (critical path priority)
    height = [1] * n
    for i in range(n - 1, -1, -1):
        for j in succs[i]:
            if height[j] + 1 > height[i]:
                height[i] = height[j] + 1
    ready = [i for i in range(n) if npreds[i] == 0]
    out: List[_Line] = []
    import heapq

    heap = [(-height[i], i) for i in ready]
    heapq.heapify(heap)
    while heap:
        _, i = heapq.heappop(heap)
        out.append(lines[i])
        for j in succs[i]:
            npreds[j] -= 1
            if npreds[j] == 0:
                heapq.heappush(heap, (-height[j], j))
    assert len(out) == n
    return out


def schedule_assembly(asm_text: str) -> str:
    """Reorder instructions inside each basic block of ``asm_text``."""
    out_lines: List[str] = []
    block: List[_Line] = []
    in_text = True

    def flush() -> None:
        nonlocal block
        if block:
            for line in _schedule_block(block):
                out_lines.append(line.text)
            block = []

    for raw in asm_text.splitlines():
        stripped = raw.strip()
        # directives / section switches
        if stripped.startswith("."):
            token = stripped.split(None, 1)[0]
            if token in (".text", ".data") or not stripped.endswith(":"):
                flush()
                if token == ".data":
                    in_text = False
                elif token == ".text":
                    in_text = True
                out_lines.append(raw)
                continue
        if not in_text or not stripped or stripped.startswith((";", "#", "!")):
            flush()
            out_lines.append(raw)
            continue
        if ":" in stripped.split(None, 1)[0]:
            # a label starts a new block (the label line may also carry an
            # instruction; keep such lines as barriers)
            flush()
            out_lines.append(raw)
            continue
        mn = stripped.split(None, 1)[0].lower()
        if mn in _BLOCK_ENDERS:
            flush()
            out_lines.append(raw)
            continue
        block.append(_Line(raw, len(block)))
    flush()
    return "\n".join(out_lines) + "\n"
