"""Two-pass assembler for srisc.

Pass 1 parses statements and lays out sections (labels get addresses);
pass 2 expands pseudo-instructions, evaluates expressions against the symbol
table and encodes machine words.

Supported pseudo-instructions (all SPARC-style operand order,
``op src1, src2, dst``):

===========  =====================================================
``mov a, %rd``        ``or %g0, a, %rd``
``set v, %rd``        ``sethi %hi(v), %rd ; or %rd, %lo(v), %rd`` (always 8 bytes)
``cmp %a, b``         ``subcc %a, b, %g0``
``tst %a``            ``orcc %g0, %a, %g0``
``neg %a, %rd``       ``sub %g0, %a, %rd``
``not %a, %rd``       ``xnor %a, %g0, %rd``
``ret``               ``jmpl %i7+8, %g0``
``retl``              ``jmpl %o7+8, %g0``
``b/jmp label``       ``ba label``
===========  =====================================================

Directives: ``.text``, ``.data``, ``.align``, ``.word``, ``.byte``,
``.space``, ``.ascii``, ``.asciz``, ``.global`` (accepted, ignored),
``.equ name, value``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..core.errors import SimError
from ..isa.encoding import encode
from ..isa.instructions import Instr, OPCODES, K_BRANCH, K_CALL
from .parsing import (
    Statement,
    eval_expr,
    is_register,
    parse_fp_register,
    parse_line,
    parse_mem_operand,
    parse_register,
    parse_string_literal,
)
from .program import Program, TEXT_BASE

_DIRECTIVES = {
    ".text",
    ".data",
    ".align",
    ".word",
    ".byte",
    ".space",
    ".ascii",
    ".asciz",
    ".global",
    ".globl",
    ".equ",
}

_PSEUDO_SIZES = {"set": 8}

_BRANCH_ALIASES = {"b": "ba", "jmp": "ba", "bcs": "blu", "bcc": "bgeu", "bz": "be", "bnz": "bne"}

_INT_THREE_OP = {
    "add", "addcc", "sub", "subcc", "and", "andcc", "or", "orcc", "xor",
    "xorcc", "andn", "orn", "xnor", "sll", "srl", "sra", "smul", "umul",
    "sdiv", "udiv",
}

_FP_THREE_OP = {"fadd", "fsub", "fmul", "fdiv"}
_FP_TWO_OP = {"fmov", "fneg"}

_REGPLUS_RE = re.compile(r"^(%?[\w.$]+)\s*(?:([+-])\s*(.+?))?$")


class Assembler:
    """Assemble srisc source text into a :class:`Program`."""

    def __init__(self, text_base: int = TEXT_BASE):
        self.text_base = text_base

    # ------------------------------------------------------------------ API
    def assemble(self, source: str) -> Program:
        """Assemble full ``source`` text into a Program image."""
        statements = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            stmt = parse_line(line, lineno)
            if stmt is not None:
                statements.append(stmt)

        symbols, text_size, data_size = self._layout(statements)
        data_base = (self.text_base + text_size + 15) & ~15
        # Resolve section-relative label records into absolute addresses.
        resolved: Dict[str, int] = {}
        for name, (section, offset) in symbols.items():
            if section == "abs":
                resolved[name] = offset
            elif section == "text":
                resolved[name] = self.text_base + offset
            else:
                resolved[name] = data_base + offset

        text_words, data_image, source_map = self._emit(
            statements, resolved, data_base, data_size
        )
        entry = resolved.get("_start", self.text_base)
        return Program(
            self.text_base,
            text_words,
            data_base,
            bytes(data_image),
            resolved,
            entry,
            source_map,
        )

    # ------------------------------------------------------------- pass one
    def _stmt_size(self, stmt: Statement) -> int:
        """Size in bytes contributed by an instruction statement."""
        return _PSEUDO_SIZES.get(stmt.mnemonic, 4)

    def _layout(
        self, statements: List[Statement]
    ) -> Tuple[Dict[str, Tuple[str, int]], int, int]:
        symbols: Dict[str, Tuple[str, int]] = {}
        section = "text"
        offsets = {"text": 0, "data": 0}
        for stmt in statements:
            if stmt.label:
                if stmt.label in symbols:
                    raise SimError(
                        "line %d: duplicate label %r" % (stmt.lineno, stmt.label)
                    )
                symbols[stmt.label] = (section, offsets[section])
            mn = stmt.mnemonic
            if mn is None:
                continue
            if mn in _DIRECTIVES:
                section, size = self._directive_layout(
                    stmt, section, offsets[section], symbols
                )
                offsets[section] += size
            else:
                if section != "text":
                    raise SimError(
                        "line %d: instruction outside .text" % stmt.lineno
                    )
                offsets["text"] += self._stmt_size(stmt)
        return symbols, offsets["text"], offsets["data"]

    def _directive_layout(
        self,
        stmt: Statement,
        section: str,
        offset: int,
        symbols: Dict[str, Tuple[str, int]],
    ) -> Tuple[str, int]:
        mn = stmt.mnemonic
        if mn == ".text":
            return "text", 0
        if mn == ".data":
            return "data", 0
        if mn in (".global", ".globl"):
            return section, 0
        if mn == ".equ":
            if len(stmt.operands) != 2:
                raise SimError("line %d: .equ needs name, value" % stmt.lineno)
            value = eval_expr(stmt.operands[1], {}, stmt.lineno)
            symbols[stmt.operands[0].strip()] = ("abs", value)
            return section, 0
        if mn == ".align":
            n = eval_expr(stmt.operands[0], {}, stmt.lineno)
            pad = (-offset) % n
            # Re-point the statement's own label past the padding.
            if stmt.label and symbols.get(stmt.label) == (section, offset):
                symbols[stmt.label] = (section, offset + pad)
            return section, pad
        if mn == ".word":
            return section, 4 * len(stmt.operands)
        if mn == ".byte":
            return section, len(stmt.operands)
        if mn == ".space":
            return section, eval_expr(stmt.operands[0], {}, stmt.lineno)
        if mn in (".ascii", ".asciz"):
            data = parse_string_literal(stmt.operands[0], stmt.lineno)
            return section, len(data) + (1 if mn == ".asciz" else 0)
        raise SimError("line %d: unknown directive %s" % (stmt.lineno, mn))

    # ------------------------------------------------------------- pass two
    def _emit(
        self,
        statements: List[Statement],
        symbols: Dict[str, int],
        data_base: int,
        data_size: int,
    ):
        text_words: List[int] = []
        data_image = bytearray(data_size)
        data_off = 0
        section = "text"
        source_map: Dict[int, str] = {}

        for stmt in statements:
            mn = stmt.mnemonic
            if mn is None:
                continue
            if mn in _DIRECTIVES:
                if mn == ".text":
                    section = "text"
                elif mn == ".data":
                    section = "data"
                elif mn == ".align":
                    n = eval_expr(stmt.operands[0], symbols, stmt.lineno)
                    if section == "text":
                        while (len(text_words) * 4) % n:
                            text_words.append(encode(Instr(OPCODES["nop"])))
                    else:
                        data_off += (-data_off) % n
                elif mn == ".word":
                    for opnd in stmt.operands:
                        v = eval_expr(opnd, symbols, stmt.lineno) & 0xFFFFFFFF
                        data_image[data_off : data_off + 4] = v.to_bytes(4, "big")
                        data_off += 4
                elif mn == ".byte":
                    for opnd in stmt.operands:
                        data_image[data_off] = (
                            eval_expr(opnd, symbols, stmt.lineno) & 0xFF
                        )
                        data_off += 1
                elif mn == ".space":
                    data_off += eval_expr(stmt.operands[0], symbols, stmt.lineno)
                elif mn in (".ascii", ".asciz"):
                    data = parse_string_literal(stmt.operands[0], stmt.lineno)
                    data_image[data_off : data_off + len(data)] = data
                    data_off += len(data)
                    if mn == ".asciz":
                        data_off += 1  # NUL already zero in the image
                continue
            addr = self.text_base + 4 * len(text_words)
            source_map[addr] = stmt.raw.strip()
            for instr in self._expand(stmt, addr, symbols):
                text_words.append(encode(instr))
        return text_words, data_image, source_map

    # ------------------------------------------------- instruction encoding
    def _expand(
        self, stmt: Statement, addr: int, symbols: Dict[str, int]
    ) -> List[Instr]:
        mn = stmt.mnemonic
        ops = stmt.operands
        ln = stmt.lineno

        def expr(tok: str) -> int:
            return eval_expr(tok, symbols, ln)

        def reg_or_imm(tok: str) -> Tuple[int, int, bool]:
            """-> (rs2, imm, use_imm)"""
            if is_register(tok):
                return parse_register(tok, ln), 0, False
            return 0, expr(tok), True

        mn = _BRANCH_ALIASES.get(mn, mn)

        # -- pseudos ---------------------------------------------------------
        if mn == "mov":
            self._arity(stmt, 2)
            rs2, imm, use_imm = reg_or_imm(ops[0])
            return [
                Instr(
                    OPCODES["or"],
                    rd=parse_register(ops[1], ln),
                    rs1=0,
                    rs2=rs2,
                    imm=imm,
                    use_imm=use_imm,
                    addr=addr,
                )
            ]
        if mn == "set":
            self._arity(stmt, 2)
            value = expr(ops[0]) & 0xFFFFFFFF
            rd = parse_register(ops[1], ln)
            return [
                Instr(OPCODES["sethi"], rd=rd, imm=(value >> 12) & 0xFFFFF, addr=addr),
                Instr(
                    OPCODES["or"],
                    rd=rd,
                    rs1=rd,
                    imm=value & 0xFFF,
                    use_imm=True,
                    addr=addr + 4,
                ),
            ]
        if mn == "cmp":
            self._arity(stmt, 2)
            rs2, imm, use_imm = reg_or_imm(ops[1])
            return [
                Instr(
                    OPCODES["subcc"],
                    rd=0,
                    rs1=parse_register(ops[0], ln),
                    rs2=rs2,
                    imm=imm,
                    use_imm=use_imm,
                    addr=addr,
                )
            ]
        if mn == "tst":
            self._arity(stmt, 1)
            return [
                Instr(
                    OPCODES["orcc"],
                    rd=0,
                    rs1=0,
                    rs2=parse_register(ops[0], ln),
                    addr=addr,
                )
            ]
        if mn == "neg":
            self._arity(stmt, 2)
            return [
                Instr(
                    OPCODES["sub"],
                    rd=parse_register(ops[1], ln),
                    rs1=0,
                    rs2=parse_register(ops[0], ln),
                    addr=addr,
                )
            ]
        if mn == "not":
            self._arity(stmt, 2)
            return [
                Instr(
                    OPCODES["xnor"],
                    rd=parse_register(ops[1], ln),
                    rs1=parse_register(ops[0], ln),
                    rs2=0,
                    addr=addr,
                )
            ]
        if mn == "ret":
            # No delay slots: return lands on the word after the call.
            return [Instr(OPCODES["jmpl"], rd=0, rs1=31, imm=4, use_imm=True, addr=addr)]
        if mn == "retl":
            return [Instr(OPCODES["jmpl"], rd=0, rs1=15, imm=4, use_imm=True, addr=addr)]
        if mn == "nop":
            return [Instr(OPCODES["nop"], addr=addr)]

        # -- real instructions -------------------------------------------------
        opc = OPCODES.get(mn)
        if opc is None:
            raise SimError("line %d: unknown mnemonic %r" % (ln, mn))

        if mn in _INT_THREE_OP:
            self._arity(stmt, 3)
            rs2, imm, use_imm = reg_or_imm(ops[1])
            return [
                Instr(
                    opc,
                    rd=parse_register(ops[2], ln),
                    rs1=parse_register(ops[0], ln),
                    rs2=rs2,
                    imm=imm,
                    use_imm=use_imm,
                    addr=addr,
                )
            ]
        if mn == "sethi":
            self._arity(stmt, 2)
            return [
                Instr(opc, rd=parse_register(ops[1], ln), imm=expr(ops[0]), addr=addr)
            ]
        if mn in ("ld", "ldub", "ldsb"):
            self._arity(stmt, 2)
            rs1, rs2, imm = parse_mem_operand(ops[0], symbols, ln)
            return [
                Instr(
                    opc,
                    rd=parse_register(ops[1], ln),
                    rs1=rs1,
                    rs2=rs2 or 0,
                    imm=imm,
                    use_imm=rs2 is None,
                    addr=addr,
                )
            ]
        if mn in ("st", "stb"):
            self._arity(stmt, 2)
            rs1, rs2, imm = parse_mem_operand(ops[1], symbols, ln)
            return [
                Instr(
                    opc,
                    rd=parse_register(ops[0], ln),
                    rs1=rs1,
                    rs2=rs2 or 0,
                    imm=imm,
                    use_imm=rs2 is None,
                    addr=addr,
                )
            ]
        if mn == "ldf":
            self._arity(stmt, 2)
            rs1, rs2, imm = parse_mem_operand(ops[0], symbols, ln)
            return [
                Instr(
                    opc,
                    rd=parse_fp_register(ops[1], ln),
                    rs1=rs1,
                    rs2=rs2 or 0,
                    imm=imm,
                    use_imm=rs2 is None,
                    addr=addr,
                )
            ]
        if mn == "stf":
            self._arity(stmt, 2)
            rs1, rs2, imm = parse_mem_operand(ops[1], symbols, ln)
            return [
                Instr(
                    opc,
                    rd=parse_fp_register(ops[0], ln),
                    rs1=rs1,
                    rs2=rs2 or 0,
                    imm=imm,
                    use_imm=rs2 is None,
                    addr=addr,
                )
            ]
        if opc.kind == K_BRANCH:
            self._arity(stmt, 1)
            target = expr(ops[0])
            return [Instr(opc, imm=target - addr, addr=addr)]
        if opc.kind == K_CALL:
            self._arity(stmt, 1)
            target = expr(ops[0])
            return [Instr(opc, imm=target - addr, addr=addr)]
        if mn == "jmpl":
            self._arity(stmt, 2)
            m = _REGPLUS_RE.match(ops[0].strip())
            if not m or not is_register(m.group(1)):
                raise SimError("line %d: bad jmpl operand %r" % (ln, ops[0]))
            rs1 = parse_register(m.group(1), ln)
            imm = 0
            if m.group(2):
                imm = expr(m.group(3))
                if m.group(2) == "-":
                    imm = -imm
            return [
                Instr(
                    opc,
                    rd=parse_register(ops[1], ln),
                    rs1=rs1,
                    imm=imm,
                    use_imm=True,
                    addr=addr,
                )
            ]
        if mn in ("save", "restore"):
            if mn == "restore" and not ops:
                return [Instr(opc, rd=0, rs1=0, rs2=0, addr=addr)]
            self._arity(stmt, 3)
            rs2, imm, use_imm = reg_or_imm(ops[1])
            return [
                Instr(
                    opc,
                    rd=parse_register(ops[2], ln),
                    rs1=parse_register(ops[0], ln),
                    rs2=rs2,
                    imm=imm,
                    use_imm=use_imm,
                    addr=addr,
                )
            ]
        if mn in _FP_THREE_OP:
            self._arity(stmt, 3)
            return [
                Instr(
                    opc,
                    rd=parse_fp_register(ops[2], ln),
                    rs1=parse_fp_register(ops[0], ln),
                    rs2=parse_fp_register(ops[1], ln),
                    addr=addr,
                )
            ]
        if mn in _FP_TWO_OP:
            self._arity(stmt, 2)
            return [
                Instr(
                    opc,
                    rd=parse_fp_register(ops[1], ln),
                    rs1=parse_fp_register(ops[0], ln),
                    addr=addr,
                )
            ]
        if mn == "fcmp":
            self._arity(stmt, 2)
            return [
                Instr(
                    opc,
                    rs1=parse_fp_register(ops[0], ln),
                    rs2=parse_fp_register(ops[1], ln),
                    addr=addr,
                )
            ]
        if mn == "fitos":
            self._arity(stmt, 2)
            return [
                Instr(
                    opc,
                    rd=parse_fp_register(ops[1], ln),
                    rs1=parse_register(ops[0], ln),
                    addr=addr,
                )
            ]
        if mn == "fstoi":
            self._arity(stmt, 2)
            return [
                Instr(
                    opc,
                    rd=parse_register(ops[1], ln),
                    rs1=parse_fp_register(ops[0], ln),
                    addr=addr,
                )
            ]
        if mn == "ta":
            self._arity(stmt, 1)
            return [Instr(opc, imm=expr(ops[0]), addr=addr)]
        raise SimError("line %d: cannot encode %r" % (ln, stmt.raw))

    @staticmethod
    def _arity(stmt: Statement, n: int) -> None:
        if len(stmt.operands) != n:
            raise SimError(
                "line %d: %s expects %d operands, got %d"
                % (stmt.lineno, stmt.mnemonic, n, len(stmt.operands))
            )


def assemble(source: str, text_base: int = TEXT_BASE) -> Program:
    """Convenience wrapper: assemble ``source`` into a :class:`Program`."""
    return Assembler(text_base).assemble(source)
