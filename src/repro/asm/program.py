"""Executable program images produced by the assembler.

A :class:`Program` is what the machine loader consumes: encoded text words,
an initialised data image, the symbol table and the entry point.  Decoded
instructions are cached per address so simulation never re-decodes.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.errors import SimError
from ..isa.encoding import decode
from ..isa.instructions import Instr
from ..isa.predecode import predecode_program

#: Default load address of the text segment.
TEXT_BASE = 0x1000


class Program:
    __slots__ = (
        "text_base",
        "text_words",
        "data_base",
        "data_image",
        "symbols",
        "entry",
        "instrs",
        "exec_table",
        "run_table",
        "source_lines",
    )

    def __init__(
        self,
        text_base: int,
        text_words: List[int],
        data_base: int,
        data_image: bytes,
        symbols: Dict[str, int],
        entry: int,
        source_lines: Dict[int, str] | None = None,
    ):
        self.text_base = text_base
        self.text_words = text_words
        self.data_base = data_base
        self.data_image = data_image
        self.symbols = symbols
        self.entry = entry
        self.source_lines = source_lines or {}
        # Decode every text word once; addr -> Instr.
        self.instrs: Dict[int, Instr] = {}
        for i, word in enumerate(text_words):
            addr = text_base + 4 * i
            self.instrs[addr] = decode(word, addr)
        # Specialize every instruction once (addr -> execution closure);
        # the engines dispatch through this instead of the generic step().
        predecode_program(self)

    def __getstate__(self):
        # Pickle only the constructor arguments; the decoded-instruction
        # cache is rebuilt on unpickling (decode is deterministic, and the
        # image stays a fraction of the size of pickled Instr objects).
        return (
            self.text_base,
            self.text_words,
            self.data_base,
            self.data_image,
            self.symbols,
            self.entry,
            self.source_lines,
        )

    def __setstate__(self, state):
        self.__init__(*state)

    @property
    def text_size(self) -> int:
        return 4 * len(self.text_words)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data_image)

    def text_image(self) -> bytes:
        """The text segment as big-endian machine words."""
        out = bytearray()
        for word in self.text_words:
            out += word.to_bytes(4, "big")
        return bytes(out)

    def fetch(self, addr: int) -> Instr:
        """Decoded instruction at ``addr`` (SimError outside text)."""
        instr = self.instrs.get(addr)
        if instr is None:
            raise SimError("fetch outside text segment: 0x%x" % addr)
        return instr

    def symbol(self, name: str) -> int:
        """Absolute address of label ``name``."""
        if name not in self.symbols:
            raise SimError("unknown symbol %r" % name)
        return self.symbols[name]

    def disassemble(self) -> str:
        """Human-readable listing of the whole text segment."""
        lines = []
        addr_to_label = {}
        for name, addr in self.symbols.items():
            addr_to_label.setdefault(addr, name)
        for i in range(len(self.text_words)):
            addr = self.text_base + 4 * i
            label = addr_to_label.get(addr)
            if label:
                lines.append("%s:" % label)
            lines.append("  0x%04x: %s" % (addr, self.instrs[addr].text()))
        return "\n".join(lines)
