"""Binary executable images: save/load Programs as ``.bin`` files.

Format (all fields big-endian 32-bit)::

    magic   'SRSC'
    version 1
    entry   absolute entry address
    text_base, text_words
    data_base, data_bytes
    nsyms
    --- text section: text_words x u32 (the ISA encoding of each instr)
    --- data section: data_bytes raw
    --- symbols: nsyms x (u16 name_len, name utf-8, u32 value)

The text section round-trips through :mod:`repro.isa.encoding`, so a saved
program really is srisc machine code, decodable by any conforming loader.
"""

from __future__ import annotations

import struct
from pathlib import Path

from ..core.errors import SimError
from .program import Program

MAGIC = b"SRSC"
VERSION = 1


def save_program(program: Program, path) -> None:
    """Serialize ``program`` to an srisc ``.bin`` executable."""
    out = bytearray()
    out += MAGIC
    out += struct.pack(
        ">IIIIIII",
        VERSION,
        program.entry,
        program.text_base,
        len(program.text_words),
        program.data_base,
        len(program.data_image),
        len(program.symbols),
    )
    for word in program.text_words:
        out += struct.pack(">I", word)
    out += program.data_image
    for name, value in sorted(program.symbols.items()):
        encoded = name.encode("utf-8")
        out += struct.pack(">H", len(encoded))
        out += encoded
        out += struct.pack(">I", value & 0xFFFFFFFF)
    Path(path).write_bytes(bytes(out))


def load_program(path) -> Program:
    """Load and decode an srisc ``.bin`` executable."""
    blob = Path(path).read_bytes()
    if blob[:4] != MAGIC:
        raise SimError("%s: not an srisc binary (bad magic)" % path)
    (
        version,
        entry,
        text_base,
        n_words,
        data_base,
        n_data,
        n_syms,
    ) = struct.unpack_from(">IIIIIII", blob, 4)
    if version != VERSION:
        raise SimError("%s: unsupported binary version %d" % (path, version))
    off = 4 + 7 * 4
    need = off + 4 * n_words + n_data
    if len(blob) < need:
        raise SimError("%s: truncated binary" % path)
    words = list(struct.unpack_from(">%dI" % n_words, blob, off))
    off += 4 * n_words
    data = blob[off : off + n_data]
    off += n_data
    symbols = {}
    for _ in range(n_syms):
        (nlen,) = struct.unpack_from(">H", blob, off)
        off += 2
        name = blob[off : off + nlen].decode("utf-8")
        off += nlen
        (value,) = struct.unpack_from(">I", blob, off)
        off += 4
        symbols[name] = value
    return Program(text_base, words, data_base, data, symbols, entry)
