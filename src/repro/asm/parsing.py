"""Line-level parsing for the srisc assembler.

Each source line is split into an optional label, a mnemonic/directive and a
list of raw operand strings.  Operand *expression* evaluation (symbols,
``%hi``/``%lo``, arithmetic) lives here too, shared by both assembler passes.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from ..core.errors import SimError
from ..isa.registers import REG_ALIASES

_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$")
_TOKEN_RE = re.compile(r"^([A-Za-z_.][\w.]*)\s*(.*)$")


class Statement:
    """One parsed assembly statement."""

    __slots__ = ("label", "mnemonic", "operands", "lineno", "raw")

    def __init__(
        self,
        label: Optional[str],
        mnemonic: Optional[str],
        operands: List[str],
        lineno: int,
        raw: str,
    ):
        self.label = label
        self.mnemonic = mnemonic
        self.operands = operands
        self.lineno = lineno
        self.raw = raw


def split_operands(text: str) -> List[str]:
    """Split an operand field on commas, respecting brackets and strings."""
    ops: List[str] = []
    depth = 0
    in_str = False
    cur = []
    i = 0
    while i < len(text):
        ch = text[i]
        if in_str:
            cur.append(ch)
            if ch == "\\" and i + 1 < len(text):
                cur.append(text[i + 1])
                i += 1
            elif ch == '"':
                in_str = False
        elif ch == '"':
            in_str = True
            cur.append(ch)
        elif ch in "([":
            depth += 1
            cur.append(ch)
        elif ch in ")]":
            depth -= 1
            cur.append(ch)
        elif ch == "," and depth == 0:
            ops.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
        i += 1
    tail = "".join(cur).strip()
    if tail:
        ops.append(tail)
    return ops


def parse_line(line: str, lineno: int) -> Optional[Statement]:
    """Parse one line; returns None for blank/comment-only lines."""
    # Strip comments: ';' and '#' and '!' start a comment outside strings.
    out = []
    in_str = False
    for i, ch in enumerate(line):
        if in_str:
            out.append(ch)
            if ch == '"' and line[i - 1] != "\\":
                in_str = False
        elif ch == '"':
            in_str = True
            out.append(ch)
        elif ch in ";#!":
            break
        else:
            out.append(ch)
    text = "".join(out).strip()
    if not text:
        return None

    label = None
    m = _LABEL_RE.match(text)
    if m:
        label = m.group(1)
        text = m.group(2).strip()
    if not text:
        return Statement(label, None, [], lineno, line)
    m = _TOKEN_RE.match(text)
    if not m:
        raise SimError("line %d: cannot parse %r" % (lineno, line))
    mnemonic = m.group(1).lower()
    operands = split_operands(m.group(2))
    return Statement(label, mnemonic, operands, lineno, line)


def parse_register(tok: str, lineno: int) -> int:
    """Parse an integer register operand like ``%o0``/``%sp``/``%r9``."""
    t = tok.strip()
    if t.startswith("%"):
        t = t[1:]
    idx = REG_ALIASES.get(t.lower())
    if idx is None:
        raise SimError("line %d: unknown register %r" % (lineno, tok))
    return idx


def parse_fp_register(tok: str, lineno: int) -> int:
    """Parse a floating point register operand like ``%f3``."""
    t = tok.strip()
    if t.startswith("%"):
        t = t[1:]
    if t.startswith("f") and t[1:].isdigit():
        idx = int(t[1:])
        if 0 <= idx < 32:
            return idx
    raise SimError("line %d: unknown fp register %r" % (lineno, tok))


def is_register(tok: str) -> bool:
    """True when ``tok`` names an integer register."""
    t = tok.strip()
    if t.startswith("%"):
        t = t[1:]
    return t.lower() in REG_ALIASES


_NUM_RE = re.compile(r"^[+-]?(0[xX][0-9a-fA-F]+|\d+)$")
_CHAR_RE = re.compile(r"^'(\\?.)'$")


def eval_expr(expr: str, symbols: Dict[str, int], lineno: int) -> int:
    """Evaluate an operand expression.

    Supports integers (decimal/hex), character literals, symbols,
    ``%hi(e)`` / ``%lo(e)`` relocations (matching ``sethi``'s 12-bit shift)
    and ``+``/``-`` arithmetic.
    """
    e = expr.strip()
    if not e:
        raise SimError("line %d: empty expression" % lineno)
    lo_e = e.lower()
    if lo_e.startswith("%hi(") and e.endswith(")"):
        return (eval_expr(e[4:-1], symbols, lineno) >> 12) & 0xFFFFF
    if lo_e.startswith("%lo(") and e.endswith(")"):
        return eval_expr(e[4:-1], symbols, lineno) & 0xFFF
    m = _CHAR_RE.match(e)
    if m:
        ch = m.group(1)
        escapes = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\\\": "\\", "\\'": "'"}
        ch = escapes.get(ch, ch)
        return ord(ch[-1])
    # additive expression: split on top-level + and - (not inside parens,
    # and not a leading sign)
    depth = 0
    for i in range(len(e) - 1, 0, -1):
        ch = e[i]
        if ch == ")":
            depth += 1
        elif ch == "(":
            depth -= 1
        elif depth == 0 and ch in "+-" and e[i - 1] not in "+-(":
            left = eval_expr(e[:i], symbols, lineno)
            right = eval_expr(e[i + 1 :], symbols, lineno)
            return left + right if ch == "+" else left - right
    if _NUM_RE.match(e):
        return int(e, 0)
    if e in symbols:
        return symbols[e]
    raise SimError("line %d: cannot evaluate expression %r" % (lineno, expr))


_MEM_RE = re.compile(r"^\[\s*(%?[\w.$]+)\s*(?:([+-])\s*(.+?))?\s*\]$")


def parse_mem_operand(
    tok: str, symbols: Dict[str, int], lineno: int
) -> Tuple[int, Optional[int], int]:
    """Parse a memory operand -> ``(rs1, rs2 | None, imm)``.

    Supported forms: ``[%reg]``, ``[%reg + imm]``, ``[%reg - imm]`` and the
    SPARC register-indexed ``[%reg + %reg]``.
    """
    m = _MEM_RE.match(tok.strip())
    if not m:
        raise SimError("line %d: bad memory operand %r" % (lineno, tok))
    rs1 = parse_register(m.group(1), lineno)
    if not m.group(2):
        return rs1, None, 0
    rhs = m.group(3)
    if m.group(2) == "+" and is_register(rhs):
        return rs1, parse_register(rhs, lineno), 0
    imm = eval_expr(rhs, symbols, lineno)
    if m.group(2) == "-":
        imm = -imm
    return rs1, None, imm


def parse_string_literal(tok: str, lineno: int) -> bytes:
    """Decode a double-quoted string literal with C escapes."""
    t = tok.strip()
    if len(t) < 2 or t[0] != '"' or t[-1] != '"':
        raise SimError("line %d: bad string literal %r" % (lineno, tok))
    body = t[1:-1]
    out = bytearray()
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\" and i + 1 < len(body):
            nxt = body[i + 1]
            mapping = {"n": 10, "t": 9, "0": 0, "\\": 92, '"': 34, "r": 13}
            if nxt not in mapping:
                raise SimError("line %d: unknown escape \\%s" % (lineno, nxt))
            out.append(mapping[nxt])
            i += 2
        else:
            out.append(ord(ch))
            i += 1
    return bytes(out)
