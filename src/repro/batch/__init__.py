"""Batched sweep evaluation: walk a shared trace once, time N configs.

See :mod:`repro.batch.evaluator` for the family task and
:mod:`repro.batch.columns` for the config-independent trace columns it
reduces over.  DESIGN.md section 12 describes the execution/timing split
this layer completes.
"""

from .columns import TraceColumns, columns_for
from .evaluator import (
    BATCHED,
    LIVE,
    VECTORIZED,
    batch_enabled_default,
    batchable,
    evaluate_family,
    family_key,
)
from .mc_kernel import (
    GLOBAL_STATS as MC_STATS,
    mc_enabled,
    multi_miss_profiles,
    prime_columns,
)

__all__ = [
    "TraceColumns",
    "columns_for",
    "BATCHED",
    "LIVE",
    "VECTORIZED",
    "batch_enabled_default",
    "batchable",
    "evaluate_family",
    "family_key",
    "MC_STATS",
    "mc_enabled",
    "multi_miss_profiles",
    "prime_columns",
]
