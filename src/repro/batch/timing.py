"""Reusable trace-driven timing models, hoisted out of the machines.

The scalar and DIF baselines charge Table 1 stall cycles off nothing but
the committed trace: instruction addresses (icache), memory-event
addresses (dcache), branch directions (not-taken bubbles), the previous
load's destination (load-use bubbles) and the window plan (spill
penalties).  This module holds that stall-charging logic as standalone
functions of trace state -- the machines' replay loops
(:meth:`~repro.baselines.scalar.ScalarMachine._run_replay`,
:meth:`~repro.baselines.dif.DIFMachine._execute_group_replay`) are now
thin wrappers, and the batched evaluator reuses the same accounting in
closed form over :class:`~repro.batch.columns.TraceColumns`
(:func:`scalar_family_stats`) instead of keeping a private copy.

Nothing here touches a machine object: callers pass the replay source,
the config, the ``Stats`` sink and the cache timing models, and take the
returned control-flow state (pc, halted, cycle cost) back into whatever
machine or evaluator drives the loop.
"""

from __future__ import annotations

import os
from typing import Dict, Tuple

from ..core.errors import SimError
from ..core.stats import Stats
from ..isa.instructions import K_BRANCH, K_LOAD, K_NOP, UNCONDITIONAL
from ..obs.probe import EV_CACHE_STALL, EV_MISPREDICT, EV_WINDOW_SPILL


def charge_scalar_replay(
    src,
    cfg,
    st: Stats,
    icache,
    dcache,
    services,
    probe,
    max_cycles: int,
    pc: int,
) -> Tuple[bool, int]:
    """Walk the bound trace charging the scalar machine's Table 1 timing.

    Mirrors the live loop's decisions field for field: icache access and
    stall, the load-use bubble off the previous committed load, the
    data-cache access per memory event, the not-taken branch bubble and
    the window-spill penalty -- in the live ordering, including the
    exit-trap special case (its icache stall is recorded but the
    instruction is charged exactly one cycle).  Returns ``(halted, pc)``;
    the caller owns wall-time accounting and the budget-overrun error.
    """
    instrs = src.instrs
    pcs = src.pcs
    flags = src.flags
    aux = src.aux
    spilled = src.spilled
    last_idx = src.last
    ic = icache.access
    dc = dcache.access
    lu_bubble = cfg.load_use_bubble
    bnt_bubble = cfg.branch_not_taken_bubble
    spill_pen = cfg.window_spill_penalty
    last_load_rd = None
    halted = False
    i = 0
    while st.cycles < max_cycles:
        instr = instrs[i]
        if i == last_idx:
            # the exit trap: icache stall recorded, then the live
            # machine charges exactly one cycle for the trap itself
            pen = ic(instr.addr)
            if pen:
                st.icache_stall_cycles += pen
                if probe is not None:
                    probe.emit(EV_CACHE_STALL, "icache", pen)
            st.cycles += 1
            st.primary_cycles += 1
            st.ref_instructions += 1
            pc = instr.addr
            services.output[:] = src.trace.output
            services.exit_code = src.trace.exit_code
            src.i = i + 1
            halted = True
            break
        cycles = 1
        pen = ic(instr.addr)
        if pen:
            cycles += pen
            st.icache_stall_cycles += pen
            if probe is not None:
                probe.emit(EV_CACHE_STALL, "icache", pen)
        if last_load_rd is not None and last_load_rd in instr.lu_regs:
            cycles += lu_bubble
            st.load_use_bubble_cycles += lu_bubble
        st.primary_instructions += 1
        if instr.mem_size:
            pen = dc(aux[i])
            if pen:
                cycles += pen
                st.dcache_stall_cycles += pen
                if probe is not None:
                    probe.emit(EV_CACHE_STALL, "dcache", pen)
        if instr.cond_branch and not (flags[i] & 1):
            cycles += bnt_bubble
            st.branch_bubble_cycles += bnt_bubble
        if spilled[i]:
            cycles += spill_pen
            st.spill_cycles += spill_pen
            if probe is not None:
                probe.emit(EV_WINDOW_SPILL, spill_pen)
        last_load_rd = instr.rd if instr.op.kind == K_LOAD else None
        st.cycles += cycles
        st.primary_cycles += cycles
        st.ref_instructions += 1
        i += 1
        pc = pcs[i]
    return halted, pc


def scalar_family_stats(
    cols, cfg, spills: int, max_cycles: int, name: str
) -> Tuple[Stats, int]:
    """Close :func:`charge_scalar_replay` into O(1) column reductions.

    Mirrors the replay loop term by term: one base cycle per committed
    instruction, icache stalls (the exit-trap fetch is *recorded* but not
    charged), dcache stalls over the memory events, the load-use and
    branch-not-taken bubbles, and the window-spill penalty.  The
    cycle-budget check reduces exactly: the loop's guard binds at the
    exit event, where the accumulated count is one below the final total.
    Raises the same two-layer :class:`SimError` ``run_program`` wraps
    around the live machine's budget overrun.
    """
    n = cols.n
    ic, dc = cfg.icache, cfg.dcache
    if ic.perfect:
        ic_miss, ic_last = 0, False
    else:
        ic_miss, ic_last = cols.icache_profile(ic.size, ic.line_size, ic.assoc)
    dc_miss = 0 if dc.perfect else cols.dcache_misses(dc.size, dc.line_size, dc.assoc)
    st = Stats()
    st.ref_instructions = n
    st.primary_instructions = n - 1
    st.icache_stall_cycles = ic.miss_penalty * ic_miss
    st.dcache_stall_cycles = dc.miss_penalty * dc_miss
    st.load_use_bubble_cycles = cfg.load_use_bubble * cols.lu_count
    st.branch_bubble_cycles = cfg.branch_not_taken_bubble * cols.bnt_count
    st.spill_cycles = cfg.window_spill_penalty * spills
    cycles = (
        n
        + st.icache_stall_cycles
        - (ic.miss_penalty if ic_last else 0)
        + st.dcache_stall_cycles
        + st.load_use_bubble_cycles
        + st.branch_bubble_cycles
        + st.spill_cycles
    )
    if cycles - 1 >= max_cycles:
        raise SimError(
            "scalar on %s failed (max_cycles=%d): "
            "scalar machine exceeded %d cycles"
            % (name, max_cycles, max_cycles)
        )
    cycles += _timing_mutation(cols.lu_count)
    st.cycles = cycles
    st.primary_cycles = cycles
    return st, cycles


def _timing_mutation(lu_count: int) -> int:
    """Deliberate off-by-N seam for the fuzz harness's mutation smoke test.

    ``$REPRO_MUTATE_TIMING=<n>`` injects ``n`` extra cycles into the
    batched scalar closed form -- but only when the trace has at least
    one load-use bubble, so the differential tower must find (and the
    shrinker must keep) a workload that actually commits a dependent
    load.  Never set outside tests; the default is a no-op.
    """
    if lu_count <= 0:
        return 0
    raw = os.environ.get("REPRO_MUTATE_TIMING", "")
    return int(raw) if raw else 0


def charge_dif_group_replay(
    group,
    src,
    st: Stats,
    rf,
    dcache,
    probe,
    mispredict_penalty: int,
) -> Tuple[int, int]:
    """Replay one DIF group off the trace cursor; ``(next pc, cycles)``.

    With instances, an executed group is architecturally the sequential
    prefix of the committed stream, so during replay the machine pc is
    always ``pcs[cursor]`` and "executing" an operation means consuming
    its trace event.  Free riders, deviation detection (branch
    direction/target against the recording), per-LI worst data-cache
    penalties and the instruction count all mirror the live walk decision
    for decision; the exit trap is never inside a group (traps are
    non-schedulable), so the walk always bails out to the Primary
    Processor before it.  Advances ``src.i`` and restores ``rf.cwp`` from
    the cursor's recorded window pointer.
    """
    pcs = src.pcs
    instrs = src.instrs
    flags = src.flags
    aux = src.aux
    cur = src.i
    max_li = -1
    executed = 0
    idx = 0
    trace = group.trace
    li_pen: Dict[int, int] = {}
    deviated_to = None
    while idx < len(trace):
        addr, li, is_branch, rec_taken, rec_target = trace[idx]
        if pcs[cur] != addr:
            instr = instrs[cur]
            kind = instr.op.kind
            free_rider = kind == K_NOP or (
                kind == K_BRANCH and instr.op.name in UNCONDITIONAL
            )
            if not free_rider:
                break  # path deviates: resume in the Primary Processor
            cur += 1
            executed += 1
            continue
        instr = instrs[cur]
        taken = (flags[cur] & 1) != 0
        mem_size = instr.mem_size
        a = aux[cur]
        cur += 1
        executed += 1
        idx += 1
        if li > max_li:
            max_li = li
        if mem_size:
            pen = dcache.access(a)
            if pen:
                st.dcache_stall_cycles += pen
                if probe is not None:
                    probe.emit(EV_CACHE_STALL, "dcache", pen)
                if pen > li_pen.get(li, 0):
                    li_pen[li] = pen
        if is_branch:
            next_pc = pcs[cur]
            deviates = taken != rec_taken or (
                taken and next_pc != rec_target
            )
            if deviates:
                st.mispredicts += 1
                if probe is not None:
                    probe.emit(EV_MISPREDICT, addr, next_pc)
                deviated_to = next_pc
                break
    src.i = cur
    rf.cwp = src.cwp[cur]
    st.dif_instructions += executed
    cycles = (group.height_used if max_li < 0 else max_li + 1) + sum(
        li_pen.values()
    )
    if deviated_to is not None:
        return deviated_to, max(cycles, 1) + mispredict_penalty
    return pcs[cur], max(cycles, 1)
