"""Config-independent timing columns of a bound trace.

The batched evaluator's core observation: once execution is captured as a
trace, most of what a timing model consumes is a *function of the trace
alone*, not of the machine configuration.  One pass over the committed
stream yields

* the load-use hazard count (previous committed load's destination read
  by the next instruction),
* the not-taken conditional-branch count,
* the memory-event address column (the data-cache access stream),

and those never change across the configurations of a sweep family.  The
per-configuration residue is tiny: cache miss profiles (a function of the
address stream and the cache *geometry* only, memoized per geometry so
e.g. every Figure 8 column with the same icache shares one profile) and
the window-spill count (a function of ``nwindows``, read off the bound
trace's :class:`~repro.trace.events.WindowPlan`).

NumPy, when available, vectorizes the direct-mapped miss profile (a
stable sort by set index turns LRU bookkeeping into one neighbour
comparison); set-associative profiles fall back to the shared scalar
:func:`~repro.memory.lru.lru_miss_count` walk, and everything works --
merely slower -- when NumPy is absent entirely.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

from ..isa.instructions import K_LOAD
from ..memory.kernel import geometry_ok as cache_geometry_ok  # noqa: F401
from ..memory.lru import lru_miss_count

try:  # optional accelerator; every path has a pure-Python fallback
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


def _miss_profile(addrs, size: int, line_size: int, assoc: int) -> Tuple[int, bool]:
    """(miss count, did the final access miss) of an LRU cache over
    ``addrs`` -- exactly :meth:`Cache.access`'s residency decisions."""
    n = len(addrs)
    if n == 0:
        return 0, False
    num_sets = (size // line_size) // assoc
    line_shift = line_size.bit_length() - 1
    if _np is not None:
        a = addrs if isinstance(addrs, _np.ndarray) else _np.frombuffer(addrs, dtype=_np.uint32)
        lines = a >> line_shift
        sets = lines % num_sets
        if assoc == 1:
            # Direct-mapped: a miss is "first touch of the set, or a
            # different line than the set's previous access".  Stable
            # sort by set groups each set's accesses in time order.
            order = _np.argsort(sets, kind="stable")
            s_sorted = sets[order]
            l_sorted = lines[order]
            miss_sorted = _np.empty(n, dtype=bool)
            miss_sorted[0] = True
            miss_sorted[1:] = (s_sorted[1:] != s_sorted[:-1]) | (
                l_sorted[1:] != l_sorted[:-1]
            )
            miss = _np.empty(n, dtype=bool)
            miss[order] = miss_sorted
            return int(miss.sum()), bool(miss[-1])
        set_ids = sets.tolist()
        tags = lines.tolist()
    else:
        set_ids = [0] * n
        tags = [0] * n
        for i, addr in enumerate(addrs):
            line = addr >> line_shift
            tags[i] = line
            set_ids[i] = line % num_sets
    mask = bytearray(n)
    total = lru_miss_count(set_ids, tags, num_sets, assoc, mask)
    return total, bool(mask[-1])


class TraceColumns:
    """One bound trace's reusable timing columns (see module docstring)."""

    __slots__ = (
        "bound",
        "n",
        "lu_count",
        "bnt_count",
        "mem_addrs",
        "_spills",
        "_ic",
        "_dc",
        "vec_keys",
    )

    def __init__(self, bound):
        self.bound = bound
        n = bound.trace.count
        self.n = n
        instrs = bound.instrs
        flags = bound.trace.flags
        aux = bound.trace.aux
        lu = 0
        bnt = 0
        mem_addrs = array("I")
        last_load_rd = None
        # The exit-trap event (index n-1) charges no hazards, touches no
        # data cache and is never a spill -- the ranges stop before it.
        for i in range(n - 1):
            instr = instrs[i]
            if last_load_rd is not None and last_load_rd in instr.lu_regs:
                lu += 1
            if instr.mem_size:
                mem_addrs.append(aux[i])
            if instr.cond_branch and not (flags[i] & 1):
                bnt += 1
            last_load_rd = instr.rd if instr.op.kind == K_LOAD else None
        self.lu_count = lu
        self.bnt_count = bnt
        self.mem_addrs = mem_addrs
        self._spills: Dict[int, Optional[int]] = {}
        self._ic: Dict[Tuple[int, int, int], Tuple[int, bool]] = {}
        self._dc: Dict[Tuple[int, int, int], int] = {}
        #: geometries the multi-config kernel has vector-primed, as
        #: ``("i"|"d", size, line_size, assoc)`` keys -- the evaluator
        #: tags cells fully covered by this set as ``vectorized``
        #: provenance (see :mod:`repro.batch.mc_kernel`)
        self.vec_keys: set = set()

    def spill_count(self, nwindows: int) -> Optional[int]:
        """Window spill/fill events for ``nwindows`` -- ``None`` when the
        window plan is invalid (the live machine faults mid-run there, so
        the caller must fall back to execution)."""
        if nwindows not in self._spills:
            plan = self.bound.window_plan(nwindows)
            self._spills[nwindows] = sum(plan.spilled) if plan.valid else None
        return self._spills[nwindows]

    def icache_profile(self, size: int, line_size: int, assoc: int) -> Tuple[int, bool]:
        """(total icache misses over every event, whether the exit-trap
        fetch missed) -- the exit miss is recorded as stall cycles by the
        scalar machine but never charged to the cycle count."""
        key = (size, line_size, assoc)
        prof = self._ic.get(key)
        if prof is None:
            prof = _miss_profile(self.bound.pcs, size, line_size, assoc)
            self._ic[key] = prof
        return prof

    def dcache_misses(self, size: int, line_size: int, assoc: int) -> int:
        """Total dcache misses over the memory-event address column."""
        key = (size, line_size, assoc)
        total = self._dc.get(key)
        if total is None:
            total, _last = _miss_profile(self.mem_addrs, size, line_size, assoc)
            self._dc[key] = total
        return total


#: per-process memo: id(bound) -> (bound, columns).  The bound trace is
#: kept in the value so the id can never be recycled while memoized.
_columns_memo: Dict[int, Tuple[object, TraceColumns]] = {}


def columns_for(bound) -> TraceColumns:
    """The memoized :class:`TraceColumns` of ``bound``."""
    entry = _columns_memo.get(id(bound))
    if entry is None or entry[0] is not bound:
        entry = (bound, TraceColumns(bound))
        _columns_memo[id(bound)] = entry
    return entry[1]
