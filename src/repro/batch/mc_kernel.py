"""Config-indexed multi-geometry cache timing kernel.

The vectorized half of the batched evaluator: given one address column
(a family's instruction-fetch or memory-event stream) and *every* cache
geometry the family's cells need, produce the per-geometry miss profile
of the shared :class:`~repro.memory.kernel.CacheKernel` in as few passes
over the column as the geometries' structure allows.

The collapse rests on the LRU *inclusion* (stack) property: for a fixed
``(line_shift, num_sets)`` pair, the content of a k-way LRU set is
exactly the top ``k`` entries of the set's unbounded MRU stack, so an
access hits under associativity ``k`` iff its stack depth is ``< k``.
One depth-recording walk per ``(line_shift, num_sets)`` group -- capped
at the largest associativity any sharer requests -- therefore serves
*all* associativities in the group at once; the per-``k`` reduction is a
single NumPy comparison over the recorded depth column.  Groups whose
only associativity is 1 skip the walk entirely: a stable sort by set
index turns direct-mapped residency into one neighbour comparison.

State is held config-indexed: the kernel returns
``{(size, line_size, assoc): (miss_count, last_missed)}`` and
:func:`prime_columns` deposits those profiles straight into a family's
:class:`~repro.batch.columns.TraceColumns` memo, marking each primed
geometry in ``TraceColumns.vec_keys`` so the evaluator can tag the cells
it answers as ``vectorized`` provenance.

``REPRO_NO_VECTOR=1`` (or NumPy being absent) makes :func:`prime_columns`
decline -- counted in :data:`GLOBAL_STATS` and probed as an
``mc_fallback`` event -- and the evaluator falls back to the existing
per-geometry scalar profiles, bit-identically.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..obs.probe import EV_MC_APPLY, EV_MC_BUILD, EV_MC_FALLBACK

try:  # optional accelerator; every caller has a scalar fallback path
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: ``(size, line_size, assoc)`` -- the geometry key the columns memoize by
Geometry = Tuple[int, int, int]
#: ``(miss_count, last access missed)`` -- the profile the evaluator needs
Profile = Tuple[int, bool]


class MCStats:
    """Process-wide multi-config kernel counters (cheap, always on).

    ``builds`` counts kernel passes over an address column (one per
    ``(line_shift, num_sets)`` geometry group), ``applied`` counts sweep
    cells answered from kernel-primed profiles, ``fallbacks`` counts
    families that wanted the kernel but fell back to scalar profiles
    (``REPRO_NO_VECTOR`` or NumPy absent).  Mirrors
    :class:`repro.isa.blockcompile.BlockCompileStats`; the ``mc_*`` probe
    events carry the same information per run for cross-validation.
    """

    __slots__ = ("builds", "applied", "fallbacks")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.builds = 0
        self.applied = 0
        self.fallbacks = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "builds": self.builds,
            "applied": self.applied,
            "fallbacks": self.fallbacks,
        }


GLOBAL_STATS = MCStats()


def require_numpy():
    """The loaded ``numpy`` module, or a clean ImportError telling the
    user how to proceed without it."""
    if _np is None:
        raise ImportError(
            "the vectorized multi-config cache kernel needs numpy "
            "(install the 'numpy' package, or set REPRO_NO_VECTOR=1 to "
            "use the scalar per-geometry path)"
        )
    return _np


def vector_disabled() -> bool:
    """``$REPRO_NO_VECTOR`` escape hatch (shared warn-once parsing)."""
    # lazy: harness.runner imports the machines, which import
    # repro.batch.timing -- a module-level import here would be circular
    from ..harness.runner import env_flag

    return env_flag("REPRO_NO_VECTOR")


def mc_enabled() -> bool:
    """Can the vectorized kernel run at all in this process?"""
    return _np is not None and not vector_disabled()


def _direct_mapped_profiles(
    lines, sets, assoc_geoms: List[Tuple[int, Geometry]]
) -> Dict[Geometry, Profile]:
    """All-``assoc==1`` group: one stable sort, no LRU state at all."""
    n = len(lines)
    order = _np.argsort(sets, kind="stable")
    s_sorted = sets[order]
    l_sorted = lines[order]
    miss_sorted = _np.empty(n, dtype=bool)
    miss_sorted[0] = True
    miss_sorted[1:] = (s_sorted[1:] != s_sorted[:-1]) | (
        l_sorted[1:] != l_sorted[:-1]
    )
    miss = _np.empty(n, dtype=bool)
    miss[order] = miss_sorted
    profile = (int(miss.sum()), bool(miss[-1]))
    return {geom: profile for _k, geom in assoc_geoms}


def _stack_depth_profiles(
    lines, sets, num_sets: int, assoc_geoms: List[Tuple[int, Geometry]]
) -> Dict[Geometry, Profile]:
    """One capped MRU-stack walk serving every associativity at once."""
    kmax = max(k for k, _g in assoc_geoms)
    tag_list = lines.tolist()
    set_list = sets.tolist()
    mru: List[List[int]] = [[] for _ in range(num_sets)]
    depths = _np.empty(len(tag_list), dtype=_np.int64)
    for i, tag in enumerate(tag_list):
        stack = mru[set_list[i]]
        try:
            d = stack.index(tag)
        except ValueError:
            d = kmax  # deeper than any requested associativity
        else:
            del stack[d]
        stack.insert(0, tag)
        if len(stack) > kmax:
            del stack[kmax:]
        depths[i] = d
    out: Dict[Geometry, Profile] = {}
    for k, geom in assoc_geoms:
        miss = depths >= k
        out[geom] = (int(miss.sum()), bool(miss[-1]))
    return out


def multi_miss_profiles(
    addrs, geoms: Iterable[Geometry], cache_name: str, probe=None
) -> Dict[Geometry, Profile]:
    """Miss profiles of every geometry over one address column.

    ``addrs`` is the column (``array('I')`` or a uint32 ndarray);
    ``geoms`` are ``(size, line_size, assoc)`` triples the conventional
    cache accepts (see :func:`repro.memory.kernel.geometry_ok` -- the
    caller filters).  Returns ``{geom: (miss_count, last_missed)}``,
    bit-identical to replaying :meth:`repro.memory.cache.Cache.access`
    per geometry.  Emits one ``mc_build`` event (and counts one build)
    per ``(line_shift, num_sets)`` group walked.
    """
    np = require_numpy()
    geoms = list(dict.fromkeys(geoms))
    n = len(addrs)
    if n == 0:
        return {g: (0, False) for g in geoms}
    a = addrs if isinstance(addrs, np.ndarray) else np.frombuffer(addrs, dtype=np.uint32)
    # group by the (line_shift, num_sets) pair that fixes the set index
    # stream -- associativity only picks the hit threshold inside a group
    groups: Dict[Tuple[int, int], List[Tuple[int, Geometry]]] = {}
    for geom in geoms:
        size, line_size, assoc = geom
        num_sets = (size // line_size) // assoc
        shift = line_size.bit_length() - 1
        groups.setdefault((shift, num_sets), []).append((assoc, geom))
    out: Dict[Geometry, Profile] = {}
    for (shift, num_sets), assoc_geoms in sorted(groups.items()):
        lines = a >> shift
        sets = lines % num_sets
        if max(k for k, _g in assoc_geoms) == 1:
            out.update(_direct_mapped_profiles(lines, sets, assoc_geoms))
        else:
            out.update(
                _stack_depth_profiles(lines, sets, num_sets, assoc_geoms)
            )
        GLOBAL_STATS.builds += 1
        if probe is not None:
            probe.emit(EV_MC_BUILD, cache_name, len(assoc_geoms), n)
    return out


def prime_columns(
    cols,
    ic_geoms: Iterable[Geometry],
    dc_geoms: Iterable[Geometry],
    probe=None,
) -> bool:
    """Vector-prime a family's columns with every geometry it will need.

    Computes the not-yet-memoized instruction- and data-cache miss
    profiles in grouped kernel passes and deposits them into ``cols``'s
    per-geometry memos, recording each in ``cols.vec_keys`` (including
    geometries a previous prime already covered) so the evaluator can tag
    dependent cells as vectorized.  Returns True when the kernel served
    (or previously served) the request; False -- counted and probed as an
    ``mc_fallback`` -- when ``REPRO_NO_VECTOR`` or a missing NumPy says
    the family must use the scalar per-geometry path instead.
    """
    ic_geoms = sorted(dict.fromkeys(ic_geoms))
    dc_geoms = sorted(dict.fromkeys(dc_geoms))
    if not ic_geoms and not dc_geoms:
        return True  # nothing cache-shaped to vectorize: trivially served
    if not mc_enabled():
        GLOBAL_STATS.fallbacks += 1
        if probe is not None:
            probe.emit(
                EV_MC_FALLBACK,
                "disabled" if _np is not None else "no-numpy",
            )
        return False
    ic_todo = [g for g in ic_geoms if g not in cols._ic]
    if ic_todo:
        for geom, prof in multi_miss_profiles(
            cols.bound.pcs, ic_todo, "icache", probe
        ).items():
            cols._ic[geom] = prof
    dc_todo = [g for g in dc_geoms if g not in cols._dc]
    if dc_todo:
        for geom, prof in multi_miss_profiles(
            cols.mem_addrs, dc_todo, "dcache", probe
        ).items():
            cols._dc[geom] = prof[0]
    cols.vec_keys.update(("i",) + g for g in ic_geoms)
    cols.vec_keys.update(("d",) + g for g in dc_geoms)
    return True


def note_apply(benchmark: str, probe=None) -> None:
    """Count one sweep cell answered from kernel-primed profiles."""
    GLOBAL_STATS.applied += 1
    if probe is not None:
        probe.emit(EV_MC_APPLY, benchmark)
