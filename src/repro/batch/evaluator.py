"""Batched sweep-family evaluation: one trace pass, N configurations.

A sweep *family* is the set of cells sharing ``(workload, scale, hw_mul,
optimize, mem_size)`` -- i.e. sharing one program image and one captured
trace.  :func:`evaluate_family` is the module-level (picklable) task a
sweep executor maps over families: it loads the program and binds the
shared trace **once**, derives the config-independent timing columns
(:mod:`repro.batch.columns`) once, and then advances one timing-model
state per cell:

* ``scalar`` cells need no machine at all -- their entire
  :class:`~repro.core.stats.Stats` is a handful of O(1) reductions over
  the shared columns (NumPy-vectorized miss profiles where available);
* ``dif`` and replay-eligible ``dtsvliw`` cells fall back to per-config
  scalar timing objects: a full trace-replay machine per cell, but fed
  from the family's single in-memory trace and program.

Cells the trace cannot drive bit-identically -- an invalid window plan
for the cell's ``nwindows``, a cache geometry the live machine rejects,
``REPRO_EXECUTION_DRIVEN=1`` -- fall back to the ordinary per-cell path
(:func:`~repro.harness.sweep.simulate_spec`).  Either way every result is
bit-identical to the unbatched sweep; the differential tests enforce it.

``REPRO_NO_BATCH=1`` (or ``--no-batch`` / ``run_sweep(batch=False)``)
disables family batching entirely.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

from ..core.machine import DTSVLIW

# NOTE: repro.harness.runner is imported lazily inside the functions
# below.  The machines themselves now import repro.batch.timing (the
# hoisted stall-charging models), so a module-level import here would be
# circular: runner -> baselines -> batch -> evaluator -> runner.
from ..obs.probe import resolve_probe
from ..scheduler.memo import memo_disabled, shared_memo
from ..scheduler.memostore import flush_family_memo, load_family_memo
from ..trace.capture import workload_trace
from ..trace.replay import execution_driven_forced
from ..workloads import registry
from . import mc_kernel
from .columns import TraceColumns, cache_geometry_ok, columns_for
from .timing import scalar_family_stats

#: provenance tags carried back to the sweep driver (summary counters).
#: ``VECTORIZED`` is the subset of batched cells whose cache miss
#: profiles came from the multi-config kernel (one grouped pass per
#: address column instead of one walk per geometry); the sweep summary
#: counts vectorized cells inside its ``batched`` total.
BATCHED = "batched"
LIVE = "live"
VECTORIZED = "vectorized"


def batch_enabled_default() -> bool:
    """Batching on unless ``$REPRO_NO_BATCH`` disables it."""
    from ..harness.runner import env_flag  # lazy: see module note

    return not env_flag("REPRO_NO_BATCH")


def family_key(spec) -> Tuple:
    """The grouping key: cells with equal keys share program and trace."""
    return (
        spec.benchmark,
        spec.scale,
        spec.hw_mul,
        spec.optimize,
        spec.config.mem_size,
    )


def batchable(spec) -> bool:
    """Can this cell be evaluated from a shared captured trace?

    The trace-drivable baselines always can; the DTSVLIW can exactly when
    its configuration is replay-eligible (perfect data cache, no
    test-mode value checking, checkpoint store handling -- see
    :meth:`~repro.core.machine.DTSVLIW.replay_eligible`).  Inline-source
    cells are excluded: the trace store is keyed by registry workload.
    """
    if spec.source is not None:
        return False
    machine = spec.machine
    if machine in ("scalar", "dif"):
        return True
    if machine == "dtsvliw":
        return DTSVLIW.replay_eligible(spec.config)
    return False


def _vector_model_ok(cfg) -> bool:
    """True when the closed-form scalar model covers ``cfg``'s caches.

    A geometry the live machine would reject is routed to the per-cell
    machine instead, so the error surfaces with the live constructor's
    own message.
    """
    ic, dc = cfg.icache, cfg.dcache
    if not ic.perfect and not cache_geometry_ok(ic.size, ic.line_size, ic.assoc):
        return False
    if not dc.perfect and not cache_geometry_ok(dc.size, dc.line_size, dc.assoc):
        return False
    return True


def _vec_cell_keys(cfg) -> List[Tuple]:
    """The ``vec_keys`` a scalar cell's real caches need covered before
    its result counts as vectorized (empty: no real caches at all)."""
    keys: List[Tuple] = []
    ic, dc = cfg.icache, cfg.dcache
    if not ic.perfect:
        keys.append(("i", ic.size, ic.line_size, ic.assoc))
    if not dc.perfect:
        keys.append(("d", dc.size, dc.line_size, dc.assoc))
    return keys


def _scalar_cell(spec, cols: TraceColumns, spills: int):
    """Close the scalar baseline's replay loop into O(1) reductions.

    The accounting itself lives in the shared timing model
    (:func:`repro.batch.timing.scalar_family_stats`); this wrapper only
    resolves the cycle budget and stamps wall time.
    """
    from ..harness.runner import RunResult, default_max_cycles  # lazy

    t0 = time.perf_counter()
    max_cycles = (
        default_max_cycles() if spec.max_cycles is None else spec.max_cycles
    )
    st, cycles = scalar_family_stats(
        cols, spec.config, spills, max_cycles, spec.benchmark
    )
    st.wall_time_s = time.perf_counter() - t0
    return RunResult(spec.benchmark, "scalar", st, cols.n, cycles)


def evaluate_family(item) -> List[Tuple]:
    """Evaluate one family's cells off its shared trace (picklable task).

    ``item`` is ``(family_key, specs)`` or ``(family_key, specs,
    vector)``.  Returns ``(result, provenance)`` per spec, in order;
    provenance is :data:`BATCHED` for cells evaluated from the shared
    trace, :data:`VECTORIZED` for the subset whose cache profiles the
    multi-config kernel primed, and :data:`LIVE` for per-cell execution
    fallbacks.

    With ``vector`` on (the default), the closed-form scalar cells' cache
    geometries are collected up front and handed to
    :func:`repro.batch.mc_kernel.prime_columns` in one batch, so the
    whole family's miss profiles come from a few grouped passes over the
    address columns instead of one LRU walk per geometry.
    """
    from ..harness.runner import run_program  # lazy: see module note
    from ..harness.sweep import simulate_spec  # sweep imports this module

    if len(item) == 3:
        key, specs, vector = item
    else:
        key, specs = item
        vector = True
    name, scale, hw_mul, optimize, mem_size = key
    trace = None
    if not execution_driven_forced():
        trace = workload_trace(name, scale, hw_mul, optimize, mem_size=mem_size)
    if trace is None:
        return [(simulate_spec(spec), LIVE) for spec in specs]
    program = registry.load_program(name, scale, hw_mul, optimize)
    reference = (trace.count, bytes(trace.output), trace.exit_code)
    cols = columns_for(trace.bind(program))
    specs = [spec.resolved() for spec in specs]
    probe = resolve_probe(None)  # $REPRO_PROBE, like the machines do
    vec_on = False
    if vector:
        ic_geoms = set()
        dc_geoms = set()
        for spec in specs:
            if spec.machine != "scalar" or not _vector_model_ok(spec.config):
                continue
            for ck in _vec_cell_keys(spec.config):
                (ic_geoms if ck[0] == "i" else dc_geoms).add(ck[1:])
        if ic_geoms or dc_geoms:
            vec_on = mc_kernel.prime_columns(cols, ic_geoms, dc_geoms, probe)
    # One segment memo per family, shared process-wide: blocks scheduled
    # once are re-applied by every later cell whose stint content matches
    # (the memo key excludes VLIW Cache geometry on purpose), and by
    # later sweeps over the same family -- fig6 after fig5 pays for the
    # shared scheduling work once.  See repro/scheduler/memo.py.
    memo = shared_memo(key)
    if not memo_disabled() and any(s.machine == "dtsvliw" for s in specs):
        # Warm the family memo from the on-disk store: a later process
        # sweeping the same family re-applies the stored segments instead
        # of re-scheduling them.  Both directions no-op when persistence
        # is off ($REPRO_NO_MEMO_STORE) and degrade to misses on defects.
        load_family_memo(memo, key, program, probe=probe)
    out: List[Tuple] = []
    for spec in specs:
        spills = cols.spill_count(spec.config.nwindows)
        if spills is None:
            # window spill stack over/underflows: replay refuses, the
            # live machine's own mid-run behaviour is authoritative
            out.append((simulate_spec(spec), LIVE))
            continue
        if spec.machine == "scalar" and _vector_model_ok(spec.config):
            res = _scalar_cell(spec, cols, spills)
            ckeys = _vec_cell_keys(spec.config)
            if vec_on and ckeys and all(k in cols.vec_keys for k in ckeys):
                mc_kernel.note_apply(spec.benchmark, probe)
                out.append((res, VECTORIZED))
            else:
                out.append((res, BATCHED))
            continue
        res = run_program(
            program,
            reference,
            spec.config,
            machine=spec.machine,
            name=spec.benchmark,
            max_cycles=spec.max_cycles,
            trace=trace,
            dtsvliw_replay=spec.machine == "dtsvliw",
            sched_memo=memo if spec.machine == "dtsvliw" else None,
        )
        out.append((res, BATCHED))
    # Spill anything new back to the store (no-op when clean or disabled;
    # eviction from the shared registry flushes too, this just makes the
    # common one-family-per-process sweep durable).
    flush_family_memo(memo, key)
    return out
