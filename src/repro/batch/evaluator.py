"""Batched sweep-family evaluation: one trace pass, N configurations.

A sweep *family* is the set of cells sharing ``(workload, scale, hw_mul,
optimize, mem_size)`` -- i.e. sharing one program image and one captured
trace.  :func:`evaluate_family` is the module-level (picklable) task a
sweep executor maps over families: it loads the program and binds the
shared trace **once**, derives the config-independent timing columns
(:mod:`repro.batch.columns`) once, and then advances one timing-model
state per cell:

* ``scalar`` cells need no machine at all -- their entire
  :class:`~repro.core.stats.Stats` is a handful of O(1) reductions over
  the shared columns (NumPy-vectorized miss profiles where available);
* ``dif`` and replay-eligible ``dtsvliw`` cells fall back to per-config
  scalar timing objects: a full trace-replay machine per cell, but fed
  from the family's single in-memory trace and program.

Cells the trace cannot drive bit-identically -- an invalid window plan
for the cell's ``nwindows``, a cache geometry the live machine rejects,
``REPRO_EXECUTION_DRIVEN=1`` -- fall back to the ordinary per-cell path
(:func:`~repro.harness.sweep.simulate_spec`).  Either way every result is
bit-identical to the unbatched sweep; the differential tests enforce it.

``REPRO_NO_BATCH=1`` (or ``--no-batch`` / ``run_sweep(batch=False)``)
disables family batching entirely.
"""

from __future__ import annotations

import os
import time
from typing import List, Sequence, Tuple

from ..core.errors import SimError
from ..core.machine import DTSVLIW
from ..core.stats import Stats
from ..harness.runner import RunResult, default_max_cycles, run_program
from ..scheduler.memo import shared_memo
from ..trace.capture import workload_trace
from ..trace.replay import execution_driven_forced
from ..workloads import registry
from .columns import TraceColumns, cache_geometry_ok, columns_for

#: provenance tags carried back to the sweep driver (summary counters)
BATCHED = "batched"
LIVE = "live"


def batch_enabled_default() -> bool:
    """Batching on unless ``$REPRO_NO_BATCH`` disables it."""
    return os.environ.get("REPRO_NO_BATCH", "") in ("", "0")


def family_key(spec) -> Tuple:
    """The grouping key: cells with equal keys share program and trace."""
    return (
        spec.benchmark,
        spec.scale,
        spec.hw_mul,
        spec.optimize,
        spec.config.mem_size,
    )


def batchable(spec) -> bool:
    """Can this cell be evaluated from a shared captured trace?

    The trace-drivable baselines always can; the DTSVLIW can exactly when
    its configuration is replay-eligible (perfect data cache, no
    test-mode value checking, checkpoint store handling -- see
    :meth:`~repro.core.machine.DTSVLIW.replay_eligible`).  Inline-source
    cells are excluded: the trace store is keyed by registry workload.
    """
    if spec.source is not None:
        return False
    machine = spec.machine
    if machine in ("scalar", "dif"):
        return True
    if machine == "dtsvliw":
        return DTSVLIW.replay_eligible(spec.config)
    return False


def _vector_model_ok(cfg) -> bool:
    """True when the closed-form scalar model covers ``cfg``'s caches.

    A geometry the live machine would reject is routed to the per-cell
    machine instead, so the error surfaces with the live constructor's
    own message.
    """
    ic, dc = cfg.icache, cfg.dcache
    if not ic.perfect and not cache_geometry_ok(ic.size, ic.line_size, ic.assoc):
        return False
    if not dc.perfect and not cache_geometry_ok(dc.size, dc.line_size, dc.assoc):
        return False
    return True


def _scalar_cell(spec, cols: TraceColumns, spills: int) -> RunResult:
    """Close the scalar baseline's replay loop into O(1) reductions.

    Mirrors :meth:`ScalarMachine._run_replay` term by term: one base
    cycle per committed instruction, icache stalls (the exit-trap fetch
    is *recorded* but not charged), dcache stalls over the memory events,
    the load-use and branch-not-taken bubbles, and the window-spill
    penalty.  The cycle-budget check reduces exactly: the loop's guard
    binds at the exit event, where the accumulated count is one below the
    final total.
    """
    t0 = time.perf_counter()
    cfg = spec.config
    n = cols.n
    ic, dc = cfg.icache, cfg.dcache
    if ic.perfect:
        ic_miss, ic_last = 0, False
    else:
        ic_miss, ic_last = cols.icache_profile(ic.size, ic.line_size, ic.assoc)
    dc_miss = 0 if dc.perfect else cols.dcache_misses(dc.size, dc.line_size, dc.assoc)
    st = Stats()
    st.ref_instructions = n
    st.primary_instructions = n - 1
    st.icache_stall_cycles = ic.miss_penalty * ic_miss
    st.dcache_stall_cycles = dc.miss_penalty * dc_miss
    st.load_use_bubble_cycles = cfg.load_use_bubble * cols.lu_count
    st.branch_bubble_cycles = cfg.branch_not_taken_bubble * cols.bnt_count
    st.spill_cycles = cfg.window_spill_penalty * spills
    cycles = (
        n
        + st.icache_stall_cycles
        - (ic.miss_penalty if ic_last else 0)
        + st.dcache_stall_cycles
        + st.load_use_bubble_cycles
        + st.branch_bubble_cycles
        + st.spill_cycles
    )
    max_cycles = (
        default_max_cycles() if spec.max_cycles is None else spec.max_cycles
    )
    if cycles - 1 >= max_cycles:
        # the same two-layer message run_program wraps around the live
        # machine's cycle-budget SimError
        raise SimError(
            "scalar on %s failed (max_cycles=%d): "
            "scalar machine exceeded %d cycles"
            % (spec.benchmark, max_cycles, max_cycles)
        )
    st.cycles = cycles
    st.primary_cycles = cycles
    st.wall_time_s = time.perf_counter() - t0
    return RunResult(spec.benchmark, "scalar", st, n, cycles)


def evaluate_family(item) -> List[Tuple[RunResult, str]]:
    """Evaluate one family's cells off its shared trace (picklable task).

    ``item`` is ``(family_key, specs)``.  Returns ``(result, provenance)``
    per spec, in order; provenance is :data:`BATCHED` for cells evaluated
    from the shared trace and :data:`LIVE` for per-cell execution
    fallbacks.
    """
    from ..harness.sweep import simulate_spec  # sweep imports this module

    key, specs = item
    name, scale, hw_mul, optimize, mem_size = key
    trace = None
    if not execution_driven_forced():
        trace = workload_trace(name, scale, hw_mul, optimize, mem_size=mem_size)
    if trace is None:
        return [(simulate_spec(spec), LIVE) for spec in specs]
    program = registry.load_program(name, scale, hw_mul, optimize)
    reference = (trace.count, bytes(trace.output), trace.exit_code)
    cols = columns_for(trace.bind(program))
    # One segment memo per family, shared process-wide: blocks scheduled
    # once are re-applied by every later cell whose stint content matches
    # (the memo key excludes VLIW Cache geometry on purpose), and by
    # later sweeps over the same family -- fig6 after fig5 pays for the
    # shared scheduling work once.  See repro/scheduler/memo.py.
    memo = shared_memo(key)
    out: List[Tuple[RunResult, str]] = []
    for spec in specs:
        spec = spec.resolved()
        spills = cols.spill_count(spec.config.nwindows)
        if spills is None:
            # window spill stack over/underflows: replay refuses, the
            # live machine's own mid-run behaviour is authoritative
            out.append((simulate_spec(spec), LIVE))
            continue
        if spec.machine == "scalar" and _vector_model_ok(spec.config):
            out.append((_scalar_cell(spec, cols, spills), BATCHED))
            continue
        res = run_program(
            program,
            reference,
            spec.config,
            machine=spec.machine,
            name=spec.benchmark,
            max_cycles=spec.max_cycles,
            trace=trace,
            dtsvliw_replay=spec.machine == "dtsvliw",
            sched_memo=memo if spec.machine == "dtsvliw" else None,
        )
        out.append((res, BATCHED))
    return out
