"""DTSVLIW: a reproduction of de Souza & Rounce, IPPS/SPDP 1999.

Public API
----------

Compile and run::

    from repro import compile_and_load, DTSVLIW, MachineConfig

    program = compile_and_load("int main() { return 6 * 7; }")
    machine = DTSVLIW(program, MachineConfig.paper_fixed(8, 8))
    stats = machine.run()

Pieces:

* :func:`repro.lang.compile_minicc` / :func:`repro.asm.assembler.assemble`
* :class:`repro.core.machine.DTSVLIW` -- the machine
* :class:`repro.core.config.MachineConfig` -- all parameters (Table 1,
  feasible, Figure 9 presets)
* :class:`repro.core.reference.ReferenceMachine` -- the sequential oracle
* :class:`repro.baselines.dif.DIFMachine`,
  :class:`repro.baselines.scalar.ScalarMachine`
* :mod:`repro.workloads.registry` -- the SPECint95 analogues
* :mod:`repro.harness.experiments` -- every table/figure driver
"""

from .asm.assembler import assemble
from .core.config import CacheConfig, MachineConfig
from .core.machine import DTSVLIW
from .core.reference import ReferenceMachine
from .core.stats import Stats
from .lang import CompilerOptions, compile_minicc

__version__ = "1.0.0"

__all__ = [
    "assemble",
    "compile_minicc",
    "compile_and_load",
    "CompilerOptions",
    "CacheConfig",
    "MachineConfig",
    "DTSVLIW",
    "ReferenceMachine",
    "Stats",
]


def compile_and_load(source, options=None):
    """Compile minicc ``source`` and assemble it into a runnable Program."""
    return assemble(compile_minicc(source, options))
