"""Machine configuration for the DTSVLIW simulator.

The defaults mirror Table 1 of the paper (the "fixed parameters"); the
named constructors build the configurations used by each experiment:

* :meth:`MachineConfig.paper_fixed` -- ideal memory system used for the
  block-geometry and VLIW-cache studies (Figures 5-7): perfect I/D caches,
  no next-long-instruction miss penalty.
* :meth:`MachineConfig.feasible` -- the section 4.4 machine: 32 KB 4-way
  I-cache, 32 KB direct-mapped D-cache (1-cycle access, 8-cycle miss),
  192 KB 4-way VLIW cache, 1-cycle next-LI miss penalty, and ten
  non-homogeneous functional units (4 int, 2 ld/st, 2 fp, 2 branch).
* :meth:`MachineConfig.fig9` -- the Figure 9 DTSVLIW/DIF comparison setup
  (6x6 blocks, 2 branch + 4 homogeneous units, 4 KB caches with 2-cycle
  miss, 2-way VLIW cache of 512x2 blocks).
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Set, Tuple

from ..isa.instructions import FU_BR, FU_FP, FU_INT, FU_LS


@dataclass
class CacheConfig:
    size: int = 32 * 1024
    line_size: int = 32
    assoc: int = 1
    miss_penalty: int = 8
    perfect: bool = False

    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe representation (see MachineConfig.to_dict)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CacheConfig":
        return cls(**d)


def _feasible_slots() -> List[int]:
    return [FU_INT] * 4 + [FU_LS] * 2 + [FU_FP] * 2 + [FU_BR] * 2


#: VLIW-cache geometries already warned about (warn once per geometry per
#: process, not once per constructed config -- sweeps build thousands).
_warned_geometries: Set[Tuple[int, int]] = set()


@dataclass
class MachineConfig:
    # -- block geometry (section 4.1) ---------------------------------------
    block_width: int = 8  # instructions per long instruction
    block_height: int = 8  # long instructions per block
    #: functional-unit class per slot; None = homogeneous (any op anywhere)
    slot_classes: Optional[List[int]] = None

    # -- VLIW cache (sections 3.4, 4.2, 4.3) ---------------------------------
    vliw_cache_bytes: int = 3072 * 1024
    vliw_cache_assoc: int = 4
    instr_bytes: int = 6  # decoded instruction size (Table 1)
    next_li_miss_penalty: int = 0  # 1 for the feasible machine
    #: Next-block prediction (the paper's section 5 future work): a
    #: last-successor predictor prefetches the next block during execution,
    #: hiding the next-LI miss penalty when it guesses right.
    next_block_prediction: bool = False

    # -- conventional caches (Table 1 / section 4.4) -------------------------
    icache: CacheConfig = field(
        default_factory=lambda: CacheConfig(perfect=True)
    )
    dcache: CacheConfig = field(
        default_factory=lambda: CacheConfig(perfect=True)
    )

    # -- Primary Processor timing (Table 1) -----------------------------------
    branch_not_taken_bubble: int = 3
    load_use_bubble: int = 1
    window_spill_penalty: int = 16
    #: Handle register-window overflow/underflow inline in the VLIW Engine
    #: (checkpointed hardware spill, costing ``window_spill_penalty``).
    #: When False a spill during VLIW replay is an architectural exception,
    #: rolling the block back to the Primary Processor (ablation:
    #: bench_ablation_window_spill).
    vliw_window_spill_inline: bool = True

    # -- engine swap costs (section 3.6) --------------------------------------
    switch_to_vliw_cost: int = 2
    switch_to_primary_cost: int = 3

    # -- VLIW engine ------------------------------------------------------------
    mispredict_penalty: int = 1

    # -- renaming resources (Table 3 measures the maxima; None = unlimited) ----
    int_renaming_limit: Optional[int] = None
    fp_renaming_limit: Optional[int] = None
    cc_renaming_limit: Optional[int] = None
    mem_renaming_limit: Optional[int] = None

    # -- machine ----------------------------------------------------------------
    nwindows: int = 8
    mem_size: int = 8 * 1024 * 1024
    test_mode: bool = True
    #: honour multi-cycle instruction latencies during scheduling ([14])
    multicycle: bool = True
    #: use the alternative data-store-list scheme of section 3.11
    data_store_list: bool = False

    def __post_init__(self) -> None:
        if self.slot_classes is not None and len(self.slot_classes) != self.block_width:
            raise ValueError(
                "slot_classes length %d != block width %d"
                % (len(self.slot_classes), self.block_width)
            )
        if self.vliw_cache_assoc < 1:
            raise ValueError(
                "vliw_cache_assoc must be >= 1 (got %d)" % self.vliw_cache_assoc
            )
        blocks = self.vliw_cache_blocks
        if blocks < self.vliw_cache_assoc:
            key = (blocks, self.vliw_cache_assoc)
            if key not in _warned_geometries:
                _warned_geometries.add(key)
                warnings.warn(
                    "VLIW cache holds only %d block(s); clamping the"
                    " requested %d-way associativity to %d"
                    % (blocks, self.vliw_cache_assoc, min(self.vliw_cache_assoc, blocks)),
                    stacklevel=2,
                )

    # ------------------------------------------------------------------ sizes
    @property
    def block_bytes(self) -> int:
        return self.block_width * self.block_height * self.instr_bytes

    @property
    def vliw_cache_blocks(self) -> int:
        return max(1, self.vliw_cache_bytes // self.block_bytes)

    @property
    def vliw_cache_effective_assoc(self) -> int:
        """The associativity the VLIW cache is actually built with: the
        requested ``vliw_cache_assoc``, clamped (with a one-time warning at
        construction) when the cache holds fewer blocks than ways."""
        return min(self.vliw_cache_assoc, self.vliw_cache_blocks)

    # ------------------------------------------------------------ constructors
    @classmethod
    def paper_fixed(cls, width: int = 8, height: int = 8, **kw) -> "MachineConfig":
        """Ideal-memory configuration of Figures 5-7 (overridable)."""
        kw.setdefault("icache", CacheConfig(perfect=True))
        kw.setdefault("dcache", CacheConfig(perfect=True))
        kw.setdefault("next_li_miss_penalty", 0)
        return cls(block_width=width, block_height=height, **kw)

    @classmethod
    def feasible(cls, **kw) -> "MachineConfig":
        """The section 4.4 'feasible DTSVLIW machine'."""
        return cls(
            block_width=10,
            block_height=8,
            slot_classes=_feasible_slots(),
            vliw_cache_bytes=192 * 1024,
            vliw_cache_assoc=4,
            next_li_miss_penalty=1,
            icache=CacheConfig(
                size=32 * 1024, line_size=32, assoc=4, miss_penalty=8
            ),
            dcache=CacheConfig(
                size=32 * 1024, line_size=32, assoc=1, miss_penalty=8
            ),
            **kw,
        )

    @classmethod
    def fig9(cls, **kw) -> "MachineConfig":
        """The Figure 9 comparison configuration (shared with DIF)."""
        return cls(
            block_width=6,
            block_height=6,
            slot_classes=[FU_BR] * 2 + [None] * 4,  # 2 branch + 4 universal
            vliw_cache_bytes=512 * 2 * 6 * 6 * 6,  # 512 sets x 2 ways x block
            vliw_cache_assoc=2,
            next_li_miss_penalty=1,
            icache=CacheConfig(
                size=4 * 1024, line_size=128, assoc=2, miss_penalty=2
            ),
            dcache=CacheConfig(
                size=4 * 1024, line_size=32, assoc=1, miss_penalty=2
            ),
            **kw,
        )

    def with_(self, **kw) -> "MachineConfig":
        """Return a copy with fields replaced."""
        return replace(self, **kw)

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-safe dict covering every field.

        ``from_dict(to_dict(cfg)) == cfg`` holds for any configuration, and
        the dict is the input of :meth:`config_key` (the sweep layer's
        content hash), so every field that influences simulation must appear
        here -- adding a field to the dataclass is enough.
        """
        out: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, CacheConfig):
                value = value.to_dict()
            elif isinstance(value, list):
                value = list(value)
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "MachineConfig":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly so a
        cache entry written by a different code version cannot be silently
        misinterpreted."""
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                "unknown MachineConfig fields %s" % sorted(unknown)
            )
        kw = dict(d)
        for name in ("icache", "dcache"):
            if isinstance(kw.get(name), dict):
                kw[name] = CacheConfig.from_dict(kw[name])
        return cls(**kw)

    def config_key(self) -> str:
        """Stable content hash of the configuration (hex, 16 chars).

        Two configs compare equal iff their keys match; used by
        :mod:`repro.harness.resultcache` to key persisted results.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
