"""Exception taxonomy for the simulator.

Two families:

* :class:`SimError` -- bugs in the simulator or in the simulated program
  (misassembled code, runaway recursion, unknown opcodes).  These propagate
  to the caller; they are never part of the architecture.
* :class:`ArchException` -- *architectural* exceptions the DTSVLIW must
  handle with the checkpointing protocol of section 3.11 (memory faults,
  window overflow/underflow during VLIW replay, memory-aliasing violations).

:class:`ProgramExit` signals the clean ``ta 0`` exit trap.
"""

from __future__ import annotations


class SimError(Exception):
    """Internal simulator error or malformed simulated program."""


class ProgramExit(Exception):
    """Raised by the exit trap; carries the program's exit code."""

    def __init__(self, code: int):
        super().__init__("program exited with code %d" % code)
        self.code = code


class ArchException(Exception):
    """Base class for architectural exceptions (checkpoint-recoverable)."""


class MemFault(ArchException):
    """Misaligned or out-of-range memory access / division fault."""

    def __init__(self, addr: int, reason: str):
        super().__init__("%s (addr=0x%x)" % (reason, addr))
        self.addr = addr
        self.reason = reason


class WindowOverflow(ArchException):
    """``save`` executed with no free register window (VLIW replay)."""


class WindowUnderflow(ArchException):
    """``restore`` executed with no resident parent window (VLIW replay)."""


class AliasingException(ArchException):
    """Memory aliasing detected by the VLIW Engine (section 3.10)."""

    def __init__(self, load_order: int, store_order: int):
        super().__init__(
            "aliasing: order %d vs %d" % (load_order, store_order)
        )
        self.load_order = load_order
        self.store_order = store_order


class DeferredException(ArchException):
    """An exception captured in a renaming register by a speculative
    instruction and re-raised when its COPY commits (section 3.8)."""

    def __init__(self, original: ArchException):
        super().__init__("deferred: %s" % original)
        self.original = original


class TestModeMismatch(SimError):
    """Lockstep state comparison failed -- the DTSVLIW diverged from the
    reference machine (the paper's test-mode error signal)."""
