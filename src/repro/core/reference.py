"""The reference machine -- the paper's *test machine*.

A pure in-order functional simulator with the same characteristics as the
Primary Processor.  It provides two services (section 4):

* the lockstep oracle for *test mode* (architectural state comparison), and
* the precise sequential instruction count used as the numerator of the
  paper's instructions-per-cycle metric.
"""

from __future__ import annotations

import time

from ..asm.program import Program
from ..isa.blockcompile import (
    GLOBAL_STATS,
    MODE_LEAN,
    block_compile_disabled,
    compile_blocks,
)
from ..isa.predecode import generic_step_forced
from ..isa.registers import O0, RegFile, SP
from ..isa.semantics import StepInfo, step, to_signed
from ..memory.main_memory import MainMemory
from ..obs.probe import EV_BC_FALLBACK, resolve_probe
from .errors import ProgramExit, SimError

#: software trap numbers
TRAP_EXIT = 0
TRAP_PUTC = 1
TRAP_PRINT_INT = 2


class TrapServices:
    """Implements the ``ta`` software traps; shared by every engine so the
    DTSVLIW and the reference machine observe identical side effects."""

    __slots__ = ("output", "exit_code")

    def __init__(self) -> None:
        self.output = bytearray()
        self.exit_code = 0

    def trap(self, num: int, rf: RegFile, mem: MainMemory) -> None:
        """Dispatch software trap ``num`` (exit/putc/print-int)."""
        if num == TRAP_EXIT:
            self.exit_code = to_signed(rf.read(O0))
            raise ProgramExit(self.exit_code)
        if num == TRAP_PUTC:
            self.output.append(rf.read(O0) & 0xFF)
            return
        if num == TRAP_PRINT_INT:
            self.output += str(to_signed(rf.read(O0))).encode()
            return
        raise SimError("unknown trap %d" % num)


def setup_state(
    program: Program, mem: MainMemory, rf: RegFile
) -> int:
    """Load ``program`` and initialise registers; returns the entry PC."""
    mem.load_image(program.text_image(), program.text_base)
    mem.load_image(program.data_image, program.data_base)
    rf.wssp = mem.size
    # Stack below the spill region, 8-byte aligned.
    stack_top = (mem.size - mem.spill_region - 64) & ~7
    rf.write(SP, stack_top)
    return program.entry


class ReferenceMachine:
    """Sequential execution of a program, one instruction per ``step()``.

    By default the hot loop dispatches through the program's predecoded
    *lean* closure table (:mod:`repro.isa.predecode`) -- the reference
    machine compares architectural state only, so it skips the StepInfo
    bookkeeping the timing engines need; ``generic_step=True`` -- or
    ``REPRO_GENERIC_STEP=1`` in the environment -- forces the generic
    :func:`~repro.isa.semantics.step` oracle instead.  On top of the lean
    table, ``run()`` dispatches through cached compiled superblocks
    (:mod:`repro.isa.blockcompile`) -- straight-line sequences execute as
    one specialized function call each; ``block_compile=False`` or
    ``REPRO_NO_BLOCK_COMPILE=1`` drops back to per-instruction closures.
    All paths are observationally identical (the differential test suite
    holds them to that, instruction by instruction).
    """

    def __init__(
        self,
        program: Program,
        mem_size: int = 8 * 1024 * 1024,
        nwindows: int = 8,
        services: TrapServices | None = None,
        generic_step: bool | None = None,
        probe=None,
        block_compile: bool | None = None,
    ):
        self.program = program
        self.mem = MainMemory(mem_size)
        self.rf = RegFile(nwindows)
        self.services = services or TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)
        self.instret = 0
        self.halted = False
        self.info = StepInfo()
        self.generic_step = (
            generic_step_forced() if generic_step is None else generic_step
        )
        self.probe = resolve_probe(probe)
        if block_compile is None:
            block_compile = not block_compile_disabled()
        self.block_compile = block_compile and not self.generic_step
        self.block_fallbacks = 0
        self._blocks = None
        self.wall_time_s = 0.0
        self._run = (
            None
            if self.generic_step
            else getattr(program, "run_table", None)
        )

    @property
    def output(self) -> bytes:
        return bytes(self.services.output)

    @property
    def exit_code(self) -> int:
        return self.services.exit_code

    @property
    def mips(self) -> float:
        """Simulated (sequential) instructions per wall-clock microsecond."""
        return (
            self.instret / self.wall_time_s / 1e6 if self.wall_time_s else 0.0
        )

    def step_one(self) -> None:
        """Execute exactly one instruction."""
        run_table = self._run
        if run_table is not None:
            fn = run_table.get(self.pc)
            if fn is None:
                raise SimError("fetch outside text segment: 0x%x" % self.pc)
            try:
                self.pc = fn(self.rf, self.mem, self.services)
            except ProgramExit:
                self.instret += 1
                self.halted = True
                raise
            self.instret += 1
            return
        instr = self.program.fetch(self.pc)
        try:
            self.pc = step(self.rf, self.mem, instr, self.services, self.info)
        except ProgramExit:
            self.instret += 1
            self.halted = True
            raise
        self.instret += 1

    def _block_table(self):
        """The lean compiled-block dispatch table, or None when block
        dispatch is off (escape hatches, empty table, no run table)."""
        if not self.block_compile or self._run is None:
            return None
        blocks = self._blocks
        if blocks is None:
            blocks = compile_blocks(self.program, MODE_LEAN, probe=self.probe)
            self._blocks = blocks
        return blocks or None

    def run(self, max_instructions: int = 100_000_000) -> int:
        """Run to the exit trap; returns the instruction count."""
        rf, mem, services = self.rf, self.mem, self.services
        pc = self.pc
        n = self.instret
        run_table = self._run
        blocks = self._block_table()
        ctr = [0, None, -1]  # committed / unused / fault pc (block protocol)
        fb = 0
        t0 = time.perf_counter()
        try:
            if blocks is not None:
                probe = self.probe
                btg = blocks.get
                fns = run_table.get
                while n < max_instructions:
                    e = btg(pc)
                    if e is not None and n + e[1] <= max_instructions:
                        try:
                            pc = e[0](rf, mem, services, ctr)
                        finally:
                            n += ctr[0]
                            ctr[0] = 0
                    else:
                        # no block at pc (interior jump target) or the
                        # block could overrun max_instructions
                        fn = fns(pc)
                        if fn is None:
                            raise SimError(
                                "fetch outside text segment: 0x%x" % pc
                            )
                        fb += 1
                        if probe is not None:
                            probe.emit(EV_BC_FALLBACK, pc)
                        pc = fn(rf, mem, services)
                        n += 1
            elif run_table is not None:
                # lean closures: no StepInfo bookkeeping in the hot loop
                fns = run_table.get
                while n < max_instructions:
                    fn = fns(pc)
                    if fn is None:
                        raise SimError("fetch outside text segment: 0x%x" % pc)
                    pc = fn(rf, mem, services)
                    n += 1
            else:
                info = self.info
                fetch = self.program.instrs.get
                while n < max_instructions:
                    instr = fetch(pc)
                    if instr is None:
                        raise SimError("fetch outside text segment: 0x%x" % pc)
                    pc = step(rf, mem, instr, services, info)
                    n += 1
        except ProgramExit:
            n += 1
            if ctr[2] >= 0:  # exit trap raised inside a block
                pc = ctr[2]
            self.halted = True
        except BaseException:
            if ctr[2] >= 0:  # restore the faulting instruction's address
                pc = ctr[2]
            raise
        finally:
            self.pc = pc
            self.instret = n
            self.wall_time_s += time.perf_counter() - t0
            if fb:
                self.block_fallbacks += fb
                GLOBAL_STATS.fallback_dispatches += fb
        if not self.halted:
            raise SimError(
                "reference machine exceeded %d instructions" % max_instructions
            )
        return self.instret
