"""The DTSVLIW machine (sections 3.1, 3.6): Fetch Unit, mode switching,
block chaining, exception handling and the lockstep *test mode*.

Program execution paradigm (section 3.6): the VLIW Engine and the Primary
Processor never run at the same time and share all machine state.  In
primary mode the Fetch Unit probes the VLIW Cache with the address of the
instruction at the execute stage; a hit flushes the partial scheduling-list
block (chained to the hit block via its nba) and hands control to the VLIW
Engine.  A VLIW Cache miss (fall-through or redirect target absent) hands
control back, the Scheduler Unit starting a fresh block at the resume
address -- chaining blocks along the executed trace.

Test mode (section 4): a reference machine with its own memory runs in
lockstep -- stepwise in primary mode, catching up to the machine PC after
every VLIW block -- and every synchronisation point compares architectural
state.  The reference instruction count is the IPC numerator.

Trace layer: the Primary Processor consumes its committed stream from a
:class:`~repro.trace.replay.LiveTraceSource` by default.  When a captured
trace is supplied *and* the configuration is replay-eligible
(:meth:`DTSVLIW.replay_eligible`: perfect data cache, no test-mode
lockstep, no data-store-list ablation), the machine instead runs fully
trace-driven: the Primary replays the committed stream through a
:class:`~repro.trace.replay.WindowReplayTraceSource` and the VLIW Engine
is swapped for its timing twin
(:class:`~repro.vliw.replay_engine.ReplayVLIWEngine`), which derives
block outcomes from the trace cursor without executing values.  Stats
are bit-identical to the live run (enforced by the differential suite);
a real data cache keeps the live path, because the engine's speculative
data-cache traffic depends on register contents the trace does not
record.
"""

from __future__ import annotations

import time

from typing import Optional

from ..asm.program import Program
from ..isa.registers import RegFile
from ..isa.semantics import StepInfo
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..isa.blockcompile import PM_STATS, compile_pm_blocks
from ..obs.probe import (
    EV_MODE_SWITCH,
    EV_PM_DISPATCH,
    EV_PM_FALLBACK,
    EV_VCACHE_PROBE,
    resolve_probe,
)
from ..primary.pipeline import PrimaryProcessor
from ..scheduler.memo import (
    SEG_FULL,
    SEG_HIT,
    SEG_NONSCHED,
    ScheduleMemo,
    SegmentRecord,
    collision_pattern,
    memo_disabled,
    pattern_matches,
)
from ..scheduler.ops import build_sched_op
from ..scheduler.unit import FLUSH_HIT, FLUSH_NONSCHED, SchedulerUnit
from ..trace.events import Trace
from ..trace.replay import LiveTraceSource, replay_source_for
from ..vliw.cache import VLIWCache
from ..vliw.engine import VLIWEngine, WindowResidencyUnsatisfiable
from ..vliw.replay_engine import ReplayVLIWEngine
from .config import MachineConfig
from .errors import ProgramExit, SimError, TestModeMismatch
from .reference import ReferenceMachine, TrapServices, setup_state
from .stats import Stats


class DTSVLIW:
    """An execution-driven DTSVLIW simulator for one program run."""

    def __init__(
        self,
        program: Program,
        cfg: Optional[MachineConfig] = None,
        probe=None,
        trace: Optional[Trace] = None,
        sched_memo: Optional[ScheduleMemo] = None,
    ):
        self.program = program
        self.cfg = cfg or MachineConfig()
        c = self.cfg
        self.stats = Stats()
        #: active probe threaded through every subcomponent, or None
        #: (``probe=None`` consults ``$REPRO_PROBE``)
        self.probe = resolve_probe(probe)
        self.mem = MainMemory(c.mem_size)
        self.rf = RegFile(c.nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)

        self.icache = Cache(
            "icache",
            c.icache.size,
            c.icache.line_size,
            c.icache.assoc,
            c.icache.miss_penalty,
            c.icache.perfect,
            probe=self.probe,
        )
        self.dcache = Cache(
            "dcache",
            c.dcache.size,
            c.dcache.line_size,
            c.dcache.assoc,
            c.dcache.miss_penalty,
            c.dcache.perfect,
            probe=self.probe,
        )
        self.vcache = VLIWCache(
            c.vliw_cache_blocks,
            c.vliw_cache_effective_assoc,
            probe=self.probe,
        )
        self.scheduler = SchedulerUnit(c, self.stats, probe=self.probe)
        # Trace-driven when eligible and a trace was supplied; otherwise
        # execution-driven (the VLIW Engine then needs real register and
        # memory values, so the committed stream must be generated live).
        replay_src = None
        if trace is not None and self.replay_eligible(c):
            replay_src = replay_source_for(
                trace, program, self.rf, self.services, c, windows=True
            )
        #: True when this run is fully trace-driven (replay twin engine)
        self.replay = replay_src is not None
        if self.replay:
            self.engine = ReplayVLIWEngine(
                c,
                self.rf,
                self.mem,
                self.dcache,
                self.stats,
                replay_src,
                program,
                probe=self.probe,
            )
        else:
            self.engine = VLIWEngine(
                c, self.rf, self.mem, self.dcache, self.stats, probe=self.probe
            )
        self.primary = PrimaryProcessor(
            c,
            self.rf,
            self.mem,
            self.icache,
            self.dcache,
            self.services,
            self.stats,
            source=replay_src,
            probe=self.probe,
        )
        self.source = self.primary.source

        self.halted = False
        self._max_cycles = 2_000_000_000
        #: last-successor next-block predictor (future-work extension)
        self._next_block_pred: dict = {}
        self.exception_mode = False
        self.exception_target = 0
        self._exception_budget = 0

        # Segment memo (repro.scheduler.memo): replay-only, and only when
        # primary-mode timing is trace-determined (perfect icache; the
        # perfect dcache is implied by replay eligibility) and nothing
        # observes the per-event work the memo skips (no probe).
        self._seg_owner: Optional[ScheduleMemo] = None
        self._seg_table: Optional[dict] = None
        self._seg_info = StepInfo()
        if self.replay and self.probe is None and c.icache.perfect and not memo_disabled():
            self._seg_owner = sched_memo if sched_memo is not None else ScheduleMemo()
            self._seg_table = self._seg_owner.table_for(c)

        # Compiled primary-mode scheduling (repro.isa.blockcompile
        # MODE_PM): replay-only -- the generated functions read trace
        # columns directly and drive the real scheduler.
        self._pm_table: Optional[dict] = None
        self._pm_ctr: list = [0, None, None]
        if self.replay and self.primary.pm_dispatch_viable():
            self._pm_table = compile_pm_blocks(program, c, probe=self.probe)

        self.reference: Optional[ReferenceMachine] = None
        if c.test_mode:
            self.reference = ReferenceMachine(
                program, mem_size=c.mem_size, nwindows=c.nwindows
            )

    # ------------------------------------------------------------------- API
    @staticmethod
    def replay_eligible(cfg: MachineConfig) -> bool:
        """Can a DTSVLIW with ``cfg`` be driven from a captured trace?

        The timing twin never executes values, so every consumer of them
        must be off: a real data cache (speculative access addresses
        depend on register contents), the test-mode lockstep (compares
        architectural state) and the data-store-list ablation (forwards
        store values to loads).
        """
        return cfg.dcache.perfect and not cfg.test_mode and not cfg.data_store_list

    @property
    def output(self) -> bytes:
        return bytes(self.services.output)

    @property
    def exit_code(self) -> int:
        return self.services.exit_code

    def run(self, max_cycles: int = 2_000_000_000) -> Stats:
        """Run to the exit trap (or ``max_cycles``); returns the stats."""
        self._max_cycles = max_cycles
        t0 = time.perf_counter()
        try:
            while not self.halted and self.stats.cycles < max_cycles:
                if self._seg_table is not None:
                    self._primary_mode_replay()
                else:
                    self._primary_mode()
        except ProgramExit:
            self.halted = True
        finally:
            self.stats.wall_time_s += time.perf_counter() - t0
        if not self.halted:
            raise SimError("DTSVLIW exceeded %d cycles" % max_cycles)
        if self.reference is not None:
            self._final_check()
            self.stats.ref_instructions = self.reference.instret
        return self.stats

    # ----------------------------------------------------------- primary mode
    def _primary_mode(self) -> None:
        """Execute in trace (or exception) mode until a VLIW Cache hit."""
        st = self.stats
        cfg = self.cfg
        fetch = self.program.instrs.get
        probe = self.probe
        pm = self._pm_table
        src = self.source
        ctr = self._pm_ctr
        self.primary.reset_pipeline()
        while not self.halted and st.cycles < self._max_cycles:
            pc = self.pc
            # Fetch Unit: probe the VLIW Cache with the execute-stage address
            if not self.exception_mode:
                st.vliw_cache_probes += 1
                if self.vcache.probe(pc):
                    st.vliw_cache_hits += 1
                    if probe is not None:
                        probe.emit(EV_VCACHE_PROBE, pc, 1)
                        probe.emit(EV_MODE_SWITCH, 0, pc)
                    block = self.scheduler.flush(FLUSH_HIT, pc)
                    if block is not None:
                        self.vcache.insert(block)
                    st.mode_switches += 1
                    st.switch_cycles += cfg.switch_to_vliw_cost
                    st.cycles += cfg.switch_to_vliw_cost
                    self._vliw_mode(pc)
                    self.primary.reset_pipeline()
                    continue
                if probe is not None:
                    probe.emit(EV_VCACHE_PROBE, pc, 0)
                if pm is not None:
                    # compiled primary-mode block (replay-only; the leading
                    # probe for pc was charged and emitted just above)
                    ent = pm.get(pc)
                    if (
                        ent is not None
                        and src.i + ent[1] <= src.last
                        and st.cycles + ent[2] < self._max_cycles
                    ):
                        npc = self.primary.dispatch_pm(
                            ent[0], self.scheduler, self.vcache.probe, ctr
                        )
                        if ctr[0]:
                            PM_STATS.dispatches += 1
                            if probe is not None:
                                probe.emit(EV_PM_DISPATCH, pc)
                            self.pc = npc
                            block = ctr[2]
                            if block is not None:
                                self.vcache.insert(block)
                            continue
                    PM_STATS.fallback_dispatches += 1
                    if probe is not None:
                        probe.emit(EV_PM_FALLBACK, pc)
            instr = fetch(pc)
            if instr is None:
                raise SimError("fetch outside text segment: 0x%x" % pc)
            try:
                next_pc, cycles, sched, nonsched = self.primary.step(instr)
            except ProgramExit:
                st.cycles += 1
                st.primary_cycles += 1
                self._test_step()
                raise
            st.cycles += cycles
            st.primary_cycles += cycles
            self.pc = next_pc
            if not self.exception_mode:
                self.scheduler.tick(cycles)
                if nonsched:
                    block = self.scheduler.flush(FLUSH_NONSCHED, instr.addr)
                    if block is not None:
                        self.vcache.insert(block)
                elif sched is not None:
                    block = self.scheduler.insert(sched)
                    if block is not None:
                        self.vcache.insert(block)
            else:
                self._exception_budget -= 1
                if instr.addr == self.exception_target:
                    self.exception_mode = False
                elif self._exception_budget <= 0:
                    raise SimError(
                        "exception mode never reached 0x%x"
                        % self.exception_target
                    )
            self._test_step()

    # ------------------------------------------------- primary mode (replay)
    def _primary_mode_replay(self) -> None:
        """Trace-driven primary mode with segment memoization.

        Identical, event for event, to :meth:`_primary_mode` on a replay
        source (no test mode, so the lockstep hooks are no-ops there) --
        except that stints between flush boundaries are recorded into the
        segment memo and, when the committed stream revisits equivalent
        content, replayed as a Stats delta + block insert + cursor jump
        instead of being re-scheduled (see :mod:`repro.scheduler.memo`).
        """
        st = self.stats
        cfg = self.cfg
        fetch = self.program.instrs.get
        sched = self.scheduler
        primary = self.primary
        vcache = self.vcache
        rf = self.rf
        src = self.source
        pcs = src.pcs
        owner = self._seg_owner
        table = self._seg_table
        pm = self._pm_table
        ctr = self._pm_ctr
        primary.reset_pipeline()

        # ``ext``: the canonical scheduler state at the last witnessed
        # boundary (True = one pending spillover op); None until the first
        # boundary when the list is non-empty at entry (re-entry safety).
        ext = False if not sched.entries else None
        rec_base = -1  # base event index of the recording stint, -1 = off
        rec_key = rec_snap = None
        rec_keep = False
        rec_cs = rec_cr = rec_wp = 0

        while not self.halted and st.cycles < self._max_cycles:
            pc = self.pc
            if not self.exception_mode:
                hit = vcache.probe(pc)
                if not hit and rec_base < 0 and ext is not None:
                    key = (pc, rf.cwp, primary.last_load_rd, ext)
                    bucket = table.get(key)
                    if bucket is not None:
                        applied = None
                        for rec in bucket:
                            if self._seg_apply(rec):
                                applied = rec
                                break
                        if applied is not None:
                            owner.applied += 1
                            ext = applied.kind == SEG_FULL
                            continue
                    # no record fits: record this stint
                    rec_base = src.i - 1 if ext else src.i
                    rec_key = key
                    rec_snap = dict(st.__dict__)
                    rec_keep = sched.keep_mem_order if ext else False
                    rec_cs = rf.cansave
                    rec_cr = rf.canrestore
                    rec_wp = rf.wssp
                st.vliw_cache_probes += 1
                if hit:
                    st.vliw_cache_hits += 1
                    block = sched.flush(FLUSH_HIT, pc)
                    if block is not None:
                        vcache.insert(block)
                    st.mode_switches += 1
                    st.switch_cycles += cfg.switch_to_vliw_cost
                    st.cycles += cfg.switch_to_vliw_cost
                    if rec_base >= 0:
                        self._seg_store(
                            SEG_HIT, ext, rec_key, rec_base, block,
                            rec_snap, rec_keep, rec_cs, rec_cr, rec_wp,
                        )
                        rec_base = -1
                    ext = False
                    self._vliw_mode(pc)
                    primary.reset_pipeline()
                    continue
                if pm is not None:
                    # compiled primary-mode block (the leading probe for pc
                    # was charged just above; no probe is ever attached
                    # here -- the segment memo requires probes off)
                    ent = pm.get(pc)
                    if (
                        ent is not None
                        and src.i + ent[1] <= src.last
                        and st.cycles + ent[2] < self._max_cycles
                    ):
                        npc = primary.dispatch_pm(
                            ent[0], sched, vcache.probe, ctr
                        )
                        if ctr[0]:
                            PM_STATS.dispatches += 1
                            self.pc = npc
                            block = ctr[2]
                            if block is not None:
                                vcache.insert(block)
                                if rec_base >= 0:
                                    self._seg_store(
                                        SEG_FULL, ext, rec_key, rec_base,
                                        block, rec_snap, rec_keep, rec_cs,
                                        rec_cr, rec_wp,
                                    )
                                    rec_base = -1
                                ext = True
                            continue
                    PM_STATS.fallback_dispatches += 1
            instr = fetch(pc)
            if instr is None:
                raise SimError("fetch outside text segment: 0x%x" % pc)
            try:
                next_pc, cycles, sop, nonsched = primary.step(instr)
            except ProgramExit:
                st.cycles += 1
                st.primary_cycles += 1
                raise
            st.cycles += cycles
            st.primary_cycles += cycles
            self.pc = next_pc
            if not self.exception_mode:
                sched.tick(cycles)
                if nonsched:
                    block = sched.flush(FLUSH_NONSCHED, instr.addr)
                    if block is not None:
                        vcache.insert(block)
                    if rec_base >= 0:
                        self._seg_store(
                            SEG_NONSCHED, ext, rec_key, rec_base, block,
                            rec_snap, rec_keep, rec_cs, rec_cr, rec_wp,
                        )
                        rec_base = -1
                    ext = False
                elif sop is not None:
                    block = sched.insert(sop)
                    if block is not None:
                        vcache.insert(block)
                        if rec_base >= 0:
                            self._seg_store(
                                SEG_FULL, ext, rec_key, rec_base, block,
                                rec_snap, rec_keep, rec_cs, rec_cr, rec_wp,
                            )
                            rec_base = -1
                        ext = True
            else:
                self._exception_budget -= 1
                if instr.addr == self.exception_target:
                    self.exception_mode = False
                    # exception mode is only ever entered from VLIW mode,
                    # whose hit boundary flushed the list: empty is known
                    ext = False
                elif self._exception_budget <= 0:
                    raise SimError(
                        "exception mode never reached 0x%x"
                        % self.exception_target
                    )

    def _seg_store(
        self, kind, ext, key, base, block, snap, keep_entry, cs0, cr0, wp0
    ) -> None:
        """Close the recording stint at the current cursor and store it.

        ``base`` is the first event the record covers (the pending
        spillover op's event when ``ext``); the cursor now sits on the
        boundary's next event.  Anything that smells off -- an unexpected
        Stats field, a build-op/event misalignment -- silently drops the
        record: a missing memo entry costs time, never correctness.
        """
        from ..isa.instructions import SCHED_NONSCHED, SCHED_SKIP

        owner = self._seg_owner
        if self._seg_table.records >= owner.max_records:
            return
        src = self.source
        st = self.stats
        rf = self.rf
        end = src.i
        n = end - base
        pcs = src.pcs
        instrs = src.instrs
        spilled = src.spilled
        inline = self.cfg.vliw_window_spill_inline

        # scheduled events, in order (the build ops of the block under
        # construction; for SEG_FULL the last one spilled into the next
        # block and is rebuilt live on apply)
        sched_offs = []
        first = 1 if ext else 0
        if ext:
            sched_offs.append(0)
        for k in range(first, n):
            ins = instrs[base + k]
            sc = ins.sched_class
            if sc == SCHED_NONSCHED or sc == SCHED_SKIP:
                continue
            if spilled[base + k] and not inline:
                continue
            sched_offs.append(k)
        if kind == SEG_FULL:
            sched_offs.pop()
        bops = block.build_ops if block is not None else None
        if len(bops or ()) != len(sched_offs):
            return
        mem_fix = []
        if bops is not None:
            for j, off in enumerate(sched_offs):
                op = bops[j]
                if op.addr != pcs[base + off]:
                    return
                if op.instr is not None and op.instr.mem_size:
                    mem_fix.append((j, off))

        # additive Stats delta; renaming maxima come from the block
        from ..scheduler.memo import _MAX_FIELDS

        delta = {}
        cur = st.__dict__
        for k, v0 in snap.items():
            v1 = cur[k]
            if v1 == v0:
                continue
            if k in _MAX_FIELDS:
                if block is None:
                    return
                continue
            if k == "wall_time_s":
                return
            delta[k] = v1 - v0
        if kind == SEG_FULL:
            # apply re-inserts the spillover op live; its _prepare bumps
            # instructions_scheduled again
            d = delta.get("instructions_scheduled", 0) - 1
            if d:
                delta["instructions_scheduled"] = d
            else:
                delta.pop("instructions_scheduled", None)

        aux = src.aux
        mem_offs = tuple(
            k for k in range(n) if instrs[base + k].mem_size
        )
        rec = SegmentRecord()
        rec.kind = kind
        rec.ext = ext
        rec.pcs = pcs[base : end + 1]
        rec.flags = src.flags[base:end]
        rec.spilled = spilled[base:end]
        rec.mem_offs = mem_offs
        rec.mem_pat = collision_pattern(aux, base, mem_offs)
        rec.probe_addrs = tuple(set(pcs[base + first : end]))
        rec.block = block
        rec.mem_fix = tuple(mem_fix)
        rec.delta = tuple(delta.items())
        rec.d_cycles = delta.get("cycles", 0)
        rec.keep_entry = (
            keep_entry if ext else block.keep_mem_order if block is not None else False
        )
        rec.start_op_addr = None if ext or block is None else block.start_addr
        rec.d_cansave = rf.cansave - cs0
        rec.d_canrestore = rf.canrestore - cr0
        rec.d_wssp = rf.wssp - wp0
        rec.end_llr = self.primary.last_load_rd
        rec.end_cwp = rf.cwp
        owner.admit(self._seg_table, key, rec)

    def _seg_apply(self, rec: SegmentRecord) -> bool:
        """Verify ``rec`` against the cursor; replay its effect if exact.

        Returns False (having changed nothing) on any mismatch -- the
        stint then simply runs live and is re-recorded under this key.
        """
        st = self.stats
        if st.cycles + rec.d_cycles >= self._max_cycles:
            # the live loop would stop mid-stint; let it
            return False
        src = self.source
        i0 = src.i
        base = i0 - 1 if rec.ext else i0
        rpcs = rec.pcs
        m = len(rpcs)  # events + the boundary pc
        pcs = src.pcs
        if pcs[base : base + m] != rpcs:
            return False
        end = base + m - 1
        if src.flags[base:end] != rec.flags:
            return False
        if src.spilled[base:end] != rec.spilled:
            return False
        sched = self.scheduler
        if rec.ext:
            if sched.keep_mem_order != rec.keep_entry:
                return False
        elif rec.start_op_addr is not None:
            if (rec.start_op_addr in sched.alias_addrs) != rec.keep_entry:
                return False
        vcache = self.vcache
        for a in rec.probe_addrs:
            if vcache.probe(a):
                return False
        if rec.kind == SEG_HIT and not vcache.probe(rpcs[-1]):
            return False
        aux = src.aux
        if rec.mem_offs and not pattern_matches(rec, aux, base):
            return False

        # exact match: replay the stint's effect
        cur = st.__dict__
        for k, d in rec.delta:
            cur[k] += d
        block = rec.block
        if block is not None:
            bops = block.build_ops
            for j, off in rec.mem_fix:
                bops[j].mem_addr = aux[base + off]
            if block.n_int_rr > st.max_int_renaming:
                st.max_int_renaming = block.n_int_rr
            if block.n_fp_rr > st.max_fp_renaming:
                st.max_fp_renaming = block.n_fp_rr
            if block.n_cc_rr > st.max_cc_renaming:
                st.max_cc_renaming = block.n_cc_rr
            if block.n_mem_rr > st.max_mem_renaming:
                st.max_mem_renaming = block.n_mem_rr
            vcache.insert(block)
        rf = self.rf
        rf.cansave += rec.d_cansave
        rf.canrestore += rec.d_canrestore
        rf.wssp += rec.d_wssp
        rf.cwp = rec.end_cwp
        src.i = end
        self.pc = rpcs[-1]
        self.primary.last_load_rd = rec.end_llr
        # every segment ends at a flush: the pending spillover op (when
        # ext) now lives inside the recorded block as build_ops[0], so
        # the live scheduling list is emptied exactly as flush() does
        if sched.entries:
            sched.entries = []
            sched.n_candidates = 0
            sched.build_ops = []
        if rec.kind == SEG_FULL:
            # rebuild the spillover op from the boundary event and insert
            # it live: renaming state and keep_mem_order come from the
            # applying machine, exactly as in the unmemoized flush path
            t = end - 1
            ins = src.instrs[t]
            info = self._seg_info
            info.taken = (src.flags[t] & 1) != 0
            ms = ins.mem_size
            if ms:
                info.mem_addr = aux[t]
                info.mem_size = ms
            else:
                info.mem_addr = -1
                info.mem_size = 0
            info.spilled = src.spilled[t] != 0
            info.cwp_before = src.cwp[t]
            info.target = self.pc
            sched.insert(build_sched_op(ins, info, rf, rec.end_cwp))
        elif rec.kind == SEG_HIT:
            self._vliw_mode(self.pc)
            self.primary.reset_pipeline()
        return True

    # --------------------------------------------------------------- VLIW mode
    def _vliw_mode(self, addr: int) -> None:
        """Execute cached blocks until a VLIW Cache miss or an exception."""
        st = self.stats
        cfg = self.cfg
        probe = self.probe
        predicted_next = None  # last-successor next-block prediction
        while True:
            block = self.vcache.lookup(addr)
            if block is None:
                st.mode_switches += 1
                if probe is not None:
                    probe.emit(EV_MODE_SWITCH, 1, addr)
                st.switch_cycles += cfg.switch_to_primary_cost
                st.cycles += cfg.switch_to_primary_cost
                self.pc = addr
                return
            if cfg.next_li_miss_penalty:
                hit = cfg.next_block_prediction and predicted_next == addr
                if predicted_next is not None and cfg.next_block_prediction:
                    st.next_block_predictions += 1
                    if hit:
                        st.next_block_pred_hits += 1
                if not hit:
                    st.cycles += cfg.next_li_miss_penalty
                    st.vliw_cycles += cfg.next_li_miss_penalty
                    st.next_li_miss_cycles += cfg.next_li_miss_penalty
            if cfg.next_block_prediction:
                predicted_next = self._next_block_pred.get(block.start_addr)
            outcome = self.engine.execute_block(block)
            if cfg.next_block_prediction and outcome.kind in ("ok", "mispredict"):
                self._next_block_pred[block.start_addr] = outcome.next_addr
            st.cycles += outcome.cycles
            st.vliw_cycles += outcome.cycles
            if outcome.kind in ("ok", "mispredict"):
                self.pc = outcome.next_addr
                self._test_catch_up()
                addr = outcome.next_addr
                continue
            # exception paths: state has been rolled back to block entry
            self.pc = block.start_addr
            st.mode_switches += 1
            if probe is not None:
                probe.emit(EV_MODE_SWITCH, 1, block.start_addr)
            st.switch_cycles += cfg.switch_to_primary_cost
            st.cycles += cfg.switch_to_primary_cost
            if outcome.kind == "aliasing":
                # section 3.11: invalidate and reschedule with ordered
                # memory accesses
                self.vcache.invalidate(block.start_addr)
                st.block_invalidations += 1
                self.scheduler.alias_addrs.add(block.start_addr)
            elif isinstance(outcome.exception, WindowResidencyUnsatisfiable):
                # the block was built in a different call-depth context;
                # rebuild it from the real one (trace mode)
                self.vcache.invalidate(block.start_addr)
                st.block_invalidations += 1
            else:
                # other exceptions: exception mode until the fault repeats
                self.exception_mode = True
                self.exception_target = outcome.fault_addr
                self._exception_budget = 100_000
            return

    # ---------------------------------------------------------------- test mode
    def _test_step(self) -> None:
        """Primary-mode lockstep: one reference instruction per instruction."""
        ref = self.reference
        if ref is None:
            return
        try:
            ref.step_one()
        except ProgramExit:
            pass
        self._compare("instruction", strict_pc=True)

    def _test_catch_up(self) -> None:
        """VLIW-block sync: run the reference until it matches the machine.

        The paper's test machine runs until its PC equals the DTSVLIW PC;
        because an address may recur mid-block (unrolled loops), we require
        the architectural state to match as well before accepting the
        synchronisation point.
        """
        ref = self.reference
        if ref is None:
            return
        target = self.pc
        budget = 4 * self.cfg.block_width * self.cfg.block_height + 64
        while budget > 0:
            if ref.pc == target and ref.rf.state_equal(self.rf):
                return
            try:
                ref.step_one()
            except ProgramExit:
                break
            budget -= 1
        if ref.pc == target and ref.rf.state_equal(self.rf):
            return
        raise TestModeMismatch(
            "test machine lost sync after VLIW block: machine pc=0x%x, "
            "reference pc=0x%x" % (target, ref.pc)
        )

    def _compare(self, what: str, strict_pc: bool) -> None:
        ref = self.reference
        if strict_pc and not self.halted and ref.pc != self.pc:
            raise TestModeMismatch(
                "%s: pc mismatch machine=0x%x reference=0x%x"
                % (what, self.pc, ref.pc)
            )
        if not ref.rf.state_equal(self.rf):
            raise TestModeMismatch(self._diff_state())

    def _final_check(self) -> None:
        ref = self.reference
        if ref is not None and not ref.halted:
            # the machine halted on the exit trap; let the reference finish
            try:
                while not ref.halted:
                    ref.step_one()
            except ProgramExit:
                pass
        if not ref.rf.state_equal(self.rf):
            raise TestModeMismatch("final state: " + self._diff_state())
        if ref.mem.data != self.mem.data:
            raise TestModeMismatch("final state: memory images differ")
        if bytes(ref.services.output) != bytes(self.services.output):
            raise TestModeMismatch(
                "final state: outputs differ (%r vs %r)"
                % (ref.services.output[:64], self.services.output[:64])
            )

    def _diff_state(self) -> str:
        ref = self.reference
        diffs = []
        for i, (a, b) in enumerate(zip(self.rf.iregs, ref.rf.iregs)):
            if a != b:
                diffs.append("ireg[%d]: 0x%x != 0x%x" % (i, a, b))
        for i, (a, b) in enumerate(zip(self.rf.fregs, ref.rf.fregs)):
            if a != b:
                diffs.append("freg[%d]: %r != %r" % (i, a, b))
        if self.rf.icc != ref.rf.icc:
            diffs.append("icc: %d != %d" % (self.rf.icc, ref.rf.icc))
        if self.rf.cwp != ref.rf.cwp:
            diffs.append("cwp: %d != %d" % (self.rf.cwp, ref.rf.cwp))
        if self.rf.wssp != ref.rf.wssp:
            diffs.append("wssp: %d != %d" % (self.rf.wssp, ref.rf.wssp))
        return "state mismatch (machine != reference): " + "; ".join(diffs[:8])
