"""The DTSVLIW machine (sections 3.1, 3.6): Fetch Unit, mode switching,
block chaining, exception handling and the lockstep *test mode*.

Program execution paradigm (section 3.6): the VLIW Engine and the Primary
Processor never run at the same time and share all machine state.  In
primary mode the Fetch Unit probes the VLIW Cache with the address of the
instruction at the execute stage; a hit flushes the partial scheduling-list
block (chained to the hit block via its nba) and hands control to the VLIW
Engine.  A VLIW Cache miss (fall-through or redirect target absent) hands
control back, the Scheduler Unit starting a fresh block at the resume
address -- chaining blocks along the executed trace.

Test mode (section 4): a reference machine with its own memory runs in
lockstep -- stepwise in primary mode, catching up to the machine PC after
every VLIW block -- and every synchronisation point compares architectural
state.  The reference instruction count is the IPC numerator.

Trace layer: the Primary Processor consumes its committed stream from a
:class:`~repro.trace.replay.LiveTraceSource`.  The DTSVLIW always drives
it live -- the VLIW Engine re-executes *values* through renaming
registers, including speculatively for later-annulled operations, so its
data-cache traffic depends on register contents a committed trace does
not record.  The trace-drivable machines are the DIF and scalar
baselines (:mod:`repro.baselines`); the DTSVLIW still benefits from a
captured trace indirectly, through its reference-run header (see
:mod:`repro.harness.runner`).
"""

from __future__ import annotations

import time

from typing import Optional

from ..asm.program import Program
from ..isa.registers import RegFile
from ..memory.cache import Cache
from ..memory.main_memory import MainMemory
from ..obs.probe import EV_MODE_SWITCH, EV_VCACHE_PROBE, resolve_probe
from ..primary.pipeline import PrimaryProcessor
from ..scheduler.unit import FLUSH_HIT, FLUSH_NONSCHED, SchedulerUnit
from ..trace.replay import LiveTraceSource
from ..vliw.cache import VLIWCache
from ..vliw.engine import VLIWEngine, WindowResidencyUnsatisfiable
from .config import MachineConfig
from .errors import ProgramExit, SimError, TestModeMismatch
from .reference import ReferenceMachine, TrapServices, setup_state
from .stats import Stats


class DTSVLIW:
    """An execution-driven DTSVLIW simulator for one program run."""

    def __init__(
        self,
        program: Program,
        cfg: Optional[MachineConfig] = None,
        probe=None,
    ):
        self.program = program
        self.cfg = cfg or MachineConfig()
        c = self.cfg
        self.stats = Stats()
        #: active probe threaded through every subcomponent, or None
        #: (``probe=None`` consults ``$REPRO_PROBE``)
        self.probe = resolve_probe(probe)
        self.mem = MainMemory(c.mem_size)
        self.rf = RegFile(c.nwindows)
        self.services = TrapServices()
        self.pc = setup_state(program, self.mem, self.rf)

        self.icache = Cache(
            "icache",
            c.icache.size,
            c.icache.line_size,
            c.icache.assoc,
            c.icache.miss_penalty,
            c.icache.perfect,
            probe=self.probe,
        )
        self.dcache = Cache(
            "dcache",
            c.dcache.size,
            c.dcache.line_size,
            c.dcache.assoc,
            c.dcache.miss_penalty,
            c.dcache.perfect,
            probe=self.probe,
        )
        self.vcache = VLIWCache(
            c.vliw_cache_blocks, c.vliw_cache_assoc, probe=self.probe
        )
        self.scheduler = SchedulerUnit(c, self.stats, probe=self.probe)
        self.engine = VLIWEngine(
            c, self.rf, self.mem, self.dcache, self.stats, probe=self.probe
        )
        # Always execution-driven: the VLIW Engine needs real register and
        # memory values, so the committed stream must be generated live.
        self.primary = PrimaryProcessor(
            c,
            self.rf,
            self.mem,
            self.icache,
            self.dcache,
            self.services,
            self.stats,
            probe=self.probe,
        )
        self.source: LiveTraceSource = self.primary.source

        self.halted = False
        self._max_cycles = 2_000_000_000
        #: last-successor next-block predictor (future-work extension)
        self._next_block_pred: dict = {}
        self.exception_mode = False
        self.exception_target = 0
        self._exception_budget = 0

        self.reference: Optional[ReferenceMachine] = None
        if c.test_mode:
            self.reference = ReferenceMachine(
                program, mem_size=c.mem_size, nwindows=c.nwindows
            )

    # ------------------------------------------------------------------- API
    @property
    def output(self) -> bytes:
        return bytes(self.services.output)

    @property
    def exit_code(self) -> int:
        return self.services.exit_code

    def run(self, max_cycles: int = 2_000_000_000) -> Stats:
        """Run to the exit trap (or ``max_cycles``); returns the stats."""
        self._max_cycles = max_cycles
        t0 = time.perf_counter()
        try:
            while not self.halted and self.stats.cycles < max_cycles:
                self._primary_mode()
        except ProgramExit:
            self.halted = True
        finally:
            self.stats.wall_time_s += time.perf_counter() - t0
        if not self.halted:
            raise SimError("DTSVLIW exceeded %d cycles" % max_cycles)
        if self.reference is not None:
            self._final_check()
            self.stats.ref_instructions = self.reference.instret
        return self.stats

    # ----------------------------------------------------------- primary mode
    def _primary_mode(self) -> None:
        """Execute in trace (or exception) mode until a VLIW Cache hit."""
        st = self.stats
        cfg = self.cfg
        fetch = self.program.instrs.get
        probe = self.probe
        self.primary.reset_pipeline()
        while not self.halted and st.cycles < self._max_cycles:
            pc = self.pc
            # Fetch Unit: probe the VLIW Cache with the execute-stage address
            if not self.exception_mode:
                st.vliw_cache_probes += 1
                if self.vcache.probe(pc):
                    st.vliw_cache_hits += 1
                    if probe is not None:
                        probe.emit(EV_VCACHE_PROBE, pc, 1)
                        probe.emit(EV_MODE_SWITCH, 0, pc)
                    block = self.scheduler.flush(FLUSH_HIT, pc)
                    if block is not None:
                        self.vcache.insert(block)
                    st.mode_switches += 1
                    st.switch_cycles += cfg.switch_to_vliw_cost
                    st.cycles += cfg.switch_to_vliw_cost
                    self._vliw_mode(pc)
                    self.primary.reset_pipeline()
                    continue
                if probe is not None:
                    probe.emit(EV_VCACHE_PROBE, pc, 0)
            instr = fetch(pc)
            if instr is None:
                raise SimError("fetch outside text segment: 0x%x" % pc)
            try:
                next_pc, cycles, sched, nonsched = self.primary.step(instr)
            except ProgramExit:
                st.cycles += 1
                st.primary_cycles += 1
                self._test_step()
                raise
            st.cycles += cycles
            st.primary_cycles += cycles
            self.pc = next_pc
            if not self.exception_mode:
                self.scheduler.tick(cycles)
                if nonsched:
                    block = self.scheduler.flush(FLUSH_NONSCHED, instr.addr)
                    if block is not None:
                        self.vcache.insert(block)
                elif sched is not None:
                    block = self.scheduler.insert(sched)
                    if block is not None:
                        self.vcache.insert(block)
            else:
                self._exception_budget -= 1
                if instr.addr == self.exception_target:
                    self.exception_mode = False
                elif self._exception_budget <= 0:
                    raise SimError(
                        "exception mode never reached 0x%x"
                        % self.exception_target
                    )
            self._test_step()

    # --------------------------------------------------------------- VLIW mode
    def _vliw_mode(self, addr: int) -> None:
        """Execute cached blocks until a VLIW Cache miss or an exception."""
        st = self.stats
        cfg = self.cfg
        probe = self.probe
        predicted_next = None  # last-successor next-block prediction
        while True:
            block = self.vcache.lookup(addr)
            if block is None:
                st.mode_switches += 1
                if probe is not None:
                    probe.emit(EV_MODE_SWITCH, 1, addr)
                st.switch_cycles += cfg.switch_to_primary_cost
                st.cycles += cfg.switch_to_primary_cost
                self.pc = addr
                return
            if cfg.next_li_miss_penalty:
                hit = cfg.next_block_prediction and predicted_next == addr
                if predicted_next is not None and cfg.next_block_prediction:
                    st.next_block_predictions += 1
                    if hit:
                        st.next_block_pred_hits += 1
                if not hit:
                    st.cycles += cfg.next_li_miss_penalty
                    st.vliw_cycles += cfg.next_li_miss_penalty
                    st.next_li_miss_cycles += cfg.next_li_miss_penalty
            if cfg.next_block_prediction:
                predicted_next = self._next_block_pred.get(block.start_addr)
            outcome = self.engine.execute_block(block)
            if cfg.next_block_prediction and outcome.kind in ("ok", "mispredict"):
                self._next_block_pred[block.start_addr] = outcome.next_addr
            st.cycles += outcome.cycles
            st.vliw_cycles += outcome.cycles
            if outcome.kind in ("ok", "mispredict"):
                self.pc = outcome.next_addr
                self._test_catch_up()
                addr = outcome.next_addr
                continue
            # exception paths: state has been rolled back to block entry
            self.pc = block.start_addr
            st.mode_switches += 1
            if probe is not None:
                probe.emit(EV_MODE_SWITCH, 1, block.start_addr)
            st.switch_cycles += cfg.switch_to_primary_cost
            st.cycles += cfg.switch_to_primary_cost
            if outcome.kind == "aliasing":
                # section 3.11: invalidate and reschedule with ordered
                # memory accesses
                self.vcache.invalidate(block.start_addr)
                st.block_invalidations += 1
                self.scheduler.alias_addrs.add(block.start_addr)
            elif isinstance(outcome.exception, WindowResidencyUnsatisfiable):
                # the block was built in a different call-depth context;
                # rebuild it from the real one (trace mode)
                self.vcache.invalidate(block.start_addr)
                st.block_invalidations += 1
            else:
                # other exceptions: exception mode until the fault repeats
                self.exception_mode = True
                self.exception_target = outcome.fault_addr
                self._exception_budget = 100_000
            return

    # ---------------------------------------------------------------- test mode
    def _test_step(self) -> None:
        """Primary-mode lockstep: one reference instruction per instruction."""
        ref = self.reference
        if ref is None:
            return
        try:
            ref.step_one()
        except ProgramExit:
            pass
        self._compare("instruction", strict_pc=True)

    def _test_catch_up(self) -> None:
        """VLIW-block sync: run the reference until it matches the machine.

        The paper's test machine runs until its PC equals the DTSVLIW PC;
        because an address may recur mid-block (unrolled loops), we require
        the architectural state to match as well before accepting the
        synchronisation point.
        """
        ref = self.reference
        if ref is None:
            return
        target = self.pc
        budget = 4 * self.cfg.block_width * self.cfg.block_height + 64
        while budget > 0:
            if ref.pc == target and ref.rf.state_equal(self.rf):
                return
            try:
                ref.step_one()
            except ProgramExit:
                break
            budget -= 1
        if ref.pc == target and ref.rf.state_equal(self.rf):
            return
        raise TestModeMismatch(
            "test machine lost sync after VLIW block: machine pc=0x%x, "
            "reference pc=0x%x" % (target, ref.pc)
        )

    def _compare(self, what: str, strict_pc: bool) -> None:
        ref = self.reference
        if strict_pc and not self.halted and ref.pc != self.pc:
            raise TestModeMismatch(
                "%s: pc mismatch machine=0x%x reference=0x%x"
                % (what, self.pc, ref.pc)
            )
        if not ref.rf.state_equal(self.rf):
            raise TestModeMismatch(self._diff_state())

    def _final_check(self) -> None:
        ref = self.reference
        if ref is not None and not ref.halted:
            # the machine halted on the exit trap; let the reference finish
            try:
                while not ref.halted:
                    ref.step_one()
            except ProgramExit:
                pass
        if not ref.rf.state_equal(self.rf):
            raise TestModeMismatch("final state: " + self._diff_state())
        if ref.mem.data != self.mem.data:
            raise TestModeMismatch("final state: memory images differ")
        if bytes(ref.services.output) != bytes(self.services.output):
            raise TestModeMismatch(
                "final state: outputs differ (%r vs %r)"
                % (ref.services.output[:64], self.services.output[:64])
            )

    def _diff_state(self) -> str:
        ref = self.reference
        diffs = []
        for i, (a, b) in enumerate(zip(self.rf.iregs, ref.rf.iregs)):
            if a != b:
                diffs.append("ireg[%d]: 0x%x != 0x%x" % (i, a, b))
        for i, (a, b) in enumerate(zip(self.rf.fregs, ref.rf.fregs)):
            if a != b:
                diffs.append("freg[%d]: %r != %r" % (i, a, b))
        if self.rf.icc != ref.rf.icc:
            diffs.append("icc: %d != %d" % (self.rf.icc, ref.rf.icc))
        if self.rf.cwp != ref.rf.cwp:
            diffs.append("cwp: %d != %d" % (self.rf.cwp, ref.rf.cwp))
        if self.rf.wssp != ref.rf.wssp:
            diffs.append("wssp: %d != %d" % (self.rf.wssp, ref.rf.wssp))
        return "state mismatch (machine != reference): " + "; ".join(diffs[:8])
