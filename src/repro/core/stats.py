"""Statistics collected during DTSVLIW simulation.

Covers everything reported in the paper's evaluation: the IPC metric
(reference instructions / cycles, section 4), the cycle breakdown behind
Figure 8, and every Table 3 column (renaming-register high-water marks,
VLIW-engine list sizes, aliasing exceptions, percentage of VLIW execution
cycles) plus the slot-occupancy figure quoted in section 4.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Stats:
    # -- cycles ---------------------------------------------------------------
    cycles: int = 0
    primary_cycles: int = 0
    vliw_cycles: int = 0
    switch_cycles: int = 0
    icache_stall_cycles: int = 0
    dcache_stall_cycles: int = 0
    branch_bubble_cycles: int = 0
    load_use_bubble_cycles: int = 0
    next_li_miss_cycles: int = 0
    mispredict_cycles: int = 0
    spill_cycles: int = 0

    # -- instructions -----------------------------------------------------------
    ref_instructions: int = 0  # test-machine sequential count (IPC numerator)
    primary_instructions: int = 0
    vliw_ops_executed: int = 0  # ops issued by the VLIW engine (incl. copies)
    vliw_ops_committed: int = 0
    copies_executed: int = 0
    speculative_annulled: int = 0
    dif_instructions: int = 0  # instructions executed inside DIF groups

    # -- scheduler / blocks -------------------------------------------------------
    blocks_flushed: int = 0
    blocks_flushed_full: int = 0
    blocks_flushed_hit: int = 0
    blocks_flushed_nonsched: int = 0
    long_instructions_saved: int = 0
    slots_filled: int = 0
    slots_total: int = 0
    instructions_scheduled: int = 0
    splits: int = 0
    installs_on_dependence: int = 0
    moves: int = 0

    # -- Table 3 resources ----------------------------------------------------------
    max_int_renaming: int = 0
    max_fp_renaming: int = 0
    max_cc_renaming: int = 0
    max_mem_renaming: int = 0
    max_load_list: int = 0
    max_store_list: int = 0
    max_ckpt_list: int = 0

    # -- events ------------------------------------------------------------------------
    aliasing_exceptions: int = 0
    other_exceptions: int = 0
    mispredicts: int = 0
    mode_switches: int = 0
    vliw_cache_hits: int = 0
    vliw_cache_probes: int = 0
    vliw_block_entries: int = 0
    block_invalidations: int = 0
    next_block_predictions: int = 0
    next_block_pred_hits: int = 0

    # -- host-side measurement -----------------------------------------------------------
    #: host wall-clock seconds spent in the run loop.  Excluded from
    #: equality so two architecturally identical runs still compare equal.
    wall_time_s: float = field(default=0.0, compare=False)

    # ------------------------------------------------------------------ metrics
    @property
    def ipc(self) -> float:
        """The paper's performance index: sequential instructions (as counted
        by the test machine) divided by DTSVLIW cycles."""
        return self.ref_instructions / self.cycles if self.cycles else 0.0

    @property
    def vliw_cycle_fraction(self) -> float:
        """Fraction of cycles in which the VLIW Engine was executing
        (Table 3's 'VLIW Engine Execution Cycles')."""
        return self.vliw_cycles / self.cycles if self.cycles else 0.0

    @property
    def slot_occupancy(self) -> float:
        """Valid instructions / total slots in blocks saved to the VLIW
        Cache (~33% for the feasible machine in the paper)."""
        return self.slots_filled / self.slots_total if self.slots_total else 0.0

    @property
    def mips(self) -> float:
        """Simulator throughput: simulated (sequential) instructions per
        host wall-clock microsecond."""
        if not self.wall_time_s:
            return 0.0
        return self.ref_instructions / self.wall_time_s / 1e6

    def summary(self, probe=None) -> str:
        """Multi-line human-readable digest of the run.

        With an active ``probe`` attached (one that collected anything), a
        final line reports its event counts; an absent, inactive or empty
        probe adds nothing -- the architectural digest never changes shape
        based on observability depth.
        """
        lines = [
            "cycles=%d (primary=%d vliw=%d switch=%d)"
            % (self.cycles, self.primary_cycles, self.vliw_cycles, self.switch_cycles),
            "ref_instructions=%d ipc=%.3f" % (self.ref_instructions, self.ipc),
            "vliw%%=%.1f slot_occupancy=%.1f%%"
            % (100 * self.vliw_cycle_fraction, 100 * self.slot_occupancy),
            "renaming: int=%d fp=%d cc=%d mem=%d"
            % (
                self.max_int_renaming,
                self.max_fp_renaming,
                self.max_cc_renaming,
                self.max_mem_renaming,
            ),
            "lists: load=%d store=%d ckpt=%d"
            % (self.max_load_list, self.max_store_list, self.max_ckpt_list),
            "aliasing=%d mispredicts=%d blocks=%d"
            % (self.aliasing_exceptions, self.mispredicts, self.blocks_flushed),
            "host: wall=%.3fs throughput=%.2f MIPS"
            % (self.wall_time_s, self.mips),
        ]
        counts = getattr(probe, "counts", None)
        if counts:
            lines.append(
                "probe: "
                + " ".join(
                    "%s=%d" % (k, n) for k, n in sorted(counts.items()) if n
                )
            )
        return "\n".join(lines)
