"""Versioned binary serialization and the on-disk trace cache.

Format (version 1, all integers little-endian, columns zlib-compressed)::

    magic "RTRC" | u16 version | 32B program fingerprint | u32 count
    | u32 mem_size | i32 exit_code | u32 output_len | output bytes
    | u32 clen | zlib(flags column)  | u32 clen | zlib(aux column, u32 LE)
    | 32B sha256 of everything above

Decoding never unpickles anything: every field is fixed-layout ``struct``
data, the digest is verified before any column is inflated, and any
truncation, corruption or version skew raises :class:`TraceFormatError`
(a plain cache *miss* for the store, a hard error for explicit loads).

The :class:`TraceStore` keeps one ``<key>.trc`` file per
``(workload, scale, hw_mul, optimize, mem_size, program fingerprint)``
under ``results/traces/`` (override with ``$REPRO_TRACE_DIR``), with the
same atomic-rename discipline as the result cache -- parallel sweep
workers race benignly on it.
"""

from __future__ import annotations

import importlib.util
import logging
import marshal
import os
import struct
import sys
import tempfile
import zlib
from array import array
from hashlib import sha256
from pathlib import Path
from typing import Optional

from ..core.errors import SimError
from .events import Trace

log = logging.getLogger(__name__)

MAGIC = b"RTRC"
VERSION = 1

#: default trace-cache location, relative to the working directory
DEFAULT_TRACE_DIR = os.path.join("results", "traces")

BLOCK_MAGIC = b"RBLK"
BLOCK_VERSION = 1

#: default compiled-block cache location
DEFAULT_BLOCK_DIR = os.path.join("results", "blocks")

_HEADER = struct.Struct("<4sH32sIIiI")
_U32 = struct.Struct("<I")
_DIGEST_LEN = 32


class TraceFormatError(SimError):
    """A trace file or byte string is truncated, corrupt or wrong-version."""


def atomic_write_bytes(root: Path, final: Path, data: bytes, suffix: str) -> None:
    """Write ``data`` to ``final`` via mkstemp + rename (the discipline all
    on-disk caches share: parallel writers race benignly, and a reader can
    never observe a half-written file).  Raises ``OSError`` on failure --
    callers downgrade to a warning."""
    root.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(root), prefix=".tmp-", suffix=suffix)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp, final)
    except BaseException:
        os.unlink(tmp)
        raise


def trace_dir() -> str:
    return os.environ.get("REPRO_TRACE_DIR", DEFAULT_TRACE_DIR)


def _aux_to_le(aux: array) -> bytes:
    if sys.byteorder == "little":
        return aux.tobytes()
    swapped = array("I", aux)
    swapped.byteswap()
    return swapped.tobytes()


def _aux_from_le(raw: bytes) -> array:
    aux = array("I")
    aux.frombytes(raw)
    if sys.byteorder != "little":
        aux.byteswap()
    return aux


def encode_trace(trace: Trace) -> bytes:
    """Serialize ``trace`` (deterministic: re-encoding decoded bytes is
    the identity, which the round-trip property test pins down)."""
    out = bytearray()
    out += _HEADER.pack(
        MAGIC,
        VERSION,
        trace.fingerprint,
        trace.count,
        trace.mem_size,
        trace.exit_code,
        len(trace.output),
    )
    out += trace.output
    for column in (bytes(trace.flags), _aux_to_le(trace.aux)):
        comp = zlib.compress(column, 6)
        out += _U32.pack(len(comp))
        out += comp
    out += sha256(out).digest()
    return bytes(out)


def decode_trace(data: bytes) -> Trace:
    """Parse ``data``; raises :class:`TraceFormatError` on any defect."""
    if len(data) < _HEADER.size + _DIGEST_LEN:
        raise TraceFormatError("trace truncated (%d bytes)" % len(data))
    body, digest = data[:-_DIGEST_LEN], data[-_DIGEST_LEN:]
    if sha256(body).digest() != digest:
        raise TraceFormatError("trace integrity digest mismatch")
    magic, version, fingerprint, count, mem_size, exit_code, output_len = (
        _HEADER.unpack_from(body, 0)
    )
    if magic != MAGIC:
        raise TraceFormatError("bad trace magic %r" % magic)
    if version != VERSION:
        raise TraceFormatError(
            "unsupported trace version %d (expected %d)" % (version, VERSION)
        )
    off = _HEADER.size
    if off + output_len > len(body):
        raise TraceFormatError("trace output column truncated")
    output = body[off:off + output_len]
    off += output_len
    columns = []
    for expected in (count, 4 * count):
        if off + _U32.size > len(body):
            raise TraceFormatError("trace column header truncated")
        (clen,) = _U32.unpack_from(body, off)
        off += _U32.size
        if off + clen > len(body):
            raise TraceFormatError("trace column truncated")
        try:
            raw = zlib.decompress(body[off:off + clen])
        except zlib.error as exc:
            raise TraceFormatError("trace column corrupt: %s" % exc) from exc
        if len(raw) != expected:
            raise TraceFormatError(
                "trace column length %d != expected %d" % (len(raw), expected)
            )
        columns.append(raw)
        off += clen
    if off != len(body):
        raise TraceFormatError("%d trailing bytes after trace" % (len(body) - off))
    return Trace(
        fingerprint,
        mem_size,
        count,
        columns[0],
        _aux_from_le(columns[1]),
        output,
        exit_code,
    )


class TraceStore:
    """Directory of ``<key>.trc`` files with atomic writes.

    Reads degrade to misses on any I/O or format problem (a half-written
    or stale file can never poison a run -- the caller recaptures); writes
    degrade to warnings on read-only or full disks.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root if root is not None else trace_dir())

    def path(self, key: str) -> Path:
        return self.root / ("%s.trc" % key)

    def get(self, key: str) -> Optional[Trace]:
        try:
            data = self.path(key).read_bytes()
        except OSError:
            return None
        try:
            return decode_trace(data)
        except TraceFormatError as exc:
            log.warning("ignoring unreadable trace %s: %s", key, exc)
            return None

    def put(self, key: str, trace: Trace) -> None:
        try:
            atomic_write_bytes(
                self.root, self.path(key), encode_trace(trace), ".trc"
            )
        except OSError as exc:
            log.warning("trace cache write failed for %s: %s", key, exc)


# ---------------------------------------------------------------------------
# Compiled-block cache (repro.isa.blockcompile).
# ---------------------------------------------------------------------------
class BlockFormatError(SimError):
    """A compiled-block file is truncated, corrupt, wrong-version or was
    produced by a different interpreter."""


def block_dir() -> str:
    return os.environ.get("REPRO_BLOCK_DIR", DEFAULT_BLOCK_DIR)


_BLOCK_HEADER = struct.Struct("<4sHH")


def encode_blocks(code) -> bytes:
    """Serialize a compiled-block module code object.

    Format (version 1)::

        magic "RBLK" | u16 version | u16 pymagic_len | pymagic bytes
        | u32 zlen | zlib(marshal(code)) | 32B sha256 of everything above

    ``marshal`` is version- and build-specific, so the producing
    interpreter's ``importlib.util.MAGIC_NUMBER`` is embedded and checked
    on load (belt and braces: the cache *key* also covers it).
    """
    pymagic = importlib.util.MAGIC_NUMBER
    out = bytearray()
    out += _BLOCK_HEADER.pack(BLOCK_MAGIC, BLOCK_VERSION, len(pymagic))
    out += pymagic
    comp = zlib.compress(marshal.dumps(code), 6)
    out += _U32.pack(len(comp))
    out += comp
    out += sha256(out).digest()
    return bytes(out)


def decode_blocks(data: bytes):
    """Parse ``data`` back into a code object; raises
    :class:`BlockFormatError` on any defect.  Never unpickles: the
    payload is ``marshal`` (code objects only) behind a verified digest.
    """
    if len(data) < _BLOCK_HEADER.size + _DIGEST_LEN:
        raise BlockFormatError("block file truncated (%d bytes)" % len(data))
    body, digest = data[:-_DIGEST_LEN], data[-_DIGEST_LEN:]
    if sha256(body).digest() != digest:
        raise BlockFormatError("block integrity digest mismatch")
    magic, version, pymagic_len = _BLOCK_HEADER.unpack_from(body, 0)
    if magic != BLOCK_MAGIC:
        raise BlockFormatError("bad block magic %r" % magic)
    if version != BLOCK_VERSION:
        raise BlockFormatError(
            "unsupported block version %d (expected %d)"
            % (version, BLOCK_VERSION)
        )
    off = _BLOCK_HEADER.size
    if off + pymagic_len > len(body):
        raise BlockFormatError("block pymagic truncated")
    pymagic = body[off:off + pymagic_len]
    if pymagic != importlib.util.MAGIC_NUMBER:
        raise BlockFormatError(
            "block compiled by a different interpreter (pymagic %r)" % pymagic
        )
    off += pymagic_len
    if off + _U32.size > len(body):
        raise BlockFormatError("block payload header truncated")
    (clen,) = _U32.unpack_from(body, off)
    off += _U32.size
    if off + clen != len(body):
        raise BlockFormatError("block payload length mismatch")
    try:
        raw = zlib.decompress(body[off:off + clen])
    except zlib.error as exc:
        raise BlockFormatError("block payload corrupt: %s" % exc) from exc
    try:
        code = marshal.loads(raw)
    except (ValueError, EOFError, TypeError) as exc:
        raise BlockFormatError("block marshal unreadable: %s" % exc) from exc
    if not isinstance(code, type((lambda: 0).__code__)):
        raise BlockFormatError("block payload is not a code object")
    return code


class BlockCacheStore:
    """Directory of ``<key>.blk`` compiled-block files with the same
    miss-on-defect / atomic-write discipline as :class:`TraceStore`.
    Keys are content hashes (:func:`repro.isa.blockcompile.block_key`),
    so a stale file can never be *returned* -- the format checks guard
    against corruption, not staleness."""

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root if root is not None else block_dir())

    def path(self, key: str) -> Path:
        return self.root / ("%s.blk" % key)

    def get(self, key: str):
        try:
            data = self.path(key).read_bytes()
        except OSError:
            return None
        try:
            return decode_blocks(data)
        except BlockFormatError as exc:
            log.warning("ignoring unreadable block cache %s: %s", key, exc)
            return None

    def put(self, key: str, code) -> None:
        try:
            atomic_write_bytes(
                self.root, self.path(key), encode_blocks(code), ".blk"
            )
        except OSError as exc:
            log.warning("block cache write failed for %s: %s", key, exc)
