"""The dynamic-trace layer: capture, serialize, replay.

The committed-instruction stream is config-independent, so a parameter
sweep captures it once per ``(workload, scale)`` and replays it into
every machine configuration; see DESIGN.md section 10.
"""

from .capture import capture_trace, trace_cached, trace_key, workload_trace
from .events import (
    FLAG_TAKEN,
    BoundTrace,
    Trace,
    TraceDesync,
    TraceEvent,
    WindowPlan,
    program_fingerprint,
)
from .replay import (
    LiveTraceSource,
    ReplayTraceSource,
    execution_driven_forced,
    replay_source_for,
)
from .store import TraceFormatError, TraceStore, decode_trace, encode_trace

__all__ = [
    "FLAG_TAKEN",
    "BoundTrace",
    "LiveTraceSource",
    "ReplayTraceSource",
    "Trace",
    "TraceDesync",
    "TraceEvent",
    "TraceFormatError",
    "TraceStore",
    "WindowPlan",
    "capture_trace",
    "decode_trace",
    "encode_trace",
    "execution_driven_forced",
    "program_fingerprint",
    "replay_source_for",
    "trace_cached",
    "trace_key",
    "workload_trace",
]
