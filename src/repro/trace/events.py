"""The committed-instruction trace: the paper's central object made
explicit.

The *dynamic trace* -- the sequence of instructions a program commits --
is what the DTSVLIW schedules (the paper's title).  This module gives it a
first-class representation with two layers:

* :class:`Trace` -- the portable, serializable record.  It stores only
  what cannot be rederived from the static program: one flags byte and one
  32-bit auxiliary word per committed instruction (branch direction;
  memory address or indirect-jump target), plus the run's architectural
  outcome (instruction count, output bytes, exit code).  Everything else
  an engine consumes -- pc, static instruction, reads/writes footprint,
  mem size/kind, trap number -- is a *function of the program*, recovered
  exactly by binding.
* :class:`BoundTrace` -- a trace joined with its :class:`Program`:
  per-event ``pcs``/``instrs`` columns reconstructed by walking the
  control flow recorded in the flags/aux columns (the walk doubles as an
  integrity check), plus per-``nwindows`` register-window plans
  (:class:`WindowPlan`) giving each event's ``cwp`` and spill/fill flag.
  The committed stream itself is independent of the window count -- only
  *when* overflow traps fire depends on it -- which is why window state is
  derived at bind time instead of being stored.

:class:`TraceEvent` is the logical per-event view (inspection, tests,
debugging); the replay hot paths index the columns directly.
"""

from __future__ import annotations

import hashlib
from array import array
from typing import Dict, List, Optional

from ..core.errors import SimError
from ..core.reference import TRAP_EXIT
from ..isa.instructions import (
    Instr,
    K_BRANCH,
    K_CALL,
    K_JMPL,
    K_RESTORE,
    K_SAVE,
    K_TRAP,
)
from ..isa.semantics import MASK32

#: flags column bit 0: the instruction transferred control (conditional
#: branch taken, or any call/jmpl -- mirrors ``StepInfo.taken``).
FLAG_TAKEN = 0x1

#: window-spill stack slot size in bytes (16 words per window).
_SPILL_BYTES = 64


class TraceDesync(SimError):
    """A trace does not match the program (or machine state) replaying it."""


def program_fingerprint(program) -> bytes:
    """32-byte content hash binding a trace to the exact program image."""
    h = hashlib.sha256()
    h.update(program.text_base.to_bytes(4, "big"))
    h.update(program.text_image())
    h.update(program.data_base.to_bytes(4, "big"))
    h.update(program.data_image)
    h.update(program.entry.to_bytes(4, "big"))
    return h.digest()


class TraceEvent:
    """Logical view of one committed instruction (non-hot-path)."""

    __slots__ = (
        "index",
        "pc",
        "instr",
        "taken",
        "target",
        "mem_addr",
        "mem_size",
        "trap_num",
    )

    def __init__(
        self,
        index: int,
        pc: int,
        instr: Instr,
        taken: bool,
        target: int,
        mem_addr: int,
        mem_size: int,
        trap_num: int,
    ):
        self.index = index
        self.pc = pc
        self.instr = instr
        self.taken = taken
        self.target = target
        self.mem_addr = mem_addr
        self.mem_size = mem_size
        self.trap_num = trap_num

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "TraceEvent(%d @0x%x %s)" % (self.index, self.pc, self.instr.text())


class Trace:
    """One captured committed-instruction stream plus its outcome.

    ``flags`` is one byte per event (:data:`FLAG_TAKEN`); ``aux`` one
    unsigned 32-bit word per event -- the memory address for loads/stores,
    the jump target for taken control transfers, 0 otherwise.  ``count``
    equals the reference machine's ``instret`` (the exit trap included),
    so the header alone replaces a reference run: ``(count, output,
    exit_code)`` is exactly the tuple :func:`~repro.harness.runner
    .run_program` validates against.
    """

    __slots__ = (
        "fingerprint",
        "mem_size",
        "count",
        "flags",
        "aux",
        "output",
        "exit_code",
        "_bound",
    )

    def __init__(
        self,
        fingerprint: bytes,
        mem_size: int,
        count: int,
        flags: bytes,
        aux: array,
        output: bytes,
        exit_code: int,
    ):
        if len(flags) != count or len(aux) != count:
            raise TraceDesync(
                "trace columns disagree with count=%d (flags=%d aux=%d)"
                % (count, len(flags), len(aux))
            )
        self.fingerprint = fingerprint
        self.mem_size = mem_size
        self.count = count
        self.flags = flags
        self.aux = aux
        self.output = output
        self.exit_code = exit_code
        self._bound: Dict[int, "BoundTrace"] = {}

    def matches(self, program) -> bool:
        return self.fingerprint == program_fingerprint(program)

    def bind(self, program) -> "BoundTrace":
        """Join with ``program`` (memoized per program identity)."""
        bound = self._bound.get(id(program))
        if bound is None:
            bound = BoundTrace(self, program)
            self._bound[id(program)] = bound
        return bound


class WindowPlan:
    """Register-window state along the trace for one window count.

    ``cwp`` has ``count + 1`` entries (each event's window-before plus the
    final window); ``spilled`` marks save/restore events that overflow or
    underflow -- the events the Primary Processor charges
    ``window_spill_penalty`` for and treats as non-schedulable.  ``valid``
    is False when the spill stack itself would overflow or underflow: the
    live machine raises mid-run there, so replay refuses such a
    (trace, nwindows) pairing and the caller falls back to execution.
    """

    __slots__ = ("nwindows", "cwp", "spilled", "valid")

    def __init__(self, nwindows: int, cwp: array, spilled: bytearray, valid: bool):
        self.nwindows = nwindows
        self.cwp = cwp
        self.spilled = spilled
        self.valid = valid


class BoundTrace:
    """A :class:`Trace` joined with its program: derived event columns."""

    __slots__ = ("trace", "program", "pcs", "instrs", "_plans")

    def __init__(self, trace: Trace, program):
        if not trace.matches(program):
            raise TraceDesync("trace fingerprint does not match the program")
        self.trace = trace
        self.program = program
        self._plans: Dict[int, WindowPlan] = {}
        n = trace.count
        flags = trace.flags
        aux = trace.aux
        instr_map = program.instrs
        pcs = array("I", bytes(4 * n))
        instrs: List[Instr] = [None] * n  # type: ignore[list-item]
        pc = program.entry
        for i in range(n):
            instr = instr_map.get(pc)
            if instr is None:
                raise TraceDesync(
                    "trace walks outside the text segment at event %d (0x%x)"
                    % (i, pc)
                )
            pcs[i] = pc
            instrs[i] = instr
            kind = instr.op.kind
            if kind == K_BRANCH:
                pc = (
                    (pc + instr.imm) & MASK32
                    if flags[i] & FLAG_TAKEN
                    else pc + 4
                )
            elif kind == K_CALL:
                pc = (pc + instr.imm) & MASK32
            elif kind == K_JMPL:
                pc = aux[i]
            else:
                pc = pc + 4
        last = instrs[-1] if n else None
        if last is None or last.op.kind != K_TRAP or last.imm != TRAP_EXIT:
            raise TraceDesync("trace does not end at the exit trap")
        self.pcs = pcs
        self.instrs = instrs

    def event(self, i: int) -> TraceEvent:
        """The logical record of event ``i`` (non-hot-path accessor)."""
        instr = self.instrs[i]
        taken = bool(self.trace.flags[i] & FLAG_TAKEN)
        mem_addr = self.trace.aux[i] if instr.mem_size else -1
        target = 0
        if taken and i + 1 < self.trace.count:
            target = self.pcs[i + 1]
        return TraceEvent(
            i,
            self.pcs[i],
            instr,
            taken,
            target,
            mem_addr,
            instr.mem_size,
            instr.imm if instr.op.kind == K_TRAP else -1,
        )

    def window_plan(self, nwindows: int) -> WindowPlan:
        """Window state per event for ``nwindows`` (memoized).

        Mirrors the save/restore counter semantics of
        :func:`repro.isa.semantics.step` exactly: spill when ``cansave``
        is exhausted, fill when ``canrestore`` is, the window-spill stack
        pointer moving through the reserved region at the top of memory.
        """
        plan = self._plans.get(nwindows)
        if plan is not None:
            return plan
        n = self.trace.count
        mem_size = self.trace.mem_size
        spill_floor = mem_size - 65536  # MainMemory's default spill_region
        cwp_col = array("B", bytes(n + 1))
        spilled = bytearray(n)
        cwp = 0
        cansave = nwindows - 2
        canrestore = 0
        wssp = mem_size
        valid = True
        instrs = self.instrs
        for i in range(n):
            cwp_col[i] = cwp
            kind = instrs[i].op.kind
            if kind == K_SAVE:
                if cansave == 0:
                    if wssp - _SPILL_BYTES < spill_floor:
                        valid = False
                        break
                    wssp -= _SPILL_BYTES
                    spilled[i] = 1
                else:
                    cansave -= 1
                    canrestore += 1
                cwp = (cwp - 1) % nwindows
            elif kind == K_RESTORE:
                if canrestore == 0:
                    if wssp >= mem_size:
                        valid = False
                        break
                    wssp += _SPILL_BYTES
                    spilled[i] = 1
                else:
                    canrestore -= 1
                    cansave += 1
                cwp = (cwp + 1) % nwindows
        cwp_col[n] = cwp
        plan = WindowPlan(nwindows, cwp_col, spilled, valid)
        self._plans[nwindows] = plan
        return plan
