"""Trace capture: one architectural execution recorded as a
:class:`~repro.trace.events.Trace`.

Capture runs the program once through the predecoded reference loop (the
full ``exec_fn`` closures, whose :class:`~repro.isa.semantics.StepInfo`
bookkeeping supplies the branch direction, memory address and indirect
target each event stores; ``REPRO_GENERIC_STEP=1`` falls back to the
generic ``step`` oracle like every other engine).  The capture run *is* a
reference-quality run: its ``(count, output, exit_code)`` header replaces
a separate reference execution for trace-driven simulations.

:func:`workload_trace` is the registry-style accessor: one capture per
``(workload, scale, hw_mul, optimize, mem_size)`` per machine, shared
through the per-process memo and the on-disk
:class:`~repro.trace.store.TraceStore` -- which is how a parallel sweep's
worker processes all replay a trace captured once.
"""

from __future__ import annotations

from array import array
from typing import Dict, Optional, Tuple

from ..core.errors import ProgramExit, SimError
from ..core.reference import TrapServices, setup_state
from ..isa.blockcompile import (
    MODE_CAPTURE,
    block_compile_disabled,
    compile_blocks,
)
from ..isa.predecode import generic_step_forced
from ..isa.registers import RegFile
from ..isa.semantics import StepInfo, step
from ..memory.main_memory import MainMemory
from .events import Trace, program_fingerprint
from .store import TraceStore

DEFAULT_MEM_SIZE = 8 * 1024 * 1024

#: capture runs with the architectural default; the committed stream is
#: independent of the window count (see events.WindowPlan).
_CAPTURE_NWINDOWS = 8

_memo: Dict[Tuple, Optional[Trace]] = {}


def capture_trace(
    program,
    mem_size: int = DEFAULT_MEM_SIZE,
    max_instructions: int = 1_000_000_000,
) -> Trace:
    """Execute ``program`` once, recording every committed instruction."""
    mem = MainMemory(mem_size)
    rf = RegFile(_CAPTURE_NWINDOWS)
    services = TrapServices()
    pc = setup_state(program, mem, rf)
    info = StepInfo()
    flags = bytearray()
    aux = array("I")
    use_exec = not generic_step_forced()
    exec_table = program.exec_table if use_exec else None
    blocks = None
    if exec_table is not None and not block_compile_disabled():
        # capture-mode superblocks append their own trace records
        blocks = compile_blocks(program, MODE_CAPTURE) or None
    fetch = program.instrs.get
    n = 0
    ctr = [0, None, -1]  # block protocol: committed count / - / fault pc
    try:
        if blocks is not None:
            btg = blocks.get
            fns = exec_table.get
            while n < max_instructions:
                e = btg(pc)
                if e is not None and n + e[1] <= max_instructions:
                    try:
                        pc = e[0](rf, mem, services, flags, aux, ctr)
                    finally:
                        n += ctr[0]
                        ctr[0] = 0
                    continue
                fn = fns(pc)
                if fn is None:
                    raise SimError("fetch outside text segment: 0x%x" % pc)
                pc = fn(rf, mem, services, info)
                ma = info.mem_addr
                if ma >= 0:
                    flags.append(0)
                    aux.append(ma)
                elif info.taken:
                    flags.append(1)
                    aux.append(info.target)
                else:
                    flags.append(0)
                    aux.append(0)
                n += 1
            else:
                raise SimError(
                    "trace capture exceeded %d instructions" % max_instructions
                )
        while n < max_instructions:
            if exec_table is not None:
                fn = exec_table.get(pc)
                if fn is None:
                    raise SimError("fetch outside text segment: 0x%x" % pc)
                pc = fn(rf, mem, services, info)
            else:
                instr = fetch(pc)
                if instr is None:
                    raise SimError("fetch outside text segment: 0x%x" % pc)
                pc = step(rf, mem, instr, services, info)
            ma = info.mem_addr
            if ma >= 0:
                flags.append(0)
                aux.append(ma)
            elif info.taken:
                flags.append(1)
                aux.append(info.target)
            else:
                flags.append(0)
                aux.append(0)
            n += 1
    except ProgramExit:
        # the exit trap is a committed instruction too (instret counts it)
        flags.append(0)
        aux.append(0)
        n += 1
    else:
        raise SimError("trace capture exceeded %d instructions" % max_instructions)
    return Trace(
        program_fingerprint(program),
        mem_size,
        n,
        bytes(flags),
        aux,
        bytes(services.output),
        services.exit_code,
    )


def trace_key(
    name: str,
    scale: float,
    hw_mul: bool,
    optimize: bool,
    mem_size: int,
    fingerprint: bytes,
) -> str:
    """Stable store key; the fingerprint prefix pins the program content."""
    return "%s-s%g-m%d-o%d-mem%d-%s" % (
        name,
        scale,
        int(hw_mul),
        int(optimize),
        mem_size,
        fingerprint[:12].hex(),
    )


def workload_trace(
    name: str,
    scale: float = 1.0,
    hw_mul: bool = False,
    optimize: bool = True,
    mem_size: int = DEFAULT_MEM_SIZE,
    capture: bool = True,
) -> Optional[Trace]:
    """The committed trace of one registry workload.

    Resolution order: per-process memo, on-disk store, fresh capture
    (written back to the store).  ``capture=False`` probes the first two
    only -- used where a trace is merely an *optimisation* (e.g. reusing
    its header as the reference tuple) and capturing would cost more than
    it saves.
    """
    from ..workloads import registry

    program = registry.load_program(name, scale, hw_mul, optimize)
    fp = program_fingerprint(program)
    key = trace_key(name, scale, hw_mul, optimize, mem_size, fp)
    if key in _memo and _memo[key] is not None:
        return _memo[key]
    store = TraceStore()
    trace = store.get(key)
    if trace is not None and (
        trace.fingerprint != fp or trace.mem_size != mem_size
    ):
        trace = None  # stale or colliding file: treat as a miss
    if trace is None and capture:
        trace = capture_trace(program, mem_size=mem_size)
        store.put(key, trace)
    if trace is not None:
        _memo[key] = trace
    return trace


def trace_cached(
    name: str,
    scale: float,
    hw_mul: bool,
    optimize: bool,
    mem_size: int = DEFAULT_MEM_SIZE,
) -> bool:
    """True when the trace is already in the memo or the on-disk store."""
    return (
        workload_trace(
            name, scale, hw_mul, optimize, mem_size=mem_size, capture=False
        )
        is not None
    )
