"""Trace sources: where the Primary Processor's committed stream comes
from.

A *trace source* answers one question per committed instruction --
``execute(instr, info) -> next_pc`` -- filling the
:class:`~repro.isa.semantics.StepInfo` fields the timing model and the
schedulers consume (``taken``/``target``/``mem_addr``/``mem_size``/
``spilled``/``cwp_before``).  Two implementations:

* :class:`LiveTraceSource` -- execution-driven: runs the instruction's
  predecoded closure (or the generic ``step`` oracle) against real
  architectural state.  This is the oracle; the DTSVLIW always uses it
  because its VLIW Engine genuinely re-executes values.
* :class:`ReplayTraceSource` -- a cursor over a captured
  :class:`~repro.trace.events.BoundTrace`: no register or memory state is
  touched, every ``StepInfo`` field is synthesized from the trace columns
  and the window plan.  Machines whose statistics never read register
  *values* (the DIF and scalar baselines) produce bit-identical
  :class:`~repro.core.stats.Stats` this way -- the differential test
  suite enforces it workload by workload.

``REPRO_EXECUTION_DRIVEN=1`` forces the live path everywhere (the escape
hatch mirroring ``REPRO_GENERIC_STEP``).
"""

from __future__ import annotations

import os
from typing import Optional

from ..core.errors import ProgramExit
from ..isa.instructions import K_RESTORE, K_SAVE
from ..isa.semantics import step
from .events import BoundTrace, Trace, TraceDesync


def execution_driven_forced() -> bool:
    """True when ``$REPRO_EXECUTION_DRIVEN`` disables trace replay (every
    engine then derives the committed stream by executing, as the seed
    simulator did)."""
    return os.environ.get("REPRO_EXECUTION_DRIVEN", "") not in ("", "0")


class LiveTraceSource:
    """Execution-driven source: the program is the trace generator."""

    kind = "live"

    __slots__ = ("rf", "mem", "services", "use_exec")

    def __init__(self, rf, mem, services, use_exec: bool = True):
        self.rf = rf
        self.mem = mem
        self.services = services
        self.use_exec = use_exec

    def execute(self, instr, info) -> int:
        fn = instr.exec_fn
        if fn is not None and self.use_exec:
            return fn(self.rf, self.mem, self.services, info)
        return step(self.rf, self.mem, instr, self.services, info)


class ReplayTraceSource:
    """Replay a captured trace without executing anything.

    The cursor exposes its columns (``pcs``/``instrs``/``flags``/``aux``)
    so group-replay loops (the DIF engine) can walk events directly; the
    invariant is that the machine's committed stream *is* the captured
    stream, so the machine pc always equals ``pcs[i]`` (enforced per
    event -- a mismatch raises :class:`TraceDesync` rather than silently
    diverging).

    ``execute`` keeps ``rf.cwp`` current (from the window plan) because
    the schedulers resolve visible registers through the window tables;
    no other architectural state is maintained.  At the exit-trap event
    it publishes the recorded output and exit code to the machine's trap
    services and raises :class:`ProgramExit` exactly like a live run.
    """

    kind = "replay"

    __slots__ = (
        "bound",
        "trace",
        "rf",
        "services",
        "pcs",
        "instrs",
        "flags",
        "aux",
        "cwp",
        "spilled",
        "i",
        "last",
    )

    def __init__(self, bound: BoundTrace, rf, services):
        plan = bound.window_plan(rf.nwindows)
        if not plan.valid:
            raise TraceDesync(
                "window spill stack over/underflows with nwindows=%d; "
                "replay refused" % rf.nwindows
            )
        self.bound = bound
        self.trace = bound.trace
        self.rf = rf
        self.services = services
        self.pcs = bound.pcs
        self.instrs = bound.instrs
        self.flags = self.trace.flags
        self.aux = self.trace.aux
        self.cwp = plan.cwp
        self.spilled = plan.spilled
        self.i = 0
        self.last = self.trace.count - 1

    def execute(self, instr, info) -> int:
        i = self.i
        pcs = self.pcs
        if instr.addr != pcs[i]:
            raise TraceDesync(
                "replay desync at event %d: machine pc=0x%x, trace pc=0x%x"
                % (i, instr.addr, pcs[i])
            )
        if i == self.last:
            trace = self.trace
            services = self.services
            services.output[:] = trace.output
            services.exit_code = trace.exit_code
            self.i = i + 1
            raise ProgramExit(trace.exit_code)
        info.taken = (self.flags[i] & 1) != 0
        ms = instr.mem_size
        if ms:
            info.mem_addr = self.aux[i]
            info.mem_size = ms
        else:
            info.mem_addr = -1
            info.mem_size = 0
        info.spilled = self.spilled[i] != 0
        info.cwp_before = self.cwp[i]
        self.rf.cwp = self.cwp[i + 1]
        nxt = pcs[i + 1]
        info.target = nxt
        self.i = i + 1
        return nxt


class WindowReplayTraceSource(ReplayTraceSource):
    """Replay source that additionally maintains the register-window
    *occupancy* state (``cansave``/``canrestore``/``wssp``) alongside
    ``cwp``.

    The scalar and DIF baselines never read those fields, so the plain
    :class:`ReplayTraceSource` skips them; the DTSVLIW's VLIW Engine does
    (eager window fills/spills at block entry re-check residency), so its
    replay twin needs the committed stream to keep them current.  The
    update mirrors :func:`repro.isa.semantics.step` exactly: a spilled
    save/restore moves the window-spill stack pointer and leaves the
    counters alone; a non-spilled one transfers a window between the
    ``cansave`` and ``canrestore`` pools.
    """

    __slots__ = ()

    def execute(self, instr, info) -> int:
        i = self.i
        nxt = super().execute(instr, info)
        kind = instr.op.kind
        if kind == K_SAVE:
            rf = self.rf
            if self.spilled[i]:
                rf.wssp -= 64
            else:
                rf.cansave -= 1
                rf.canrestore += 1
        elif kind == K_RESTORE:
            rf = self.rf
            if self.spilled[i]:
                rf.wssp += 64
            else:
                rf.canrestore -= 1
                rf.cansave += 1
        return nxt


def replay_source_for(
    trace: Optional[Trace], program, rf, services, cfg, windows: bool = False
) -> Optional[ReplayTraceSource]:
    """A replay source for ``trace`` on a machine, or None when the live
    path must be used (no trace, escape hatch set, mismatched memory
    size, or a window plan the live machine would fault on).

    ``windows=True`` returns the :class:`WindowReplayTraceSource` variant
    (window-occupancy bookkeeping for the DTSVLIW replay twin).
    """
    if trace is None or execution_driven_forced():
        return None
    if trace.mem_size != cfg.mem_size:
        return None
    bound = trace.bind(program)
    if not bound.window_plan(rf.nwindows).valid:
        return None
    cls = WindowReplayTraceSource if windows else ReplayTraceSource
    return cls(bound, rf, services)
