"""Functional semantics of srisc instructions.

One ``step`` function advances architectural state by a single instruction;
it is shared by the reference (*test*) machine and the Primary Processor so
the two can never disagree about meaning.  The VLIW Engine re-executes
scheduled operations through the same compute primitives
(:data:`ALU_FUNCS`, :func:`eval_cond`, :func:`fp_compute`) with pre-resolved
physical registers.

Architectural exceptions are raised as Python exceptions
(:mod:`repro.core.errors`); the engines translate them into the paper's
checkpoint-recovery protocol.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..core.errors import MemFault, ProgramExit, SimError
from .instructions import (
    Instr,
    K_ALU,
    K_BRANCH,
    K_CALL,
    K_FLOAD,
    K_FPOP,
    K_FSTORE,
    K_JMPL,
    K_LOAD,
    K_NOP,
    K_RESTORE,
    K_SAVE,
    K_SETHI,
    K_STORE,
    K_TRAP,
)
from .registers import ICC_C, ICC_N, ICC_V, ICC_Z, RegFile

MASK32 = 0xFFFFFFFF
SIGN_BIT = 0x80000000


def to_signed(x: int) -> int:
    """Interpret a 32-bit unsigned value as two's-complement."""
    return x - 0x100000000 if x & SIGN_BIT else x


def to_unsigned(x: int) -> int:
    return x & MASK32


# ---------------------------------------------------------------------------
# Integer ALU compute primitives: (a, b) -> 32-bit result.
# ---------------------------------------------------------------------------
def _sdiv(a: int, b: int) -> int:
    if b == 0:
        raise MemFault(0, "integer division by zero")
    sa, sb = to_signed(a), to_signed(b)
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return to_unsigned(q)


def _udiv(a: int, b: int) -> int:
    if b == 0:
        raise MemFault(0, "integer division by zero")
    return (a // b) & MASK32


ALU_FUNCS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: (a + b) & MASK32,
    "addcc": lambda a, b: (a + b) & MASK32,
    "sub": lambda a, b: (a - b) & MASK32,
    "subcc": lambda a, b: (a - b) & MASK32,
    "and": lambda a, b: a & b,
    "andcc": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "orcc": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "xorcc": lambda a, b: a ^ b,
    "andn": lambda a, b: a & (~b & MASK32),
    "orn": lambda a, b: a | (~b & MASK32),
    "xnor": lambda a, b: (~(a ^ b)) & MASK32,
    "sll": lambda a, b: (a << (b & 31)) & MASK32,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: to_unsigned(to_signed(a) >> (b & 31)),
    "smul": lambda a, b: to_unsigned(to_signed(a) * to_signed(b)),
    "umul": lambda a, b: (a * b) & MASK32,
    "sdiv": _sdiv,
    "udiv": _udiv,
    # save/restore compute like add (on the *old* window's sources).
    "save": lambda a, b: (a + b) & MASK32,
    "restore": lambda a, b: (a + b) & MASK32,
}


def alu_cc(name: str, a: int, b: int, result: int) -> int:
    """Condition codes produced by a cc-setting integer op (packed NZVC)."""
    icc = 0
    if result & SIGN_BIT:
        icc |= ICC_N
    if result == 0:
        icc |= ICC_Z
    if name == "addcc":
        if (~(a ^ b) & (a ^ result)) & SIGN_BIT:
            icc |= ICC_V
        if (a + b) > MASK32:
            icc |= ICC_C
    elif name == "subcc":
        if ((a ^ b) & (a ^ result)) & SIGN_BIT:
            icc |= ICC_V
        if b > a:  # unsigned borrow
            icc |= ICC_C
    # logical cc ops leave V = C = 0
    return icc


# ---------------------------------------------------------------------------
# Branch condition evaluation over packed NZVC.
# ---------------------------------------------------------------------------
def eval_cond(cond: str, icc: int) -> bool:
    """Evaluate a branch condition against packed NZVC flags."""
    n = bool(icc & ICC_N)
    z = bool(icc & ICC_Z)
    v = bool(icc & ICC_V)
    c = bool(icc & ICC_C)
    if cond == "ba":
        return True
    if cond == "bn":
        return False
    if cond == "be":
        return z
    if cond == "bne":
        return not z
    if cond == "bl":
        return n != v
    if cond == "bge":
        return n == v
    if cond == "ble":
        return z or (n != v)
    if cond == "bg":
        return not (z or (n != v))
    if cond == "blu":
        return c
    if cond == "bgeu":
        return not c
    if cond == "bleu":
        return c or z
    if cond == "bgu":
        return not (c or z)
    if cond == "bpos":
        return not n
    if cond == "bneg":
        return n
    if cond == "bvs":
        return v
    if cond == "bvc":
        return not v
    raise SimError("unknown branch condition %r" % cond)


# ---------------------------------------------------------------------------
# Floating point compute primitives.
# ---------------------------------------------------------------------------
def fp_compute(name: str, a: float, b: float) -> float:
    """Arithmetic for the two-operand fp instructions."""
    if name == "fadd":
        return a + b
    if name == "fsub":
        return a - b
    if name == "fmul":
        return a * b
    if name == "fdiv":
        if b == 0.0:
            raise MemFault(0, "fp division by zero")
        return a / b
    if name == "fmov":
        return a
    if name == "fneg":
        return -a
    raise SimError("unknown fp op %r" % name)


def fcmp_cc(a: float, b: float) -> int:
    """icc produced by fcmp: Z if equal, N if a < b (simplified fcc)."""
    icc = 0
    if a == b:
        icc |= ICC_Z
    elif a < b:
        icc |= ICC_N
    return icc


class StepInfo:
    """Per-instruction execution record filled by :func:`step`.

    The Primary Processor forwards these fields to the Scheduler Unit
    (section 3.1: completed instructions are sent on to be scheduled), and
    the timing model consumes ``taken``/``mem_addr``.
    """

    __slots__ = (
        "taken",
        "target",
        "mem_addr",
        "mem_size",
        "is_load",
        "is_store",
        "store_old",
        "value",
        "spilled",
        "cwp_before",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.taken = False
        self.target = 0
        self.mem_addr = -1
        self.mem_size = 0
        self.is_load = False
        self.is_store = False
        self.store_old = 0
        self.value = 0
        self.spilled = False
        self.cwp_before = 0


def do_window_spill(rf: RegFile, mem) -> None:
    """Hardware-managed window overflow: spill the oldest resident window.

    The 16 registers of window ``(cwp + canrestore) mod N`` are pushed onto
    the dedicated spill stack at the top of memory.  Both the reference
    machine and the DTSVLIW perform spills identically, keeping *test mode*
    state comparison exact.
    """
    victim = (rf.cwp + rf.canrestore) % rf.nwindows
    base = 8 + 16 * victim
    sp = rf.wssp - 64
    if sp < mem.size - mem.spill_region:
        raise SimError("window spill stack overflow (call depth too large)")
    for k in range(16):
        mem.write_word(sp + 4 * k, rf.iregs[base + k])
    rf.wssp = sp


def do_window_fill(rf: RegFile, mem) -> None:
    """Hardware-managed window underflow: fill the parent's window."""
    target = (rf.cwp + 1) % rf.nwindows
    base = 8 + 16 * target
    sp = rf.wssp
    if sp >= mem.size:
        raise SimError("window fill with empty spill stack")
    for k in range(16):
        rf.iregs[base + k] = mem.read_word(sp + 4 * k)
    rf.wssp = sp + 64


def step(rf: RegFile, mem, instr: Instr, services, info: StepInfo) -> int:
    """Execute ``instr`` sequentially; return the next PC.

    ``services`` must provide ``trap(num, rf, mem)`` (used by ``ta``).
    Raises :class:`ProgramExit` on the exit trap and architectural
    exceptions on faults.
    """
    op = instr.op
    kind = op.kind
    pc = instr.addr
    info.reset()
    info.cwp_before = rf.cwp

    if kind == K_ALU:
        a = rf.read(instr.rs1)
        b = instr.imm & MASK32 if instr.use_imm else rf.read(instr.rs2)
        res = ALU_FUNCS[op.name](a, b)
        rf.write(instr.rd, res)
        if op.sets_cc:
            rf.icc = alu_cc(op.name, a, b, res)
        info.value = res
        return pc + 4

    if kind == K_SETHI:
        res = (instr.imm << 12) & MASK32
        rf.write(instr.rd, res)
        info.value = res
        return pc + 4

    if kind == K_LOAD:
        off = instr.imm if instr.use_imm else rf.read(instr.rs2)
        addr = (rf.read(instr.rs1) + off) & MASK32
        info.mem_addr = addr
        info.is_load = True
        if op.name == "ld":
            info.mem_size = 4
            val = mem.read_word(addr)
        elif op.name == "ldub":
            info.mem_size = 1
            val = mem.read_byte(addr)
        else:  # ldsb
            info.mem_size = 1
            val = mem.read_byte(addr)
            if val & 0x80:
                val |= 0xFFFFFF00
        rf.write(instr.rd, val)
        info.value = val
        return pc + 4

    if kind == K_STORE:
        off = instr.imm if instr.use_imm else rf.read(instr.rs2)
        addr = (rf.read(instr.rs1) + off) & MASK32
        val = rf.read(instr.rd)
        info.mem_addr = addr
        info.is_store = True
        if op.name == "st":
            info.mem_size = 4
            info.store_old = mem.read_word(addr)
            mem.write_word(addr, val)
        else:  # stb
            info.mem_size = 1
            info.store_old = mem.read_byte(addr)
            mem.write_byte(addr, val & 0xFF)
        info.value = val
        return pc + 4

    if kind == K_BRANCH:
        taken = eval_cond(op.cond, rf.icc)
        info.taken = taken
        info.target = (pc + instr.imm) & MASK32 if taken else pc + 4
        return info.target

    if kind == K_CALL:
        rf.write(15, pc)  # o7 <- address of the call itself (SPARC style)
        info.taken = True
        info.target = (pc + instr.imm) & MASK32
        info.value = pc
        return info.target

    if kind == K_JMPL:
        target = (rf.read(instr.rs1) + instr.imm) & MASK32
        rf.write(instr.rd, pc)
        if target & 3:
            raise MemFault(target, "misaligned jump target")
        info.taken = True
        info.target = target
        return target

    if kind == K_SAVE:
        a = rf.read(instr.rs1)
        b = instr.imm & MASK32 if instr.use_imm else rf.read(instr.rs2)
        if rf.cansave == 0:
            do_window_spill(rf, mem)
            info.spilled = True
        else:
            rf.cansave -= 1
            rf.canrestore += 1
        rf.cwp = (rf.cwp - 1) % rf.nwindows
        rf.write(instr.rd, (a + b) & MASK32)  # rd in the NEW window
        info.value = (a + b) & MASK32
        return pc + 4

    if kind == K_RESTORE:
        a = rf.read(instr.rs1)
        b = instr.imm & MASK32 if instr.use_imm else rf.read(instr.rs2)
        if rf.canrestore == 0:
            do_window_fill(rf, mem)
            info.spilled = True
        else:
            rf.canrestore -= 1
            rf.cansave += 1
        rf.cwp = (rf.cwp + 1) % rf.nwindows
        rf.write(instr.rd, (a + b) & MASK32)
        info.value = (a + b) & MASK32
        return pc + 4

    if kind == K_FPOP:
        name = op.name
        if name == "fitos":
            # Cross-file op: integer rs1 -> fp rd (simpler than SPARC's
            # bit-pattern reinterpretation; documented ISA deviation).
            rf.fwrite(instr.rd, float(to_signed(rf.read(instr.rs1))))
        elif name == "fstoi":
            # fp rs1 -> integer rd, truncating toward zero.
            rf.write(instr.rd, to_unsigned(int(rf.fread(instr.rs1))))
        elif name == "fcmp":
            rf.icc = fcmp_cc(rf.fread(instr.rs1), rf.fread(instr.rs2))
        else:
            a = rf.fread(instr.rs1)
            b = rf.fread(instr.rs2)
            rf.fwrite(instr.rd, fp_compute(name, a, b))
        return pc + 4

    if kind == K_FLOAD:
        off = instr.imm if instr.use_imm else rf.read(instr.rs2)
        addr = (rf.read(instr.rs1) + off) & MASK32
        info.mem_addr = addr
        info.mem_size = 4
        info.is_load = True
        rf.fwrite(instr.rd, mem.read_float(addr))
        return pc + 4

    if kind == K_FSTORE:
        off = instr.imm if instr.use_imm else rf.read(instr.rs2)
        addr = (rf.read(instr.rs1) + off) & MASK32
        info.mem_addr = addr
        info.mem_size = 4
        info.is_store = True
        info.store_old = mem.read_word(addr)
        mem.write_float(addr, rf.fread(instr.rd))
        return pc + 4

    if kind == K_TRAP:
        services.trap(instr.imm, rf, mem)
        return pc + 4

    if kind == K_NOP:
        return pc + 4

    raise SimError("unimplemented instruction kind %d (%s)" % (kind, op.name))
