"""Register model for the srisc ISA (SPARC-V7-inspired).

The visible integer register file has 32 registers split into four groups of
eight, exactly as in SPARC:

* ``g0``-``g7`` (indices 0-7): globals; ``g0`` always reads as zero.
* ``o0``-``o7`` (8-15): outs; ``o6`` is the stack pointer, ``o7`` the link
  register written by ``call``.
* ``l0``-``l7`` (16-23): locals.
* ``i0``-``i7`` (24-31): ins; ``i6`` is the frame pointer, ``i7`` holds the
  return address inside a callee.

Register *windows* make outs/locals/ins aliases into a larger physical file:
window ``w`` owns 16 physical registers (its ins and locals), and the outs of
window ``w`` are the ins of window ``(w - 1) mod NWINDOWS`` -- so ``save``
(which decrements ``cwp``) turns the caller's outs into the callee's ins.

The paper (section 3.9) schedules ``save``/``restore`` like ordinary integer
instructions by letting the ``cwp`` value accompany each instruction into the
scheduling list; dependence analysis therefore operates on *physical* register
indices.  This module provides the precomputed ``cwp -> visible -> physical``
tables used by the Primary Processor, the Scheduler Unit and the VLIW Engine.

Location-id encoding
--------------------

The scheduler treats every architectural storage location as a small integer
so dependence checks are set intersections:

* integer physical registers: their physical index (0 .. 8+16*NWINDOWS-1)
* integer renaming registers: ``IRR_BASE + k``
* floating point registers:   ``FPR_BASE + f``
* fp renaming registers:      ``FRR_BASE + k``
* the integer condition codes: ``CC_ID``
* cc renaming registers:      ``CRR_BASE + k``
* the current window pointer: ``CWP_ID``
* memory words:               ``MEM_BASE + (byte_address >> 2)``
* memory renaming buffers:    ``MRR_BASE + k``

Memory dependence granularity is one 32-bit word (byte accesses conservatively
depend on their containing word).
"""

from __future__ import annotations

from typing import List

#: Number of register windows (SPARC V7 implementations had 2-32).
DEFAULT_NWINDOWS = 8

#: Well-known visible register indices.
G0 = 0
O0 = 8
SP = 14  # o6
O7 = 15  # link register written by call
L0 = 16
I0 = 24
FP = 30  # i6
I7 = 31  # return address in callee

NUM_VISIBLE = 32
NUM_FPREGS = 32

# ---------------------------------------------------------------------------
# Location-id bases.  Spaced far apart; they only need to be distinct.
# ---------------------------------------------------------------------------
IRR_BASE = 100_000  # integer renaming registers
FPR_BASE = 200_000  # architectural fp registers
FRR_BASE = 250_000  # fp renaming registers
CC_ID = 300_000  # integer condition codes (N,Z,V,C as one location)
CRR_BASE = 310_000  # cc renaming registers
CWP_ID = 400_000  # current window pointer (orders save/restore)
MEMSEQ_ID = 450_000  # pseudo-location serialising memory ops (section 3.11)
MRR_BASE = 500_000  # memory renaming (store) buffers
MEM_BASE = 10_000_000  # + word index


def fp_loc(f: int) -> int:
    """Location id of architectural fp register ``f``."""
    return FPR_BASE + f


def mem_loc(addr: int) -> int:
    """Location id of the memory word containing byte address ``addr``."""
    return MEM_BASE + (addr >> 2)


def num_int_phys(nwindows: int) -> int:
    """Size of the windowed integer physical file (globals + windows)."""
    return 8 + 16 * nwindows


def build_window_tables(nwindows: int) -> List[List[int]]:
    """Precompute ``tables[cwp][visible] -> physical`` for every window.

    Physical layout: globals occupy 0-7; window ``w`` owns physical
    ``8 + 16*w .. 8 + 16*w + 15`` (ins first, then locals).  The outs of
    window ``w`` alias the ins of window ``(w - 1) mod nwindows``.
    """
    tables: List[List[int]] = []
    for cwp in range(nwindows):
        row = [0] * NUM_VISIBLE
        for r in range(8):  # globals
            row[r] = r
        prev = (cwp - 1) % nwindows
        for r in range(8):  # outs -> ins of the window below
            row[O0 + r] = 8 + 16 * prev + r
        for r in range(8):  # locals
            row[L0 + r] = 8 + 16 * cwp + 8 + r
        for r in range(8):  # ins
            row[I0 + r] = 8 + 16 * cwp + r
        tables.append(row)
    return tables


class RegFile:
    """Architectural register state shared by all engines of the machine.

    Integer registers are stored *physically* (windowed); reads and writes go
    through the window tables using the current ``cwp``.  ``g0`` is enforced
    to read as zero by never writing physical register 0.
    """

    __slots__ = (
        "nwindows",
        "tables",
        "iregs",
        "fregs",
        "icc",
        "cwp",
        "cansave",
        "canrestore",
        "wssp",
    )

    def __init__(self, nwindows: int = DEFAULT_NWINDOWS):
        self.nwindows = nwindows
        self.tables = build_window_tables(nwindows)
        self.iregs = [0] * num_int_phys(nwindows)
        self.fregs = [0.0] * NUM_FPREGS
        # Condition codes packed as an int: bit3=N, bit2=Z, bit1=V, bit0=C.
        self.icc = 0
        self.cwp = 0
        # SPARC-style window occupancy counters.  One window is always
        # reserved so overflow fires before the in-use window is clobbered.
        self.cansave = nwindows - 2
        self.canrestore = 0
        # Window spill stack pointer (hardware-managed region at the top of
        # memory); initialised by the machine once memory size is known.
        self.wssp = 0

    # -- integer registers --------------------------------------------------
    def read(self, visible: int) -> int:
        return self.iregs[self.tables[self.cwp][visible]]

    def write(self, visible: int, value: int) -> None:
        phys = self.tables[self.cwp][visible]
        if phys != 0:
            self.iregs[phys] = value & 0xFFFFFFFF

    def phys(self, visible: int, cwp: int | None = None) -> int:
        """Physical index of ``visible`` under ``cwp`` (default: current)."""
        return self.tables[self.cwp if cwp is None else cwp][visible]

    # -- fp registers --------------------------------------------------------
    def fread(self, f: int) -> float:
        return self.fregs[f]

    def fwrite(self, f: int, value: float) -> None:
        self.fregs[f] = value

    # -- snapshots (checkpointing, test mode) --------------------------------
    def snapshot(self) -> tuple:
        return (
            list(self.iregs),
            list(self.fregs),
            self.icc,
            self.cwp,
            self.cansave,
            self.canrestore,
            self.wssp,
        )

    def restore(self, snap: tuple) -> None:
        iregs, fregs, icc, cwp, cansave, canrestore, wssp = snap
        self.iregs[:] = iregs
        self.fregs[:] = fregs
        self.icc = icc
        self.cwp = cwp
        self.cansave = cansave
        self.canrestore = canrestore
        self.wssp = wssp

    def state_equal(self, other: "RegFile") -> bool:
        """Architectural equality (used by the paper's *test mode*)."""
        return (
            self.iregs == other.iregs
            and self.fregs == other.fregs
            and self.icc == other.icc
            and self.cwp == other.cwp
            and self.wssp == other.wssp
        )


#: condition-code bit positions inside ``RegFile.icc``
ICC_N = 8
ICC_Z = 4
ICC_V = 2
ICC_C = 1


REG_NAMES = (
    ["g%d" % i for i in range(8)]
    + ["o%d" % i for i in range(8)]
    + ["l%d" % i for i in range(8)]
    + ["i%d" % i for i in range(8)]
)

#: name -> visible index, including ABI aliases.
REG_ALIASES = {name: i for i, name in enumerate(REG_NAMES)}
REG_ALIASES.update({"sp": SP, "fp": FP, "r0": 0})
# Plain rN names (the paper's Figure 2 uses r0, r8, ...).
REG_ALIASES.update({"r%d" % i: i for i in range(NUM_VISIBLE)})


def reg_name(visible: int) -> str:
    """Canonical name (``g0``..``i7``) of a visible register."""
    return REG_NAMES[visible]
