"""Binary encoding of srisc instructions (32-bit fixed width).

Layout (bit 31 = MSB):

* all formats: ``[31:26]`` opcode index.
* call:   ``[25:0]``  signed word displacement (pc-relative).
* branch: ``[20:0]``  signed word displacement (pc-relative).
* sethi:  ``[25:21]`` rd, ``[20:0]`` imm21 (result = imm << 10).
* trap:   ``[20:0]``  trap number.
* nop:    all-zero operand field.
* other (alu/mem/jmpl/save/restore/fp): ``[25:21]`` rd, ``[20:16]`` rs1,
  ``[15]`` immediate flag, then ``[14:0]`` simm15 or ``[4:0]`` rs2.

Programs are stored in memory in this encoding; the loader decodes each word
once into :class:`~repro.isa.instructions.Instr` objects for the simulation
loops, and tests assert the round-trip is exact.
"""

from __future__ import annotations

from ..core.errors import SimError
from .instructions import (
    Instr,
    K_BRANCH,
    K_CALL,
    K_NOP,
    K_SETHI,
    K_TRAP,
    NUM_OPCODES,
    OPCODE_LIST,
)

_SIMM15_MIN, _SIMM15_MAX = -(1 << 14), (1 << 14) - 1
_DISP21_MIN, _DISP21_MAX = -(1 << 20), (1 << 20) - 1
_DISP26_MIN, _DISP26_MAX = -(1 << 25), (1 << 25) - 1


def _check(value: int, lo: int, hi: int, what: str, instr: Instr) -> None:
    if not lo <= value <= hi:
        raise SimError("%s %d out of range for %s" % (what, value, instr.text()))


def encode(instr: Instr) -> int:
    """Encode one instruction to a 32-bit word."""
    op = instr.op
    word = op.index << 26
    kind = op.kind
    if kind == K_CALL:
        disp = instr.imm >> 2
        _check(disp, _DISP26_MIN, _DISP26_MAX, "call displacement", instr)
        return word | (disp & 0x3FFFFFF)
    if kind == K_BRANCH:
        disp = instr.imm >> 2
        _check(disp, _DISP21_MIN, _DISP21_MAX, "branch displacement", instr)
        return word | (disp & 0x1FFFFF)
    if kind == K_SETHI:
        _check(instr.imm, 0, (1 << 21) - 1, "sethi immediate", instr)
        return word | (instr.rd << 21) | instr.imm
    if kind == K_TRAP:
        _check(instr.imm, 0, (1 << 21) - 1, "trap number", instr)
        return word | instr.imm
    if kind == K_NOP:
        return word
    word |= (instr.rd << 21) | (instr.rs1 << 16)
    if instr.use_imm:
        _check(instr.imm, _SIMM15_MIN, _SIMM15_MAX, "immediate", instr)
        return word | (1 << 15) | (instr.imm & 0x7FFF)
    return word | instr.rs2


def decode(word: int, addr: int = 0) -> Instr:
    """Decode a 32-bit word fetched from ``addr``."""
    op_index = (word >> 26) & 0x3F
    if op_index >= NUM_OPCODES:
        raise SimError("illegal opcode index %d at 0x%x" % (op_index, addr))
    op = OPCODE_LIST[op_index]
    kind = op.kind
    if kind == K_CALL:
        disp = word & 0x3FFFFFF
        if disp & (1 << 25):
            disp -= 1 << 26
        return Instr(op, imm=disp << 2, addr=addr)
    if kind == K_BRANCH:
        disp = word & 0x1FFFFF
        if disp & (1 << 20):
            disp -= 1 << 21
        return Instr(op, imm=disp << 2, addr=addr)
    if kind == K_SETHI:
        return Instr(op, rd=(word >> 21) & 0x1F, imm=word & 0x1FFFFF, addr=addr)
    if kind == K_TRAP:
        return Instr(op, imm=word & 0x1FFFFF, addr=addr)
    if kind == K_NOP:
        return Instr(op, addr=addr)
    rd = (word >> 21) & 0x1F
    rs1 = (word >> 16) & 0x1F
    if word & (1 << 15):
        imm = word & 0x7FFF
        if imm & (1 << 14):
            imm -= 1 << 15
        return Instr(op, rd=rd, rs1=rs1, imm=imm, use_imm=True, addr=addr)
    return Instr(op, rd=rd, rs1=rs1, rs2=word & 0x1F, addr=addr)
