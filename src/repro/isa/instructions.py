"""Instruction set definition for srisc, the SPARC-V7-inspired ISA.

Every static instruction is decoded once into an :class:`Instr`; the decoded
form carries everything the engines need (operand indices, immediate,
functional-unit class, latency and dependence metadata) so the hot simulation
loops never re-parse anything.

Deviations from SPARC V7, documented here and in DESIGN.md:

* no branch delay slots (branches take effect immediately);
* 15-bit signed immediates instead of 13-bit (srisc encodes a larger simm);
* ``sethi`` shifts its immediate left by 12 (so ``%hi``/``%lo`` split at
  bit 12), and ``call``/``jmpl`` write the address of the jump itself to the
  link register with ``ret`` returning to ``%i7 + 4``;
* hardware ``smul``/``sdiv``/``umul``/``udiv`` exist as *multicycle*
  instructions (SPARC V7 itself had only multiply-step; the compiler emits
  library calls unless hardware multiply is requested), matching the paper's
  section 3.9 treatment of multicycle instructions;
* a single software trap instruction ``ta`` provides exit/putc/print-int
  services and is *non-schedulable* (section 3.9).
"""

from __future__ import annotations

from typing import Dict, List, Optional

# ---------------------------------------------------------------------------
# Functional-unit classes (slot typing for non-homogeneous long instructions).
# ---------------------------------------------------------------------------
FU_INT = 0
FU_LS = 1
FU_FP = 2
FU_BR = 3

FU_NAMES = {FU_INT: "int", FU_LS: "ls", FU_FP: "fp", FU_BR: "br"}

# Instruction kinds -- drive both semantics dispatch and scheduler policy.
K_ALU = 0  # integer register/immediate ALU op
K_SETHI = 1
K_LOAD = 2
K_STORE = 3
K_FLOAD = 4
K_FSTORE = 5
K_FPOP = 6
K_BRANCH = 7  # conditional branch (incl. ba/bn)
K_CALL = 8
K_JMPL = 9  # indirect jump / return
K_SAVE = 10
K_RESTORE = 11
K_TRAP = 12
K_NOP = 13


class Opcode:
    """Static description of one mnemonic."""

    __slots__ = (
        "name",
        "kind",
        "fu",
        "latency",
        "sets_cc",
        "reads_cc",
        "cond",
        "index",
    )

    def __init__(
        self,
        name: str,
        kind: int,
        fu: int,
        latency: int = 1,
        sets_cc: bool = False,
        reads_cc: bool = False,
        cond: Optional[str] = None,
    ):
        self.name = name
        self.kind = kind
        self.fu = fu
        self.latency = latency
        self.sets_cc = sets_cc
        self.reads_cc = reads_cc
        self.cond = cond
        self.index = -1  # assigned at registration

    def __reduce__(self):
        # Unpickle by registry lookup: every process has exactly one Opcode
        # per mnemonic, so instructions shipped across process boundaries
        # (parallel sweeps) keep identity with the local OPCODES table.
        return (_opcode_by_name, (self.name,))


def _opcode_by_name(name: str) -> "Opcode":
    return OPCODES[name]


OPCODES: Dict[str, Opcode] = {}
OPCODE_LIST: List[Opcode] = []


def _op(name: str, kind: int, fu: int, **kw) -> Opcode:
    opc = Opcode(name, kind, fu, **kw)
    opc.index = len(OPCODE_LIST)
    OPCODES[name] = opc
    OPCODE_LIST.append(opc)
    return opc


# Integer ALU --------------------------------------------------------------
for _name in (
    "add",
    "sub",
    "and",
    "or",
    "xor",
    "andn",
    "orn",
    "xnor",
    "sll",
    "srl",
    "sra",
):
    _op(_name, K_ALU, FU_INT)
for _name in ("addcc", "subcc", "andcc", "orcc", "xorcc"):
    _op(_name, K_ALU, FU_INT, sets_cc=True)
# Multicycle integer ops (section 3.9 / HPCN'99 companion paper).
_op("smul", K_ALU, FU_INT, latency=4)
_op("umul", K_ALU, FU_INT, latency=4)
_op("sdiv", K_ALU, FU_INT, latency=12)
_op("udiv", K_ALU, FU_INT, latency=12)

_op("sethi", K_SETHI, FU_INT)

# Memory -------------------------------------------------------------------
_op("ld", K_LOAD, FU_LS)
_op("ldub", K_LOAD, FU_LS)
_op("ldsb", K_LOAD, FU_LS)
_op("st", K_STORE, FU_LS)
_op("stb", K_STORE, FU_LS)
_op("ldf", K_FLOAD, FU_LS)
_op("stf", K_FSTORE, FU_LS)

# Floating point -----------------------------------------------------------
_op("fadd", K_FPOP, FU_FP)
_op("fsub", K_FPOP, FU_FP)
_op("fmul", K_FPOP, FU_FP)
_op("fdiv", K_FPOP, FU_FP, latency=8)
_op("fmov", K_FPOP, FU_FP)
_op("fneg", K_FPOP, FU_FP)
_op("fitos", K_FPOP, FU_FP)  # int (fp reg bits) -> float
_op("fstoi", K_FPOP, FU_FP)  # float -> int, truncating
_op("fcmp", K_FPOP, FU_FP, sets_cc=True)

# Branches -----------------------------------------------------------------
# ``ba``/``bn`` are unconditional; the scheduler ignores them (section 3.9).
for _name in (
    "ba",
    "bn",
    "be",
    "bne",
    "bl",
    "ble",
    "bg",
    "bge",
    "blu",
    "bleu",
    "bgu",
    "bgeu",
    "bpos",
    "bneg",
    "bvs",
    "bvc",
):
    _op(_name, K_BRANCH, FU_BR, reads_cc=_name not in ("ba", "bn"), cond=_name)

_op("call", K_CALL, FU_INT)  # writes o7; direction fixed, so schedulable
_op("jmpl", K_JMPL, FU_BR)  # indirect branch (ret = jmpl i7+8, g0)
_op("save", K_SAVE, FU_INT)
_op("restore", K_RESTORE, FU_INT)
_op("ta", K_TRAP, FU_INT)  # non-schedulable software trap
_op("nop", K_NOP, FU_INT)

NUM_OPCODES = len(OPCODE_LIST)

UNCONDITIONAL = {"ba", "bn"}

#: conditional branches taken when the condition holds; ``bn`` never.
COND_BRANCHES = {
    name
    for name, opc in OPCODES.items()
    if opc.kind == K_BRANCH and name not in UNCONDITIONAL
}

# Scheduler hand-off classes precomputed at decode time (section 3.9): how
# the Primary Processor forwards a completed instruction to the Scheduler
# Unit without re-deriving the classification per dynamic instance.
SCHED_NORMAL = 0  # build a SchedOp
SCHED_SKIP = 1  # nop / unconditional branch: the Scheduler Unit ignores it
SCHED_NONSCHED = 2  # trap: non-schedulable, flushes the scheduling list

#: memory access width by mnemonic (0 for non-memory instructions)
_MEM_SIZES = {"ld": 4, "st": 4, "ldf": 4, "stf": 4, "ldub": 1, "ldsb": 1, "stb": 1}


class Instr:
    """One decoded static instruction.

    ``rd``/``rs1``/``rs2`` are visible register indices whose namespace
    depends on the opcode kind (integer for ALU/memory address registers,
    fp for FPOP and the data register of ldf/stf).  ``imm`` is the sign- or
    zero-extended immediate; ``use_imm`` selects rs2 vs imm as the second
    operand.  For branches/call, ``imm`` holds the *byte* displacement from
    the instruction's own address (labels are resolved by the assembler).
    """

    __slots__ = (
        "op",
        "rd",
        "rs1",
        "rs2",
        "imm",
        "use_imm",
        "addr",
        # -- decode-time specialization (filled here and by isa.predecode) --
        "exec_fn",
        "alu_fn",
        "cc_fn",
        "cond_fn",
        "fp_fn",
        "mem_size",
        "ld_signed",
        "lu_regs",
        "sched_class",
        "cond_branch",
    )

    def __init__(
        self,
        op: Opcode,
        rd: int = 0,
        rs1: int = 0,
        rs2: int = 0,
        imm: int = 0,
        use_imm: bool = False,
        addr: int = 0,
    ):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        self.use_imm = use_imm
        self.addr = addr
        # Semantics-bound specializations (resolved ALU/cc/cond/fp functions
        # and the full execution closure) are installed by
        # :func:`repro.isa.predecode.specialize`; ``None`` means "use the
        # generic :func:`repro.isa.semantics.step` oracle".
        self.exec_fn = None
        self.alu_fn = None
        self.cc_fn = None
        self.cond_fn = None
        self.fp_fn = None
        # Cheap structural metadata is always available (it only depends on
        # this module), so every engine can consume it even for hand-built
        # instructions that never went through a Program.
        kind = op.kind
        name = op.name
        self.mem_size = _MEM_SIZES.get(name, 0)
        self.ld_signed = name == "ldsb"
        self.cond_branch = kind == K_BRANCH and name not in UNCONDITIONAL
        if kind == K_TRAP:
            self.sched_class = SCHED_NONSCHED
        elif kind == K_NOP or (kind == K_BRANCH and name in UNCONDITIONAL):
            self.sched_class = SCHED_SKIP
        else:
            self.sched_class = SCHED_NORMAL
        # Visible integer registers whose read triggers the load-use
        # interlock (mirrors the Primary Processor's historical
        # ``_reads_reg`` exactly, including its conservative treatment of
        # fp-namespace rs1/rs2; g0 never interlocks).
        if kind in (K_NOP, K_TRAP):
            self.lu_regs = ()
        else:
            regs = []
            if kind != K_BRANCH:
                if rs1:
                    regs.append(rs1)
                if not use_imm and rs2 and rs2 != rs1:
                    regs.append(rs2)
            if kind == K_STORE and rd and rd not in regs:
                regs.append(rd)
            self.lu_regs = tuple(regs)

    # -- classification helpers (used outside hot loops) ---------------------
    @property
    def is_branch(self) -> bool:
        return self.op.kind == K_BRANCH

    @property
    def is_cond_branch(self) -> bool:
        return self.op.kind == K_BRANCH and self.op.name not in UNCONDITIONAL

    @property
    def is_indirect(self) -> bool:
        return self.op.kind == K_JMPL

    @property
    def is_load(self) -> bool:
        return self.op.kind in (K_LOAD, K_FLOAD)

    @property
    def is_store(self) -> bool:
        return self.op.kind in (K_STORE, K_FSTORE)

    @property
    def is_mem(self) -> bool:
        return self.op.kind in (K_LOAD, K_STORE, K_FLOAD, K_FSTORE)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Instr(%s @0x%x)" % (self.text(), self.addr)

    def text(self) -> str:
        """Best-effort assembly rendering (for traces and error messages)."""
        from .registers import reg_name

        op = self.op
        k = op.kind
        if k == K_NOP:
            return "nop"
        if k == K_TRAP:
            return "ta %d" % self.imm
        if k == K_BRANCH:
            return "%s 0x%x" % (op.name, self.addr + self.imm)
        if k == K_CALL:
            return "call 0x%x" % (self.addr + self.imm)
        if k == K_JMPL:
            return "jmpl %s+%d, %s" % (
                reg_name(self.rs1),
                self.imm,
                reg_name(self.rd),
            )
        if k == K_SETHI:
            return "sethi 0x%x, %s" % (self.imm, reg_name(self.rd))
        if k in (K_LOAD, K_FLOAD, K_STORE, K_FSTORE):
            off = (
                "%d" % self.imm if self.use_imm else reg_name(self.rs2)
            )
            mem = "[%s+%s]" % (reg_name(self.rs1), off)
            if k in (K_LOAD, K_FLOAD):
                dst = "f%d" % self.rd if k == K_FLOAD else reg_name(self.rd)
                return "%s %s, %s" % (op.name, mem, dst)
            src = "f%d" % self.rd if k == K_FSTORE else reg_name(self.rd)
            return "%s %s, %s" % (op.name, src, mem)
        if k == K_FPOP:
            return "%s f%d, f%d, f%d" % (op.name, self.rs1, self.rs2, self.rd)
        second = str(self.imm) if self.use_imm else reg_name(self.rs2)
        return "%s %s, %s, %s" % (op.name, reg_name(self.rs1), second, reg_name(self.rd))
