"""Predecoded micro-op interpreter: one specialization pass per static
instruction, closures everywhere after that.

The generic :func:`repro.isa.semantics.step` re-discovers everything about
an instruction on every dynamic execution: it walks an if/elif chain over
the opcode kind, resolves ALU semantics through the string-keyed
:data:`~repro.isa.semantics.ALU_FUNCS` table, re-evaluates branch
conditions by name and re-extends immediates.  With 50M+ instruction
traces (and *test mode* repeating every instruction on the lockstep
reference), that decode work dominates simulation time.

This module performs the classic fast-interpreter fix -- the same
first-time-vs-cached split the DTSVLIW itself exploits: each static
:class:`~repro.isa.instructions.Instr` is compiled **once** into a bound
execution closure with signature ``fn(rf, mem, services, info) -> next_pc``
whose operand indices, sign-extended immediates, ALU function, cc updater
and trap/branch behaviour were resolved at decode time.  The closure is
observationally identical to ``step`` -- same architectural effects, same
:class:`~repro.isa.semantics.StepInfo` fields, same exceptions in the same
order -- which ``tests/test_predecode_differential.py`` enforces against
the generic oracle instruction by instruction.

:func:`predecode_program` specializes every instruction of a
:class:`~repro.asm.program.Program` (called from ``Program.__init__``, so
any program a machine can load is predecoded) and builds the
``addr -> closure`` dispatch table the reference machine's hot loop runs
on.  Setting ``REPRO_GENERIC_STEP=1`` forces every engine back onto the
generic ``step`` oracle path.
"""

from __future__ import annotations

import os
from typing import Callable, Dict

from ..core.errors import MemFault
from .instructions import (
    Instr,
    K_ALU,
    K_BRANCH,
    K_CALL,
    K_FLOAD,
    K_FPOP,
    K_FSTORE,
    K_JMPL,
    K_LOAD,
    K_NOP,
    K_RESTORE,
    K_SAVE,
    K_SETHI,
    K_STORE,
    K_TRAP,
)
from .registers import ICC_C, ICC_N, ICC_V, ICC_Z
from .semantics import (
    ALU_FUNCS,
    MASK32,
    SIGN_BIT,
    do_window_fill,
    do_window_spill,
    fcmp_cc,
    to_signed,
    to_unsigned,
)

#: closure signature shared by every compiled instruction
ExecFn = Callable[..., int]


def generic_step_forced() -> bool:
    """True when ``$REPRO_GENERIC_STEP`` forces the generic ``step`` oracle
    (the escape hatch used to measure baselines and to debug the
    specialized path)."""
    return os.environ.get("REPRO_GENERIC_STEP", "") not in ("", "0")


# ---------------------------------------------------------------------------
# Pre-resolved branch conditions over packed NZVC.  Every function returns a
# real bool: the VLIW Engine compares the result against the recorded
# direction with ``!=``, where an int would falsely mismatch ``True``.
# ---------------------------------------------------------------------------
COND_FUNCS: Dict[str, Callable[[int], bool]] = {
    "ba": lambda icc: True,
    "bn": lambda icc: False,
    "be": lambda icc: bool(icc & ICC_Z),
    "bne": lambda icc: not icc & ICC_Z,
    "bl": lambda icc: bool(icc & ICC_N) != bool(icc & ICC_V),
    "bge": lambda icc: bool(icc & ICC_N) == bool(icc & ICC_V),
    "ble": lambda icc: bool(icc & ICC_Z)
    or bool(icc & ICC_N) != bool(icc & ICC_V),
    "bg": lambda icc: not (
        bool(icc & ICC_Z) or bool(icc & ICC_N) != bool(icc & ICC_V)
    ),
    "blu": lambda icc: bool(icc & ICC_C),
    "bgeu": lambda icc: not icc & ICC_C,
    "bleu": lambda icc: bool(icc & (ICC_C | ICC_Z)),
    "bgu": lambda icc: not icc & (ICC_C | ICC_Z),
    "bpos": lambda icc: not icc & ICC_N,
    "bneg": lambda icc: bool(icc & ICC_N),
    "bvs": lambda icc: bool(icc & ICC_V),
    "bvc": lambda icc: not icc & ICC_V,
}


# ---------------------------------------------------------------------------
# Specialized cc updaters: (a, b, result) -> packed NZVC, one function per
# cc-setting mnemonic instead of string comparisons inside ``alu_cc``.
# ---------------------------------------------------------------------------
def _cc_add(a: int, b: int, res: int) -> int:
    icc = 0
    if res & SIGN_BIT:
        icc |= ICC_N
    if res == 0:
        icc |= ICC_Z
    if (~(a ^ b) & (a ^ res)) & SIGN_BIT:
        icc |= ICC_V
    if (a + b) > MASK32:
        icc |= ICC_C
    return icc


def _cc_sub(a: int, b: int, res: int) -> int:
    icc = 0
    if res & SIGN_BIT:
        icc |= ICC_N
    if res == 0:
        icc |= ICC_Z
    if ((a ^ b) & (a ^ res)) & SIGN_BIT:
        icc |= ICC_V
    if b > a:  # unsigned borrow
        icc |= ICC_C
    return icc


def _cc_logic(a: int, b: int, res: int) -> int:
    icc = 0
    if res & SIGN_BIT:
        icc |= ICC_N
    if res == 0:
        icc |= ICC_Z
    return icc


CC_FUNCS: Dict[str, Callable[[int, int, int], int]] = {
    "addcc": _cc_add,
    "subcc": _cc_sub,
    "andcc": _cc_logic,
    "orcc": _cc_logic,
    "xorcc": _cc_logic,
}


# ---------------------------------------------------------------------------
# Pre-resolved two-operand fp compute (one-operand ops ignore ``b``).
# ---------------------------------------------------------------------------
def _fp_div(a: float, b: float) -> float:
    if b == 0.0:
        raise MemFault(0, "fp division by zero")
    return a / b


FP_FUNCS: Dict[str, Callable[[float, float], float]] = {
    "fadd": lambda a, b: a + b,
    "fsub": lambda a, b: a - b,
    "fmul": lambda a, b: a * b,
    "fdiv": _fp_div,
    "fmov": lambda a, b: a,
    "fneg": lambda a, b: -a,
}


# ---------------------------------------------------------------------------
# Per-kind closure compilers.  Each mirrors the corresponding branch of the
# generic ``step`` exactly: identical StepInfo fields in identical order,
# identical write-before-raise quirks, identical masking.
# ---------------------------------------------------------------------------
def _compile_alu(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    fn = ALU_FUNCS[instr.op.name]
    next_pc = instr.addr + 4
    if instr.op.sets_cc:
        cc_fn = CC_FUNCS[instr.op.name]
        if instr.use_imm:
            b = instr.imm & MASK32

            def run(rf, mem, services, info):
                info.reset()
                info.cwp_before = rf.cwp
                t = rf.tables[rf.cwp]
                a = rf.iregs[t[rs1]]
                res = fn(a, b)
                p = t[rd]
                if p:
                    rf.iregs[p] = res & MASK32
                rf.icc = cc_fn(a, b, res)
                info.value = res
                return next_pc

            return run

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            a = iregs[t[rs1]]
            b = iregs[t[rs2]]
            res = fn(a, b)
            p = t[rd]
            if p:
                iregs[p] = res & MASK32
            rf.icc = cc_fn(a, b, res)
            info.value = res
            return next_pc

        return run
    if instr.use_imm:
        b = instr.imm & MASK32

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            t = rf.tables[rf.cwp]
            res = fn(rf.iregs[t[rs1]], b)
            p = t[rd]
            if p:
                rf.iregs[p] = res & MASK32
            info.value = res
            return next_pc

        return run

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        res = fn(iregs[t[rs1]], iregs[t[rs2]])
        p = t[rd]
        if p:
            iregs[p] = res & MASK32
        info.value = res
        return next_pc

    return run


def _compile_sethi(instr: Instr) -> ExecFn:
    rd = instr.rd
    res = (instr.imm << 12) & MASK32
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        p = rf.tables[rf.cwp][rd]
        if p:
            rf.iregs[p] = res
        info.value = res
        return next_pc

    return run


def _compile_load(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4
    name = instr.op.name
    if name == "ld":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            off = imm if use_imm else iregs[t[rs2]]
            addr = (iregs[t[rs1]] + off) & MASK32
            info.mem_addr = addr
            info.is_load = True
            info.mem_size = 4
            val = mem.read_word(addr)
            p = t[rd]
            if p:
                iregs[p] = val
            info.value = val
            return next_pc

        return run
    signed = name == "ldsb"

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        addr = (iregs[t[rs1]] + off) & MASK32
        info.mem_addr = addr
        info.is_load = True
        info.mem_size = 1
        val = mem.read_byte(addr)
        if signed and val & 0x80:
            val |= 0xFFFFFF00
        p = t[rd]
        if p:
            iregs[p] = val
        info.value = val
        return next_pc

    return run


def _compile_store(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4
    if instr.op.name == "st":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            off = imm if use_imm else iregs[t[rs2]]
            addr = (iregs[t[rs1]] + off) & MASK32
            val = iregs[t[rd]]
            info.mem_addr = addr
            info.is_store = True
            info.mem_size = 4
            info.store_old = mem.read_word(addr)
            mem.write_word(addr, val)
            info.value = val
            return next_pc

        return run

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        addr = (iregs[t[rs1]] + off) & MASK32
        val = iregs[t[rd]]
        info.mem_addr = addr
        info.is_store = True
        info.mem_size = 1
        info.store_old = mem.read_byte(addr)
        mem.write_byte(addr, val & 0xFF)
        info.value = val
        return next_pc

    return run


def _compile_branch(instr: Instr) -> ExecFn:
    taken_target = (instr.addr + instr.imm) & MASK32
    not_taken = instr.addr + 4
    cond = instr.op.cond
    if cond == "ba":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            info.taken = True
            info.target = taken_target
            return taken_target

        return run
    if cond == "bn":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            info.target = not_taken
            return not_taken

        return run
    cond_fn = COND_FUNCS[cond]

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        if cond_fn(rf.icc):
            info.taken = True
            info.target = taken_target
            return taken_target
        info.target = not_taken
        return not_taken

    return run


def _compile_call(instr: Instr) -> ExecFn:
    pc = instr.addr
    target = (instr.addr + instr.imm) & MASK32

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        # o7 <- address of the call itself (never physical g0)
        rf.iregs[rf.tables[rf.cwp][15]] = pc
        info.taken = True
        info.target = target
        info.value = pc
        return target

    return run


def _compile_jmpl(instr: Instr) -> ExecFn:
    rs1, rd = instr.rs1, instr.rd
    imm = instr.imm
    pc = instr.addr

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        target = (rf.iregs[t[rs1]] + imm) & MASK32
        p = t[rd]
        if p:
            rf.iregs[p] = pc
        if target & 3:
            raise MemFault(target, "misaligned jump target")
        info.taken = True
        info.target = target
        return target

    return run


def _compile_save(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm & MASK32, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        a = iregs[t[rs1]]
        b = imm if use_imm else iregs[t[rs2]]
        if rf.cansave == 0:
            do_window_spill(rf, mem)
            info.spilled = True
        else:
            rf.cansave -= 1
            rf.canrestore += 1
        rf.cwp = (rf.cwp - 1) % rf.nwindows
        res = (a + b) & MASK32
        p = rf.tables[rf.cwp][rd]  # rd in the NEW window
        if p:
            iregs[p] = res
        info.value = res
        return next_pc

    return run


def _compile_restore(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm & MASK32, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        a = iregs[t[rs1]]
        b = imm if use_imm else iregs[t[rs2]]
        if rf.canrestore == 0:
            do_window_fill(rf, mem)
            info.spilled = True
        else:
            rf.canrestore -= 1
            rf.cansave += 1
        rf.cwp = (rf.cwp + 1) % rf.nwindows
        res = (a + b) & MASK32
        p = rf.tables[rf.cwp][rd]
        if p:
            iregs[p] = res
        info.value = res
        return next_pc

    return run


def _compile_fpop(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    next_pc = instr.addr + 4
    name = instr.op.name
    if name == "fitos":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            rf.fregs[rd] = float(to_signed(rf.iregs[rf.tables[rf.cwp][rs1]]))
            return next_pc

        return run
    if name == "fstoi":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            p = rf.tables[rf.cwp][rd]
            if p:
                rf.iregs[p] = to_unsigned(int(rf.fregs[rs1]))
            return next_pc

        return run
    if name == "fcmp":

        def run(rf, mem, services, info):
            info.reset()
            info.cwp_before = rf.cwp
            rf.icc = fcmp_cc(rf.fregs[rs1], rf.fregs[rs2])
            return next_pc

        return run
    fp_fn = FP_FUNCS[name]

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        fregs = rf.fregs
        fregs[rd] = fp_fn(fregs[rs1], fregs[rs2])
        return next_pc

    return run


def _compile_fload(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        addr = (iregs[t[rs1]] + off) & MASK32
        info.mem_addr = addr
        info.mem_size = 4
        info.is_load = True
        rf.fregs[rd] = mem.read_float(addr)
        return next_pc

    return run


def _compile_fstore(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        addr = (iregs[t[rs1]] + off) & MASK32
        info.mem_addr = addr
        info.mem_size = 4
        info.is_store = True
        info.store_old = mem.read_word(addr)
        mem.write_float(addr, rf.fregs[rd])
        return next_pc

    return run


def _compile_trap(instr: Instr) -> ExecFn:
    num = instr.imm
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        services.trap(num, rf, mem)
        return next_pc

    return run


def _compile_nop(instr: Instr) -> ExecFn:
    next_pc = instr.addr + 4

    def run(rf, mem, services, info):
        info.reset()
        info.cwp_before = rf.cwp
        return next_pc

    return run


_COMPILERS: Dict[int, Callable[[Instr], ExecFn]] = {
    K_ALU: _compile_alu,
    K_SETHI: _compile_sethi,
    K_LOAD: _compile_load,
    K_STORE: _compile_store,
    K_BRANCH: _compile_branch,
    K_CALL: _compile_call,
    K_JMPL: _compile_jmpl,
    K_SAVE: _compile_save,
    K_RESTORE: _compile_restore,
    K_FPOP: _compile_fpop,
    K_FLOAD: _compile_fload,
    K_FSTORE: _compile_fstore,
    K_TRAP: _compile_trap,
    K_NOP: _compile_nop,
}


# ---------------------------------------------------------------------------
# Lean closures: ``fn(rf, mem, services) -> next_pc`` with **no** StepInfo
# bookkeeping.  The pure reference interpreter never reads StepInfo (it
# compares architectural state only), so its throughput loop skips the
# per-instruction info stores -- and the read-before-write a store performs
# solely to record ``store_old``.  Architectural effects are identical to
# the full closures; the differential suite checks lean and full paths
# against the generic oracle separately.
# ---------------------------------------------------------------------------
def _lean_alu(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    fn = ALU_FUNCS[instr.op.name]
    next_pc = instr.addr + 4
    if instr.op.sets_cc:
        cc_fn = CC_FUNCS[instr.op.name]
        if instr.use_imm:
            b = instr.imm & MASK32

            def run(rf, mem, services):
                t = rf.tables[rf.cwp]
                a = rf.iregs[t[rs1]]
                res = fn(a, b)
                p = t[rd]
                if p:
                    rf.iregs[p] = res & MASK32
                rf.icc = cc_fn(a, b, res)
                return next_pc

            return run

        def run(rf, mem, services):
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            a = iregs[t[rs1]]
            b = iregs[t[rs2]]
            res = fn(a, b)
            p = t[rd]
            if p:
                iregs[p] = res & MASK32
            rf.icc = cc_fn(a, b, res)
            return next_pc

        return run
    name = instr.op.name
    if instr.use_imm:
        b = instr.imm & MASK32
        if name == "add":

            def run(rf, mem, services):
                t = rf.tables[rf.cwp]
                p = t[rd]
                if p:
                    rf.iregs[p] = (rf.iregs[t[rs1]] + b) & MASK32
                return next_pc

            return run
        if name == "sub":

            def run(rf, mem, services):
                t = rf.tables[rf.cwp]
                p = t[rd]
                if p:
                    rf.iregs[p] = (rf.iregs[t[rs1]] - b) & MASK32
                return next_pc

            return run

        def run(rf, mem, services):
            t = rf.tables[rf.cwp]
            res = fn(rf.iregs[t[rs1]], b)
            p = t[rd]
            if p:
                rf.iregs[p] = res & MASK32
            return next_pc

        return run
    if name == "add":

        def run(rf, mem, services):
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            p = t[rd]
            if p:
                iregs[p] = (iregs[t[rs1]] + iregs[t[rs2]]) & MASK32
            return next_pc

        return run

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        res = fn(iregs[t[rs1]], iregs[t[rs2]])
        p = t[rd]
        if p:
            iregs[p] = res & MASK32
        return next_pc

    return run


def _lean_sethi(instr: Instr) -> ExecFn:
    rd = instr.rd
    res = (instr.imm << 12) & MASK32
    next_pc = instr.addr + 4

    def run(rf, mem, services):
        p = rf.tables[rf.cwp][rd]
        if p:
            rf.iregs[p] = res
        return next_pc

    return run


def _lean_load(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4
    if instr.op.name == "ld":

        def run(rf, mem, services):
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            off = imm if use_imm else iregs[t[rs2]]
            val = mem.read_word((iregs[t[rs1]] + off) & MASK32)
            p = t[rd]
            if p:
                iregs[p] = val
            return next_pc

        return run
    signed = instr.ld_signed

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        val = mem.read_byte((iregs[t[rs1]] + off) & MASK32)
        if signed and val & 0x80:
            val |= 0xFFFFFF00
        p = t[rd]
        if p:
            iregs[p] = val
        return next_pc

    return run


def _lean_store(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4
    if instr.op.name == "st":

        def run(rf, mem, services):
            t = rf.tables[rf.cwp]
            iregs = rf.iregs
            off = imm if use_imm else iregs[t[rs2]]
            mem.write_word((iregs[t[rs1]] + off) & MASK32, iregs[t[rd]])
            return next_pc

        return run

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        mem.write_byte((iregs[t[rs1]] + off) & MASK32, iregs[t[rd]] & 0xFF)
        return next_pc

    return run


def _lean_branch(instr: Instr) -> ExecFn:
    taken_target = (instr.addr + instr.imm) & MASK32
    not_taken = instr.addr + 4
    cond = instr.op.cond
    if cond == "ba":
        return lambda rf, mem, services: taken_target
    if cond == "bn":
        return lambda rf, mem, services: not_taken
    cond_fn = COND_FUNCS[cond]

    def run(rf, mem, services):
        return taken_target if cond_fn(rf.icc) else not_taken

    return run


def _lean_call(instr: Instr) -> ExecFn:
    pc = instr.addr
    target = (instr.addr + instr.imm) & MASK32

    def run(rf, mem, services):
        rf.iregs[rf.tables[rf.cwp][15]] = pc
        return target

    return run


def _lean_jmpl(instr: Instr) -> ExecFn:
    rs1, rd = instr.rs1, instr.rd
    imm = instr.imm
    pc = instr.addr

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        target = (rf.iregs[t[rs1]] + imm) & MASK32
        p = t[rd]
        if p:
            rf.iregs[p] = pc
        if target & 3:
            raise MemFault(target, "misaligned jump target")
        return target

    return run


def _lean_save(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm & MASK32, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        a = iregs[t[rs1]]
        b = imm if use_imm else iregs[t[rs2]]
        if rf.cansave == 0:
            do_window_spill(rf, mem)
        else:
            rf.cansave -= 1
            rf.canrestore += 1
        rf.cwp = (rf.cwp - 1) % rf.nwindows
        p = rf.tables[rf.cwp][rd]  # rd in the NEW window
        if p:
            iregs[p] = (a + b) & MASK32
        return next_pc

    return run


def _lean_restore(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm & MASK32, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        a = iregs[t[rs1]]
        b = imm if use_imm else iregs[t[rs2]]
        if rf.canrestore == 0:
            do_window_fill(rf, mem)
        else:
            rf.canrestore -= 1
            rf.cansave += 1
        rf.cwp = (rf.cwp + 1) % rf.nwindows
        p = rf.tables[rf.cwp][rd]
        if p:
            iregs[p] = (a + b) & MASK32
        return next_pc

    return run


def _lean_fpop(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    next_pc = instr.addr + 4
    name = instr.op.name
    if name == "fitos":

        def run(rf, mem, services):
            rf.fregs[rd] = float(to_signed(rf.iregs[rf.tables[rf.cwp][rs1]]))
            return next_pc

        return run
    if name == "fstoi":

        def run(rf, mem, services):
            p = rf.tables[rf.cwp][rd]
            if p:
                rf.iregs[p] = to_unsigned(int(rf.fregs[rs1]))
            return next_pc

        return run
    if name == "fcmp":

        def run(rf, mem, services):
            rf.icc = fcmp_cc(rf.fregs[rs1], rf.fregs[rs2])
            return next_pc

        return run
    fp_fn = FP_FUNCS[name]

    def run(rf, mem, services):
        fregs = rf.fregs
        fregs[rd] = fp_fn(fregs[rs1], fregs[rs2])
        return next_pc

    return run


def _lean_fload(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        rf.fregs[rd] = mem.read_float((iregs[t[rs1]] + off) & MASK32)
        return next_pc

    return run


def _lean_fstore(instr: Instr) -> ExecFn:
    rs1, rs2, rd = instr.rs1, instr.rs2, instr.rd
    imm, use_imm = instr.imm, instr.use_imm
    next_pc = instr.addr + 4

    def run(rf, mem, services):
        t = rf.tables[rf.cwp]
        iregs = rf.iregs
        off = imm if use_imm else iregs[t[rs2]]
        mem.write_float((iregs[t[rs1]] + off) & MASK32, rf.fregs[rd])
        return next_pc

    return run


def _lean_trap(instr: Instr) -> ExecFn:
    num = instr.imm
    next_pc = instr.addr + 4

    def run(rf, mem, services):
        services.trap(num, rf, mem)
        return next_pc

    return run


def _lean_nop(instr: Instr) -> ExecFn:
    next_pc = instr.addr + 4
    return lambda rf, mem, services: next_pc


_LEAN_COMPILERS: Dict[int, Callable[[Instr], ExecFn]] = {
    K_ALU: _lean_alu,
    K_SETHI: _lean_sethi,
    K_LOAD: _lean_load,
    K_STORE: _lean_store,
    K_BRANCH: _lean_branch,
    K_CALL: _lean_call,
    K_JMPL: _lean_jmpl,
    K_SAVE: _lean_save,
    K_RESTORE: _lean_restore,
    K_FPOP: _lean_fpop,
    K_FLOAD: _lean_fload,
    K_FSTORE: _lean_fstore,
    K_TRAP: _lean_trap,
    K_NOP: _lean_nop,
}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------
def specialize(instr: Instr) -> Instr:
    """Resolve every dynamic lookup of ``instr`` once, in place.

    Installs the full execution closure (``exec_fn``) plus the pre-resolved
    compute functions the VLIW Engine replays scheduled operations with
    (``alu_fn``/``cc_fn``/``cond_fn``/``fp_fn``).
    """
    op = instr.op
    kind = op.kind
    if kind in (K_ALU, K_SAVE, K_RESTORE):
        instr.alu_fn = ALU_FUNCS[op.name]
        if op.sets_cc:
            instr.cc_fn = CC_FUNCS[op.name]
    elif kind == K_BRANCH:
        instr.cond_fn = COND_FUNCS[op.cond]
    elif kind == K_FPOP:
        instr.fp_fn = FP_FUNCS.get(op.name)
    instr.exec_fn = _COMPILERS[kind](instr)
    return instr


def predecode_program(program) -> Dict[int, ExecFn]:
    """Specialize every decoded instruction of ``program`` and build its
    dispatch tables: ``program.exec_table`` (full closures, StepInfo kept
    accurate for the timing engines) and ``program.run_table`` (lean
    closures for the reference interpreter's throughput loop)."""
    table: Dict[int, ExecFn] = {}
    lean: Dict[int, ExecFn] = {}
    for addr, instr in program.instrs.items():
        specialize(instr)
        table[addr] = instr.exec_fn
        lean[addr] = _LEAN_COMPILERS[instr.op.kind](instr)
    program.exec_table = table
    program.run_table = lean
    return table
