"""Block-compiled execution: superblocks fused into ``exec()``-compiled
Python, cached on disk keyed by program content + code version.

:mod:`repro.isa.predecode` pays the decode cost once per static
instruction; this module applies the same first-time-vs-cached split the
DTSVLIW itself exploits one level up, per instruction *sequence*.  Basic
blocks (extended across unconditional control transfers into superblocks)
are discovered on the predecoded :class:`~repro.asm.program.Program` and
compiled into one specialized Python function per block: operand indices,
immediates, ALU/cc/branch semantics are inlined as expressions, the
``rf.iregs``/window-table/memory-method lookups are hoisted to block
entry, and the per-instruction dispatch, bounds churn and (where the
consumer permits) StepInfo bookkeeping disappear from the inner loop.
Straight-line code then runs without returning to the generic dispatch
loop until the next block boundary.

Three codegen modes share the emitters, differing only in what each
instruction records:

* ``lean`` -- architectural effects only; consumed by
  :meth:`repro.core.reference.ReferenceMachine.run`.
* ``capture`` -- lean semantics plus the per-instruction trace record
  (flags/aux columns) of :mod:`repro.trace.capture`, with consecutive
  zero records batched into single ``extend`` calls.
* ``scalar`` -- lean semantics plus the scalar baseline's exact Table 1
  timing (icache/dcache in live access order, static in-block load-use
  bubbles, not-taken-branch and window-spill penalties), flushed into
  ``Stats`` at block exits; consumed by
  :class:`repro.baselines.scalar.ScalarMachine` live runs.

Exactness contract: every mode is observationally identical to its
per-instruction path (and transitively to the generic ``step`` oracle),
including exception behaviour -- a faulting instruction contributes no
committed count, no trace record and no cycle charge, while charges made
before the fault (icache stalls, load-use bubbles) persist, exactly as in
:meth:`repro.primary.pipeline.PrimaryProcessor.step`.  The four-way
differential suite (``tests/test_predecode_differential.py``) enforces
this.  ``REPRO_NO_BLOCK_COMPILE=1`` disables block dispatch everywhere;
``REPRO_GENERIC_STEP=1`` (the PR 2 escape hatch) implies it.

The **block protocol**: a block function receives a 3-slot list ``ctr``
and on every exit stores the number of instructions it committed in
``ctr[0]`` (the raising instruction is *excluded*, even for the exit
trap -- runners keep their usual ``except ProgramExit: n += 1``
accounting), the scalar mode's outgoing load-use register in ``ctr[1]``,
and on an exception the faulting instruction's address in ``ctr[2]``
(so dispatchers can restore an exact ``pc``).  Known imprecision: an
*asynchronous* exception (KeyboardInterrupt) delivered inside a block
with no fault-capable instructions can under-count ``instret`` for that
partial block; architectural state is never affected.

Compiled modules are cached two ways: a process-global memo keyed by the
full content key, and marshal'd code objects on disk in the
:class:`~repro.trace.store.BlockCacheStore` -- warm runs skip code
generation and ``compile()`` entirely.  The key covers the program
fingerprint, mode, timing signature, the result-cache source fingerprint
(:func:`repro.harness.resultcache.code_version`), the interpreter
bytecode magic and a local codegen version, so stale blocks can never
survive a source change or an interpreter upgrade.
"""

from __future__ import annotations

import importlib.util
import os
from hashlib import sha256
from typing import Dict, List, Optional, Set, Tuple

from .instructions import (
    K_ALU,
    K_BRANCH,
    K_CALL,
    K_FLOAD,
    K_FPOP,
    K_FSTORE,
    K_JMPL,
    K_LOAD,
    K_NOP,
    K_RESTORE,
    K_SAVE,
    K_SETHI,
    K_STORE,
    K_TRAP,
    SCHED_NONSCHED,
    SCHED_SKIP,
)
from .predecode import FP_FUNCS, generic_step_forced
from .registers import MEM_BASE
from .semantics import (
    ALU_FUNCS,
    MASK32,
    do_window_fill,
    do_window_spill,
    fcmp_cc,
)
from ..core.errors import MemFault

#: codegen modes (baked into the cache key)
MODE_LEAN = "lean"
MODE_CAPTURE = "capture"
MODE_SCALAR = "scalar"
#: primary-mode scheduling: replay-driven SchedOp synthesis + placement
#: (see :func:`compile_pm_blocks`; emitted by :class:`_PMEmitter`)
MODE_PM = "pm"

#: maximum instructions emitted per superblock (side exits commit fewer)
MAX_BLOCK = 64
#: maximum unconditional-transfer splices per superblock (bounds the tail
#: duplication a long ``ba``/``call`` chain could otherwise cause)
SPLICE_BUDGET = 16

#: bump when generated code changes shape (part of the cache key)
CODEGEN_VERSION = "bc1"


def block_compile_disabled() -> bool:
    """True when ``$REPRO_NO_BLOCK_COMPILE`` (or the stronger
    ``$REPRO_GENERIC_STEP``) turns block dispatch off everywhere."""
    if os.environ.get("REPRO_NO_BLOCK_COMPILE", "") not in ("", "0"):
        return True
    return generic_step_forced()


def pm_compile_disabled() -> bool:
    """True when compiled primary-mode scheduling is off:
    ``$REPRO_NO_PRIMARY_COMPILE`` or the broader block-compile hatches."""
    if os.environ.get("REPRO_NO_PRIMARY_COMPILE", "") not in ("", "0"):
        return True
    return block_compile_disabled()


class BlockCompileStats:
    """Process-global block-compilation counters (cross-validated against
    the ``bc_*`` probe events in ``tests/test_obs_counters.py``)."""

    __slots__ = ("compiled", "cache_hits", "cache_misses", "fallback_dispatches")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiled = 0  # blocks freshly code-generated
        self.cache_hits = 0  # disk-store resolutions that hit
        self.cache_misses = 0  # disk-store resolutions that missed
        self.fallback_dispatches = 0  # per-instruction closure dispatches

    def snapshot(self) -> Dict[str, int]:
        return {
            "compiled": self.compiled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "fallback_dispatches": self.fallback_dispatches,
        }


GLOBAL_STATS = BlockCompileStats()


class PMCompileStats:
    """Process-global compiled-primary-mode counters (the ``pm_*`` probe
    events mirror ``compiled``/``dispatches``/``fallback_dispatches``;
    ``tests/test_obs_counters.py`` cross-validates them)."""

    __slots__ = ("compiled", "cache_hits", "cache_misses", "dispatches", "fallback_dispatches")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.compiled = 0  # superblocks freshly code-generated
        self.cache_hits = 0  # disk-store resolutions that hit
        self.cache_misses = 0  # disk-store resolutions that missed
        self.dispatches = 0  # compiled-function calls that committed >= 1
        self.fallback_dispatches = 0  # interpreted steps at non-leader pcs

    def snapshot(self) -> Dict[str, int]:
        return {
            "compiled": self.compiled,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "dispatches": self.dispatches,
            "fallback_dispatches": self.fallback_dispatches,
        }


PM_STATS = PMCompileStats()


# ---------------------------------------------------------------------------
# Expression fragments shared by the emitters.
# ---------------------------------------------------------------------------
_M = str(MASK32)  # "4294967295"
_S = "2147483648"  # sign bit

#: ALU ops inlined as expressions ({a}/{b} are operand expressions; the
#: results are already 32-bit masked, matching the lean closures).
_INLINE_ALU = {
    "add": "({a} + {b}) & " + _M,
    "addcc": "({a} + {b}) & " + _M,
    "sub": "({a} - {b}) & " + _M,
    "subcc": "({a} - {b}) & " + _M,
    "and": "{a} & {b}",
    "andcc": "{a} & {b}",
    "or": "{a} | {b}",
    "orcc": "{a} | {b}",
    "xor": "{a} ^ {b}",
    "xorcc": "{a} ^ {b}",
    "andn": "{a} & (~{b} & " + _M + ")",
    "orn": "{a} | (~{b} & " + _M + ")",
    "xnor": "(~({a} ^ {b})) & " + _M,
    "sll": "({a} << ({b} & 31)) & " + _M,
    "srl": "{a} >> ({b} & 31)",
}

#: multicycle/compound ALU ops dispatched through injected helpers
_HELPER_ALU = {
    "sra": "_sra",
    "smul": "_smul",
    "umul": "_umul",
    "sdiv": "_sdiv",
    "udiv": "_udiv",
}

#: helper ALU ops that can raise (division by zero)
_RAISING_ALU = {"sdiv", "udiv"}

#: branch conditions over packed NZVC ({x} is the icc expression); all
#: truthy-int equivalents of :data:`repro.isa.predecode.COND_FUNCS`.
_COND_EXPR = {
    "be": "{x} & 4",
    "bne": "not {x} & 4",
    "bl": "(({x} >> 3) ^ ({x} >> 1)) & 1",
    "bge": "not (({x} >> 3) ^ ({x} >> 1)) & 1",
    "ble": "{x} & 4 or (({x} >> 3) ^ ({x} >> 1)) & 1",
    "bg": "not ({x} & 4 or (({x} >> 3) ^ ({x} >> 1)) & 1)",
    "blu": "{x} & 1",
    "bgeu": "not {x} & 1",
    "bleu": "{x} & 5",
    "bgu": "not {x} & 5",
    "bpos": "not {x} & 8",
    "bneg": "{x} & 8",
    "bvs": "{x} & 2",
    "bvc": "not {x} & 2",
}

#: conditions whose expression reads the icc more than once (hoisted to a
#: local ``x`` so ``rf.icc`` is loaded a single time)
_COND_MULTI = {"bl", "bge", "ble", "bg"}

#: memory method hoists: local name -> attribute
_MEM_HOISTS = (
    ("mrw", "read_word"),
    ("mww", "write_word"),
    ("mrb", "read_byte"),
    ("mwb", "write_byte"),
    ("mrf", "read_float"),
    ("mwf", "write_float"),
)


def _pm_consts(spec, instrs, rf, cwp0):
    """Per-entry-window constants for one compiled primary-mode block.

    ``spec`` is the block's static tuple of ``(addr, dw_before, dw_after)``
    window deltas for its schedulable instructions; the result caches one
    :func:`~repro.scheduler.ops.build_sched_proto` prototype per entry
    (``(proto, static_reads)`` pairs for loads, bare protos otherwise),
    keyed by the dynamic entry ``cwp`` the generated function saw.
    """
    from ..scheduler.ops import build_sched_proto  # lazy: avoids a cycle

    nw = rf.nwindows
    out = []
    for addr, db, da in spec:
        proto, rtup = build_sched_proto(
            instrs[addr], rf, (cwp0 + db) % nw, (cwp0 + da) % nw
        )
        out.append(proto if rtup is None else (proto, rtup))
    return tuple(out)


def _exec_globals() -> Dict[str, object]:
    """Globals for a compiled block module.  Every helper is always
    injected (a marshal-loaded module must execute in a fresh process
    with no record of which helpers its source happens to use)."""
    from ..obs.probe import EV_CACHE_STALL, EV_VCACHE_PROBE, EV_WINDOW_SPILL

    return {
        "_sra": ALU_FUNCS["sra"],
        "_smul": ALU_FUNCS["smul"],
        "_umul": ALU_FUNCS["umul"],
        "_sdiv": ALU_FUNCS["sdiv"],
        "_udiv": ALU_FUNCS["udiv"],
        "_fdiv": FP_FUNCS["fdiv"],
        "_fcmp": fcmp_cc,
        "_spill": do_window_spill,
        "_fill": do_window_fill,
        "_MF": MemFault,
        "_mkpm": _pm_consts,
        "_I": None,  # program.instrs, bound by compile_pm_blocks
        "_EVP": EV_VCACHE_PROBE,
        "_EVS": EV_CACHE_STALL,
        "_EVW": EV_WINDOW_SPILL,
    }


# ---------------------------------------------------------------------------
# Leader discovery.
# ---------------------------------------------------------------------------
def discover_leaders(program) -> List[int]:
    """Superblock entry points: the program entry, every static branch or
    call target, and every fallthrough address after a control transfer
    (branch/call/jmpl) -- restricted to decoded addresses."""
    instrs = program.instrs
    leaders: Set[int] = set()
    if program.entry in instrs:
        leaders.add(program.entry)
    for addr, ins in instrs.items():
        kind = ins.op.kind
        if kind in (K_BRANCH, K_CALL):
            target = (addr + ins.imm) & MASK32
            if target in instrs:
                leaders.add(target)
            if addr + 4 in instrs:
                leaders.add(addr + 4)
        elif kind == K_JMPL:
            if addr + 4 in instrs:
                leaders.add(addr + 4)
    return sorted(leaders)


# ---------------------------------------------------------------------------
# The emitter: one superblock -> one specialized function's source.
# ---------------------------------------------------------------------------
class _Emitter:
    def __init__(self, program, mode: str, sig: Tuple[int, ...]):
        self.instrs = program.instrs
        self.mode = mode
        if mode == MODE_SCALAR:
            self.lu, self.bnt, self.sp = sig
        self.zsizes: Set[int] = set()  # capture zero-batch tuple sizes

    # -- per-block state -----------------------------------------------------
    def _reset(self) -> None:
        self.lines: List[str] = []
        self.depth = 0
        self.can_raise = False
        self.pending = 0  # capture: unflushed zero records

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    # -- operand expressions -------------------------------------------------
    @staticmethod
    def _iread(r: int) -> str:
        return "0" if r == 0 else "iregs[t[%d]]" % r

    def _off_expr(self, ins) -> str:
        """Memory offset: raw signed immediate or the rs2 register."""
        return str(ins.imm) if ins.use_imm else self._iread(ins.rs2)

    def _b_expr(self, ins) -> str:
        """Second ALU operand: masked immediate or the rs2 register."""
        return str(ins.imm & MASK32) if ins.use_imm else self._iread(ins.rs2)

    # -- mode plumbing -------------------------------------------------------
    def _flush_zeros(self) -> None:
        n = self.pending
        if not n:
            return
        self.pending = 0
        if n == 1:
            self.emit("fap(0)")
            self.emit("aap(0)")
        else:
            self.zsizes.add(n)
            self.emit("fex(_Z%d)" % n)
            self.emit("aex(_Z%d)" % n)

    def _mark_raise(self, k: int, addr: int) -> None:
        """Bookkeeping immediately before a fault-capable operation: the
        capture column flush (appended records must equal committed
        count if the op raises) and the ctr-protocol checkpoints."""
        self.can_raise = True
        mode = self.mode
        if mode == MODE_CAPTURE:
            self._flush_zeros()
        if mode == MODE_SCALAR:
            self.emit("_a = %d" % addr)
        else:
            self.emit("_n = %d" % k)
            self.emit("_a = %d" % addr)

    def _record_mem(self, addr_var: str) -> None:
        if self.mode == MODE_CAPTURE:
            self.emit("fap(0)")
            self.emit("aap(%s)" % addr_var)

    def _record_taken(self, target_expr) -> None:
        if self.mode == MODE_CAPTURE:
            self._flush_zeros()
            self.emit("fap(1)")
            self.emit("aap(%s)" % target_expr)

    def _record_quiet(self) -> None:
        if self.mode == MODE_CAPTURE:
            self.pending += 1

    # -- scalar timing -------------------------------------------------------
    def _scalar_open(self, ins, k: int, prev_load_rd) -> None:
        """Per-instruction cycle accounting that precedes execution: the
        icache access and the load-use bubble (static within the block,
        dynamic off the incoming ``llr`` for the first instruction)."""
        self.emit("p = ic(%d)" % ins.addr)
        self.emit("if p:")
        self.emit("    ista += p")
        base = 1
        if self.lu and k > 0 and prev_load_rd is not None and (
            prev_load_rd in ins.lu_regs
        ):
            base += self.lu
            self.emit("c = %d + p" % base)
            self.emit("lub += %d" % self.lu)
            return
        self.emit("c = %d + p" % base)
        if self.lu and k == 0 and ins.lu_regs:
            # llr is None, 0 or a visible rd; lu_regs never contains 0
            self.emit("if llr in %r:" % (ins.lu_regs,))
            self.emit("    c += %d" % self.lu)
            self.emit("    lub += %d" % self.lu)

    def _scalar_dcache(self) -> None:
        self.emit("p = dc(ad)")
        self.emit("if p:")
        self.emit("    dsta += p")
        self.emit("    c += p")

    def _scalar_close(self) -> None:
        self.emit("cyc += c")
        self.emit("k += 1")

    # -- per-kind emission ---------------------------------------------------
    def emit_instr(self, ins, k: int, prev_load_rd):
        """Emit one instruction; returns the scan action: ``None`` to fall
        through, ``"stop"`` when an exit was emitted (jmpl), or the target
        address of an unconditional transfer to splice or exit to."""
        mode = self.mode
        scalar = mode == MODE_SCALAR
        kind = ins.op.kind
        if scalar:
            self._scalar_open(ins, k, prev_load_rd)

        if kind == K_ALU:
            self._emit_alu(ins, k)
            self._record_quiet()
        elif kind == K_SETHI:
            if ins.rd:
                self.emit("iregs[t[%d]] = %d" % (ins.rd, (ins.imm << 12) & MASK32))
            self._record_quiet()
        elif kind == K_LOAD:
            self._emit_load(ins, k)
        elif kind == K_STORE:
            self._emit_store(ins, k)
        elif kind == K_FLOAD:
            self._mark_raise(k, ins.addr)
            self._emit_mem_addr(ins)
            self.emit("fr[%d] = mrf(ad)" % ins.rd)
            self._record_mem("ad")
            if scalar:
                self._scalar_dcache()
        elif kind == K_FSTORE:
            self._mark_raise(k, ins.addr)
            self._emit_mem_addr(ins)
            self.emit("mwf(ad, fr[%d])" % ins.rd)
            self._record_mem("ad")
            if scalar:
                self._scalar_dcache()
        elif kind == K_BRANCH:
            act = self._emit_branch(ins, k)
            if act is not None:
                if scalar:
                    self._scalar_close()
                return act  # ba: redirect the scan
        elif kind == K_CALL:
            target = (ins.addr + ins.imm) & MASK32
            self.emit("iregs[t[15]] = %d" % ins.addr)  # o7 <- call address
            self._record_taken(target)
            if scalar:
                self._scalar_close()
            return target
        elif kind == K_JMPL:
            self._emit_jmpl(ins, k)
            return "stop"
        elif kind == K_SAVE:
            self._emit_window(ins, k, save=True)
            self._record_quiet()
        elif kind == K_RESTORE:
            self._emit_window(ins, k, save=False)
            self._record_quiet()
        elif kind == K_FPOP:
            self._emit_fpop(ins, k)
            self._record_quiet()
        elif kind == K_TRAP:
            self._mark_raise(k, ins.addr)
            self.emit("services.trap(%d, rf, mem)" % ins.imm)
            self._record_quiet()
        elif kind == K_NOP:
            self._record_quiet()

        if scalar:
            self._scalar_close()
        return None

    def _emit_alu(self, ins, k: int) -> None:
        name = ins.op.name
        a = self._iread(ins.rs1)
        b = self._b_expr(ins)
        if ins.op.sets_cc:
            # capture a and (register) b in locals: the cc expression
            # reads the operands again after the result is computed
            self.emit("_v = %s" % a)
            if ins.use_imm:
                bx = b
            else:
                self.emit("_w = %s" % b)
                bx = "_w"
            nz = "(8 if res & " + _S + " else 0) | (4 if res == 0 else 0)"
            if name == "addcc":
                self.emit("_x = _v + %s" % bx)
                self.emit("res = _x & " + _M)
                cc = (
                    nz
                    + " | (2 if (~(_v ^ %s) & (_v ^ res)) & " % bx
                    + _S
                    + " else 0) | (1 if _x > "
                    + _M
                    + " else 0)"
                )
            elif name == "subcc":
                self.emit("res = (_v - %s) & " % bx + _M)
                cc = (
                    nz
                    + " | (2 if ((_v ^ %s) & (_v ^ res)) & " % bx
                    + _S
                    + " else 0) | (1 if %s > _v else 0)" % bx
                )
            else:  # andcc/orcc/xorcc: V = C = 0
                self.emit(
                    "res = " + _INLINE_ALU[name].format(a="_v", b=bx)
                )
                cc = nz
            if ins.rd:
                self.emit("iregs[t[%d]] = res" % ins.rd)
            self.emit("rf.icc = " + cc)
            return
        helper = _HELPER_ALU.get(name)
        if helper is not None:
            if name in _RAISING_ALU:
                self._mark_raise(k, ins.addr)
                if ins.rd:
                    self.emit("iregs[t[%d]] = %s(%s, %s)" % (ins.rd, helper, a, b))
                else:
                    self.emit("%s(%s, %s)" % (helper, a, b))  # div-by-zero fault
            elif ins.rd:
                self.emit("iregs[t[%d]] = %s(%s, %s)" % (ins.rd, helper, a, b))
            return
        if ins.rd:
            self.emit(
                "iregs[t[%d]] = " % ins.rd + _INLINE_ALU[name].format(a=a, b=b)
            )

    def _emit_mem_addr(self, ins) -> None:
        self.emit(
            "ad = (%s + %s) & " % (self._iread(ins.rs1), self._off_expr(ins)) + _M
        )

    def _emit_load(self, ins, k: int) -> None:
        self._mark_raise(k, ins.addr)
        self._emit_mem_addr(ins)
        word = ins.op.name == "ld"
        read = "mrw(ad)" if word else "mrb(ad)"
        if ins.rd:
            self.emit("v = " + read)
            if ins.ld_signed:
                self.emit("if v & 128:")
                self.emit("    v |= 4294967040")
            self.emit("iregs[t[%d]] = v" % ins.rd)
        else:
            self.emit(read)  # faults still fire; g0 stays zero
        self._record_mem("ad")
        if self.mode == MODE_SCALAR:
            self._scalar_dcache()

    def _emit_store(self, ins, k: int) -> None:
        self._mark_raise(k, ins.addr)
        self._emit_mem_addr(ins)
        val = self._iread(ins.rd)
        if ins.op.name == "st":
            self.emit("mww(ad, %s)" % val)
        else:
            self.emit("mwb(ad, %s)" % ("0" if ins.rd == 0 else val + " & 255"))
        self._record_mem("ad")
        if self.mode == MODE_SCALAR:
            self._scalar_dcache()

    def _emit_branch(self, ins, k: int):
        """Conditional branches side-exit on taken; ``ba`` redirects the
        scan (the returned target); ``bn`` is a plain fallthrough."""
        cond = ins.op.cond
        scalar = self.mode == MODE_SCALAR
        if cond == "ba":
            target = (ins.addr + ins.imm) & MASK32
            self._record_taken(target)
            return target
        if cond == "bn":
            self._record_quiet()
            return None
        taken = (ins.addr + ins.imm) & MASK32
        if self.mode == MODE_CAPTURE:
            # flush unconditionally: the pending zeros belong to already
            # committed instructions on both sides of the branch
            self._flush_zeros()
        if cond in _COND_MULTI:
            self.emit("x = rf.icc")
            test = _COND_EXPR[cond].format(x="x")
        else:
            test = _COND_EXPR[cond].format(x="rf.icc")
        self.emit("if %s:" % test)
        self.depth += 1
        if scalar:
            self._scalar_close()
            self.emit("npc = %d" % taken)
            self.emit("llo = None")
            self.emit("break")
        else:
            if self.mode == MODE_CAPTURE:
                self.emit("fap(1)")
                self.emit("aap(%d)" % taken)
            self.emit("ctr[0] = %d" % (k + 1))
            self.emit("return %d" % taken)
        self.depth -= 1
        if scalar and self.bnt:
            self.emit("c += %d" % self.bnt)
            self.emit("bbub += %d" % self.bnt)
        self._record_quiet()
        return None

    def _emit_jmpl(self, ins, k: int) -> None:
        self._mark_raise(k, ins.addr)
        self.emit(
            "tg = (%s + %d) & " % (self._iread(ins.rs1), ins.imm) + _M
        )
        if ins.rd:  # link write happens before the misalignment check
            self.emit("iregs[t[%d]] = %d" % (ins.rd, ins.addr))
        self.emit("if tg & 3:")
        self.emit('    raise _MF(tg, "misaligned jump target")')
        self._record_taken("tg")
        if self.mode == MODE_SCALAR:
            self._scalar_close()
            self.emit("npc = tg")
            self.emit("llo = None")
            self.emit("break")
        else:
            self.emit("ctr[0] = %d" % (k + 1))
            self.emit("return tg")

    def _emit_window(self, ins, k: int, save: bool) -> None:
        self._mark_raise(k, ins.addr)  # spill/fill can fault
        self.emit("sa = %s" % self._iread(ins.rs1))
        self.emit(
            "sb = %s"
            % (str(ins.imm & MASK32) if ins.use_imm else self._iread(ins.rs2))
        )
        if save:
            self.emit("if rf.cansave == 0:")
            self.emit("    _spill(rf, mem)")
            if self.mode == MODE_SCALAR and self.sp:
                self.emit("    c += %d" % self.sp)
                self.emit("    spc += %d" % self.sp)
            self.emit("else:")
            self.emit("    rf.cansave -= 1")
            self.emit("    rf.canrestore += 1")
            self.emit("rf.cwp = (rf.cwp - 1) % rf.nwindows")
        else:
            self.emit("if rf.canrestore == 0:")
            self.emit("    _fill(rf, mem)")
            if self.mode == MODE_SCALAR and self.sp:
                self.emit("    c += %d" % self.sp)
                self.emit("    spc += %d" % self.sp)
            self.emit("else:")
            self.emit("    rf.canrestore -= 1")
            self.emit("    rf.cansave += 1")
            self.emit("rf.cwp = (rf.cwp + 1) % rf.nwindows")
        self.emit("t = rf.tables[rf.cwp]")
        if ins.rd:  # rd resolves in the NEW window
            self.emit("iregs[t[%d]] = (sa + sb) & " % ins.rd + _M)

    def _emit_fpop(self, ins, k: int) -> None:
        name = ins.op.name
        if name == "fitos":
            if ins.rs1 == 0:
                self.emit("fr[%d] = 0.0" % ins.rd)
            else:
                self.emit("_v = %s" % self._iread(ins.rs1))
                self.emit(
                    "fr[%d] = float(_v - 4294967296 if _v & " % ins.rd
                    + _S
                    + " else _v)"
                )
        elif name == "fstoi":
            if ins.rd:  # int(inf/nan) raises; lean skips the compute on g0
                self._mark_raise(k, ins.addr)
                self.emit(
                    "iregs[t[%d]] = int(fr[%d]) & " % (ins.rd, ins.rs1) + _M
                )
        elif name == "fcmp":
            self.emit("rf.icc = _fcmp(fr[%d], fr[%d])" % (ins.rs1, ins.rs2))
        elif name == "fdiv":
            self._mark_raise(k, ins.addr)
            self.emit(
                "fr[%d] = _fdiv(fr[%d], fr[%d])" % (ins.rd, ins.rs1, ins.rs2)
            )
        elif name == "fmov":
            self.emit("fr[%d] = fr[%d]" % (ins.rd, ins.rs1))
        elif name == "fneg":
            self.emit("fr[%d] = -fr[%d]" % (ins.rd, ins.rs1))
        else:
            op = {"fadd": "+", "fsub": "-", "fmul": "*"}[name]
            self.emit(
                "fr[%d] = fr[%d] %s fr[%d]" % (ins.rd, ins.rs1, op, ins.rs2)
            )

    def _emit_exit(self, addr: int, k: int, prev_load_rd) -> None:
        """Block-end exit (fallthrough into the next block, splice budget,
        loop closure or an undecoded address -- the dispatcher resolves
        ``addr`` and faults exactly like the per-instruction loop)."""
        if self.mode == MODE_SCALAR:
            self.emit("npc = %d" % addr)
            self.emit(
                "llo = %s" % ("None" if prev_load_rd is None else prev_load_rd)
            )
            self.emit("break")
            return
        if self.mode == MODE_CAPTURE:
            self._flush_zeros()
        self.emit("ctr[0] = %d" % k)
        self.emit("return %d" % addr)

    # -- block scan ----------------------------------------------------------
    def emit_block(self, leader: int) -> Tuple[str, int]:
        """Compile the superblock at ``leader``; returns its function
        source and the maximum number of instructions it can commit."""
        self._reset()
        instrs = self.instrs
        a = leader
        seen: Set[int] = set()
        k = 0
        prev_rd = None
        splices = 0
        while True:
            if a not in instrs or a in seen or k >= MAX_BLOCK:
                self._emit_exit(a, k, prev_rd)
                break
            ins = instrs[a]
            seen.add(a)
            act = self.emit_instr(ins, k, prev_rd)
            k += 1
            prev_rd = ins.rd if ins.op.kind == K_LOAD else None
            if act is None:
                a += 4
            elif act == "stop":
                break
            else:
                splices += 1
                if splices > SPLICE_BUDGET or act not in instrs:
                    self._emit_exit(act, k, prev_rd)
                    break
                a = act
        return self._assemble(leader, k), k

    # -- function assembly ---------------------------------------------------
    def _scalar_flush(self, body: str) -> List[str]:
        out = [
            "st.cycles += cyc",
            "st.primary_cycles += cyc",
            "st.ref_instructions += k",
            "st.primary_instructions += k",
        ]
        for acc, field in (
            ("ista", "icache_stall_cycles"),
            ("dsta", "dcache_stall_cycles"),
            ("lub", "load_use_bubble_cycles"),
            ("bbub", "branch_bubble_cycles"),
            ("spc", "spill_cycles"),
        ):
            if acc in body:
                out.append("if %s:" % acc)
                out.append("    st.%s += %s" % (field, acc))
        return out

    def _assemble(self, leader: int, count: int) -> str:
        mode = self.mode
        body = "\n".join(self.lines)
        out: List[str] = []
        if mode == MODE_LEAN:
            out.append("def _b%x(rf, mem, services, ctr):" % leader)
        elif mode == MODE_CAPTURE:
            out.append("def _b%x(rf, mem, services, flags, aux, ctr):" % leader)
        else:
            out.append(
                "def _b%x(rf, mem, services, st, ic, dc, llr, ctr):" % leader
            )
        # hoists, driven by what the body actually references
        if "iregs[" in body:
            out.append("    iregs = rf.iregs")
        if "t[" in body:
            out.append("    t = rf.tables[rf.cwp]")
        if "fr[" in body:
            out.append("    fr = rf.fregs")
        for local, attr in _MEM_HOISTS:
            if local + "(" in body:
                out.append("    %s = mem.%s" % (local, attr))
        if mode == MODE_CAPTURE:
            if "fap(" in body:
                out.append("    fap = flags.append")
            if "aap(" in body:
                out.append("    aap = aux.append")
            if "fex(" in body:
                out.append("    fex = flags.extend")
            if "aex(" in body:
                out.append("    aex = aux.extend")
        if mode == MODE_SCALAR:
            out.append("    cyc = 0")
            out.append("    k = 0")
            for acc in ("ista", "dsta", "lub", "bbub", "spc"):
                if acc in body:
                    out.append("    %s = 0" % acc)
        pre = "    "
        if self.can_raise:
            out.append("    try:")
            pre = "        "
            out.append(pre + "_a = -1")
            if mode != MODE_SCALAR:
                out.append(pre + "_n = 0")
        if mode == MODE_SCALAR:
            out.append(pre + "while 1:")
            indent = pre + "    "
            out.extend(indent + ln for ln in self.lines)
        else:
            out.extend(pre + ln for ln in self.lines)
        if self.can_raise:
            out.append("    except BaseException:")
            out.append(
                "        ctr[0] = %s" % ("k" if mode == MODE_SCALAR else "_n")
            )
            out.append("        ctr[2] = _a")
            if mode == MODE_SCALAR:
                out.extend("        " + ln for ln in self._scalar_flush(body))
            out.append("        raise")
        if mode == MODE_SCALAR:
            out.extend("    " + ln for ln in self._scalar_flush(body))
            out.append("    ctr[0] = k")
            out.append("    ctr[1] = llo")
            out.append("    return npc")
        return "\n".join(out)


class _PMEmitter:
    """``MODE_PM``: one replay-driven *scheduling* function per superblock.

    Where :class:`_Emitter` specializes architectural execution, this
    emitter specializes the DTSVLIW primary-mode walk itself: per static
    instruction it bakes in the Table 1 cycle arithmetic (static in-block
    load-use interlocks, branch/spill bubbles), the replay-column reads,
    and the :class:`~repro.scheduler.ops.SchedOp` construction -- a cached
    per-entry-window prototype (built once by ``_mkpm`` /
    :func:`build_sched_proto`) cloned and patched with the per-instance
    facts (memory address, branch direction, target) -- then drives the
    real ``SchedulerUnit.tick``/``insert`` placement machinery.

    Exactness contract (the four-way differential suite pins it down):
    the function is observationally identical to the per-instruction
    replay loop of ``DTSVLIW._primary_mode_replay``.  It exits back to the
    interpreted loop -- committing everything accounted so far -- at every
    boundary the machine must see: a VLIW-cache probe hit (before
    charging that probe: the machine loop re-probes and charges it once),
    a full-block flush from ``insert`` (the block rides out in ``ctr[2]``
    for the machine's install + segment-memo bookkeeping), a taken
    conditional branch, an indirect jump, a non-schedulable instruction
    (before consuming it), or a divergence between the trace and the
    static block path.  Exit protocol: ``ctr[0]`` = instructions
    committed, ``ctr[1]`` = outgoing load-use register, ``ctr[2]`` =
    flushed Block or None; returns the next pc (``-1`` with ``ctr[0] ==
    0`` when the entry guard rejects a desynced cursor).

    The caller guarantees: a replay source positioned with
    ``src.i + max_count <= src.last`` (the exit-trap event never fires
    inside), perfect data cache (replay eligibility), and a cycle budget
    check against the block's worst-case charge (``__cycmax__``).
    """

    def __init__(self, program, sig: Tuple[int, ...]):
        self.instrs = program.instrs
        (
            self.lu,
            self.bnt,
            self.sp,
            self.inline_spill,
            self.ic_perfect,
            self.ic_pen,
        ) = sig

    # -- per-block state -----------------------------------------------------
    def _reset(self) -> None:
        self.lines: List[str] = []
        self.depth = 0
        #: (addr, dw_before, dw_after) per schedulable instruction: the
        #: static spec ``_mkpm`` builds SchedOp prototypes from
        self.spec: List[Tuple[int, int, int]] = []
        self.dw = 0  # window delta from block entry

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def _break(self, npc_expr: str, prev_rd) -> None:
        self.emit("npc = %s" % npc_expr)
        self.emit("llo = %s" % ("None" if prev_rd is None else str(prev_rd)))
        self.emit("break")

    def _flush_exit(self, npc_expr: str, prev_rd) -> None:
        """``insert`` returned a full block: hand it to the machine."""
        self.emit("if b is not None:")
        self.depth += 1
        self.emit("ctr[2] = b")
        self._break(npc_expr, prev_rd)
        self.depth -= 1

    def _open(self, ins, j: int, prev_rd) -> None:
        """VLIW-cache probe + pre-execution cycle accounting (mirrors the
        machine loop's probe and ``PrimaryProcessor.step``'s icache and
        load-use charges; the first instruction was already probed and
        its probe charged by the dispatching loop)."""
        if j > 0:
            self.emit("if vp(%d):" % ins.addr)
            self.depth += 1
            self._break(str(ins.addr), prev_rd)
            self.depth -= 1
            self.emit("vcp += 1")
            self.emit("if pb is not None:")
            self.emit("    pb.emit(_EVP, %d, 0)" % ins.addr)
        base = 1
        static_lu = bool(
            self.lu and j > 0 and prev_rd is not None and prev_rd in ins.lu_regs
        )
        if static_lu:
            base += self.lu
        if self.ic_perfect:
            self.emit("c = %d" % base)
        else:
            self.emit("p = ic(%d)" % ins.addr)
            self.emit("if p:")
            self.emit("    ista += p")
            self.emit("    if pb is not None:")
            self.emit("        pb.emit(_EVS, 'icache', p)")
            self.emit("c = %d + p" % base)
        if static_lu:
            self.emit("lub += %d" % self.lu)
        if self.lu and j == 0 and ins.lu_regs:
            # llr is None, 0 or a visible rd; lu_regs never contains 0
            self.emit("if llr in %r:" % (ins.lu_regs,))
            self.emit("    c += %d" % self.lu)
            self.emit("    lub += %d" % self.lu)

    def _advance(self) -> None:
        """Commit one instruction: Stats accumulators, cursor, and the
        scheduler clocks (``tick(cycles)`` with its zero-candidate
        early-out folded into the guard -- candidates never appear
        between instructions without an ``insert``)."""
        self.emit("cyc += c")
        self.emit("k += 1")
        self.emit("i += 1")
        self.emit("if S.n_candidates:")
        self.emit("    tick(c)")

    # -- per-kind emission ---------------------------------------------------
    def emit_instr(self, ins, j: int, prev_rd):
        """Emit one instruction; returns the scan action (``None`` to fall
        through, ``"stop"`` after an emitted exit, or a splice target)."""
        kind = ins.op.kind
        a = ins.addr
        if kind in (K_SAVE, K_RESTORE) and not self.inline_spill:
            # runtime non-schedulable: exit *before* the probe so the
            # interpreted step sees (and charges) this address exactly once
            self.emit("if spl[i]:")
            self.depth += 1
            self._break(str(a), prev_rd)
            self.depth -= 1
        self._open(ins, j, prev_rd)
        if ins.sched_class == SCHED_SKIP:
            if kind == K_BRANCH and ins.op.name == "ba":
                target = (a + ins.imm) & MASK32
                self.emit("nxt = pcs[i + 1]")
                self._advance()
                self.emit("if nxt != %d:" % target)
                self.depth += 1
                self._break("nxt", None)
                self.depth -= 1
                return target
            # nop / bn: plain fallthrough (bn is not cond_branch: no bubble)
            self._advance()
            return None
        m = len(self.spec)
        da = (
            self.dw - 1
            if kind == K_SAVE
            else self.dw + 1 if kind == K_RESTORE else self.dw
        )
        self.spec.append((a, self.dw, da))
        self.dw = da
        if kind == K_BRANCH:
            self.emit("tk = flags[i] & 1")
            self.emit("nxt = pcs[i + 1]")
            if self.bnt:
                self.emit("if not tk:")
                self.emit("    c += %d" % self.bnt)
                self.emit("    bbub += %d" % self.bnt)
            self._advance()
            self.emit("so = K[%d].clone()" % m)
            self.emit("if tk:")
            self.emit("    so.taken = True")
            self.emit("so.target = nxt")
            self.emit("b = ins_(so)")
            self._flush_exit("nxt", None)
            self.emit("if tk:")
            self.depth += 1
            self._break("nxt", None)
            self.depth -= 1
            return None
        if kind == K_CALL:
            target = (a + ins.imm) & MASK32
            self.emit("nxt = pcs[i + 1]")
            self._advance()
            self.emit("so = K[%d].clone()" % m)
            self.emit("so.target = nxt")
            self.emit("b = ins_(so)")
            self._flush_exit("nxt", None)
            self.emit("if nxt != %d:" % target)
            self.depth += 1
            self._break("nxt", None)
            self.depth -= 1
            return target
        if kind == K_JMPL:
            self.emit("nxt = pcs[i + 1]")
            self._advance()
            self.emit("so = K[%d].clone()" % m)
            self.emit("so.target = nxt")
            self.emit("b = ins_(so)")
            self.emit("if b is not None:")
            self.emit("    ctr[2] = b")
            self._break("nxt", None)
            return "stop"
        if kind in (K_LOAD, K_FLOAD):
            self.emit("ad = aux[i]")
            self._advance()
            self.emit("q = K[%d]" % m)
            self.emit("so = q[0].clone()")
            self.emit("so.reads = fz(q[1] + (%d + (ad >> 2),))" % MEM_BASE)
            self.emit("so.mem_addr = ad")
            self.emit("b = ins_(so)")
            self._flush_exit(str(a + 4), ins.rd if kind == K_LOAD else None)
            return None
        if kind in (K_STORE, K_FSTORE):
            self.emit("ad = aux[i]")
            self._advance()
            self.emit("so = K[%d].clone()" % m)
            self.emit("so.writes = fz((%d + (ad >> 2),))" % MEM_BASE)
            self.emit("so.mem_addr = ad")
            self.emit("b = ins_(so)")
            self._flush_exit(str(a + 4), None)
            return None
        if kind in (K_SAVE, K_RESTORE):
            save = kind == K_SAVE
            if self.inline_spill:
                self.emit("if spl[i]:")
                self.depth += 1
                self.emit("rf.wssp %s= 64" % ("-" if save else "+"))
                if self.sp:
                    self.emit("c += %d" % self.sp)
                    self.emit("spc += %d" % self.sp)
                self.emit("if pb is not None:")
                self.emit("    pb.emit(_EVW, %d)" % self.sp)
                self.depth -= 1
                self.emit("else:")
                self.depth += 1
            if save:
                self.emit("rf.cansave -= 1")
                self.emit("rf.canrestore += 1")
            else:
                self.emit("rf.canrestore -= 1")
                self.emit("rf.cansave += 1")
            if self.inline_spill:
                self.depth -= 1
            self.emit("rf.cwp = cwpc[i + 1]")
            self._advance()
            self.emit("so = K[%d].clone()" % m)
            self.emit("b = ins_(so)")
            self._flush_exit(str(a + 4), None)
            return None
        # K_ALU / K_SETHI / K_FPOP: no per-instance facts at all
        self._advance()
        self.emit("so = K[%d].clone()" % m)
        self.emit("b = ins_(so)")
        self._flush_exit(str(a + 4), None)
        return None

    # -- block scan ----------------------------------------------------------
    def emit_block(self, leader: int) -> Tuple[str, int]:
        """Compile the superblock at ``leader``; returns its function
        source (empty when nothing can be committed) and the maximum
        number of instructions it can commit."""
        self._reset()
        instrs = self.instrs
        a = leader
        seen: Set[int] = set()
        k = 0
        prev_rd = None
        splices = 0
        while True:
            ins = instrs.get(a)
            if (
                ins is None
                or a in seen
                or k >= MAX_BLOCK
                or ins.sched_class == SCHED_NONSCHED
            ):
                # static end -- including a trap, which must be consumed
                # (and its NONSCHED flush run) by the interpreted loop
                if k:
                    self._break(str(a), prev_rd)
                break
            seen.add(a)
            act = self.emit_instr(ins, k, prev_rd)
            k += 1
            prev_rd = ins.rd if ins.op.kind == K_LOAD else None
            if act is None:
                a += 4
            elif act == "stop":
                break
            else:
                splices += 1
                if splices > SPLICE_BUDGET or act not in instrs:
                    self._break(str(act), prev_rd)
                    break
                a = act
        return (self._assemble(leader) if k else ""), k

    # -- function assembly ---------------------------------------------------
    def _assemble(self, leader: int) -> str:
        body = "\n".join(self.lines)
        out = ["def _p%x(rf, src, S, vp, ic, st, pb, llr, ctr):" % leader]
        out.append("    i = src.i")
        out.append("    pcs = src.pcs")
        out.append("    if pcs[i] != %d:" % leader)
        out.append("        ctr[0] = 0")
        out.append("        return -1")
        if "flags[" in body:
            out.append("    flags = src.flags")
        if "aux[" in body:
            out.append("    aux = src.aux")
        if "spl[" in body:
            out.append("    spl = src.spilled")
        if "cwpc[" in body:
            out.append("    cwpc = src.cwp")
        if self.spec:
            out.append("    w = rf.cwp")
            out.append("    K = _c%x.get(w)" % leader)
            out.append("    if K is None:")
            out.append(
                "        K = _c%x[w] = _mkpm(_s%x, _I, rf, w)" % (leader, leader)
            )
            out.append("    ins_ = S.insert")
        out.append("    tick = S.tick")
        if "fz(" in body:
            out.append("    fz = frozenset")
        out.append("    cyc = 0")
        out.append("    k = 0")
        for acc in ("vcp", "ista", "lub", "bbub", "spc"):
            if acc in body:
                out.append("    %s = 0" % acc)
        out.append("    ctr[2] = None")
        out.append("    while 1:")
        out.extend("        " + ln for ln in self.lines)
        out.append("    st.cycles += cyc")
        out.append("    st.primary_cycles += cyc")
        out.append("    st.primary_instructions += k")
        if "vcp" in body:
            out.append("    if vcp:")
            out.append("        st.vliw_cache_probes += vcp")
        for acc, field in (
            ("ista", "icache_stall_cycles"),
            ("lub", "load_use_bubble_cycles"),
            ("bbub", "branch_bubble_cycles"),
            ("spc", "spill_cycles"),
        ):
            if acc in body:
                out.append("    if %s:" % acc)
                out.append("        st.%s += %s" % (field, acc))
        out.append("    src.i = i")
        out.append("    ctr[0] = k")
        out.append("    ctr[1] = llo")
        out.append("    return npc")
        return "\n".join(out)


def generate_module_source(
    program, mode: str, sig: Tuple[int, ...] = ()
) -> Tuple[str, List[Tuple[int, int]]]:
    """Source of the compiled-block module for ``program``: one function
    per superblock plus the ``__table__`` dispatch dict.  Deterministic
    for a given (program, mode, sig), which keeps the disk cache
    content-addressable."""
    emitter = _Emitter(program, mode, sig)
    blocks: List[Tuple[int, int]] = []
    fns: List[str] = []
    for leader in discover_leaders(program):
        src, count = emitter.emit_block(leader)
        fns.append(src)
        blocks.append((leader, count))
    out = ["# generated by repro.isa.blockcompile (mode=%s)" % mode]
    for n in sorted(emitter.zsizes):
        out.append("_Z%d = (0,) * %d" % (n, n))
    out.extend(fns)
    out.append("__table__ = {")
    for leader, count in blocks:
        out.append("    %d: (_b%x, %d)," % (leader, leader, count))
    out.append("}")
    return "\n".join(out) + "\n", blocks


# ---------------------------------------------------------------------------
# Compile + cache entry point.
# ---------------------------------------------------------------------------
BlockTable = Dict[int, Tuple]  # addr -> (block_fn, max_commit_count)

_memo: Dict[str, BlockTable] = {}
#: pm-mode memoizes the *code object* (not the table): SchedOp prototypes
#: must be rebuilt against each machine's program/register file, so every
#: DTSVLIW init re-``exec``s the module (cheap) and rebinds ``_I``
_pm_code: Dict[str, object] = {}


def clear_memo() -> None:
    """Drop the process-global compiled-block memos (tests use this to
    force the disk-store / codegen paths)."""
    _memo.clear()
    _pm_code.clear()


def block_key(program, mode: str, sig: Tuple[int, ...] = ()) -> str:
    """Content key for the compiled-block cache: program image, codegen
    mode + timing signature, simulator source fingerprint, interpreter
    bytecode magic and the local codegen version."""
    # lazy imports: trace/harness pull in core modules that import us
    from ..harness.resultcache import code_version
    from ..trace.events import program_fingerprint

    h = sha256()
    h.update(program_fingerprint(program))
    h.update(mode.encode("ascii"))
    h.update(repr(sig).encode("ascii"))
    h.update(code_version().encode("ascii"))
    h.update(importlib.util.MAGIC_NUMBER)
    h.update(CODEGEN_VERSION.encode("ascii"))
    return "%s-%s" % (mode, h.hexdigest()[:24])


def compile_blocks(
    program,
    mode: str,
    sig: Tuple[int, ...] = (),
    probe=None,
    store=None,
) -> BlockTable:
    """The block dispatch table for ``program`` under ``mode``/``sig``.

    Resolution order: process memo (emits nothing), on-disk
    :class:`~repro.trace.store.BlockCacheStore` (marshal'd code object;
    warm runs skip codegen and ``compile()``), fresh code generation
    (written back to the store).  ``probe`` receives the ``bc_compile``
    and ``bc_cache`` events; :data:`GLOBAL_STATS` counts in all cases.
    """
    from ..obs.probe import EV_BC_CACHE, EV_BC_COMPILE
    from ..trace.store import BlockCacheStore

    key = block_key(program, mode, sig)
    table = _memo.get(key)
    if table is not None:
        return table
    if store is None:
        store = BlockCacheStore()
    code = store.get(key)
    hit = code is not None
    if hit:
        GLOBAL_STATS.cache_hits += 1
    else:
        GLOBAL_STATS.cache_misses += 1
    if probe is not None:
        probe.emit(EV_BC_CACHE, int(hit))
    fresh: Optional[List[Tuple[int, int]]] = None
    if code is None:
        src, fresh = generate_module_source(program, mode, sig)
        code = compile(src, "<blockcompile:%s>" % key, "exec")
        store.put(key, code)
    namespace = _exec_globals()
    exec(code, namespace)
    table = namespace["__table__"]
    if fresh is not None:
        GLOBAL_STATS.compiled += len(fresh)
        if probe is not None:
            for leader, count in fresh:
                probe.emit(EV_BC_COMPILE, leader, count)
    _memo[key] = table
    return table


# ---------------------------------------------------------------------------
# Primary-mode (scheduling) codegen entry points.
# ---------------------------------------------------------------------------
def generate_pm_module_source(
    program, sig: Tuple[int, ...]
) -> Tuple[str, List[Tuple[int, int]]]:
    """Source of the primary-mode scheduling module: one ``_p<leader>``
    function per superblock plus the static SchedOp specs (``_s<leader>``)
    and their per-entry-window prototype caches (``_c<leader>``).
    Deterministic for a given (program, sig)."""
    emitter = _PMEmitter(program, sig)
    blocks: List[Tuple[int, int]] = []
    fns: List[str] = []
    specs: List[Tuple[int, Tuple]] = []
    for leader in discover_leaders(program):
        src, count = emitter.emit_block(leader)
        if not count:
            continue
        fns.append(src)
        blocks.append((leader, count))
        specs.append((leader, tuple(emitter.spec)))
    out = ["# generated by repro.isa.blockcompile (mode=%s)" % MODE_PM]
    for leader, spec in specs:
        out.append("_c%x = {}" % leader)
        out.append("_s%x = %r" % (leader, spec))
    out.extend(fns)
    out.append("__cycmax__ = %d" % (1 + sig[0] + sig[1] + sig[2] + sig[5]))
    out.append("__table__ = {")
    for leader, count in blocks:
        out.append("    %d: (_p%x, %d)," % (leader, leader, count))
    out.append("}")
    return "\n".join(out) + "\n", blocks


def pm_sig(cfg) -> Tuple[int, ...]:
    """Timing signature of the primary-mode codegen: every config field
    the generated cycle arithmetic bakes in."""
    ic = cfg.icache
    return (
        cfg.load_use_bubble,
        cfg.branch_not_taken_bubble,
        cfg.window_spill_penalty,
        int(cfg.vliw_window_spill_inline),
        int(ic.perfect),
        0 if ic.perfect else ic.miss_penalty,
    )


def compile_pm_blocks(program, cfg, probe=None, store=None) -> BlockTable:
    """The primary-mode dispatch table for ``program`` under ``cfg``:
    ``leader -> (fn, max_commit_count, worst_case_cycles)``.

    The *code object* resolves through the process memo and the on-disk
    :class:`~repro.trace.store.BlockCacheStore`, but the module is
    re-``exec``'d per call: the SchedOp prototype caches and the ``_I``
    instruction binding are per-program-instance state.
    """
    from ..obs.probe import EV_PM_COMPILE
    from ..trace.store import BlockCacheStore

    sig = pm_sig(cfg)
    key = block_key(program, MODE_PM, sig)
    code = _pm_code.get(key)
    fresh: Optional[List[Tuple[int, int]]] = None
    if code is None:
        if store is None:
            store = BlockCacheStore()
        code = store.get(key)
        if code is not None:
            PM_STATS.cache_hits += 1
        else:
            PM_STATS.cache_misses += 1
            src, fresh = generate_pm_module_source(program, sig)
            code = compile(src, "<blockcompile:%s>" % key, "exec")
            store.put(key, code)
        _pm_code[key] = code
    namespace = _exec_globals()
    exec(code, namespace)
    namespace["_I"] = program.instrs
    cycmax = namespace["__cycmax__"]
    table: BlockTable = {
        leader: (fn, maxk, maxk * cycmax)
        for leader, (fn, maxk) in namespace["__table__"].items()
    }
    if fresh is not None:
        PM_STATS.compiled += len(fresh)
        if probe is not None:
            for leader, count in fresh:
                probe.emit(EV_PM_COMPILE, leader, count)
    return table
