"""Experiment harness: runner, sweep layer, experiment drivers, CLI.

The sweep layer (``RunSpec`` -> ``run_sweep`` -> ``SweepRun``) is the
public surface new experiments should build on; see DESIGN.md section 3.
"""

from .runner import RunResult, run_workload
from .sweep import RunSpec, Sweep, SweepRun, SweepSummary, last_summary, run_sweep

__all__ = [
    "RunResult",
    "RunSpec",
    "Sweep",
    "SweepRun",
    "SweepSummary",
    "last_summary",
    "run_sweep",
    "run_workload",
]
