"""Text rendering for experiment results: aligned tables and ASCII bar
charts matching the rows/series the paper reports."""

from __future__ import annotations

from typing import Mapping, Optional, Sequence


def format_table(
    data: Mapping[str, Mapping],
    columns: Optional[Sequence] = None,
    row_header: str = "benchmark",
    precision: int = 2,
    average: bool = True,
) -> str:
    """Render {row: {column: value}} as an aligned text table with an
    'average' footer for numeric columns (``average=False`` drops the
    footer -- rows whose mean is meaningless, e.g. mixed rates)."""
    rows = list(data.keys())
    if columns is None:
        columns = list(next(iter(data.values())).keys()) if data else []
    col_names = [str(c) for c in columns]

    def fmt(v) -> str:
        if isinstance(v, float):
            return "%.*f" % (precision, v)
        return str(v)

    header = [row_header] + col_names
    body = []
    for r in rows:
        body.append([r] + [fmt(data[r].get(c, "")) for c in columns])
    # averages
    avg_row = ["average"]
    for c in columns:
        vals = [data[r][c] for r in rows if isinstance(data[r].get(c), (int, float))]
        avg_row.append(fmt(sum(vals) / len(vals)) if vals else "")
    body.append(avg_row)

    widths = [
        max(len(header[i]), *(len(row[i]) for row in body))
        for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body[:-1]:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
    if average:
        lines.append("  ".join("-" * w for w in widths))
        lines.append(
            "  ".join(avg_row[i].ljust(widths[i]) for i in range(len(avg_row)))
        )
    return "\n".join(lines)


def format_bars(
    data: Mapping[str, Mapping[str, float]],
    width: int = 40,
    precision: int = 2,
) -> str:
    """ASCII grouped bar chart: one group per row, one bar per series."""
    maxv = 0.0
    for row in data.values():
        for v in row.values():
            if isinstance(v, (int, float)) and v > maxv:
                maxv = float(v)
    if maxv <= 0:
        maxv = 1.0
    lines = []
    label_w = max(
        (len(str(s)) for row in data.values() for s in row), default=4
    )
    for name, row in data.items():
        lines.append(name)
        for series, v in row.items():
            if not isinstance(v, (int, float)):
                continue
            n = int(round(width * float(v) / maxv))
            lines.append(
                "  %s |%s %.*f"
                % (str(series).ljust(label_w), "#" * n, precision, float(v))
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def format_stacked(
    data: Mapping[str, Mapping[str, float]],
    segments: Sequence[str],
    width: int = 50,
    chars: str = "#=+-~",
) -> str:
    """Stacked horizontal bars (Figure 8 style)."""
    totals = {
        name: sum(float(row.get(s, 0.0)) for s in segments)
        for name, row in data.items()
    }
    maxv = max(totals.values(), default=1.0) or 1.0
    lines = ["segments: " + "  ".join(
        "%s=%s" % (chars[i % len(chars)], s) for i, s in enumerate(segments)
    )]
    for name, row in data.items():
        bar = ""
        for i, s in enumerate(segments):
            n = int(round(width * float(row.get(s, 0.0)) / maxv))
            bar += chars[i % len(chars)] * n
        lines.append(
            "%-10s |%s total=%.2f" % (name, bar.ljust(width), totals[name])
        )
    return "\n".join(lines)
