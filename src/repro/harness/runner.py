"""Single-run driver used by every experiment.

IPC follows the paper's definition exactly: the sequential instruction
count measured by the test machine divided by simulated cycles.  The
reference count is cached per workload (``registry.reference_run``) so a
parameter sweep pays for one reference execution per benchmark, not one
per configuration.

Environment knobs (all optional):

* ``REPRO_SCALE`` scales every workload (malformed values warn once and
  fall back to the caller's default);
* ``REPRO_MAX_CYCLES`` overrides :data:`DEFAULT_MAX_CYCLES`, the
  divergence/timeout guard of every simulation.

:func:`env_value` and :func:`env_flag` are the one warn-once parser every
``REPRO_*`` knob goes through (``REPRO_SCALE``, ``REPRO_MAX_CYCLES``,
``REPRO_JOBS``, ``REPRO_NO_CACHE``, ``REPRO_NO_BATCH``,
``REPRO_NO_VECTOR``): a malformed value warns once per process and falls
back to the caller's default instead of silently changing behaviour.

Experiments default to ``test_mode=False`` for speed -- correctness is
covered by the test suite, and every run still asserts the exit code and
output against the reference.
"""

from __future__ import annotations

import dataclasses
import logging
import os
from dataclasses import dataclass
from typing import Optional, Tuple

from ..baselines.dif import DIFMachine
from ..baselines.scalar import ScalarMachine
from ..core.config import MachineConfig
from ..core.errors import SimError
from ..core.machine import DTSVLIW
from ..core.stats import Stats
from ..trace.capture import workload_trace
from ..trace.replay import execution_driven_forced
from ..workloads import registry

#: machine kinds whose statistics never read register values, so a
#: captured trace replays them bit-identically (see repro.trace)
TRACE_DRIVABLE = ("dif", "scalar")

log = logging.getLogger(__name__)

DEFAULT_MAX_CYCLES = 400_000_000

#: environment variables already warned about (warn once per process)
_warned_env: set = set()


def env_value(var: str, default, parse):
    """Parse ``$var`` with ``parse``; warn once (not silently) when malformed.

    The single malformed-``REPRO_*`` policy: an unset variable returns
    ``default``, a parseable one returns ``parse(raw)``, and anything else
    logs one warning per process per variable and returns ``default``.
    """
    raw = os.environ.get(var)
    if raw is None:
        return default
    try:
        return parse(raw)
    except ValueError:
        if var not in _warned_env:
            _warned_env.add(var)
            log.warning(
                "ignoring malformed %s=%r (using default %s)", var, raw, default
            )
        return default


_FLAG_VALUES = {
    "": False, "0": False, "false": False, "no": False, "off": False,
    "1": True, "true": True, "yes": True, "on": True,
}


def _parse_flag(raw: str) -> bool:
    try:
        return _FLAG_VALUES[raw.strip().lower()]
    except KeyError:
        raise ValueError("not a boolean flag: %r" % raw) from None


def env_flag(var: str, default: bool = False) -> bool:
    """Boolean knob from ``$var`` (``1/true/yes/on`` vs ``0/false/no/off``,
    case-insensitive; empty counts as unset).  Malformed values warn once
    and mean ``default`` -- the same policy as :func:`env_value`."""
    return env_value(var, default, _parse_flag)


def env_scale(default: float = 1.0) -> float:
    """Workload scale from ``$REPRO_SCALE`` (fallback: ``default``)."""
    return env_value("REPRO_SCALE", default, float)


def default_max_cycles() -> int:
    """Cycle limit from ``$REPRO_MAX_CYCLES`` (fallback: 400M)."""
    return env_value("REPRO_MAX_CYCLES", DEFAULT_MAX_CYCLES, int)


@dataclass
class RunResult:
    benchmark: str
    machine: str
    stats: Stats
    ref_instructions: int
    cycles: int

    @property
    def ipc(self) -> float:
        return self.ref_instructions / self.cycles if self.cycles else 0.0

    # Serialization for the on-disk result cache (resultcache.py).
    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "machine": self.machine,
            "ref_instructions": self.ref_instructions,
            "cycles": self.cycles,
            "stats": dataclasses.asdict(self.stats),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunResult":
        return cls(
            benchmark=d["benchmark"],
            machine=d["machine"],
            stats=Stats(**d["stats"]),
            ref_instructions=d["ref_instructions"],
            cycles=d["cycles"],
        )


def run_program(
    program,
    reference: Tuple[int, bytes, int],
    cfg: MachineConfig,
    machine: str = "dtsvliw",
    name: str = "<inline>",
    max_cycles: Optional[int] = None,
    trace=None,
    probe=None,
    dtsvliw_replay: bool = False,
    sched_memo=None,
) -> RunResult:
    """Run one compiled program on one machine and validate its output.

    ``reference`` is ``(instruction count, output, exit code)`` from the
    reference machine; it supplies the IPC numerator and the oracle the
    run is checked against.  ``trace`` optionally replays a captured
    trace on the machines in :data:`TRACE_DRIVABLE` (bit-identical to
    execution-driven).  The DTSVLIW defaults to live execution; with
    ``dtsvliw_replay=True`` (and a replay-eligible ``cfg`` -- see
    :meth:`DTSVLIW.replay_eligible`) it runs fully trace-driven through
    the VLIW timing twin, again bit-identical.  ``probe`` attaches an
    observability probe (:mod:`repro.obs`) to the machine; it records
    telemetry in both the execution-driven and trace-replay paths and
    never changes results.  ``sched_memo`` shares one segment memo
    (:class:`repro.scheduler.memo.ScheduleMemo`) across the replay-twin
    runs of a batched sweep family.
    """
    if max_cycles is None:
        max_cycles = default_max_cycles()
    ref_count, ref_out, ref_code = reference
    if machine == "dtsvliw":
        m = DTSVLIW(
            program,
            cfg,
            probe=probe,
            trace=trace if dtsvliw_replay else None,
            sched_memo=sched_memo,
        )
    elif machine == "dif":
        m = DIFMachine(program, cfg, trace=trace, probe=probe)
    elif machine == "scalar":
        m = ScalarMachine(program, cfg, trace=trace, probe=probe)
    else:
        raise SimError("unknown machine kind %r" % machine)
    try:
        stats = m.run(max_cycles=max_cycles)
    except SimError as exc:
        # Keep failed sweep cells diagnosable from logs: name the cell and
        # the cycle limit in force.
        raise SimError(
            "%s on %s failed (max_cycles=%d): %s"
            % (machine, name, max_cycles, exc)
        ) from exc
    if not stats.ref_instructions:
        stats.ref_instructions = ref_count
    if m.exit_code != ref_code or m.output != ref_out:
        raise SimError(
            "%s on %s diverged from the reference (exit %d vs %d, "
            "max_cycles=%d)"
            % (machine, name, m.exit_code, ref_code, max_cycles)
        )
    return RunResult(name, machine, stats, ref_count, stats.cycles)


def run_workload(
    name: str,
    cfg: MachineConfig,
    machine: str = "dtsvliw",
    scale: Optional[float] = None,
    hw_mul: bool = False,
    max_cycles: Optional[int] = None,
    optimize: bool = True,
    default_scale: float = 1.0,
    probe=None,
    dtsvliw_replay: bool = False,
) -> RunResult:
    """Run one benchmark under one configuration and validate its output.

    ``scale=None`` resolves through ``$REPRO_SCALE`` and then
    ``default_scale`` (callers with their own default now forward it
    instead of being overridden by the 1.0 fallback).

    Trace-drivable machines run off the shared per-(workload, scale)
    trace -- captured on first use, loaded from the trace store after
    (sweeps pre-capture it once and fan it out to every configuration).
    The trace header doubles as the reference tuple, so such runs never
    pay for a separate reference execution; ``REPRO_EXECUTION_DRIVEN=1``
    restores the execution-driven path everywhere.
    """
    scale = env_scale(default_scale) if scale is None else scale
    program = registry.load_program(name, scale, hw_mul, optimize)
    trace = None
    if machine in TRACE_DRIVABLE and not execution_driven_forced():
        trace = workload_trace(
            name, scale, hw_mul, optimize, mem_size=cfg.mem_size
        )
    elif machine == "dtsvliw" and dtsvliw_replay and not execution_driven_forced():
        trace = workload_trace(
            name, scale, hw_mul, optimize, mem_size=cfg.mem_size
        )
    elif machine == "dtsvliw":
        # never capture just for the header (costlier than a reference
        # run), but reuse one that is already cached
        trace = workload_trace(
            name, scale, hw_mul, optimize, mem_size=cfg.mem_size, capture=False
        )
    if trace is not None:
        reference = (trace.count, bytes(trace.output), trace.exit_code)
    else:
        reference = registry.reference_run(name, scale, hw_mul, optimize)
    return run_program(
        program,
        reference,
        cfg,
        machine=machine,
        name=name,
        max_cycles=max_cycles,
        trace=trace if (machine in TRACE_DRIVABLE or dtsvliw_replay) else None,
        probe=probe,
        dtsvliw_replay=dtsvliw_replay,
    )
