"""Single-run driver used by every experiment.

IPC follows the paper's definition exactly: the sequential instruction
count measured by the test machine divided by simulated cycles.  The
reference count is cached per workload (``registry.reference_run``) so a
parameter sweep pays for one reference execution per benchmark, not one
per configuration.

``REPRO_SCALE`` (environment) scales every workload; experiments default
to ``test_mode=False`` for speed -- correctness is covered by the test
suite, and every run still asserts the exit code and output against the
reference.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from ..baselines.dif import DIFMachine
from ..baselines.scalar import ScalarMachine
from ..core.config import MachineConfig
from ..core.errors import SimError
from ..core.machine import DTSVLIW
from ..core.stats import Stats
from ..workloads import registry

DEFAULT_MAX_CYCLES = 400_000_000


def env_scale(default: float = 1.0) -> float:
    """Workload scale from ``$REPRO_SCALE`` (fallback: ``default``)."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


@dataclass
class RunResult:
    benchmark: str
    machine: str
    stats: Stats
    ref_instructions: int
    cycles: int

    @property
    def ipc(self) -> float:
        return self.ref_instructions / self.cycles if self.cycles else 0.0


def run_workload(
    name: str,
    cfg: MachineConfig,
    machine: str = "dtsvliw",
    scale: Optional[float] = None,
    hw_mul: bool = False,
    max_cycles: int = DEFAULT_MAX_CYCLES,
) -> RunResult:
    """Run one benchmark under one configuration and validate its output."""
    scale = env_scale() if scale is None else scale
    program = registry.load_program(name, scale, hw_mul)
    ref_count, ref_out, ref_code = registry.reference_run(name, scale, hw_mul)
    if machine == "dtsvliw":
        m = DTSVLIW(program, cfg)
    elif machine == "dif":
        m = DIFMachine(program, cfg)
    elif machine == "scalar":
        m = ScalarMachine(program, cfg)
    else:
        raise SimError("unknown machine kind %r" % machine)
    stats = m.run(max_cycles=max_cycles)
    if not stats.ref_instructions:
        stats.ref_instructions = ref_count
    if m.exit_code != ref_code or m.output != ref_out:
        raise SimError(
            "%s on %s diverged from the reference (exit %d vs %d)"
            % (machine, name, m.exit_code, ref_code)
        )
    return RunResult(name, machine, stats, ref_count, stats.cycles)
