"""Persistent on-disk cache of sweep results.

One JSON file per simulated cell under ``results/.cache/`` (override with
``$REPRO_CACHE_DIR``), keyed by the :class:`~repro.harness.sweep.RunSpec`
content hash **plus a fingerprint of the simulator source tree** -- any
edit under ``src/repro/`` invalidates every entry, so a cache hit can
never mask a behaviour change.  Re-running ``dtsvliw fig5`` after an
unrelated doc edit replays cached rows instead of re-simulating.

``$REPRO_NO_CACHE=1`` (or ``--no-cache`` on the CLI) disables the cache.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

log = logging.getLogger(__name__)

#: default cache location, relative to the working directory
DEFAULT_CACHE_DIR = os.path.join("results", ".cache")

_code_version: Optional[str] = None


def cache_enabled_default() -> bool:
    """Cache on unless ``$REPRO_NO_CACHE`` is set to a truthy value."""
    # imported lazily: blockcompile -> resultcache sits on runner's own
    # import chain, so a module-level import would be circular
    from .runner import env_flag

    return not env_flag("REPRO_NO_CACHE")


def cache_dir() -> str:
    return os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)


#: directory names whose contents are run *artifacts*, not simulator
#: source -- excluded from the fingerprint so producing results (caches,
#: traces, benchmark JSON) never invalidates the cache that holds them
_FINGERPRINT_EXCLUDE = {"results", "__pycache__"}


def _compute_code_version(root: Path) -> str:
    """Fingerprint of every ``*.py`` file under ``root``.

    Only source files count: anything inside :data:`_FINGERPRINT_EXCLUDE`
    directories is skipped, and non-``*.py`` artifacts (``*.json``
    results, ``*.trc`` traces) never match the glob in the first place.
    """
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if _FINGERPRINT_EXCLUDE.intersection(rel.parts[:-1]):
            continue
        h.update(str(rel).encode("utf-8"))
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    return h.hexdigest()[:16]


def code_version() -> str:
    """Fingerprint of the installed package's source tree.

    Computed once per process; a few dozen small files, so the one-time
    cost is milliseconds.  Part of every cache key: results produced by a
    different simulator version never collide with the current one.
    """
    global _code_version
    if _code_version is None:
        _code_version = _compute_code_version(
            Path(__file__).resolve().parent.parent  # src/repro/
        )
    return _code_version


class ResultCache:
    """Directory of ``<key>.json`` payloads with atomic writes."""

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root if root is not None else cache_dir())

    def path(self, key: str) -> Path:
        return self.root / ("%s.json" % key)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None (corrupt files miss)."""
        try:
            with open(self.path(key), "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        """Store ``payload`` under ``key`` (atomic rename, best-effort)."""
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=str(self.root), prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(payload, fh, sort_keys=True)
                os.replace(tmp, self.path(key))
            except BaseException:
                os.unlink(tmp)
                raise
        except OSError as exc:
            # A read-only or full disk degrades to "no cache", not a crash.
            log.warning("result cache write failed for %s: %s", key, exc)
