"""Command-line entry point: ``dtsvliw <experiment>`` regenerates any of
the paper's tables and figures (see DESIGN.md section 6 for the index).

Examples::

    dtsvliw table2                 # benchmark inventory
    dtsvliw fig5 --scale 0.3       # geometry sweep at reduced input size
    dtsvliw fig9 --benchmarks compress,xlisp
    dtsvliw run --workload ijpeg --width 16 --height 16
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time

from ..core.config import MachineConfig
from ..workloads import registry
from . import experiments, sweep
from .reporting import format_bars, format_stacked, format_table
from .sweep import RunSpec, run_sweep


def _benchmarks(args) -> list | None:
    if args.benchmarks:
        return [b.strip() for b in args.benchmarks.split(",")]
    return None


def _sweep_opts(args) -> dict:
    """The executor/cache kwargs every experiment driver accepts."""
    return {
        "jobs": args.jobs,
        "use_cache": False if args.no_cache else None,
        "batch": False if args.no_batch else None,
        "vector": False if args.no_vector else None,
    }


def _print_summary() -> None:
    """One line of sweep counters (cells simulated vs replayed from cache)."""
    summary = sweep.last_summary()
    if summary is not None:
        print()
        print(summary.line())


def cmd_table1(args) -> None:
    print("Table 1: fixed machine parameters (MachineConfig defaults)\n")
    for field in dataclasses.fields(MachineConfig):
        value = getattr(MachineConfig(), field.name)
        print("  %-26s %s" % (field.name, value))
    print("\nfeasible machine (section 4.4): MachineConfig.feasible()")
    print("figure 9 machine:                 MachineConfig.fig9()")


def cmd_table2(args) -> None:
    print("Table 2: benchmark programs (SPECint95 analogues)\n")
    rows = {}
    for name in registry.BENCHMARKS:
        desc, mirrors = registry.workload_info(name)
        n, _out, code = registry.reference_run(name, args.scale or 1.0)
        rows[name] = {
            "instructions": n,
            "exit": code,
            "description": desc,
        }
    print(format_table(rows, ["instructions", "exit", "description"]))
    print("\nmirrors:")
    for name in registry.BENCHMARKS:
        _desc, mirrors = registry.workload_info(name)
        print("  %-9s %s" % (name, mirrors))


def cmd_fig5(args) -> None:
    data = experiments.fig5_geometry(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    cols = ["%dx%d" % g for g in experiments.FIG5_GEOMETRIES]
    print("Figure 5: IPC vs block size and geometry (ideal memory)\n")
    print(format_table(data, cols))
    _print_summary()


def cmd_fig6(args) -> None:
    data = experiments.fig6_cache_size(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    print("Figure 6: IPC vs VLIW Cache size (KB), 8x8 blocks, 4-way\n")
    print(format_table(data, experiments.FIG6_SIZES_KB))
    _print_summary()


def cmd_fig7(args) -> None:
    data = experiments.fig7_associativity(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    cols = [
        "%dKB/%d-way" % (kb, a)
        for kb in experiments.FIG7_SIZES_KB
        for a in experiments.FIG7_ASSOCS
    ]
    print("Figure 7: IPC vs VLIW Cache associativity, 8x8 blocks\n")
    print(format_table(data, cols))
    _print_summary()


def cmd_fig8(args) -> None:
    data = experiments.fig8_feasible(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    print("Figure 8: feasible machine cost breakdown (stacked)\n")
    print(format_stacked(data, experiments.FIG8_SEGMENTS))
    print()
    print(
        format_table(
            data,
            ["ilp", "next_li_cost", "dcache_cost", "icache_cost", "fu_cost", "ideal"],
        )
    )
    _print_summary()


def cmd_table3(args) -> None:
    data = experiments.table3_feasible(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    cols = [
        "ipc",
        "int_renaming",
        "fp_renaming",
        "flag_renaming",
        "mem_renaming",
        "load_list",
        "store_list",
        "ckpt_list",
        "aliasing",
        "vliw_cycles_pct",
        "slot_occupancy_pct",
    ]
    print("Table 3: feasible DTSVLIW performance and resources\n")
    print(format_table(data, cols))
    _print_summary()


def cmd_fig9(args) -> None:
    data = experiments.fig9_dif_comparison(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    print("Figure 9: DTSVLIW vs DIF (shared configuration)\n")
    print(format_table(data, ["dtsvliw", "dif", "dtsvliw_renaming", "dif_renaming"]))
    print()
    print(format_bars({k: {"dtsvliw": v["dtsvliw"], "dif": v["dif"]} for k, v in data.items()}))
    _print_summary()


def cmd_speedup(args) -> None:
    data = experiments.speedup_vs_scalar(
        _benchmarks(args), scale=args.scale, **_sweep_opts(args)
    )
    print("DTSVLIW speed-up over the scalar Primary Processor\n")
    print(format_table(data, ["dtsvliw_ipc", "scalar_ipc", "speedup"]))
    _print_summary()


def cmd_ablations(args) -> None:
    names, opts = _benchmarks(args), _sweep_opts(args)
    print("Ablation: multicycle-aware scheduling (hardware mul/div)\n")
    print(format_table(experiments.ablation_multicycle(names, scale=args.scale, **opts)))
    print("\nAblation: store handling scheme (section 3.11)\n")
    print(format_table(experiments.ablation_store_scheme(names, scale=args.scale, **opts)))
    print("\nAblation: split-based renaming on/off\n")
    print(format_table(experiments.ablation_splitting(names, scale=args.scale, **opts)))
    print("\nAblation: compiler quality (unrolled+scheduled vs naive)\n")
    print(format_table(experiments.ablation_compiler(names, scale=args.scale, **opts)))
    print("\nExtension: next-block prediction (the paper's future work)\n")
    print(
        format_table(
            experiments.ablation_next_block_prediction(
                names, scale=args.scale, **opts
            )
        )
    )
    _print_summary()


def cmd_blocks(args) -> None:
    """Dump the hottest scheduled blocks of a workload (schedule study)."""
    from ..core.machine import DTSVLIW
    from ..workloads import registry

    cfg = MachineConfig.paper_fixed(args.width, args.height, test_mode=False)
    program = registry.load_program(args.workload, args.scale or 0.1)
    machine = DTSVLIW(program, cfg)
    machine.run(max_cycles=200_000_000)
    blocks = [b for s in machine.vcache.sets for _t, b in s]
    blocks.sort(key=lambda b: -b.op_count())
    print(
        "%d blocks cached for %s (%dx%d); %d largest shown\n"
        % (len(blocks), args.workload, args.width, args.height, args.count)
    )
    for block in blocks[: args.count]:
        print(block.text())
        ops = block.op_count()
        slots = cfg.block_width * len(block.lis)
        print(
            "  ops=%d occupancy=%.0f%% renames(int=%d cc=%d) req_windows=(%d up, %d down)\n"
            % (
                ops,
                100 * ops / slots,
                block.n_int_rr,
                block.n_cc_rr,
                block.req_canrestore,
                block.req_cansave,
            )
        )


def cmd_cc(args) -> None:
    """Compile a minicc source file to an srisc binary (or assembly)."""
    from ..asm.assembler import assemble
    from ..asm.binary import save_program
    from ..lang import CompilerOptions, compile_minicc

    source = open(args.source).read()
    asm_text = compile_minicc(
        source,
        CompilerOptions(
            hw_mul=args.hw_mul, unroll=args.unroll, schedule=args.schedule
        ),
    )
    if args.emit_asm:
        out = args.output or (args.source.rsplit(".", 1)[0] + ".s")
        with open(out, "w") as fh:
            fh.write(asm_text)
    else:
        out = args.output or (args.source.rsplit(".", 1)[0] + ".bin")
        save_program(assemble(asm_text), out)
    print("wrote %s" % out)


def cmd_asm(args) -> None:
    """Assemble an srisc source file to a binary."""
    from ..asm.assembler import assemble
    from ..asm.binary import save_program

    program = assemble(open(args.source).read())
    out = args.output or (args.source.rsplit(".", 1)[0] + ".bin")
    save_program(program, out)
    print("wrote %s (%d instructions)" % (out, len(program.text_words)))


def cmd_exec(args) -> None:
    """Run an srisc binary on the chosen machine."""
    import sys

    from ..asm.binary import load_program
    from ..baselines.dif import DIFMachine
    from ..baselines.scalar import ScalarMachine
    from ..core.machine import DTSVLIW

    program = load_program(args.binary)
    cfg = MachineConfig.paper_fixed(
        args.width, args.height, test_mode=args.test_mode
    )
    machines = {"dtsvliw": DTSVLIW, "dif": DIFMachine, "scalar": ScalarMachine}
    machine = machines[args.machine](program, cfg)
    stats = machine.run()
    sys.stdout.write(machine.output.decode("latin-1"))
    print()
    print(
        "exit=%d cycles=%d ipc=%.2f"
        % (machine.exit_code, stats.cycles, stats.ipc)
    )


def _spec_from_dials(pairs) -> "object":
    """Build a SynthSpec from ``key=value`` strings, coercing by field type."""
    from ..core.errors import SimError
    from ..synth import SynthSpec

    kw = {}
    defaults = SynthSpec()
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep:
            raise SimError("--dial expects key=value, got %r" % pair)
        if not hasattr(defaults, key):
            raise SimError("unknown SynthSpec dial %r" % key)
        current = getattr(defaults, key)
        if isinstance(current, bool):
            kw[key] = raw.lower() in ("1", "true", "yes", "on")
        elif isinstance(current, int):
            kw[key] = int(raw)
        elif isinstance(current, float):
            kw[key] = float(raw)
        else:
            kw[key] = raw
    return SynthSpec(**kw).validate()


def cmd_synth(args) -> int:
    """Materialize, describe, and differential-fuzz synthetic workloads."""
    from .. import synth

    if args.action == "new":
        spec = _spec_from_dials(args.dial)
        name = synth.register_spec(spec)
        print(name)
        print("  " + spec.describe())
        return 0
    if args.action == "list":
        specs = synth.known_specs()
        for spec in specs:
            print(spec.describe())
        print("%d spec(s) in %s" % (len(specs), synth.synth_dir()))
        return 0
    if args.action in ("show", "emit", "check"):
        if not args.target:
            print("synth %s needs a synth:<hash> name" % args.action)
            return 2
        spec = synth.resolve_spec(args.target)
        if args.action == "show":
            print(spec.describe())
            import json as _json

            print(_json.dumps(spec.to_dict(), sort_keys=True, indent=1))
            return 0
        if args.action == "emit":
            src = synth.generate_source(spec, args.scale or 1.0)
            if args.out:
                with open(args.out, "w") as fh:
                    fh.write(src)
                print("wrote %s (%d bytes)" % (args.out, len(src)))
            else:
                print(src)
            return 0
        report = synth.run_tower(spec, scale=args.scale)
        print(report.summary())
        return 0 if report.ok else 1
    if args.action == "replay":
        if not args.target:
            print("synth replay needs a repro artifact path")
            return 2
        spec, payload = synth.load_repro(args.target)
        print("replaying %s (%s)" % (spec.name, payload.get("reason", "?")))
        report = synth.run_tower(spec, scale=args.scale)
        print(report.summary())
        return 0 if report.ok else 1
    # fuzz: corpus x full tower, shrink + store every failure
    t0 = time.time()
    specs = synth.corpus_specs(args.count, args.seed)
    failures = 0
    for i, spec in enumerate(specs):
        report = synth.run_tower(spec, scale=args.scale)
        if report.ok:
            print("[%d/%d] ok %s" % (i + 1, len(specs), spec.describe()))
            continue
        failures += 1
        print("[%d/%d] FAIL %s" % (i + 1, len(specs), report.summary()))
        mini = synth.shrink_spec(
            spec,
            lambda s: not synth.run_tower(s, scale=args.scale).ok,
            log=lambda m: print("  " + m),
        )
        path = synth.save_repro(
            mini,
            reason=report.mismatches[0],
            extra={"original": spec.to_dict()},
        )
        print("  minimal repro %s -> %s" % (mini.name, path))
    print(
        "%d/%d spec(s) diverged (%.1fs, repros in %s)"
        % (failures, len(specs), time.time() - t0, synth.repro_dir())
    )
    return 1 if failures else 0


def cmd_run(args) -> None:
    cfg = MachineConfig.paper_fixed(args.width, args.height, test_mode=args.test_mode)
    t0 = time.time()
    spec = RunSpec(args.workload, cfg, machine=args.machine, scale=args.scale)
    res = run_sweep([spec], **_sweep_opts(args)).results[0]
    dt = time.time() - t0
    print(
        "%s on %s (%dx%d): ipc=%.3f over %d instructions, %d cycles (%.1fs)"
        % (args.workload, args.machine, args.width, args.height, res.ipc,
           res.ref_instructions, res.cycles, dt)
    )
    print()
    print(res.stats.summary())
    _print_summary()


def cmd_profile(args) -> None:
    """Profile runs: export per-cell event telemetry and print the digest.

    Reports are rendered from the *exported* JSONL (not the in-memory
    event list), so every invocation also exercises the round trip
    through :mod:`repro.obs.export`.
    """
    from ..obs import load_profile, profile_report

    cfg = MachineConfig.paper_fixed(
        args.width, args.height, test_mode=args.test_mode
    )
    names = _benchmarks(args) or list(registry.BENCHMARKS)
    specs = [
        RunSpec(name, cfg, machine=args.machine, scale=args.scale)
        for name in names
    ]
    run = run_sweep(specs, profile=True, **_sweep_opts(args))
    for spec, res, path in zip(run.specs, run.results, run.profile_paths):
        meta, events = load_profile(path)
        print(profile_report(spec.benchmark, events))
        print(
            "  ipc=%.3f over %d instructions, %d cycles"
            % (res.ipc, res.ref_instructions, res.cycles)
        )
        print("  profile: %s (%d events)" % (path, len(events)))
        if args.events:
            shown = events if args.events < 0 else events[: args.events]
            for ev in shown:
                print("  " + " ".join(str(x) for x in ev))
            if len(shown) < len(events):
                print("  ... %d more events in %s" % (len(events) - len(shown), path))
        print()
    from ..isa.blockcompile import GLOBAL_STATS

    bc = GLOBAL_STATS.snapshot()
    if any(bc.values()):
        print(
            "block compile (this process): compiled=%d cache_hits=%d "
            "cache_misses=%d fallbacks=%d"
            % (
                bc["compiled"],
                bc["cache_hits"],
                bc["cache_misses"],
                bc["fallback_dispatches"],
            )
        )
    from ..isa.blockcompile import PM_STATS

    pm = PM_STATS.snapshot()
    if any(pm.values()):
        print(
            "primary compile (this process): compiled=%d cache_hits=%d "
            "cache_misses=%d dispatches=%d fallbacks=%d"
            % (
                pm["compiled"],
                pm["cache_hits"],
                pm["cache_misses"],
                pm["dispatches"],
                pm["fallback_dispatches"],
            )
        )
    from ..batch.mc_kernel import GLOBAL_STATS as MC_STATS

    mc = MC_STATS.snapshot()
    if any(mc.values()):
        print(
            "mc kernel (this process): builds=%d applied=%d fallbacks=%d"
            % (mc["builds"], mc["applied"], mc["fallbacks"])
        )
    from ..scheduler import memo as sched_memo
    from ..scheduler.memostore import GLOBAL_STATS as MEMO_STATS

    ms = MEMO_STATS.snapshot()
    if any(ms.values()) or sched_memo.shared_evictions:
        print(
            "memo store (this process): hits=%d misses=%d records_loaded=%d "
            "flushes=%d family_evictions=%d"
            % (
                ms["store_hits"],
                ms["store_misses"],
                ms["records_loaded"],
                ms["flushes"],
                sched_memo.shared_evictions,
            )
        )
    _print_summary()


def main(argv=None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="dtsvliw",
        description="DTSVLIW reproduction harness (de Souza & Rounce, IPPS 1999)",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--scale",
        type=float,
        default=None,
        help="workload size multiplier (default: $REPRO_SCALE or 1.0)",
    )
    common.add_argument(
        "--benchmarks",
        default="",
        help="comma-separated subset of benchmarks",
    )
    common.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="parallel worker processes for sweeps (default: $REPRO_JOBS or 1)",
    )
    common.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result cache (results/.cache/)",
    )
    common.add_argument(
        "--no-batch",
        action="store_true",
        help="disable batched family evaluation (strictly per-cell sweeps)",
    )
    common.add_argument(
        "--no-vector",
        action="store_true",
        help="disable the vectorized multi-config cache kernel "
        "(scalar per-geometry miss profiles; also $REPRO_NO_VECTOR=1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name, fn, help_ in [
        ("table1", cmd_table1, "fixed machine parameters"),
        ("table2", cmd_table2, "benchmark inventory"),
        ("fig5", cmd_fig5, "IPC vs block geometry"),
        ("fig6", cmd_fig6, "IPC vs VLIW cache size"),
        ("fig7", cmd_fig7, "IPC vs VLIW cache associativity"),
        ("fig8", cmd_fig8, "feasible machine cost breakdown"),
        ("table3", cmd_table3, "feasible machine resources"),
        ("fig9", cmd_fig9, "DTSVLIW vs DIF"),
        ("speedup", cmd_speedup, "speed-up over the scalar pipeline"),
        ("ablations", cmd_ablations, "design-choice ablations"),
    ]:
        p = sub.add_parser(name, help=help_, parents=[common])
        p.set_defaults(func=fn)
    p = sub.add_parser(
        "blocks", help="dump the hottest scheduled blocks", parents=[common]
    )
    p.add_argument(
        "--workload",
        default="ijpeg",
        help="registry benchmark or synth:<hash> name",
    )
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--count", type=int, default=3)
    p.set_defaults(func=cmd_blocks)
    p = sub.add_parser("run", help="single run with custom geometry", parents=[common])
    p.add_argument(
        "--workload",
        default="ijpeg",
        help="registry benchmark or synth:<hash> name",
    )
    p.add_argument("--machine", default="dtsvliw", choices=["dtsvliw", "dif", "scalar"])
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--test-mode", action="store_true")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "profile",
        help="event-telemetry profile of one or more runs",
        parents=[common],
    )
    p.add_argument("--machine", default="dtsvliw", choices=["dtsvliw", "dif", "scalar"])
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--test-mode", action="store_true")
    p.add_argument(
        "--events",
        type=int,
        default=0,
        metavar="N",
        help="also dump the first N raw events (-1 for all)",
    )
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("cc", help="compile minicc to an srisc binary")
    p.add_argument("source")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("-S", "--emit-asm", action="store_true")
    p.add_argument("--hw-mul", action="store_true")
    p.add_argument("--unroll", type=int, default=1)
    p.add_argument("--schedule", action="store_true")
    p.set_defaults(func=cmd_cc)
    p = sub.add_parser("asm", help="assemble srisc source to a binary")
    p.add_argument("source")
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=cmd_asm)
    p = sub.add_parser(
        "synth",
        help="synthetic workloads: generate, inspect, differential-fuzz",
        parents=[common],
    )
    p.add_argument(
        "action",
        choices=["new", "show", "list", "emit", "check", "fuzz", "replay"],
        help="new/show/list/emit specs; check one spec, fuzz a corpus, "
        "or replay a stored repro artifact",
    )
    p.add_argument(
        "target",
        nargs="?",
        default=None,
        help="synth:<hash> name (show/emit/check) or repro JSON (replay)",
    )
    p.add_argument(
        "--dial",
        action="append",
        metavar="KEY=VALUE",
        help="SynthSpec dial override for `new` (repeatable)",
    )
    p.add_argument("--count", type=int, default=50, help="fuzz corpus size")
    p.add_argument("--seed", type=int, default=0, help="fuzz corpus seed")
    p.add_argument("--out", default=None, help="output file for `emit`")
    p.set_defaults(func=cmd_synth)
    p = sub.add_parser("exec", help="run an srisc binary")
    p.add_argument("binary")
    p.add_argument("--machine", default="dtsvliw", choices=["dtsvliw", "dif", "scalar"])
    p.add_argument("--width", type=int, default=8)
    p.add_argument("--height", type=int, default=8)
    p.add_argument("--test-mode", action="store_true")
    p.set_defaults(func=cmd_exec)

    args = parser.parse_args(argv)
    return args.func(args) or 0


if __name__ == "__main__":
    sys.exit(main())
