"""Pluggable executors for parameter sweeps.

Every executor maps a picklable function over a list of items and returns
the results **in submission order** -- the ordering contract is what makes
a parallel sweep bit-identical to a serial one (each simulation is itself
deterministic).

* :class:`SerialExecutor` -- in-process, zero overhead, the default.
* :class:`ProcessPoolExecutor` -- ``concurrent.futures`` worker processes.
  Workloads are *not* shipped to workers: each worker compiles through the
  per-process memoized :mod:`repro.workloads.registry`, so only the
  :class:`~repro.harness.sweep.RunSpec` goes out and only the
  :class:`~repro.harness.runner.RunResult` comes back.

``$REPRO_JOBS`` (or ``--jobs N`` on the CLI) selects the worker count;
``jobs <= 1`` always means serial.
"""

from __future__ import annotations

import logging
from concurrent import futures
from typing import Callable, Iterable, List, Sequence, TypeVar

from .runner import env_value

T = TypeVar("T")
R = TypeVar("R")

log = logging.getLogger(__name__)


def env_jobs(default: int = 1) -> int:
    """Worker count from ``$REPRO_JOBS`` (fallback: ``default``).

    Goes through :func:`repro.harness.runner.env_value`, the shared
    warn-once malformed-``REPRO_*`` policy.
    """
    return env_value("REPRO_JOBS", default, int)


class SerialExecutor:
    """Run every cell in-process, in submission order (deterministic)."""

    name = "serial"
    jobs = 1

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        return [fn(item) for item in items]

    def warm(self, fn: Callable[[T], R], items: Sequence[T]) -> None:
        """Run ``fn`` over ``items`` for its side effects (shared-state
        priming: trace capture, compile memos) before a :meth:`map`."""
        for item in items:
            fn(item)


class ProcessPoolExecutor:
    """Fan cells out to ``jobs`` worker processes.

    ``futures.ProcessPoolExecutor.map`` yields results in submission order
    regardless of completion order, preserving the determinism contract.
    """

    name = "process"

    def __init__(self, jobs: int):
        if jobs < 2:
            raise ValueError("ProcessPoolExecutor needs jobs >= 2, got %d" % jobs)
        self.jobs = jobs

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        items = list(items)
        if not items:
            return []
        workers = min(self.jobs, len(items))
        with futures.ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, items, chunksize=1))

    def warm(self, fn: Callable[[T], R], items: Sequence[T]) -> None:
        """Parallel side-effect pass.  Only state that reaches *disk*
        (e.g. the trace store) survives into the later :meth:`map`
        workers -- per-process memos die with the warming processes."""
        self.map(fn, items)


def get_executor(jobs: int | None = None):
    """Executor for ``jobs`` workers (``None``: ``$REPRO_JOBS``, then serial)."""
    if jobs is None:
        jobs = env_jobs(1)
    if jobs <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(jobs)
