"""Declarative sweep layer: every experiment is a grid of RunSpecs.

The paper's methodology is hundreds of independent cycle-level
simulations; this module makes the *sweep* the first-class object instead
of the single run.  A :class:`RunSpec` names one cell (workload, machine
kind, :class:`~repro.core.config.MachineConfig`, scale, hw_mul) and has a
stable content hash; :func:`run_sweep` expands a list of specs through a
pluggable executor (:mod:`repro.harness.executors`) and an optional
persistent result cache (:mod:`repro.harness.resultcache`).

Determinism contract: results come back in spec order and each simulation
is deterministic, so a ``--jobs 8`` sweep is bit-identical to a serial
one, and a warm cache replays the same numbers with zero simulations
(check :attr:`SweepRun.summary`).

Trace sharing: before the main map, the driver captures each distinct
``(workload, scale, hw_mul, optimize, mem_size)`` trace once (through the
same executor) so every trace-drivable cell -- the DIF and scalar
baselines -- replays it instead of re-executing the program, across
worker processes via the on-disk trace store (see :mod:`repro.trace`).
``REPRO_EXECUTION_DRIVEN=1`` disables the whole mechanism.

Family batching: cells sharing a trace (same workload, scale, hw_mul,
optimize and memory size) are grouped into *families* and evaluated by
one :func:`~repro.batch.evaluate_family` task each -- the trace is bound
once, its config-independent timing columns derived once, and each cell
reduced to a per-config timing state (closed-form for the scalar
baseline, trace-replay machines for DIF and the replay-eligible
DTSVLIW).  Results are bit-identical to the unbatched path; the summary
reports how many cells were cached / batched / simulated live, and
``batch=False`` (or ``$REPRO_NO_BATCH``, or ``--no-batch``) restores
strictly per-cell simulation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.config import MachineConfig
from . import resultcache
from .executors import get_executor
from .runner import (
    RunResult,
    default_max_cycles,
    env_scale,
    run_program,
    run_workload,
)

log = logging.getLogger(__name__)

_last_summary: Optional["SweepSummary"] = None


# ------------------------------------------------------------------ RunSpec
@dataclass
class RunSpec:
    """One sweep cell, fully described by value (picklable, hashable).

    ``meta`` carries presentation labels (row/column names) and is
    excluded from the content hash; everything else changes the result
    and therefore the hash.  ``source`` optionally replaces the registry
    workload with inline minicc source (used by the examples).
    """

    benchmark: str
    config: MachineConfig
    machine: str = "dtsvliw"
    scale: Optional[float] = None
    hw_mul: bool = False
    optimize: bool = True
    max_cycles: Optional[int] = None
    source: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def resolved(self, default_scale: float = 1.0) -> "RunSpec":
        """A copy with env-dependent fields pinned to concrete values, so
        the content hash never depends on the caller's environment."""
        return dataclasses.replace(
            self,
            scale=env_scale(default_scale) if self.scale is None else self.scale,
            max_cycles=(
                default_max_cycles() if self.max_cycles is None else self.max_cycles
            ),
        )

    def to_dict(self, include_meta: bool = False) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "benchmark": self.benchmark,
            "config": self.config.to_dict(),
            "machine": self.machine,
            "scale": self.scale,
            "hw_mul": self.hw_mul,
            "optimize": self.optimize,
            "max_cycles": self.max_cycles,
            "source": self.source,
        }
        if include_meta:
            out["meta"] = dict(self.meta)
        return out

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "RunSpec":
        kw = dict(d)
        kw["config"] = MachineConfig.from_dict(kw["config"])
        return cls(**kw)

    def spec_hash(self) -> str:
        """Stable content hash of the *resolved* spec (hex, 24 chars)."""
        blob = json.dumps(
            self.resolved().to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]

    def cache_key(self) -> str:
        """Cache key: content hash + simulator source fingerprint."""
        return "%s-%s" % (self.spec_hash(), resultcache.code_version())


# ------------------------------------------------- inline-source workloads
# Per-process memo of compiled inline sources (mirrors workloads.registry).
_inline_cache: Dict[Tuple, Tuple[Any, Tuple[int, bytes, int]]] = {}


def _inline_program(source: str, hw_mul: bool, optimize: bool):
    from ..asm.assembler import assemble
    from ..core.reference import ReferenceMachine
    from ..lang import CompilerOptions, compile_minicc

    key = (hashlib.sha256(source.encode("utf-8")).hexdigest(), hw_mul, optimize)
    if key not in _inline_cache:
        opts = CompilerOptions(
            hw_mul=hw_mul, unroll=2 if optimize else 1, schedule=optimize
        )
        program = assemble(compile_minicc(source, opts))
        ref = ReferenceMachine(program)
        count = ref.run(max_instructions=1_000_000_000)
        _inline_cache[key] = (program, (count, ref.output, ref.exit_code))
    return _inline_cache[key]


def simulate_spec(spec: RunSpec, probe=None) -> RunResult:
    """Execute one cell (module-level so executors can pickle it).

    Workload compilation stays behind the per-process memoized registry
    (or the inline memo above): only the spec crosses a process boundary,
    never a compiled program image.
    """
    spec = spec.resolved()
    if spec.source is not None:
        program, reference = _inline_program(
            spec.source, spec.hw_mul, spec.optimize
        )
        return run_program(
            program,
            reference,
            spec.config,
            machine=spec.machine,
            name=spec.benchmark,
            max_cycles=spec.max_cycles,
            probe=probe,
        )
    return run_workload(
        spec.benchmark,
        spec.config,
        machine=spec.machine,
        scale=spec.scale,
        hw_mul=spec.hw_mul,
        max_cycles=spec.max_cycles,
        optimize=spec.optimize,
        probe=probe,
    )


# ------------------------------------------------------------- profiling
def profile_path_for(spec: RunSpec) -> Path:
    """Where the per-cell event profile of ``spec`` lives on disk.

    The name embeds the resolved spec hash, so a profile file is valid for
    exactly one cell content -- reusing one can never mix configurations.
    """
    from ..obs.export import profile_dir

    slug = re.sub(r"[^A-Za-z0-9._-]", "_", spec.benchmark)
    return Path(profile_dir()) / (
        "%s-%s-%s.jsonl" % (slug, spec.machine, spec.spec_hash())
    )


def _profile_valid(path: Path) -> bool:
    from ..obs.export import ProfileFormatError, load_profile

    try:
        load_profile(path)
        return True
    except ProfileFormatError:
        return False


def simulate_spec_profiled(spec: RunSpec) -> Tuple[RunResult, str]:
    """Execute one cell with an :class:`~repro.obs.EventProbe` attached and
    export its profile (module-level, picklable).  Returns the result and
    the written profile path."""
    from ..obs import EventProbe, write_profile

    spec = spec.resolved()
    probe = EventProbe()
    res = simulate_spec(spec, probe=probe)
    path = write_profile(
        profile_path_for(spec),
        probe.events,
        meta={
            "benchmark": spec.benchmark,
            "machine": spec.machine,
            "spec_hash": spec.spec_hash(),
            "scale": spec.scale,
        },
    )
    return res, str(path)


# ------------------------------------------------------------ trace sharing
def _trace_needs(specs: Sequence[RunSpec], batch: bool = False) -> List[Tuple]:
    """Unique ``workload_trace`` argument tuples the trace-drivable cells
    in ``specs`` will ask for (registry workloads only; deduplicated in
    first-appearance order).  With ``batch=True`` the replay-eligible
    DTSVLIW cells count too -- family batching drives them off the same
    shared trace."""
    from ..batch import batchable
    from .runner import TRACE_DRIVABLE

    seen = set()
    out: List[Tuple] = []
    for spec in specs:
        if spec.source is not None:
            continue
        if batch:
            if not batchable(spec):
                continue
        elif spec.machine not in TRACE_DRIVABLE:
            continue
        key = (
            spec.benchmark,
            spec.scale,
            spec.hw_mul,
            spec.optimize,
            spec.config.mem_size,
        )
        if key not in seen:
            seen.add(key)
            out.append(key)
    return out


def _capture_trace_for(key: Tuple) -> bool:
    """Capture one workload trace into the store (module-level so process
    pools can pickle it); True when a trace ends up available."""
    from ..trace.capture import workload_trace

    name, scale, hw_mul, optimize, mem_size = key
    return workload_trace(name, scale, hw_mul, optimize, mem_size) is not None


def _precapture_traces(
    specs: Sequence[RunSpec], executor, batch: bool = False
) -> None:
    """Capture each missing shared trace once, through the executor.

    Runs before the main map so every (workload, scale) trace is captured
    exactly once and fanned out to all cells -- across processes via the
    on-disk store (workers re-load from disk; see ``Executor.warm``).
    Degrades gracefully: if a store write is lost, the worker simply
    captures for itself.
    """
    from ..trace.capture import trace_cached
    from ..trace.replay import execution_driven_forced

    if execution_driven_forced():
        return
    missing = [k for k in _trace_needs(specs, batch=batch) if not trace_cached(*k)]
    if not missing:
        return
    log.debug("pre-capturing %d workload trace(s)", len(missing))
    executor.warm(_capture_trace_for, missing)


# ------------------------------------------------------------------ results
@dataclass
class SweepSummary:
    """Counters for one sweep (the CLI prints ``line()`` after each run)."""

    total: int = 0
    simulated: int = 0
    cached: int = 0
    #: fresh cells evaluated from a shared family trace (repro.batch);
    #: the remaining ``simulated - batched`` ran per-cell ("live")
    batched: int = 0
    #: the subset of ``batched`` whose cache miss profiles came from the
    #: vectorized multi-config kernel (repro.batch.mc_kernel)
    vectorized: int = 0
    jobs: int = 1
    executor: str = "serial"
    elapsed: float = 0.0
    #: simulated sequential instructions / run-loop wall seconds, summed
    #: over the freshly simulated cells (cached cells replay no work).
    sim_instructions: int = 0
    sim_wall_s: float = 0.0

    @property
    def live(self) -> int:
        """Fresh cells that ran a per-cell simulation (not batched)."""
        return self.simulated - self.batched

    @property
    def mips(self) -> float:
        """Aggregate simulator throughput of the freshly simulated cells."""
        if not self.sim_wall_s:
            return 0.0
        return self.sim_instructions / self.sim_wall_s / 1e6

    def line(self) -> str:
        batched = "%d batched" % self.batched
        if self.vectorized:
            batched += " [%d vectorized]" % self.vectorized
        out = (
            "sweep: %d cells (%d cached, %s, %d live) "
            "via %s jobs=%d in %.1fs"
            % (
                self.total,
                self.cached,
                batched,
                self.live,
                self.executor,
                self.jobs,
                self.elapsed,
            )
        )
        if self.sim_wall_s:
            out += " at %.2f MIPS" % self.mips
        return out


@dataclass
class SweepRun:
    """Specs and their results, index-aligned, plus the run counters.

    ``profile_paths`` is populated (index-aligned with ``specs``) only by
    profiled sweeps (``run_sweep(..., profile=True)``); it stays ``None``
    otherwise so plain sweeps are unchanged.
    """

    specs: List[RunSpec]
    results: List[RunResult]
    summary: SweepSummary
    profile_paths: Optional[List[str]] = None

    def __iter__(self):
        return iter(zip(self.specs, self.results))

    def table(
        self, value: Callable[[RunResult], Any] = lambda r: r.ipc
    ) -> Dict[str, Dict[Any, Any]]:
        """Rows/columns from each spec's ``meta`` (``row`` defaults to the
        benchmark name, ``col`` to the machine kind) -- the shape every
        reporting helper consumes."""
        out: Dict[str, Dict[Any, Any]] = {}
        for spec, res in self:
            row = spec.meta.get("row", spec.benchmark)
            col = spec.meta.get("col", spec.machine)
            out.setdefault(row, {})[col] = value(res)
        return out


def last_summary() -> Optional[SweepSummary]:
    """Counters of the most recent :func:`run_sweep` in this process."""
    return _last_summary


# ------------------------------------------------------------------ driver
def run_sweep(
    specs: Sequence[RunSpec],
    jobs: Optional[int] = None,
    use_cache: Optional[bool] = None,
    cache: Optional[resultcache.ResultCache] = None,
    executor=None,
    profile: bool = False,
    batch: Optional[bool] = None,
    vector: Optional[bool] = None,
) -> SweepRun:
    """Execute every spec; returns results in spec order.

    ``jobs=None`` consults ``$REPRO_JOBS`` (default serial); ``use_cache``
    ``None`` consults ``$REPRO_NO_CACHE`` (default on).  Passing a
    ``cache`` instance forces that cache regardless of ``use_cache``.

    ``batch=None`` consults ``$REPRO_NO_BATCH`` (default on): cells
    sharing a captured trace are grouped into families and evaluated by
    one :func:`~repro.batch.evaluate_family` task each, bit-identical to
    the per-cell path (see the module docstring).

    ``vector`` (default on; ``--no-vector`` passes False) lets the
    batched families prime their cache miss profiles through the
    vectorized multi-config kernel (:mod:`repro.batch.mc_kernel`) -- one
    grouped pass per address column instead of one LRU walk per geometry,
    again bit-identical.  ``$REPRO_NO_VECTOR=1`` (or NumPy being absent)
    disables the kernel from the environment; such families fall back to
    scalar per-geometry profiles and are counted/probed as fallbacks.

    ``profile=True`` attaches an event probe to every cell and exports a
    per-cell profile (see :mod:`repro.obs`); the result cache keys are
    untouched -- a cached cell reuses its profile from disk when a valid
    one exists and is re-simulated (same deterministic result) when not.
    Profiled sweeps are never batched: telemetry comes from the per-cell
    machines.
    """
    from ..batch import batch_enabled_default, batchable, evaluate_family, family_key

    global _last_summary
    t0 = time.perf_counter()
    specs = [s.resolved() for s in specs]
    executor = executor if executor is not None else get_executor(jobs)
    if cache is None:
        enabled = (
            resultcache.cache_enabled_default() if use_cache is None else use_cache
        )
        cache = resultcache.ResultCache() if enabled else None
    batch_on = (batch_enabled_default() if batch is None else batch) and not profile

    results: List[Optional[RunResult]] = [None] * len(specs)
    paths: Optional[List[Optional[str]]] = [None] * len(specs) if profile else None
    todo: List[int] = []
    if cache is not None:
        for i, spec in enumerate(specs):
            payload = cache.get(spec.cache_key())
            if payload is None:
                todo.append(i)
                continue
            if profile:
                path = profile_path_for(spec)
                if not _profile_valid(path):
                    # the profile is gone/stale: re-simulate this cell
                    # (deterministic, so the cached result is unchanged)
                    todo.append(i)
                    continue
                paths[i] = str(path)
            results[i] = RunResult.from_dict(payload["result"])
    else:
        todo = list(range(len(specs)))

    todo_specs = [specs[i] for i in todo]
    _precapture_traces(todo_specs, executor, batch=batch_on)

    # Partition the fresh cells into trace-sharing families (one batched
    # task each) and the per-cell remainder, preserving spec order within
    # each family and across the remainder.
    families: Dict[Tuple, List[int]] = {}
    rest: List[int] = []
    if batch_on:
        for pos, spec in enumerate(todo_specs):
            if batchable(spec):
                families.setdefault(family_key(spec), []).append(pos)
            else:
                rest.append(pos)
    else:
        rest = list(range(len(todo_specs)))

    batched = 0
    vectorized = 0
    if families:
        vector_on = True if vector is None else vector
        items = [
            (key, tuple(todo_specs[p] for p in poss), vector_on)
            for key, poss in families.items()
        ]
        for (key, poss), cells in zip(
            families.items(), executor.map(evaluate_family, items)
        ):
            for p, (res, provenance) in zip(poss, cells):
                results[todo[p]] = res
                if provenance == "vectorized":
                    batched += 1
                    vectorized += 1
                elif provenance == "batched":
                    batched += 1

    rest_specs = [todo_specs[p] for p in rest]
    if profile:
        fresh = executor.map(simulate_spec_profiled, rest_specs)
    else:
        fresh = executor.map(simulate_spec, rest_specs)
    for p, res in zip(rest, fresh):
        if profile:
            res, path = res
            paths[todo[p]] = path
        results[todo[p]] = res

    if cache is not None:
        for i in todo:
            cache.put(
                specs[i].cache_key(),
                {
                    "spec": specs[i].to_dict(),
                    "result": results[i].to_dict(),
                    "code_version": resultcache.code_version(),
                },
            )

    summary = SweepSummary(
        total=len(specs),
        simulated=len(todo),
        cached=len(specs) - len(todo),
        batched=batched,
        vectorized=vectorized,
        jobs=getattr(executor, "jobs", 1),
        executor=getattr(executor, "name", type(executor).__name__),
        elapsed=time.perf_counter() - t0,
        sim_instructions=sum(results[i].stats.ref_instructions for i in todo),
        sim_wall_s=sum(results[i].stats.wall_time_s for i in todo),
    )
    _last_summary = summary
    log.debug(summary.line())
    return SweepRun(
        specs=specs, results=results, summary=summary, profile_paths=paths
    )


class Sweep:
    """A declared grid of specs; thin sugar over :func:`run_sweep`."""

    def __init__(self, specs: Sequence[RunSpec]):
        self.specs = list(specs)

    @classmethod
    def grid(
        cls,
        benchmarks: Sequence[str],
        columns: Sequence[Tuple[Any, MachineConfig]],
        machine: str = "dtsvliw",
        scale: Optional[float] = None,
        hw_mul: bool = False,
    ) -> "Sweep":
        """Cross product of ``benchmarks`` x ``(label, config)`` columns;
        the label lands in ``meta['col']`` for :meth:`SweepRun.table`."""
        return cls(
            [
                RunSpec(
                    benchmark=name,
                    config=cfg,
                    machine=machine,
                    scale=scale,
                    hw_mul=hw_mul,
                    meta={"col": label},
                )
                for name in benchmarks
                for label, cfg in columns
            ]
        )

    def run(
        self,
        jobs=None,
        use_cache=None,
        cache=None,
        executor=None,
        batch=None,
        vector=None,
    ) -> SweepRun:
        return run_sweep(
            self.specs,
            jobs=jobs,
            use_cache=use_cache,
            cache=cache,
            executor=executor,
            batch=batch,
            vector=vector,
        )
