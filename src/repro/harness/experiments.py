"""Experiment drivers: one function per table/figure of the paper.

Each returns plain data structures (dict keyed by benchmark); rendering
lives in :mod:`repro.harness.reporting`.  EXPERIMENTS.md records the
paper-vs-measured comparison for every one of these.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import MachineConfig
from ..workloads import registry
from .runner import run_workload

#: Figure 5 geometries: (instructions per LI, LIs per block)
FIG5_GEOMETRIES: List[Tuple[int, int]] = [
    (4, 4),
    (4, 8),
    (8, 4),
    (4, 16),
    (8, 8),
    (16, 4),
    (8, 16),
    (16, 8),
    (16, 16),
]

# The paper sweeps 48..3072 KB for SPECint95; our workloads' instruction
# working sets are ~100x smaller, so the sweep keeps the paper's points and
# adds footprint-scaled ones below (where the sensitivity shape lives).
FIG6_SIZES_KB = [1, 2, 4, 8, 16, 48, 96, 384, 3072]
FIG7_ASSOCS = [1, 2, 4, 8]
FIG7_SIZES_KB = [2, 8, 96, 384]


def _benchmarks(benchmarks: Optional[Sequence[str]]) -> List[str]:
    return list(benchmarks) if benchmarks else list(registry.BENCHMARKS)


# ---------------------------------------------------------------- Figure 5
def fig5_geometry(
    benchmarks: Optional[Sequence[str]] = None,
    geometries: Optional[Sequence[Tuple[int, int]]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """IPC vs block size and geometry (ideal memory system)."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        row: Dict[str, float] = {}
        for (w, h) in geometries or FIG5_GEOMETRIES:
            cfg = MachineConfig.paper_fixed(w, h, test_mode=False)
            row["%dx%d" % (w, h)] = run_workload(name, cfg, scale=scale).ipc
        out[name] = row
    return out


# ---------------------------------------------------------------- Figure 6
def fig6_cache_size(
    benchmarks: Optional[Sequence[str]] = None,
    sizes_kb: Optional[Sequence[int]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[int, float]]:
    """IPC vs VLIW Cache size, 8x8 geometry, 4-way associative."""
    out: Dict[str, Dict[int, float]] = {}
    for name in _benchmarks(benchmarks):
        row: Dict[int, float] = {}
        for kb in sizes_kb or FIG6_SIZES_KB:
            cfg = MachineConfig.paper_fixed(8, 8, test_mode=False)
            cfg.vliw_cache_bytes = kb * 1024
            cfg.vliw_cache_assoc = 4
            row[kb] = run_workload(name, cfg, scale=scale).ipc
        out[name] = row
    return out


# ---------------------------------------------------------------- Figure 7
def fig7_associativity(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """IPC vs VLIW Cache associativity for 96 KB and 384 KB caches."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        row: Dict[str, float] = {}
        for kb in FIG7_SIZES_KB:
            for assoc in FIG7_ASSOCS:
                cfg = MachineConfig.paper_fixed(8, 8, test_mode=False)
                cfg.vliw_cache_bytes = kb * 1024
                cfg.vliw_cache_assoc = assoc
                row["%dKB/%d-way" % (kb, assoc)] = run_workload(
                    name, cfg, scale=scale
                ).ipc
        out[name] = row
    return out


# ---------------------------------------------------------------- Figure 8
FIG8_SEGMENTS = ["ilp", "next_li_cost", "dcache_cost", "icache_cost", "fu_cost"]


def fig8_feasible(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Feasible-machine cost breakdown: the stacked contributions of the
    functional-unit mix, instruction cache, data cache and next-LI misses,
    sitting on top of the delivered ILP (Figure 8's stacked bars).

    Measured by walking from the ideal machine to the feasible one:

    1. 10 homogeneous slots, perfect caches, no next-LI penalty
    2. + the feasible FU mix (4 int / 2 ld-st / 2 fp / 2 branch)
    3. + the 32 KB 4-way instruction cache (8-cycle miss)
    4. + the 32 KB direct-mapped data cache
    5. + the 1-cycle next-long-instruction miss penalty (= section 4.4)
    """
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        feas = MachineConfig.feasible(test_mode=False)

        ideal = MachineConfig.paper_fixed(10, 8, test_mode=False)
        ideal.vliw_cache_bytes = feas.vliw_cache_bytes
        ideal.vliw_cache_assoc = feas.vliw_cache_assoc
        ipc0 = run_workload(name, ideal, scale=scale).ipc

        typed = ideal.with_(slot_classes=list(feas.slot_classes))
        ipc1 = run_workload(name, typed, scale=scale).ipc

        with_ic = typed.with_(icache=feas.icache)
        ipc2 = run_workload(name, with_ic, scale=scale).ipc

        with_dc = with_ic.with_(dcache=feas.dcache)
        ipc3 = run_workload(name, with_dc, scale=scale).ipc

        ipc4 = run_workload(name, feas, scale=scale).ipc

        out[name] = {
            "ilp": ipc4,
            "next_li_cost": max(0.0, ipc3 - ipc4),
            "dcache_cost": max(0.0, ipc2 - ipc3),
            "icache_cost": max(0.0, ipc1 - ipc2),
            "fu_cost": max(0.0, ipc0 - ipc1),
            "ideal": ipc0,
        }
    return out


# ---------------------------------------------------------------- Table 3
def table3_feasible(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Performance and resource consumption of the feasible machine."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        cfg = MachineConfig.feasible(test_mode=False)
        res = run_workload(name, cfg, scale=scale)
        s = res.stats
        out[name] = {
            "ipc": res.ipc,
            "int_renaming": s.max_int_renaming,
            "fp_renaming": s.max_fp_renaming,
            "flag_renaming": s.max_cc_renaming,
            "mem_renaming": s.max_mem_renaming,
            "load_list": s.max_load_list,
            "store_list": s.max_store_list,
            "ckpt_list": s.max_ckpt_list,
            "aliasing": s.aliasing_exceptions,
            "vliw_cycles_pct": 100.0 * s.vliw_cycle_fraction,
            "slot_occupancy_pct": 100.0 * s.slot_occupancy,
        }
    return out


# ---------------------------------------------------------------- Figure 9
def fig9_dif_comparison(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """DTSVLIW vs DIF on the shared Figure 9 configuration."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        cfg_d = MachineConfig.fig9(test_mode=False)
        dts = run_workload(name, cfg_d, scale=scale)
        dif = run_workload(name, MachineConfig.fig9(test_mode=False), machine="dif", scale=scale)
        out[name] = {
            "dtsvliw": dts.ipc,
            "dif": dif.ipc,
            "dtsvliw_renaming": dts.stats.max_int_renaming
            + dts.stats.max_fp_renaming,
            "dif_renaming": dif.stats.max_int_renaming,
        }
    return out


# ---------------------------------------------------------- extra: speed-up
def speedup_vs_scalar(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """DTSVLIW speed-up over the scalar Primary Processor alone (not a
    paper figure, but the sanity check every reader wants)."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        cfg = MachineConfig.feasible(test_mode=False)
        dts = run_workload(name, cfg, scale=scale)
        sca = run_workload(name, cfg, machine="scalar", scale=scale)
        out[name] = {
            "dtsvliw_ipc": dts.ipc,
            "scalar_ipc": sca.ipc,
            "speedup": dts.ipc / sca.ipc if sca.ipc else 0.0,
        }
    return out


# ------------------------------------------------------------- ablations
def ablation_multicycle(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Multicycle-instruction scheduling ([14]): hardware mul/div with
    latency-aware placement vs latency-blind placement."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        on = MachineConfig.paper_fixed(8, 8, test_mode=False, multicycle=True)
        off = MachineConfig.paper_fixed(8, 8, test_mode=False, multicycle=False)
        out[name] = {
            "latency_aware": run_workload(name, on, scale=scale, hw_mul=True).ipc,
            "latency_blind": run_workload(name, off, scale=scale, hw_mul=True).ipc,
        }
    return out


def ablation_store_scheme(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Section 3.11's two store-handling schemes: checkpoint recovery
    store list (default) vs the alternative data store list."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        ck = MachineConfig.paper_fixed(8, 8, test_mode=False)
        dsl = MachineConfig.paper_fixed(8, 8, test_mode=False, data_store_list=True)
        out[name] = {
            "checkpoint_list": run_workload(name, ck, scale=scale).ipc,
            "data_store_list": run_workload(name, dsl, scale=scale).ipc,
        }
    return out


def ablation_next_block_prediction(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Section 5 future work: next-block (next long instruction)
    prediction hides the feasible machine's 1-cycle next-LI miss penalty
    when the last-successor predictor guesses the following block."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        base = MachineConfig.feasible(test_mode=False)
        pred = MachineConfig.feasible(
            test_mode=False, next_block_prediction=True
        )
        r0 = run_workload(name, base, scale=scale)
        r1 = run_workload(name, pred, scale=scale)
        hits = r1.stats.extra.get("next_block_pred_hits", 0)
        total = r1.stats.extra.get("next_block_predictions", 1)
        out[name] = {
            "no_prediction": r0.ipc,
            "prediction": r1.ipc,
            "hit_rate_pct": 100.0 * hits / max(1, total),
        }
    return out


def ablation_compiler(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Compiler-quality sensitivity: the paper's SPECint95 inputs came from
    optimising gcc; this measures how much of the DTSVLIW's parallelism
    depends on unrolled/scheduled code versus naive straight-line output."""
    from ..workloads import registry
    from ..core.machine import DTSVLIW

    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        row: Dict[str, float] = {}
        for label, optimize in (("optimized", True), ("naive", False)):
            s = scale if scale is not None else 1.0
            program = registry.load_program(name, s, optimize=optimize)
            count, outp, code = registry.reference_run(name, s, optimize=optimize)
            m = DTSVLIW(program, MachineConfig.paper_fixed(8, 8, test_mode=False))
            stats = m.run(max_cycles=400_000_000)
            assert m.output == outp and m.exit_code == code
            row[label] = count / stats.cycles
        out[name] = row
    return out


def ablation_splitting(
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> Dict[str, Dict[str, float]]:
    """Value of split-based renaming: unlimited renaming registers vs
    none (candidates install instead of splitting)."""
    out: Dict[str, Dict[str, float]] = {}
    for name in _benchmarks(benchmarks):
        on = MachineConfig.paper_fixed(8, 8, test_mode=False)
        off = MachineConfig.paper_fixed(
            8,
            8,
            test_mode=False,
            int_renaming_limit=0,
            fp_renaming_limit=0,
            cc_renaming_limit=0,
            mem_renaming_limit=0,
        )
        out[name] = {
            "splitting": run_workload(name, on, scale=scale).ipc,
            "no_splitting": run_workload(name, off, scale=scale).ipc,
        }
    return out
